#!/usr/bin/env bash
# Documentation consistency checks, run by the docs leg of CI and usable
# locally from the repo root:
#
#   tools/check_docs.sh
#
# Two gates, both stdlib-only (bash + python3, no packages):
#
#  1. Link check — every relative markdown link in README.md and docs/*.md
#     must resolve to an existing file or directory. External links
#     (http/https/mailto) and pure in-page anchors are skipped; a
#     "path#anchor" link is checked for the file part only.
#
#  2. Env-var drift guard — every EBCT_[A-Z_]* name that appears anywhere
#     in src/ or bench/ must be documented in docs/CONFIG.md. A new env
#     var without a CONFIG.md row fails CI until it is written up.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== markdown link check =="
python3 - <<'EOF' || fail=1
import glob, os, re, sys

# [text](target) — excluding images is unnecessary: image targets must
# exist too. Reference-style links are not used in this repo.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
ok = True
files = ["README.md"] + sorted(glob.glob("docs/*.md"))
for md in files:
    base = os.path.dirname(md)
    with open(md, encoding="utf-8") as f:
        text = f.read()
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            print(f"BROKEN  {md}: ({target}) -> {resolved}")
            ok = False
print(f"checked {len(files)} files")
sys.exit(0 if ok else 1)
EOF

echo "== EBCT_* env-var drift guard =="
# Any EBCT_ name in code (string literal or comment) counts: a variable
# mentioned in a doc comment but missing from CONFIG.md is still drift.
vars=$(grep -rhoE "EBCT_[A-Z_]+" src bench | sort -u)
for v in $vars; do
  # \b so EBCT_RECOMPUTE is not satisfied by EBCT_RECOMPUTE_RATES alone.
  if ! grep -qE "${v}\b" docs/CONFIG.md; then
    echo "UNDOCUMENTED  $v (found in src/ or bench/, missing from docs/CONFIG.md)"
    fail=1
  fi
done
echo "checked $(echo "$vars" | wc -l) env vars"

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
