#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by the obs tracing layer.

Usage: tools/check_trace.py <trace.json>

Checks (stdlib only, run by the perf-smoke CI job on the uploaded trace):

 1. The file parses as JSON and has the Chrome trace-event shape:
    a top-level object with a "traceEvents" list.
 2. Every "ph":"X" (complete) event carries name, cat, pid, tid, ts, dur
    with sane types and non-negative times.
 3. pid is constant across all events (one process) and every tid is an
    integer.
 4. Metadata ("ph":"M") names each thread at most once per tid.
 5. Per tid, complete events nest properly: sorted by start time, a span
    must either contain or be disjoint from every other span on its
    thread. A 1 µs tolerance absorbs translated spans (emitters that
    measured a duration on another clock and back-dated the start).
 6. At least one span from >= 2 distinct categories when the trace was
    produced by a training run (--min-cats N, default 0, opts in).

Exit code 0 = valid, 1 = any violation (each printed with context).
"""

import argparse
import json
import sys

NEST_TOLERANCE_US = 1.0


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="path to the Chrome trace JSON")
    ap.add_argument("--min-cats", type=int, default=0,
                    help="require spans from at least this many categories")
    args = ap.parse_args()

    errors = []

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace FAIL: cannot parse {args.trace}: {e}")
        return 1

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print("check_trace FAIL: top level is not {\"traceEvents\": [...]}")
        return 1
    events = doc["traceEvents"]

    pids = set()
    thread_names = {}
    spans_by_tid = {}
    cats = set()
    n_complete = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event[{i}] is not an object")
            continue
        ph = ev.get("ph")
        if "pid" in ev:
            pids.add(ev["pid"])
        if ph == "M":
            if ev.get("name") == "thread_name":
                tid = ev.get("tid")
                if not isinstance(tid, int):
                    errors.append(f"event[{i}] thread_name metadata has non-int tid {tid!r}")
                elif tid in thread_names:
                    errors.append(f"event[{i}] names tid {tid} twice")
                else:
                    thread_names[tid] = ev.get("args", {}).get("name", "")
            continue
        if ph != "X":
            errors.append(f"event[{i}] has unexpected ph {ph!r} (only X/M are emitted)")
            continue
        n_complete += 1
        for field, typ in (("name", str), ("cat", str), ("pid", int), ("tid", int)):
            if not isinstance(ev.get(field), typ):
                errors.append(f"event[{i}] {field} missing or not {typ.__name__}: {ev.get(field)!r}")
        for field in ("ts", "dur"):
            v = ev.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                errors.append(f"event[{i}] {field} missing/negative: {v!r}")
        if isinstance(ev.get("cat"), str):
            cats.add(ev["cat"])
        tid = ev.get("tid")
        ts, dur = ev.get("ts"), ev.get("dur")
        if isinstance(tid, int) and isinstance(ts, (int, float)) and isinstance(dur, (int, float)):
            spans_by_tid.setdefault(tid, []).append((float(ts), float(ts) + float(dur), ev.get("name", "?"), i))

    if len(pids) > 1:
        errors.append(f"more than one pid in a single-process trace: {sorted(pids)}")
    if n_complete == 0:
        errors.append("no complete (ph:X) events at all")

    # Per-thread nesting: walk spans sorted by (start, -end); maintain a
    # stack of open spans. Each new span must start after (stack top start)
    # and end before (stack top end), within tolerance, or begin after the
    # top closed.
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name, idx in spans:
            while stack and start >= stack[-1][1] - NEST_TOLERANCE_US:
                stack.pop()
            if stack and end > stack[-1][1] + NEST_TOLERANCE_US:
                outer = stack[-1]
                errors.append(
                    f"tid {tid}: span '{name}' [{start:.3f},{end:.3f}] (event[{idx}]) "
                    f"overlaps but does not nest in '{outer[2]}' [{outer[0]:.3f},{outer[1]:.3f}]")
                continue
            stack.append((start, end, name))

    if args.min_cats and len(cats) < args.min_cats:
        errors.append(f"only {len(cats)} categories {sorted(cats)}, need >= {args.min_cats}")

    if errors:
        for e in errors[:50]:
            print(f"check_trace FAIL: {e}")
        if len(errors) > 50:
            print(f"check_trace: ... and {len(errors) - 50} more")
        return 1

    threads = len(spans_by_tid)
    print(f"check_trace OK: {n_complete} spans, {threads} thread(s), "
          f"categories {sorted(cats)}, {len(thread_names)} named thread(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
