// serve_load — closed-loop load bench for the ebct_serve daemon core:
// mixed codec specs, fixed client concurrency, encode+decode round trips
// against an in-process Server. Reports req/s and p50/p99 request latency
// per spec and overall to BENCH_serve_load.json (JsonReporter), the rows
// docs/BENCH_SCHEMA.md documents.
//
// --smoke: reduced request count plus hard invariant checks (every streamed
// response bitwise-identical to the one-shot reference, zero rejects/errors,
// no leaked spill files) — exits non-zero on any violation, so CI gets a
// pass/fail signal without wall-clock thresholds. EBCT_SERVE_LOAD_REQS
// overrides the per-client request count in either mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/codec_registry.hpp"
#include "memory/spill_file.hpp"
#include "nn/streaming.hpp"
#include "obs/metrics.hpp"
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace ebct;

constexpr std::size_t kWindow = 16 * 1024;
constexpr std::size_t kPayloadFloats = 96 * 1024;  // ~384 KiB raw per request
constexpr int kClients = 4;

const std::vector<std::string>& specs() {
  static const std::vector<std::string> s = {"sz:eb=1e-3", "lossless", "none"};
  return s;
}

std::vector<std::uint8_t> payload_bytes(std::uint64_t seed) {
  // Relu-like mix (~35% exact zeros over a normal tail) — the activation
  // distribution the codecs are tuned for.
  std::vector<float> v(kPayloadFloats);
  tensor::Rng rng(seed);
  rng.fill_normal({v.data(), v.size()}, 0.0f, 1.0f);
  for (auto& f : v)
    if (rng.uniform_index(100) < 35) f = 0.0f;
  std::vector<std::uint8_t> b(v.size() * sizeof(float));
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

double percentile_ms(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted_ms.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted_ms.size())));
  return sorted_ms[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::size_t reqs_per_client = smoke ? 6 : 24;
  if (const char* v = std::getenv("EBCT_SERVE_LOAD_REQS"); v != nullptr && *v != '\0') {
    char* end = nullptr;
    reqs_per_client = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || reqs_per_client == 0) {
      std::fprintf(stderr, "serve_load: bad EBCT_SERVE_LOAD_REQS '%s'\n", v);
      return 2;
    }
  }

  serve::ServerConfig cfg;
  cfg.socket_path =
      "/tmp/ebct-load-" + std::to_string(static_cast<long>(::getpid())) + ".sock";
  cfg.window_elems = kWindow;
  serve::Server server(cfg);
  obs::ServeMetrics::instance().reset();
  server.start();

  // One payload + reference container per spec, shared by all clients: the
  // bench measures the serving path, not payload generation.
  std::vector<std::vector<std::uint8_t>> raws;
  std::vector<std::vector<std::uint8_t>> refs;
  for (std::size_t s = 0; s < specs().size(); ++s) {
    raws.push_back(payload_bytes(40 + s));
    const auto* f = reinterpret_cast<const float*>(raws.back().data());
    refs.push_back(nn::streaming_encode_all(
        core::CodecRegistry::instance().create(specs()[s]), specs()[s], f,
        kPayloadFloats, kWindow));
  }

  // Closed loop: each client alternates encode/decode over the spec mix.
  // Latencies are wall-clock per round trip, collected per (spec, op).
  std::vector<std::vector<double>> enc_ms(specs().size());
  std::vector<std::vector<double>> dec_ms(specs().size());
  std::vector<std::thread> threads;
  std::atomic<int> violations{0};
  std::mutex lat_mu;
  const auto bench_t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client(cfg.socket_path);
        const std::string tenant = "load" + std::to_string(c);
        for (std::size_t r = 0; r < reqs_per_client; ++r) {
          const std::size_t s = (static_cast<std::size_t>(c) + r) % specs().size();
          const auto t0 = std::chrono::steady_clock::now();
          const std::vector<std::uint8_t> container =
              client.encode_bytes(tenant, specs()[s], kWindow, raws[s]);
          const auto t1 = std::chrono::steady_clock::now();
          const std::vector<std::uint8_t> decoded =
              client.decode_bytes(tenant, container);
          const auto t2 = std::chrono::steady_clock::now();
          if (container != refs[s]) violations.fetch_add(1);
          {
            std::lock_guard<std::mutex> lock(lat_mu);
            enc_ms[s].push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
            dec_ms[s].push_back(std::chrono::duration<double, std::milli>(t2 - t1).count());
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_load: client %d failed: %s\n", c, e.what());
        violations.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - bench_t0).count();
  server.stop();

  const obs::ServeSnapshot snap = obs::ServeMetrics::instance().snapshot();
  const std::uint64_t total_reqs = static_cast<std::uint64_t>(kClients) *
                                   reqs_per_client * 2;  // encode + decode

  bench::JsonReporter report("serve_load");
  std::vector<double> all_ms;
  for (std::size_t s = 0; s < specs().size(); ++s) {
    for (auto* lat : {&enc_ms[s], &dec_ms[s]}) {
      std::sort(lat->begin(), lat->end());
      all_ms.insert(all_ms.end(), lat->begin(), lat->end());
    }
    report.add(specs()[s],
               {{"encode_reqs", static_cast<double>(enc_ms[s].size())},
                {"encode_p50_ms", percentile_ms(enc_ms[s], 0.50)},
                {"encode_p99_ms", percentile_ms(enc_ms[s], 0.99)},
                {"decode_p50_ms", percentile_ms(dec_ms[s], 0.50)},
                {"decode_p99_ms", percentile_ms(dec_ms[s], 0.99)}});
    std::printf("%-28s encode p50 %.2f ms p99 %.2f ms | decode p50 %.2f ms p99 %.2f ms\n",
                specs()[s].c_str(), percentile_ms(enc_ms[s], 0.50),
                percentile_ms(enc_ms[s], 0.99), percentile_ms(dec_ms[s], 0.50),
                percentile_ms(dec_ms[s], 0.99));
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double req_per_s = elapsed_s > 0 ? static_cast<double>(total_reqs) / elapsed_s : 0;
  report.add("overall", {{"concurrency", kClients},
                         {"requests", static_cast<double>(total_reqs)},
                         {"req_per_s", req_per_s},
                         {"p50_ms", percentile_ms(all_ms, 0.50)},
                         {"p99_ms", percentile_ms(all_ms, 0.99)},
                         {"serve_bytes_in", static_cast<double>(snap.bytes_in)},
                         {"serve_bytes_out", static_cast<double>(snap.bytes_out)},
                         {"serve_rejects", static_cast<double>(snap.rejects)},
                         {"serve_errors", static_cast<double>(snap.errors)},
                         {"serve_peak_sessions", static_cast<double>(snap.peak_sessions)}});
  std::printf("overall: %llu requests, %.1f req/s, p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(total_reqs), req_per_s,
              percentile_ms(all_ms, 0.50), percentile_ms(all_ms, 0.99));

  if (smoke) {
    int rc = 0;
    if (violations.load() != 0) {
      std::fprintf(stderr, "serve_load: %d bitwise/transport violations\n", violations.load());
      rc = 1;
    }
    if (snap.requests != total_reqs || snap.rejects != 0 || snap.errors != 0) {
      std::fprintf(stderr,
                   "serve_load: metrics mismatch (requests %llu want %llu, rejects %llu, "
                   "errors %llu)\n",
                   static_cast<unsigned long long>(snap.requests),
                   static_cast<unsigned long long>(total_reqs),
                   static_cast<unsigned long long>(snap.rejects),
                   static_cast<unsigned long long>(snap.errors));
      rc = 1;
    }
    if (memory::SpillFile::files_open() != 0) {
      std::fprintf(stderr, "serve_load: leaked spill files\n");
      rc = 1;
    }
    if (rc == 0) std::printf("serve_load: smoke OK\n");
    return rc;
  }
  return violations.load() == 0 ? 0 : 1;
}
