// Ablation (design choices §4.1-§4.3): (a) the active factor W — how often
// the semi-online parameters are re-collected — and (b) adaptive per-layer
// bounds vs a fixed global error bound. Both justify the framework's
// architecture: W is insensitive over a wide range (so the amortised
// collection cost is negligible), while fixed bounds either waste ratio or
// damage accuracy.

#include <cstdio>

#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

struct RunResult {
  double eval_acc;
  double ratio;
};

RunResult run_framework(std::size_t w, double fixed_eb, std::size_t iters) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 44;
  auto net = models::make_resnet18(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 128;
  dspec.test_per_class = 32;
  dspec.seed = 3000;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 16, true, true, 9);
  core::SessionConfig cfg;
  cfg.framework.codec = "sz";
  cfg.base_lr = 0.05;
  if (fixed_eb > 0.0) {
    // Disable adaptivity: never refresh, bootstrap bound = the fixed eb.
    cfg.framework.active_factor_w = iters + 1;
    cfg.framework.bootstrap_error_bound = fixed_eb;
    cfg.framework.min_error_bound = fixed_eb;
    cfg.framework.max_error_bound = fixed_eb;
  } else {
    cfg.framework.active_factor_w = w;
  }
  core::TrainingSession session(*net, loader, cfg);
  session.run(iters);
  data::DataLoader ev(ds, 16, false, false);
  RunResult r;
  r.eval_acc = session.evaluate(ev, 8);
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = iters / 2; i < iters; ++i) {
    acc += session.history()[i].mean_compression_ratio;
    ++count;
  }
  r.ratio = acc / count;
  return r;
}

}  // namespace

int main() {
  const std::size_t kIters = 120;
  std::puts("=== Ablation — active factor W (§4.1) ===\n");
  memory::Table wt({"W", "eval acc", "mean conv ratio"});
  for (const std::size_t w : {5u, 20u, 60u}) {
    const auto r = run_framework(w, 0.0, kIters);
    wt.add_row({memory::fmt("%zu", w), memory::fmt("%.3f", r.eval_acc),
                memory::fmt("%.1fx", r.ratio)});
  }
  wt.print();
  std::puts("Takeaway: accuracy and ratio are stable across W — the semi-online");
  std::puts("statistics drift slowly, so W=1000 (paper default) costs nothing.\n");

  std::puts("=== Ablation — adaptive bounds vs fixed global eb (§4.3) ===\n");
  memory::Table et({"configuration", "eval acc", "mean conv ratio"});
  {
    const auto r = run_framework(20, 0.0, kIters);
    et.add_row({"adaptive (Eq. 9)", memory::fmt("%.3f", r.eval_acc),
                memory::fmt("%.1fx", r.ratio)});
  }
  for (const double eb : {1e-5, 1e-3, 5e-1}) {
    const auto r = run_framework(0, eb, kIters);
    et.add_row({memory::fmt("fixed eb = %.0e", eb), memory::fmt("%.3f", r.eval_acc),
                memory::fmt("%.1fx", r.ratio)});
  }
  et.print();
  std::puts("Takeaway: tiny fixed bounds sacrifice compression ratio. On this");
  std::puts("easy 4-class task even a very loose bound trains (the gradient-noise");
  std::puts("damage channel is demonstrated directly in Fig. 9); the adaptive");
  std::puts("scheme's value is that it finds the ratio frontier from first");
  std::puts("principles, with a per-layer bound and no per-model tuning — the");
  std::puts("paper's core claim.");
  return 0;
}
