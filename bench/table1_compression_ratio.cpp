// Reproduces Table 1: per-network top-1 accuracy and convolutional
// activation size, baseline vs compressed, plus the comparison points the
// paper cites (lossless ~2x, JPEG-ACT ~7x).
//
// Two measurement scales are combined, as explained in DESIGN.md:
//   - activation *sizes* use the exact 224x224 layer geometry (batch 32),
//   - accuracies and compression *ratios* come from real (scaled) training
//     runs with the adaptive framework in the loop.

#include <cstdio>

#include "bench_util.hpp"
#include "core/codec_registry.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"
#include "tensor/ops.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

struct Row {
  std::string network;
  double acc_base = 0.0, acc_fw = 0.0;
  std::size_t act_bytes_224 = 0;
  double ratio_fw = 0.0, ratio_lossless = 0.0, ratio_jpegact = 0.0;
};

/// Plain-SGD networks without batch norm need a gentler rate at this scale.
double model_lr(const std::string& name) {
  return (name == "AlexNet" || name == "VGG-16") ? 0.01 : 0.05;
}

Row run_network(const std::string& name, std::size_t iters) {
  Row row;
  row.network = name;

  // --- Activation geometry at ImageNet scale (batch 32). -------------------
  {
    models::ModelConfig mcfg;
    mcfg.input_hw = 224;
    mcfg.num_classes = 1000;
    auto net = models::find_model(name)(mcfg);
    row.act_bytes_224 =
        net->conv_activation_bytes(tensor::Shape::nchw(256, 3, 224, 224));
  }

  // --- Scaled training runs: baseline vs framework. ------------------------
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 33;
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 128;
  dspec.test_per_class = 32;
  dspec.seed = 1300;
  data::SyntheticImageDataset ds(dspec);

  auto net_base = models::find_model(name)(mcfg);
  data::DataLoader la(ds, 16, true, true, 13);
  core::SessionConfig cb;
  cb.framework.codec = "none";
  cb.base_lr = model_lr(name);
  cb.lr_step = 150;
  cb.lr_gamma = 0.3;
  core::TrainingSession base(*net_base, la, cb);
  base.run(iters);
  data::DataLoader ea(ds, 16, false, false);
  row.acc_base = base.evaluate(ea, 8);

  auto net_fw = models::find_model(name)(mcfg);
  data::DataLoader lb(ds, 16, true, true, 13);
  core::SessionConfig cf;
  cf.framework.codec = "sz";
  cf.framework.active_factor_w = 20;
  cf.base_lr = model_lr(name);
  cf.lr_step = 150;
  cf.lr_gamma = 0.3;
  core::TrainingSession fw(*net_fw, lb, cf);
  fw.run(iters);
  data::DataLoader eb(ds, 16, false, false);
  row.acc_fw = fw.evaluate(eb, 8);
  row.ratio_fw = fw.history().back().mean_compression_ratio;

  // --- Comparator codecs on the framework's late-training activations. -----
  bench::CaptureStore capture;
  net_fw->set_store(&capture);
  bench::run_iteration(*net_fw, 16, 16, 4, /*seed=*/77);
  auto& registry = core::CodecRegistry::instance();
  auto lossless = registry.create("lossless");
  auto jpegact = registry.create("jpeg-act:quality=50");
  std::size_t orig = 0, lossless_bytes = 0, jpeg_bytes = 0;
  for (const auto& [layer, act] : capture.captured()) {
    orig += act.bytes();
    lossless_bytes += lossless->encode(layer, act).bytes.size();
    if (act.shape().rank() == 4) jpeg_bytes += jpegact->encode(layer, act).bytes.size();
  }
  row.ratio_lossless = orig ? static_cast<double>(orig) / lossless_bytes : 0.0;
  row.ratio_jpegact = jpeg_bytes ? static_cast<double>(orig) / jpeg_bytes : 0.0;
  return row;
}

}  // namespace

int main() {
  std::puts("=== Table 1 — accuracy and conv-activation size, baseline vs framework ===\n");
  const std::size_t kIters = 300;

  bench::JsonReporter report("table1_compression_ratio");
  memory::Table table({"network", "top-1 base", "top-1 EBCT", "delta",
                       "conv act @224/b256", "EBCT ratio", "lossless", "JPEG-ACT"});
  for (const auto& name : models::model_names()) {
    const Row r = run_network(name, kIters);
    table.add_row({r.network, memory::fmt("%.3f", r.acc_base),
                   memory::fmt("%.3f", r.acc_fw),
                   memory::fmt("%+.3f", r.acc_fw - r.acc_base),
                   memory::human_bytes(r.act_bytes_224),
                   memory::fmt("%.1fx", r.ratio_fw),
                   memory::fmt("%.1fx", r.ratio_lossless),
                   memory::fmt("%.1fx", r.ratio_jpegact)});
    report.add(r.network,
               {{"top1_baseline", r.acc_base},
                {"top1_framework", r.acc_fw},
                {"top1_delta", r.acc_fw - r.acc_base},
                {"conv_act_bytes_224_b256", static_cast<double>(r.act_bytes_224)},
                {"ratio_framework", r.ratio_fw},
                {"ratio_lossless", r.ratio_lossless},
                {"ratio_jpegact", r.ratio_jpegact}});
  }
  table.print();

  // Codec comparison at true ImageNet geometry: harvest AlexNet conv inputs
  // from a 224px forward pass and push the same tensors through all three
  // codecs. (The scaled-training comparison above uses 16px activations,
  // whose tiny DCT planes flatter JPEG-ACT.)
  std::puts("\n--- codec comparison on AlexNet conv activations @224 ---");
  {
    models::ModelConfig mcfg;
    mcfg.input_hw = 224;
    mcfg.num_classes = 1000;
    auto net = models::make_alexnet(mcfg);
    bench::CaptureStore capture;
    net->set_store(&capture);
    bench::run_iteration(*net, 1, 224, 1000, /*seed=*/501);
    // SZ at a 1%-of-range bound (typical framework operating point);
    // JPEG-ACT at quality 50. The decisive difference the paper argues is
    // error *control*: report max per-element error next to each ratio.
    auto& registry = core::CodecRegistry::instance();
    auto sz_codec = registry.create("sz:eb=1e-2,mode=rel");
    auto lossless = registry.create("lossless");
    auto jpegact = registry.create("jpeg-act:quality=50");
    std::size_t orig = 0, szb = 0, llb = 0, jab = 0;
    double sz_err = 0.0, jpeg_err = 0.0, scale = 0.0;
    for (const auto& [layer, act] : capture.captured()) {
      orig += act.bytes();
      const auto sz_enc = sz_codec->encode(layer, act);
      szb += sz_enc.bytes.size();
      const tensor::Tensor sz_rec = sz_codec->decode(sz_enc);
      sz_err = std::max(sz_err, sz::max_abs_error(act.span(), sz_rec.span()));
      llb += lossless->encode(layer, act).bytes.size();
      const auto j_enc = jpegact->encode(layer, act);
      jab += j_enc.bytes.size();
      const tensor::Tensor j_rec = jpegact->decode(j_enc);
      jpeg_err = std::max(jpeg_err, sz::max_abs_error(act.span(), j_rec.span()));
      scale = std::max(scale, static_cast<double>(tensor::max_abs(act.span())));
    }
    std::printf("SZ (rel eb 1%%): %.1fx, max err %.2e | lossless: %.1fx, exact | "
                "JPEG-ACT q50: %.1fx, max err %.2e (UNBOUNDED)\n",
                double(orig) / szb, sz_err, double(orig) / llb, double(orig) / jab,
                jpeg_err);
    std::printf("activation scale (max |x|): %.2f — SZ's error is controlled to "
                "~1%% of range, JPEG-ACT's is not.\n", scale);
    report.add("alexnet_224_codecs",
               {{"ratio_sz_rel1pct", double(orig) / szb},
                {"ratio_lossless", double(orig) / llb},
                {"ratio_jpegact_q50", double(orig) / jab},
                {"max_err_sz", sz_err},
                {"max_err_jpegact", jpeg_err},
                {"activation_scale", scale}});
  }

  // Policy codec end-to-end: the Inception stem runs uncompressed (its
  // early, large-dynamic-range activations are where an error bound buys
  // the least), and any activation under 4 KiB skips the codec entirely —
  // header + quantisation overhead on tiny tensors can exceed the payload.
  std::puts("\n--- policy codec: stem exempt + 4 KiB threshold (Inception-V4) ---");
  {
    const char* spec = "policy:min_bytes=4096,stem*=none;*=sz:eb=1e-3";
    models::ModelConfig mcfg;
    mcfg.input_hw = 16;
    mcfg.num_classes = 4;
    mcfg.width_multiplier = 0.25;
    mcfg.seed = 33;
    auto net = models::make_inception_v4(mcfg);

    // End-to-end: the spec string goes through SessionConfig exactly as a
    // user would pass it, and training proceeds with the policy in the loop.
    data::SyntheticSpec dspec;
    dspec.num_classes = 4;
    dspec.image_hw = 16;
    dspec.train_per_class = 64;
    dspec.seed = 1300;
    data::SyntheticImageDataset ds(dspec);
    data::DataLoader loader(ds, 16, true, true, 13);
    core::SessionConfig cp;
    cp.framework.codec = spec;
    cp.framework.active_factor_w = 20;
    core::TrainingSession session(*net, loader, cp);
    session.run(40);
    const double ratio_policy = session.history().back().mean_compression_ratio;

    // Routing evidence: push one iteration's activations through the same
    // policy directly and count which rule served each layer.
    bench::CaptureStore capture;
    net->set_store(&capture);
    bench::run_iteration(*net, 16, 16, 4, /*seed=*/77);
    auto policy = core::CodecRegistry::instance().create(spec);
    std::size_t n_stem = 0, n_small = 0, n_sz = 0, orig = 0, enc_bytes = 0;
    for (const auto& [layer, act] : capture.captured()) {
      const auto enc = policy->encode(layer, act);
      orig += act.bytes();
      enc_bytes += enc.bytes.size();
      const bool raw = enc.bytes.size() == act.bytes();
      if (layer.rfind("stem", 0) == 0) {
        ++n_stem;
      } else if (act.bytes() < 4096) {
        ++n_small;
      } else {
        ++n_sz;
      }
      if ((layer.rfind("stem", 0) == 0 || act.bytes() < 4096) && !raw) {
        std::printf("  WARNING: %s expected raw, got %zu -> %zu bytes\n",
                    layer.c_str(), act.bytes(), enc.bytes.size());
      }
    }
    std::printf("routing: %zu stem layers raw, %zu small (<4 KiB) raw, %zu via sz\n",
                n_stem, n_small, n_sz);
    std::printf("aggregate ratio %.1fx (one iteration), training-mean %.1fx over 40 iters\n",
                orig / static_cast<double>(enc_bytes), ratio_policy);
    report.add("inception_policy_min_bytes",
               {{"ratio_aggregate", orig / static_cast<double>(enc_bytes)},
                {"ratio_training_mean", ratio_policy},
                {"layers_stem_raw", static_cast<double>(n_stem)},
                {"layers_small_raw", static_cast<double>(n_small)},
                {"layers_sz", static_cast<double>(n_sz)}});
  }

  std::puts("\nPaper reference (ImageNet): AlexNet 13.5x, VGG-16 11.1x, ResNet-18");
  std::puts("10.7x, ResNet-50 11.0x with <=0.31% top-1 loss; lossless <=2x and");
  std::puts("JPEG-ACT ~7x. Shape check: EBCT ratio >> lossless and >= JPEG-ACT,");
  std::puts("with near-zero accuracy delta between the two training columns.");
  return 0;
}
