// Reproduces Fig. 11: raw training performance (images/s) as a function of
// the batch size N. Two layers of evidence:
//   1. measured CPU step times of ResNet-50 (scaled) across batch sizes for
//      baseline and framework — throughput rises with N in both,
//   2. the device-capacity projection at ImageNet geometry: the framework's
//      compression lets N grow ~10x on a V100-16GB, converting the freed
//      memory into throughput via batch amortisation; a 4-device
//      data-parallel projection mirrors the paper's multi-node panel.

#include <cstdio>

#include "bench_util.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

double step_seconds(core::StoreMode mode, std::size_t batch) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 5;
  auto net = models::make_resnet50(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2200;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, batch, true, true, 3);
  core::SessionConfig cfg;
  cfg.mode = mode;
  cfg.framework.active_factor_w = 50;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);  // warm-up + first adaptive refresh
  return bench::time_median([&] { session.run(3); }) / 3.0;
}

}  // namespace

int main() {
  std::puts("=== Fig. 11 — training throughput vs batch size (ResNet-50) ===\n");

  std::puts("--- measured (CPU substrate, scaled model) ---");
  memory::Table meas({"batch N", "baseline img/s", "framework img/s",
                      "framework overhead"});
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    // Alternate the measurement order and keep the best of two rounds per
    // configuration: heap/page warm-up otherwise biases whichever store is
    // measured first, which at small batches can exceed the real overhead.
    double tb = step_seconds(core::StoreMode::kBaseline, n);
    double tf = step_seconds(core::StoreMode::kFramework, n);
    tf = std::min(tf, step_seconds(core::StoreMode::kFramework, n));
    tb = std::min(tb, step_seconds(core::StoreMode::kBaseline, n));
    meas.add_row({memory::fmt("%zu", n), memory::fmt("%.1f", n / tb),
                  memory::fmt("%.1f", n / tf), memory::fmt("%.0f%%", 100.0 * (tf - tb) / tb)});
  }
  meas.print();

  std::puts("\n--- projected on V100-16GB at ImageNet geometry ---");
  models::ModelConfig mcfg;
  mcfg.input_hw = 224;
  mcfg.num_classes = 1000;
  auto net224 = models::make_resnet50(mcfg);
  const auto dev = memory::DeviceModel::v100_16gb();
  const double framework_ratio = 11.0;  // paper's measured ResNet-50 ratio
  const std::size_t n_base = memory::max_batch(*net224, 224, dev, 1.0);
  const std::size_t n_fw = memory::max_batch(*net224, 224, dev, framework_ratio);

  // Batch-amortisation model: step(N) = fixed + per_image*N. The fixed part
  // (kernel launch, optimizer, allreduce) is ~15% of a batch-32 step.
  const double per_image = 1.0, fixed = 0.15 * 32.0;
  auto imgs_per_s = [&](std::size_t n, double overhead) {
    return static_cast<double>(n) / ((fixed + per_image * n) * (1.0 + overhead));
  };
  memory::Table proj({"configuration", "max batch", "rel. throughput (1 dev)",
                      "rel. throughput (4 dev)"});
  const double base_tp = imgs_per_s(n_base, 0.0);
  proj.add_row({"baseline", memory::fmt("%zu", n_base), "1.00x", "3.80x"});
  proj.add_row({"EBCT @ 17% overhead, larger batch", memory::fmt("%zu", n_fw),
                memory::fmt("%.2fx", imgs_per_s(n_fw, 0.17) / base_tp),
                memory::fmt("%.2fx", 3.80 * imgs_per_s(n_fw, 0.17) / base_tp)});
  proj.print();

  std::puts("\nShape check vs paper: throughput increases monotonically with N for");
  std::puts("both configurations; the framework's freed memory admits a much");
  std::puts("larger batch, recovering its compression overhead (paper: up to");
  std::puts("1.27x raw-performance improvement).");
  return 0;
}
