// Reproduces Fig. 11: raw training performance (images/s) as a function of
// the batch size N. Three layers of evidence:
//   1. the SZ hot path itself: compression/decompression throughput of the
//      serial reference vs the block-parallel path across thread counts,
//      and the async double-buffered store vs the synchronous one,
//   2. measured CPU step times of ResNet-50 (scaled) across batch sizes for
//      baseline and framework — throughput rises with N in both,
//   3. the device-capacity projection at ImageNet geometry: the framework's
//      compression lets N grow ~10x on a V100-16GB, converting the freed
//      memory into throughput via batch amortisation; a 4-device
//      data-parallel projection mirrors the paper's multi-node panel.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"
#include "sz/compressor.hpp"
#include "tensor/parallel.hpp"
#include "tensor/sched.hpp"
#include "tensor/rng.hpp"

using namespace ebct;

namespace {

double step_seconds(const std::string& codec, std::size_t batch, bool async = false) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 5;
  auto net = models::make_resnet50(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2200;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, batch, true, true, 3);
  core::SessionConfig cfg;
  cfg.framework.codec = codec;
  cfg.framework.active_factor_w = 50;
  cfg.framework.async_compression = async;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);  // warm-up + first adaptive refresh
  return bench::time_median([&] { session.run(3); }) / 3.0;
}

/// Compress+decompress seconds over `data` with the given worker count.
std::pair<double, double> codec_seconds(const std::vector<float>& data,
                                        std::uint32_t threads) {
  sz::Config cfg;
  cfg.error_bound = 1e-3;
  cfg.num_threads = threads;
  sz::Compressor comp(cfg);
  sz::CompressedBuffer buf;
  const double tc = bench::time_median(
      [&] { buf = comp.compress({data.data(), data.size()}); });
  std::vector<float> out(data.size());
  const double td = bench::time_median(
      [&] { comp.decompress(buf, {out.data(), out.size()}); });
  return {tc, td};
}

void compressor_throughput_section() {
  std::puts("--- SZ hot path: serial vs block-parallel (16M floats, eb 1e-3) ---");
  const std::size_t n = 16u << 20;
  std::vector<float> data(n);
  tensor::Rng rng(9100);
  rng.fill_relu_like({data.data(), n}, 0.5, 1.0f);
  const double mb = static_cast<double>(n * sizeof(float)) / (1024.0 * 1024.0);

  const auto [ser_c, ser_d] = codec_seconds(data, 1);
  memory::Table t({"threads", "compress MB/s", "decompress MB/s",
                   "compress speedup", "decompress speedup"});
  const int hw = tensor::hardware_threads();
  for (std::uint32_t threads : {1, 2, 4, 8}) {
    if (threads > static_cast<std::uint32_t>(hw) && threads != 1) {
      // Oversubscribed settings measure scheduler noise, not scaling.
      continue;
    }
    // The serial row reuses the baseline measurement: re-timing it would
    // cost another full pass and let noise print a not-quite-1.00x.
    const auto [tc, td] = threads == 1 ? std::pair{ser_c, ser_d}
                                       : codec_seconds(data, threads);
    t.add_row({memory::fmt("%u", threads), memory::fmt("%.0f", mb / tc),
               memory::fmt("%.0f", mb / td), memory::fmt("%.2fx", ser_c / tc),
               memory::fmt("%.2fx", ser_d / td)});
  }
  t.print();
  std::printf("(hardware threads available: %d; the paper's ≥2x target needs 4+)\n\n", hw);
}

struct ExecRun {
  double sec = 0.0;
  std::size_t max_dispatch = 0;
  std::size_t peak_resident = 0;
  bool executor_active = false;
  /// Consolidated TrainingSession::metrics() snapshot (JsonReporter-shaped).
  std::vector<std::pair<std::string, double>> metrics;
};

/// One Inception training step (scaled geometry) under the given executor /
/// write-behind / budget setting. Inception is the branchy model: its block
/// towers are the independent work the graph scheduler exists to overlap.
ExecRun inception_step(bool exec, bool write_behind, std::size_t budget) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 5;
  auto net = models::make_inception_v4(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2200;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 8, true, true, 3);
  core::SessionConfig cfg;
  cfg.framework.active_factor_w = 50;
  cfg.framework.graph_exec = exec;
  cfg.framework.write_behind = write_behind;
  cfg.framework.memory_budget_bytes = budget;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);  // warm-up + first adaptive refresh
  ExecRun r;
  r.sec = bench::time_median([&] { session.run(3); }) / 3.0;
  r.peak_resident = session.paged_store()->pager().counters().peak_resident_bytes;
  if (session.executor() != nullptr) {
    r.executor_active = true;
    r.max_dispatch = session.executor()->max_parallel_dispatch();
  }
  r.metrics = session.metrics();
  return r;
}

/// Sequential vs graph-scheduled execution on Inception-V4, each with and
/// without the write-behind spill queue, under a budget tight enough (~40%
/// of unbudgeted peak) that spill I/O is on the critical path. The win is
/// gated structurally — parallel branch dispatch must actually have
/// happened — rather than on wall-clock, which shared runners cannot
/// measure reliably; the measured ratio is recorded alongside.
int executor_ab_section(bench::JsonReporter& report) {
  std::puts("--- graph-scheduled executor A/B (Inception-V4 scaled, batch 8) ---");
  // Branch overlap needs somewhere to run: guarantee at least two workers
  // even on a single-core runner (the contract is determinism, not speed).
  tensor::sched::set_num_threads(std::max(2, tensor::hardware_threads()));
  const std::size_t peak = inception_step(false, false, 0).peak_resident;
  const std::size_t budget = peak * 2 / 5;
  std::printf("(memory budget %zu KiB = 40%% of unbudgeted peak)\n", budget >> 10);

  memory::Table t({"execution", "spill", "step ms", "vs sequential", "max dispatch"});
  const ExecRun seq = inception_step(false, false, budget);
  int failures = 0;
  for (const bool exec : {false, true}) {
    for (const bool wb : {false, true}) {
      const ExecRun r =
          (!exec && !wb) ? seq : inception_step(exec, wb, budget);
      const std::string name = std::string(exec ? "graph-scheduled" : "sequential") +
                               (wb ? "+write-behind" : "");
      t.add_row({exec ? "graph-scheduled" : "sequential",
                 wb ? "write-behind" : "synchronous",
                 memory::fmt("%.1f", r.sec * 1e3),
                 memory::fmt("%.2fx", seq.sec / r.sec),
                 exec ? memory::fmt("%zu", r.max_dispatch) : std::string("--")});
      report.add("exec_ab_" + std::string(exec ? "graph" : "seq") +
                     (wb ? "_wb" : "_sync"),
                 {{"step_seconds", r.sec},
                  {"speedup_vs_sequential", seq.sec / r.sec},
                  {"max_parallel_dispatch", static_cast<double>(r.max_dispatch)},
                  {"peak_resident_bytes", static_cast<double>(r.peak_resident)}});
      // The fully-featured point's consolidated runtime snapshot (per-phase
      // timings + pager/scheduler/executor counters) as one row.
      if (exec && wb) report.add("exec_ab_graph_wb_session_metrics", r.metrics);
      if (exec && !r.executor_active) {
        std::fprintf(stderr, "fig11 FAIL: graph executor did not engage\n");
        ++failures;
      }
      if (exec && r.max_dispatch < 2) {
        std::fprintf(stderr,
                     "fig11 FAIL: no parallel branch dispatch observed "
                     "(max_dispatch=%zu)\n",
                     r.max_dispatch);
        ++failures;
      }
      if (r.peak_resident > budget) {
        std::fprintf(stderr, "fig11 FAIL: %s exceeded the RAM budget\n", name.c_str());
        ++failures;
      }
    }
  }
  t.print();
  std::puts("(the structural gate is dispatch-based: shared runners are too noisy");
  std::puts(" for a wall-clock threshold, so the ratio is recorded, not asserted)\n");
  return failures;
}

void async_store_section() {
  std::puts("--- activation store pipelining (ResNet-50 scaled, batch 16) ---");
  const double sync_s = step_seconds("sz", 16, false);
  const double async_s = step_seconds("sz", 16, true);
  const double base_s = step_seconds("none", 16, false);
  memory::Table t({"store", "step ms", "overhead vs raw"});
  t.add_row({"raw baseline", memory::fmt("%.1f", base_s * 1e3), "--"});
  t.add_row({"framework sync", memory::fmt("%.1f", sync_s * 1e3),
             memory::fmt("%.0f%%", 100.0 * (sync_s - base_s) / base_s)});
  t.add_row({"framework async (double-buffered)", memory::fmt("%.1f", async_s * 1e3),
             memory::fmt("%.0f%%", 100.0 * (async_s - base_s) / base_s)});
  t.print();
  std::puts("");
}

}  // namespace

int main() {
  std::puts("=== Fig. 11 — training throughput vs batch size (ResNet-50) ===\n");

  bench::JsonReporter report("fig11_throughput");
  compressor_throughput_section();
  async_store_section();
  const int exec_failures = executor_ab_section(report);

  std::puts("--- measured (CPU substrate, scaled model) ---");
  memory::Table meas({"batch N", "baseline img/s", "framework img/s",
                      "framework overhead"});
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    // Alternate the measurement order and keep the best of two rounds per
    // configuration: heap/page warm-up otherwise biases whichever store is
    // measured first, which at small batches can exceed the real overhead.
    double tb = step_seconds("none", n);
    double tf = step_seconds("sz", n);
    tf = std::min(tf, step_seconds("sz", n));
    tb = std::min(tb, step_seconds("none", n));
    meas.add_row({memory::fmt("%zu", n), memory::fmt("%.1f", n / tb),
                  memory::fmt("%.1f", n / tf), memory::fmt("%.0f%%", 100.0 * (tf - tb) / tb)});
    report.add("step_batch_" + std::to_string(n),
               {{"baseline_img_per_s", n / tb},
                {"framework_img_per_s", n / tf},
                {"overhead_frac", (tf - tb) / tb}});
  }
  meas.print();

  std::puts("\n--- projected on V100-16GB at ImageNet geometry ---");
  models::ModelConfig mcfg;
  mcfg.input_hw = 224;
  mcfg.num_classes = 1000;
  auto net224 = models::make_resnet50(mcfg);
  const auto dev = memory::DeviceModel::v100_16gb();
  const double framework_ratio = 11.0;  // paper's measured ResNet-50 ratio
  const std::size_t n_base = memory::max_batch(*net224, 224, dev, 1.0);
  const std::size_t n_fw = memory::max_batch(*net224, 224, dev, framework_ratio);

  // Batch-amortisation model: step(N) = fixed + per_image*N. The fixed part
  // (kernel launch, optimizer, allreduce) is ~15% of a batch-32 step.
  const double per_image = 1.0, fixed = 0.15 * 32.0;
  auto imgs_per_s = [&](std::size_t n, double overhead) {
    return static_cast<double>(n) / ((fixed + per_image * n) * (1.0 + overhead));
  };
  memory::Table proj({"configuration", "max batch", "rel. throughput (1 dev)",
                      "rel. throughput (4 dev)"});
  const double base_tp = imgs_per_s(n_base, 0.0);
  proj.add_row({"baseline", memory::fmt("%zu", n_base), "1.00x", "3.80x"});
  proj.add_row({"EBCT @ 17% overhead, larger batch", memory::fmt("%zu", n_fw),
                memory::fmt("%.2fx", imgs_per_s(n_fw, 0.17) / base_tp),
                memory::fmt("%.2fx", 3.80 * imgs_per_s(n_fw, 0.17) / base_tp)});
  proj.print();

  std::puts("\nShape check vs paper: throughput increases monotonically with N for");
  std::puts("both configurations; the framework's freed memory admits a much");
  std::puts("larger batch, recovering its compression overhead (paper: up to");
  std::puts("1.27x raw-performance improvement).");
  return exec_failures == 0 ? 0 : 1;
}
