// Reproduces Fig. 2: memory consumption (weights vs activations) of the
// four evaluated CNNs at ImageNet geometry (224x224, batch 32), plus the
// published top-1 accuracies for context. Shows the paper's motivating
// observation: activations, not weights, dominate training memory.

#include <cstdio>

#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

int main() {
  std::puts("=== Fig. 2 — memory consumption of state-of-the-art CNNs ===");
  std::puts("Input 3x224x224, batch 32. Weights/activations from exact layer");
  std::puts("geometry; top-1 accuracy column quotes the paper's reference values.\n");

  // Reference top-1 accuracies quoted in the paper (§2.1, Table 1) and the
  // published Inception-V4 number (its §1 motivating example).
  const std::map<std::string, double> paper_top1 = {
      {"AlexNet", 57.41},   {"VGG-16", 68.05},      {"ResNet-18", 67.57},
      {"ResNet-50", 71.49}, {"Inception-V4", 80.00}};

  memory::Table table({"network", "params", "weights", "optimizer state",
                       "conv activations (batch 32)", "act/weight ratio",
                       "paper top-1 %"});

  auto names = models::model_names();
  names.push_back("Inception-V4");  // §1: ">40 GB at batch 32" at 299 px
  for (const auto& name : names) {
    const std::size_t hw = name == "Inception-V4" ? 299 : 224;
    models::ModelConfig cfg;
    cfg.input_hw = hw;
    cfg.num_classes = 1000;
    auto net = models::find_model(name)(cfg);
    const auto b = memory::analyze(*net, hw, 32);
    const double ratio = static_cast<double>(b.stashed_activation_bytes) /
                         static_cast<double>(b.weight_bytes);
    table.add_row({name, memory::fmt("%.1fM", net->num_parameters() / 1e6),
                   memory::human_bytes(b.weight_bytes),
                   memory::human_bytes(b.optimizer_state_bytes),
                   memory::human_bytes(b.stashed_activation_bytes),
                   memory::fmt("%.1fx", ratio),
                   memory::fmt("%.2f", paper_top1.at(name))});
  }
  table.print();

  std::puts("\nShape check vs paper: activation data dwarfs the model size for the");
  std::puts("conv-heavy networks (paper Fig. 2), which is why compressing");
  std::puts("activations — not weights — unlocks batch-size headroom.");
  return 0;
}
