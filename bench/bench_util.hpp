#pragma once

/// \file bench_util.hpp
/// Shared machinery for the figure/table reproduction benches: an
/// activation-capturing store (to harvest real conv-layer inputs from a
/// forward pass), a realistic-loss backward driver, and small timing
/// helpers. Every bench prints deterministic rows given fixed seeds.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "nn/activation_store.hpp"
#include "nn/network.hpp"
#include "nn/softmax_xent.hpp"
#include "tensor/rng.hpp"

namespace ebct::bench {

/// RawStore that also exposes (a copy of) each stashed conv input, keyed by
/// layer name — used to harvest realistic activation tensors at full
/// ImageNet geometry without training.
class CaptureStore : public nn::ActivationStore {
 public:
  nn::StashHandle stash(const std::string& layer, tensor::Tensor&& act) override {
    captured_[layer] = act.clone();
    return inner_.stash(layer, std::move(act));
  }
  tensor::Tensor retrieve(nn::StashHandle handle) override { return inner_.retrieve(handle); }
  std::size_t held_bytes() const override { return inner_.held_bytes(); }

  std::map<std::string, tensor::Tensor>& captured() { return captured_; }

 private:
  nn::RawStore inner_;
  std::map<std::string, tensor::Tensor> captured_;
};

/// Run one forward + backward over random input with a synthetic
/// classification loss, so conv layers carry realistic L̄ / R statistics.
/// Returns the logits loss.
inline double run_iteration(nn::Network& net, std::size_t batch, std::size_t hw,
                            std::size_t classes, std::uint64_t seed) {
  tensor::Rng rng(seed);
  tensor::Tensor x(tensor::Shape::nchw(batch, 3, hw, hw));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  std::vector<std::int32_t> labels(batch);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(classes));
  tensor::Tensor logits = net.forward(x, true);
  nn::SoftmaxCrossEntropy head;
  const auto r = head.compute(logits, labels);
  net.backward(r.grad_logits);
  return r.loss;
}

/// Wall-clock seconds of `fn`.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Median of `runs` timings of `fn` (first call discarded as warm-up).
inline double time_median(const std::function<void()>& fn, int runs = 3) {
  fn();
  std::vector<double> ts;
  for (int i = 0; i < runs; ++i) ts.push_back(time_seconds(fn));
  std::sort(ts.begin(), ts.end());
  return ts[ts.size() / 2];
}

/// Machine-readable results sink: rows accumulate as {name, metric: value}
/// and flush to `BENCH_<bench>.json` on destruction, so CI can diff
/// throughput numbers across commits without scraping stdout. The output
/// directory defaults to the working directory and can be redirected with
/// EBCT_BENCH_DIR. Numbers are emitted with enough precision to round-trip.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name) : bench_(std::move(bench_name)) {}

  ~JsonReporter() {
    if (rows_.empty()) return;
    std::string dir = ".";
    if (const char* env = std::getenv("EBCT_BENCH_DIR")) dir = env;
    std::ofstream out(dir + "/BENCH_" + bench_ + ".json");
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "    {\"name\": \"" << rows_[r].first << "\"";
      for (const auto& [metric, value] : rows_[r].second) {
        std::ostringstream num;
        num.precision(17);
        num << value;
        out << ", \"" << metric << "\": " << num.str();
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

  /// Record one named row of metric -> value pairs (insertion-ordered).
  void add(const std::string& name,
           std::vector<std::pair<std::string, double>> metrics) {
    rows_.emplace_back(name, std::move(metrics));
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>> rows_;
};

}  // namespace ebct::bench
