#pragma once

/// \file bench_util.hpp
/// Shared machinery for the figure/table reproduction benches: an
/// activation-capturing store (to harvest real conv-layer inputs from a
/// forward pass), a realistic-loss backward driver, and small timing
/// helpers. Every bench prints deterministic rows given fixed seeds.

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "nn/activation_store.hpp"
#include "nn/network.hpp"
#include "nn/softmax_xent.hpp"
#include "tensor/rng.hpp"

namespace ebct::bench {

/// RawStore that also exposes (a copy of) each stashed conv input, keyed by
/// layer name — used to harvest realistic activation tensors at full
/// ImageNet geometry without training.
class CaptureStore : public nn::ActivationStore {
 public:
  nn::StashHandle stash(const std::string& layer, tensor::Tensor&& act) override {
    captured_[layer] = act.clone();
    return inner_.stash(layer, std::move(act));
  }
  tensor::Tensor retrieve(nn::StashHandle handle) override { return inner_.retrieve(handle); }
  std::size_t held_bytes() const override { return inner_.held_bytes(); }

  std::map<std::string, tensor::Tensor>& captured() { return captured_; }

 private:
  nn::RawStore inner_;
  std::map<std::string, tensor::Tensor> captured_;
};

/// Run one forward + backward over random input with a synthetic
/// classification loss, so conv layers carry realistic L̄ / R statistics.
/// Returns the logits loss.
inline double run_iteration(nn::Network& net, std::size_t batch, std::size_t hw,
                            std::size_t classes, std::uint64_t seed) {
  tensor::Rng rng(seed);
  tensor::Tensor x(tensor::Shape::nchw(batch, 3, hw, hw));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  std::vector<std::int32_t> labels(batch);
  for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(classes));
  tensor::Tensor logits = net.forward(x, true);
  nn::SoftmaxCrossEntropy head;
  const auto r = head.compute(logits, labels);
  net.backward(r.grad_logits);
  return r.loss;
}

/// Wall-clock seconds of `fn`.
inline double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Median of `runs` timings of `fn` (first call discarded as warm-up).
inline double time_median(const std::function<void()>& fn, int runs = 3) {
  fn();
  std::vector<double> ts;
  for (int i = 0; i < runs; ++i) ts.push_back(time_seconds(fn));
  std::sort(ts.begin(), ts.end());
  return ts[ts.size() / 2];
}

}  // namespace ebct::bench
