// Ablation (design choice §4.4): the three zero-handling modes of the SZ
// compressor on sparse activation data — stock behaviour (zeros perturbed),
// the paper's re-zero decompression filter, and our exact-RLE extension.
// Reports compression ratio, zero preservation and the induced gradient
// error, connecting the Fig. 6a/6b observation to the compressor knob.

#include <cstdio>

#include "memory/report.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"
#include "stats/distribution.hpp"
#include "tensor/rng.hpp"
#include "util_fig6.hpp"

using namespace ebct;

int main() {
  std::puts("=== Ablation — zero handling in the compressor (§4.4) ===\n");

  tensor::Rng rng(3100);
  std::vector<float> act(1 << 20);
  rng.fill_relu_like({act.data(), act.size()}, 0.6, 1.0f);
  const double eb = 1e-3;

  memory::Table table({"zero mode", "ratio", "zeros preserved", "max |err|"});
  for (const auto& [mode, name] :
       {std::pair{sz::ZeroMode::kNone, "none (stock SZ)"},
        std::pair{sz::ZeroMode::kRezero, "re-zero filter (paper)"},
        std::pair{sz::ZeroMode::kExactRle, "exact zero RLE (ours)"}}) {
    sz::Config cfg;
    cfg.error_bound = eb;
    cfg.zero_mode = mode;
    sz::Compressor comp(cfg);
    const auto buf = comp.compress({act.data(), act.size()});
    const auto recon = comp.decompress(buf);
    std::size_t zeros = 0, preserved = 0;
    for (std::size_t i = 0; i < act.size(); ++i) {
      if (act[i] == 0.0f) {
        ++zeros;
        if (recon[i] == 0.0f) ++preserved;
      }
    }
    table.add_row({name, memory::fmt("%.2fx", buf.compression_ratio()),
                   memory::fmt("%.1f%%", 100.0 * preserved / zeros),
                   memory::fmt("%.2e", sz::max_abs_error({act.data(), act.size()},
                                                         {recon.data(), recon.size()}))});
  }
  table.print();

  // Gradient-level consequence (ties to Fig. 6): preserved zeros shrink the
  // gradient-error sigma by sqrt(R).
  const auto& layer = bench::fig6_layers()[0];
  const auto e_pert = bench::collect_gradient_errors(layer, 1e-2, 0.6, 16, false, 25);
  const auto e_kept = bench::collect_gradient_errors(layer, 1e-2, 0.6, 16, true, 25);
  std::printf("\ngradient-error sigma: zeros perturbed %.3e | zeros preserved %.3e"
              " (ratio %.2f, sqrt(R) = %.2f)\n",
              stats::diagnose({e_pert.data(), e_pert.size()}).stddev,
              stats::diagnose({e_kept.data(), e_kept.size()}).stddev,
              stats::diagnose({e_kept.data(), e_kept.size()}).stddev /
                  stats::diagnose({e_pert.data(), e_pert.size()}).stddev,
              std::sqrt(0.4));

  std::puts("\nTakeaway: the re-zero filter costs nothing in ratio and restores all");
  std::puts("zeros; exact RLE additionally keeps the strict eb bound and improves");
  std::puts("the ratio on sparse activations.");
  return 0;
}
