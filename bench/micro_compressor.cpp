// google-benchmark microbenchmarks of the compression stack: SZ compress /
// decompress across error bounds and sparsities, the lossless and JPEG-ACT
// comparators, and the Huffman coder. Throughput (bytes/s) is the figure of
// merit — it bounds the framework's per-iteration overhead (§5.4).

#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/jpegact.hpp"
#include "baselines/lossless.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace ebct;

std::vector<float> activation_data(std::size_t n, double sparsity) {
  std::vector<float> v(n);
  tensor::Rng rng(4000);
  rng.fill_relu_like({v.data(), n}, sparsity, 1.0f);
  return v;
}

void BM_SzCompress(benchmark::State& state) {
  const auto data = activation_data(1 << 20, 0.5);
  sz::Config cfg;
  cfg.error_bound = std::pow(10.0, -static_cast<double>(state.range(0)));
  sz::Compressor comp(cfg);
  double ratio = 0.0;
  for (auto _ : state) {
    auto buf = comp.compress({data.data(), data.size()});
    ratio = buf.compression_ratio();
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(float)));
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_SzCompress)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SzDecompress(benchmark::State& state) {
  const auto data = activation_data(1 << 20, 0.5);
  sz::Config cfg;
  cfg.error_bound = 1e-3;
  sz::Compressor comp(cfg);
  const auto buf = comp.compress({data.data(), data.size()});
  std::vector<float> out(data.size());
  for (auto _ : state) {
    comp.decompress(buf, {out.data(), out.size()});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(float)));
}
BENCHMARK(BM_SzDecompress)->Unit(benchmark::kMillisecond);

void BM_SzCompressSparsity(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  const auto data = activation_data(1 << 20, sparsity);
  sz::Config cfg;
  cfg.error_bound = 1e-3;
  cfg.zero_mode = sz::ZeroMode::kExactRle;
  sz::Compressor comp(cfg);
  double ratio = 0.0;
  for (auto _ : state) {
    auto buf = comp.compress({data.data(), data.size()});
    ratio = buf.compression_ratio();
    benchmark::DoNotOptimize(buf);
  }
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_SzCompressSparsity)->Arg(0)->Arg(50)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_LosslessEncode(benchmark::State& state) {
  tensor::Tensor t(tensor::Shape::nchw(4, 16, 64, 64));
  tensor::Rng rng(4100);
  rng.fill_relu_like(t.span(), 0.5, 1.0f);
  baselines::LosslessCodec codec;
  double ratio = 0.0;
  for (auto _ : state) {
    auto enc = codec.encode("bench", t);
    ratio = static_cast<double>(t.bytes()) / enc.bytes.size();
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.bytes()));
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_LosslessEncode)->Unit(benchmark::kMillisecond);

void BM_JpegActEncode(benchmark::State& state) {
  tensor::Tensor t(tensor::Shape::nchw(4, 16, 64, 64));
  tensor::Rng rng(4200);
  rng.fill_relu_like(t.span(), 0.5, 1.0f);
  baselines::JpegActCodec codec(50);
  double ratio = 0.0;
  for (auto _ : state) {
    auto enc = codec.encode("bench", t);
    ratio = static_cast<double>(t.bytes()) / enc.bytes.size();
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.bytes()));
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_JpegActEncode)->Unit(benchmark::kMillisecond);

void BM_HuffmanEncode(benchmark::State& state) {
  tensor::Rng rng(4300);
  std::vector<std::uint32_t> symbols(1 << 20);
  // Quantization-code-like distribution: geometric around the centre.
  for (auto& s : symbols) {
    const double u = rng.uniform();
    s = 32768u + static_cast<std::uint32_t>(std::lround(std::log(1.0 - u) * -3.0)) %
                     64u;
  }
  std::vector<std::uint64_t> freqs(65536, 0);
  for (auto s : symbols) ++freqs[s];
  sz::HuffmanCodec codec;
  codec.build(freqs);
  for (auto _ : state) {
    auto enc = codec.encode(symbols);
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbols.size()));
}
BENCHMARK(BM_HuffmanEncode)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
