// Ablation (future work, §6 + the 1x1-kernel caveat of §5.4): the hybrid
// activation store that integrates the orthogonal memory strategies into the
// framework — small activations stay raw (compression overhead would exceed
// the saving, the paper's 1x1-kernel caveat), the bulk is SZ-compressed, and
// oversized tensors are migrated to the host. Compares device-resident bytes
// and step time across pure-raw / pure-compress / hybrid configurations.

#include <cstdio>

#include "bench_util.hpp"
#include "core/codec_registry.hpp"
#include "core/hybrid_store.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

struct HybridOutcome {
  double step_seconds = 0.0;
  std::size_t peak_device_bytes = 0;
  std::size_t peak_host_bytes = 0;
  double migration_seconds = 0.0;
};

HybridOutcome run_with_policy(std::size_t raw_below, std::size_t migrate_above) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 77;
  auto net = models::make_resnet50(mcfg);

  auto codec = core::CodecRegistry::instance().create("sz:eb=1e-3");
  auto policy = std::make_shared<core::SizeThresholdPolicy>(raw_below, migrate_above);
  core::HybridStore store(codec, policy);
  net->set_store(&store);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 16, true, true, 6);
  core::SessionConfig cfg;
  cfg.framework.codec = "custom";
  core::TrainingSession session(*net, loader, cfg);
  session.set_custom_store(&store);

  session.run(2);  // warm-up
  HybridOutcome out;
  out.step_seconds = bench::time_median([&] { session.run(2); }) / 2.0;
  for (const auto& rec : session.history()) {
    out.peak_device_bytes = std::max(out.peak_device_bytes, rec.store_held_bytes);
  }
  out.peak_host_bytes = store.host_bytes();
  out.migration_seconds = store.migration().seconds(baselines::MigrationModel::pcie3());
  return out;
}

}  // namespace

int main() {
  std::puts("=== Ablation — hybrid store: compress + migrate + raw (§6 future work) ===");
  std::puts("ResNet-50 (scaled). Policies vary the raw-below / migrate-above");
  std::puts("thresholds of the per-layer router.\n");

  struct PolicyCase {
    const char* name;
    std::size_t raw_below, migrate_above;
  };
  const PolicyCase cases[] = {
      {"all raw (baseline)", static_cast<std::size_t>(-1), static_cast<std::size_t>(-1)},
      {"all compress (framework)", 0, static_cast<std::size_t>(-1)},
      {"hybrid: raw<192KB, compress rest", 192 * 1024, static_cast<std::size_t>(-1)},
      {"hybrid + migrate >512KB", 192 * 1024, 512 * 1024},
  };

  bench::JsonReporter report("ablation_hybrid");
  memory::Table table({"policy", "s/iter", "peak device stash", "cum. migration cost"});
  double raw_time = 0.0;
  for (const auto& c : cases) {
    const auto r = run_with_policy(c.raw_below, c.migrate_above);
    if (raw_time == 0.0) raw_time = r.step_seconds;
    table.add_row({c.name, memory::fmt("%.3f (%+.0f%%)", r.step_seconds,
                                       100.0 * (r.step_seconds - raw_time) / raw_time),
                   memory::human_bytes(r.peak_device_bytes),
                   memory::fmt("%.1f ms", 1e3 * r.migration_seconds)});
    report.add(c.name,
               {{"step_seconds", r.step_seconds},
                {"peak_device_bytes", static_cast<double>(r.peak_device_bytes)},
                {"peak_host_bytes", static_cast<double>(r.peak_host_bytes)},
                {"migration_seconds", r.migration_seconds}});
  }
  table.print();

  std::puts("\nTakeaway: the raw exemption implements the paper's 1x1-kernel");
  std::puts("caveat — at production scale (large spatial maps feeding cheap 1x1");
  std::puts("kernels) it trims the compression overhead; at this reduced scale the");
  std::puts("compressor cost is bandwidth-proportional so the effect is small but");
  std::puts("memory-neutral. Migration composes with compression for further");
  std::puts("device-memory reduction at a bandwidth-bound price — the §6");
  std::puts("integration, working end to end.");
  return 0;
}
