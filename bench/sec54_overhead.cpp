// Reproduces §5.4's performance analysis: the framework's per-iteration
// overhead at equal batch size, the recovery from growing the batch into
// the freed memory, and the comparison against the migration baseline
// (Layrub: 2.4x memory reduction at 24.1% overhead, per the paper).

#include <cstdio>

#include "baselines/strategies.hpp"
#include "bench_util.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

struct StepStats {
  double seconds = 0.0;
  double ratio = 0.0;
};

StepStats measure(const std::string& codec, std::size_t batch, const std::string& model) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 6;
  auto net = models::find_model(model)(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2300;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, batch, true, true, 4);
  core::SessionConfig cfg;
  cfg.framework.codec = codec;
  cfg.framework.active_factor_w = 50;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);
  StepStats s;
  s.seconds = bench::time_median([&] { session.run(3); }) / 3.0;
  s.ratio = session.history().back().mean_compression_ratio;
  return s;
}

}  // namespace

int main() {
  std::puts("=== §5.4 — framework overhead and batch-scaling recovery ===\n");

  memory::Table table({"model", "batch", "baseline s/iter", "framework s/iter",
                       "overhead", "conv ratio"});
  for (const auto& model : {std::string("VGG-16"), std::string("ResNet-18")}) {
    for (const std::size_t batch : {8u, 32u}) {
      const auto b = measure("none", batch, model);
      const auto f = measure("sz", batch, model);
      table.add_row({model, memory::fmt("%zu", batch), memory::fmt("%.3f", b.seconds),
                     memory::fmt("%.3f", f.seconds),
                     memory::fmt("%.0f%%", 100.0 * (f.seconds - b.seconds) / b.seconds),
                     memory::fmt("%.1fx", f.ratio)});
    }
  }
  table.print();

  // Amortisation: per-image compression cost is roughly constant, while
  // per-image compute grows slightly sublinearly; growing the batch into
  // the freed memory dilutes fixed costs (the paper's 17% -> 7% on VGG-16
  // when going from batch 32 to 256).
  const auto b8 = measure("none", 8, "VGG-16");
  const auto f8 = measure("sz", 8, "VGG-16");
  const auto b32 = measure("none", 32, "VGG-16");
  const auto f32 = measure("sz", 32, "VGG-16");
  std::printf("\nVGG-16 throughput, images/s: baseline b8 %.1f | framework b8 %.1f |"
              " baseline b32 %.1f | framework b32 %.1f\n",
              8 / b8.seconds, 8 / f8.seconds, 32 / b32.seconds, 32 / f32.seconds);
  std::printf("framework@b32 vs baseline@b8 (batch grown into freed memory): %.2fx\n",
              (32 / f32.seconds) / (8 / b8.seconds));

  std::puts("\n--- strategy comparison (V100-32GB, ResNet-18 @224) ---");
  models::ModelConfig mcfg;
  mcfg.input_hw = 224;
  mcfg.num_classes = 1000;
  auto net224 = models::make_resnet18(mcfg);
  const auto rows = baselines::compare_strategies(
      *net224, 224, memory::DeviceModel::v100_32gb(), /*framework_ratio=*/10.7,
      /*framework_overhead=*/0.17, /*baseline_step_seconds=*/0.35);
  memory::Table cmp({"strategy", "peak @b32", "max batch", "overhead", "mem reduction"});
  for (const auto& r : rows) {
    cmp.add_row({r.name, memory::human_bytes(r.peak_bytes),
                 memory::fmt("%zu", r.max_batch),
                 memory::fmt("%.0f%%", 100.0 * r.overhead_fraction),
                 r.memory_reduction > 100 ? "all offloaded"
                                          : memory::fmt("%.1fx", r.memory_reduction)});
  }
  cmp.print();

  std::puts("\nShape check vs paper: moderate overhead at equal batch (paper ~17%),");
  std::puts("shrinking when the batch grows into the freed memory (paper: 7% on");
  std::puts("VGG-16), and a better memory/overhead trade-off than migration");
  std::puts("(Layrub: 2.4x at 24.1%) or recomputation.");
  return 0;
}
