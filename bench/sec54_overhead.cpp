// Reproduces §5.4's performance analysis: the framework's per-iteration
// overhead at equal batch size, the recovery from growing the batch into
// the freed memory, and the comparison against the migration baseline
// (Layrub: 2.4x memory reduction at 24.1% overhead, per the paper).

#include <cstdio>
#include <cstdlib>

#include "baselines/strategies.hpp"
#include "bench_util.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"
#include "obs/trace.hpp"

using namespace ebct;

namespace {

struct StepStats {
  double seconds = 0.0;
  double ratio = 0.0;
};

StepStats measure(const std::string& codec, std::size_t batch, const std::string& model) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 6;
  auto net = models::find_model(model)(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2300;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, batch, true, true, 4);
  core::SessionConfig cfg;
  cfg.framework.codec = codec;
  cfg.framework.active_factor_w = 50;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);
  StepStats s;
  s.seconds = bench::time_median([&] { session.run(3); }) / 3.0;
  s.ratio = session.history().back().mean_compression_ratio;
  return s;
}

/// Cost of the hot-path guard every instrumented site pays when tracing is
/// off: one relaxed atomic load. Measured directly so the "absent"
/// (instrumentation-free) step time can be estimated without recompiling.
double measure_check_ns() {
  constexpr int kIters = 20'000'000;
  volatile int sink = 0;
  const double s = bench::time_seconds([&] {
    for (int i = 0; i < kIters; ++i) {
      if (obs::trace::enabled()) sink = sink + 1;
    }
  });
  return s * 1e9 / kIters;
}

/// The §5.4-style bracket for the tracing layer itself: one framework
/// session stepped with the rings cold (enabled() == false), hot
/// (recording), and an analytic estimate of instrumentation-absent time
/// (disabled time minus measured guard cost x guard crossings). The
/// disabled-mode gate (< 2% over absent-estimate) warns by default and
/// fails the bench only under EBCT_PERF_ENFORCE=1, same convention as
/// perf_smoke.
bool trace_overhead_bracket(bench::JsonReporter& json) {
  const bool was_enabled = obs::trace::enabled();
  obs::trace::disable();

  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 6;
  auto net = models::make_resnet18(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2300;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 8, true, true, 4);
  core::SessionConfig cfg;
  cfg.framework.codec = "sz";
  cfg.framework.active_factor_w = 50;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);  // warm-up

  const double t_dis = bench::time_median([&] { session.run(3); }) / 3.0;

  obs::trace::enable();
  obs::trace::reset();
  const double t_en = bench::time_median([&] { session.run(3); }) / 3.0;
  // time_median runs the body 4x (warm-up + 3 timed) at 3 iterations each.
  const double spans_per_step = static_cast<double>(obs::trace::emitted()) / 12.0;
  obs::trace::reset();
  obs::trace::disable();

  const double check_ns = measure_check_ns();
  // Each span costs ~2 guard crossings (constructor + destructor check).
  const double t_absent = t_dis - 2.0 * spans_per_step * check_ns * 1e-9;
  const double dis_overhead = (t_dis - t_absent) / t_absent;
  const double en_overhead = (t_en - t_dis) / t_dis;
  const bool gate_ok = dis_overhead < 0.02;

  std::printf("\n--- tracing-layer overhead (ResNet-18 b8, sz) ---\n");
  std::printf("s/iter: absent-est %.4f | trace disabled %.4f | trace enabled %.4f\n",
              t_absent, t_dis, t_en);
  std::printf("guard: %.2f ns/check, %.0f spans/step -> disabled overhead %.3f%%"
              " (gate < 2%%: %s); enabled overhead %.1f%%\n",
              check_ns, spans_per_step, 100.0 * dis_overhead,
              gate_ok ? "PASS" : "FAIL", 100.0 * en_overhead);

  json.add("trace_overhead",
           {{"step_s_absent_est", t_absent},
            {"step_s_trace_disabled", t_dis},
            {"step_s_trace_enabled", t_en},
            {"spans_per_step", spans_per_step},
            {"guard_check_ns", check_ns},
            {"disabled_overhead_frac", dis_overhead},
            {"enabled_overhead_frac", en_overhead},
            {"disabled_gate_ok", gate_ok ? 1.0 : 0.0}});

  if (was_enabled) obs::trace::enable();
  return gate_ok;
}

}  // namespace

int main() {
  std::puts("=== §5.4 — framework overhead and batch-scaling recovery ===\n");

  bench::JsonReporter json("sec54_overhead");
  memory::Table table({"model", "batch", "baseline s/iter", "framework s/iter",
                       "overhead", "conv ratio"});
  for (const auto& model : {std::string("VGG-16"), std::string("ResNet-18")}) {
    for (const std::size_t batch : {8u, 32u}) {
      const auto b = measure("none", batch, model);
      const auto f = measure("sz", batch, model);
      table.add_row({model, memory::fmt("%zu", batch), memory::fmt("%.3f", b.seconds),
                     memory::fmt("%.3f", f.seconds),
                     memory::fmt("%.0f%%", 100.0 * (f.seconds - b.seconds) / b.seconds),
                     memory::fmt("%.1fx", f.ratio)});
      json.add(model + "_b" + std::to_string(batch),
               {{"baseline_s_iter", b.seconds},
                {"framework_s_iter", f.seconds},
                {"overhead_frac", (f.seconds - b.seconds) / b.seconds},
                {"conv_ratio", f.ratio}});
    }
  }
  table.print();

  const bool trace_gate_ok = trace_overhead_bracket(json);

  // Amortisation: per-image compression cost is roughly constant, while
  // per-image compute grows slightly sublinearly; growing the batch into
  // the freed memory dilutes fixed costs (the paper's 17% -> 7% on VGG-16
  // when going from batch 32 to 256).
  const auto b8 = measure("none", 8, "VGG-16");
  const auto f8 = measure("sz", 8, "VGG-16");
  const auto b32 = measure("none", 32, "VGG-16");
  const auto f32 = measure("sz", 32, "VGG-16");
  std::printf("\nVGG-16 throughput, images/s: baseline b8 %.1f | framework b8 %.1f |"
              " baseline b32 %.1f | framework b32 %.1f\n",
              8 / b8.seconds, 8 / f8.seconds, 32 / b32.seconds, 32 / f32.seconds);
  std::printf("framework@b32 vs baseline@b8 (batch grown into freed memory): %.2fx\n",
              (32 / f32.seconds) / (8 / b8.seconds));

  std::puts("\n--- strategy comparison (V100-32GB, ResNet-18 @224) ---");
  models::ModelConfig mcfg;
  mcfg.input_hw = 224;
  mcfg.num_classes = 1000;
  auto net224 = models::make_resnet18(mcfg);
  const auto rows = baselines::compare_strategies(
      *net224, 224, memory::DeviceModel::v100_32gb(), /*framework_ratio=*/10.7,
      /*framework_overhead=*/0.17, /*baseline_step_seconds=*/0.35);
  memory::Table cmp({"strategy", "peak @b32", "max batch", "overhead", "mem reduction"});
  for (const auto& r : rows) {
    cmp.add_row({r.name, memory::human_bytes(r.peak_bytes),
                 memory::fmt("%zu", r.max_batch),
                 memory::fmt("%.0f%%", 100.0 * r.overhead_fraction),
                 r.memory_reduction > 100 ? "all offloaded"
                                          : memory::fmt("%.1fx", r.memory_reduction)});
  }
  cmp.print();

  std::puts("\nShape check vs paper: moderate overhead at equal batch (paper ~17%),");
  std::puts("shrinking when the batch grows into the freed memory (paper: 7% on");
  std::puts("VGG-16), and a better memory/overhead trade-off than migration");
  std::puts("(Layrub: 2.4x at 24.1%) or recomputation.");

  if (!trace_gate_ok) {
    const char* enforce = std::getenv("EBCT_PERF_ENFORCE");
    if (enforce != nullptr && enforce[0] == '1') {
      std::fprintf(stderr, "FAIL: disabled-mode trace overhead exceeds 2%% gate\n");
      return 1;
    }
    std::fprintf(stderr,
                 "WARN: disabled-mode trace overhead exceeds 2%% gate "
                 "(set EBCT_PERF_ENFORCE=1 to make this fatal)\n");
  }
  return 0;
}
