// Reproduces Fig. 3: the distribution of the error introduced by SZ
// error-bounded compression on real conv-layer activation data (eb = 1e-4).
// The paper observes a uniform distribution on [-eb, +eb]; we harvest the
// Conv-5 input of AlexNet from an actual forward pass and verify the same.

#include <cstdio>

#include "bench_util.hpp"
#include "models/model_zoo.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"
#include "stats/distribution.hpp"
#include "stats/histogram.hpp"

using namespace ebct;

int main() {
  std::puts("=== Fig. 3 — SZ compression error distribution on activations ===\n");

  // Harvest AlexNet conv inputs from a real forward pass at 224 px.
  models::ModelConfig cfg;
  cfg.input_hw = 224;
  cfg.num_classes = 1000;
  auto net = models::make_alexnet(cfg);
  bench::CaptureStore capture;
  net->set_store(&capture);
  bench::run_iteration(*net, 1, 224, 1000, /*seed=*/2024);

  const double eb = 1e-4;
  sz::Config scfg;
  scfg.error_bound = eb;
  scfg.zero_mode = sz::ZeroMode::kNone;  // raw cuSZ behaviour, as in Fig. 3
  sz::Compressor comp(scfg);

  for (const auto& layer : {std::string("conv5"), std::string("conv3")}) {
    auto it = capture.captured().find(layer);
    if (it == capture.captured().end()) continue;
    const auto& act = it->second;
    const auto buf = comp.compress(act.span());
    const auto recon = comp.decompress(buf);
    const auto errors = sz::pointwise_errors(act.span(), {recon.data(), recon.size()});
    const auto d = stats::diagnose({errors.data(), errors.size()});

    std::printf("--- AlexNet %s input activation (%zu elements, eb = %.0e) ---\n",
                layer.c_str(), act.numel(), eb);
    std::printf("compression ratio          : %.2fx\n", buf.compression_ratio());
    std::printf("max |error|                : %.3e  (bound %.3e)\n",
                sz::max_abs_error(act.span(), {recon.data(), recon.size()}), eb);
    std::printf("error mean                 : %+.3e\n", d.mean);
    std::printf("error stddev               : %.3e  (uniform predicts eb/sqrt(3) = %.3e)\n",
                d.stddev, stats::uniform_stddev(eb));
    std::printf("excess kurtosis            : %+.3f  (uniform = -1.2, normal = 0)\n",
                d.excess_kurtosis);
    std::printf("verdict: looks_uniform = %s\n\n",
                stats::looks_uniform(d, eb, 0.25) ? "YES" : "no");

    stats::Histogram h(-eb, eb, 60);
    h.add({errors.data(), errors.size()});
    std::printf("error histogram on [-eb, +eb]:\n%s\n", h.ascii(10).c_str());
  }

  std::puts("Shape check vs paper: flat histogram, kurtosis ~ -1.2, stddev ~ eb/sqrt(3)");
  std::puts("=> the uniform error model used for the Eq. 6 derivation holds.");
  return 0;
}
