// Reproduces Fig. 8: measured vs predicted gradient-error sigma across conv
// layers (AlexNet- and VGG-flavoured stacks). Predictions come from
// Eqs. 6 + 7 with the paper's coefficient a = 0.32; we additionally
// re-derive `a` by regressing measured sigma against L̄*sqrt(N_eff*R)*eb
// across all configurations (the paper's calibration procedure).

#include <cstdio>
#include <vector>

#include "core/error_model.hpp"
#include "memory/report.hpp"
#include "stats/distribution.hpp"
#include "stats/linreg.hpp"
#include "util_fig6.hpp"

using namespace ebct;

int main() {
  std::puts("=== Fig. 8 — measured vs predicted gradient-error sigma ===\n");
  const std::size_t batch = 16;

  core::ErrorModel model(0.32);
  memory::Table table({"layer", "eb", "sparsity", "measured sigma",
                       "predicted sigma (a=0.32)", "pred/meas"});
  std::vector<double> xs, ys;  // for the coefficient regression

  for (const auto& layer : bench::fig6_layers()) {
    for (const double eb : {5e-3, 2e-2}) {
      for (const double sparsity : {0.0, 0.6}) {
        double lbar = 0.0, density = 1.0;
        const auto errors = bench::collect_gradient_errors(
            layer, eb, sparsity, batch, /*preserve_zeros=*/true, 25, &lbar, &density);
        const double measured = stats::diagnose({errors.data(), errors.size()}).stddev;

        core::LayerStatistics s;
        s.loss_mean_abs = lbar;
        s.density = density;
        // A gradient element sums over batch x output positions; fold the
        // spatial extent into the effective N as the paper's derivation does.
        const std::size_t out_hw =
            layer.hw * layer.hw;  // stride-1, same-padding layers here
        s.batch_size = batch * out_hw;
        const double predicted = model.predict_sigma(s, eb);

        table.add_row({layer.name, memory::fmt("%.0e", eb),
                       memory::fmt("%.1f", sparsity), memory::fmt("%.3e", measured),
                       memory::fmt("%.3e", predicted),
                       memory::fmt("%.2f", predicted / measured)});
        xs.push_back(lbar * std::sqrt(static_cast<double>(s.batch_size) * density) * eb);
        ys.push_back(measured);
      }
    }
  }
  table.print();

  const auto fit = stats::fit_through_origin(xs, ys);
  std::printf("\nregressed coefficient a = %.3f, R^2 = %.3f\n", fit.slope, fit.r2);
  std::printf("theory for Gaussian losses: a = sqrt(pi/6) = %.3f "
              "(minus border effects)\n", std::sqrt(3.14159265358979 / 6.0));
  std::puts("paper's calibration: a = 0.32 (~1/3) — it maps the uniform error's");
  std::puts("*variance* 1/3 to the coefficient; with the std convention used here");
  std::puts("the same model calibrates to ~0.67. The functional form is what");
  std::puts("matters and it holds exactly (R^2 = 1, constant pred/meas ratio");
  std::puts("across layers, bounds and sparsities).");
  std::puts("\nShape check vs paper: predicted sigma tracks measured sigma across");
  std::puts("layers, bounds and sparsities with a single global coefficient —");
  std::puts("the property that lets Eq. 9 pick per-layer error bounds a priori.");
  return 0;
}
