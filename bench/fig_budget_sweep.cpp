// Budget sweep: trains the same model under a descending ladder of memory
// budgets and charts throughput against the budget, proving the pager's two
// headline claims: (1) the RSS-proxy (pager accounting bytes) respects the
// budget at every sweep point, and (2) the training trajectory is
// byte-identical at every point — the budget moves bytes between RAM, disk
// and time, never values. Emits BENCH_fig_budget_sweep.json.
//
// Also answers the ROADMAP's max_workers question: with training compute
// saturating the pool, does capping the codec's per-call worker count help
// or hurt? A secondary sweep times async-encode training at caps 0 (whole
// pool) / 2 / 1 and reports the ratio.
//
// Usage: fig_budget_sweep [--smoke]
//   --smoke: reduced iterations, tighter sweep, non-zero exit on any
//            violated invariant (budget overshoot, trajectory divergence,
//            spill-file leak) — run as a CTest target under ASan in CI.
//   The spill directory honours EBCT_SPILL_DIR.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/pager.hpp"
#include "memory/spill_file.hpp"
#include "memory/timeline.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fig_budget_sweep FAIL: %s\n", what);
    ++g_failures;
  }
}

struct SweepPoint {
  std::vector<double> losses;
  double seconds = 0.0;
  memory::PagerCounters pager;
  memory::CostModelSnapshot cost;  ///< recompute cost model (inception runs)
  memory::TierUsage tiers;         ///< per-tier peaks over this run only
  double ratio = 0.0;              ///< measured mean conv compression ratio
  /// Consolidated TrainingSession::metrics() snapshot (JsonReporter-shaped).
  std::vector<std::pair<std::string, double>> metrics;
};

SweepPoint train(std::size_t budget, std::size_t iterations, bool async_encode,
                 std::uint32_t codec_cap, bool write_behind = false) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 11;
  auto net = models::make_resnet18(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 777;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 16, true, true, 27);

  core::SessionConfig cfg;
  // codec: FrameworkConfig default ("sz"), or whatever EBCT_CODEC selects.
  cfg.framework.active_factor_w = 10;
  cfg.framework.memory_budget_bytes = budget;
  cfg.framework.async_compression = async_encode;
  cfg.framework.compressor_threads = codec_cap;
  cfg.framework.write_behind = write_behind;
  cfg.base_lr = 0.05;
  core::TrainingSession session(*net, loader, cfg);

  SweepPoint p;
  memory::TierAccounting::instance().reset_peaks();
  p.seconds = bench::time_seconds([&] {
    session.run(iterations, [&](const core::IterationRecord& rec) {
      p.losses.push_back(rec.loss);
    });
  });
  p.pager = session.paged_store()->pager().counters();
  p.tiers = memory::TierAccounting::instance().usage();
  p.ratio = session.history().back().mean_compression_ratio;
  p.metrics = session.metrics();
  return p;
}

/// The graph-liveness A/B: Inception's branch heads stash clones of one
/// produced tensor per block, so the exact-liveness pager (graph attached,
/// shared-stash dedup live) should spill fewer bytes at a constrained
/// budget than put-order paging of the very same run.
SweepPoint train_inception(std::size_t budget, std::size_t iterations, bool liveness,
                           bool recompute = false, const std::string& rates = {}) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.125;
  mcfg.seed = 11;
  auto net = models::make_inception_v4(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 32;
  dspec.seed = 777;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 8, true, true, 27);

  core::SessionConfig cfg;
  cfg.framework.active_factor_w = 10;
  cfg.framework.memory_budget_bytes = budget;
  cfg.framework.graph_liveness = liveness;
  cfg.framework.recompute = recompute;
  cfg.framework.recompute_rates = rates;
  cfg.base_lr = 0.05;
  core::TrainingSession session(*net, loader, cfg);

  SweepPoint p;
  p.seconds = bench::time_seconds([&] {
    session.run(iterations, [&](const core::IterationRecord& rec) {
      p.losses.push_back(rec.loss);
    });
  });
  p.pager = session.paged_store()->pager().counters();
  p.cost = session.paged_store()->pager().cost_snapshot();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::size_t iters = smoke ? 8 : 40;
  bench::JsonReporter report("fig_budget_sweep");

  // Reference: unbudgeted. Its resident peak defines the sweep ladder.
  const SweepPoint ref = train(0, iters, false, 0);
  const std::size_t peak = ref.pager.peak_resident_bytes;
  std::printf("unbudgeted compressed peak: %s, %.2f iter/s\n",
              memory::human_bytes(peak).c_str(),
              static_cast<double>(iters) / ref.seconds);
  report.add("unlimited", {{"budget_bytes", 0.0},
                           {"iters_per_sec", static_cast<double>(iters) / ref.seconds},
                           {"peak_resident_bytes", static_cast<double>(peak)},
                           {"spill_write_bytes", 0.0},
                           {"budget_respected", 1.0}});
  // The unbudgeted run's consolidated runtime snapshot (per-phase timings,
  // pager/tier/scheduler/trace counters) as one machine-readable row.
  report.add("unlimited_session_metrics", ref.metrics);

  // Timeline-prediction bridge: replay memory::simulate_iteration at the
  // run's measured mean conv compression ratio, extract the pager-visible
  // events (stash lifetimes plus the raw transients the pager counts while
  // a page encodes or decodes), and compare the predicted high-water marks
  // against what the pager actually measured in the unbudgeted reference
  // run — resident (raw + compressed) and per tier. Divergence > 10% is
  // flagged (a WARN + a 0 row, not a failure) and quantified in the JSON:
  // the timeline applies one uniform ratio to every stash, while the real
  // codec policy compresses conv inputs far better than the rest, so the
  // recorded divergence is the measured error of that modelling choice.
  {
    models::ModelConfig mcfg;
    mcfg.input_hw = 16;
    mcfg.num_classes = 4;
    mcfg.width_multiplier = 0.25;
    mcfg.seed = 11;
    auto net = models::make_resnet18(mcfg);
    const auto input = tensor::Shape::nchw(16, 3, 16, 16);
    const double ratio = std::max(1.0, ref.ratio);
    const auto tl = memory::simulate_iteration(*net, input, ratio);

    const auto ends_with = [](const std::string& s, const char* suf) {
      return s.ends_with(suf);
    };
    std::ptrdiff_t live = 0;            // predicted pager-resident bytes
    std::ptrdiff_t live_compressed = 0; // predicted compressed-tier bytes
    std::ptrdiff_t pred_resident_peak = 0, pred_compressed_peak = 0,
                   pred_raw_peak = 0;
    for (const auto& ev : tl.events) {
      if (ends_with(ev.label, ".stash")) {
        // Raw payload arrives first (kRaw tier), then encodes in place.
        const auto raw = static_cast<std::ptrdiff_t>(
            static_cast<double>(ev.delta_bytes) * ratio);
        pred_resident_peak = std::max(pred_resident_peak, live + raw);
        pred_raw_peak = std::max(pred_raw_peak, raw);
        live += ev.delta_bytes;
        live_compressed += ev.delta_bytes;
      } else if (ends_with(ev.label, ".decompress")) {
        live += ev.delta_bytes;  // decode materialises into the raw tier
        pred_raw_peak = std::max(pred_raw_peak, ev.delta_bytes);
      } else if (ends_with(ev.label, ".free_stash")) {
        live += ev.delta_bytes;
        live_compressed += ev.delta_bytes;
      } else if (ends_with(ev.label, ".free_decompressed")) {
        live += ev.delta_bytes;
      } else {
        continue;  // feature maps / weights: not pager-resident
      }
      pred_resident_peak = std::max(pred_resident_peak, live);
      pred_compressed_peak = std::max(pred_compressed_peak, live_compressed);
    }

    const auto measured_resident = static_cast<double>(peak);
    const auto measured_compressed = static_cast<double>(
        ref.tiers.peak[static_cast<int>(memory::Tier::kCompressed)]);
    const auto measured_raw = static_cast<double>(
        ref.tiers.peak[static_cast<int>(memory::Tier::kRaw)]);
    const double divergence =
        measured_resident > 0
            ? std::abs(static_cast<double>(pred_resident_peak) - measured_resident) /
                  measured_resident
            : 0.0;
    const bool within = divergence <= 0.10;
    std::printf(
        "timeline bridge: predicted resident peak %s vs measured %s "
        "(divergence %.1f%%%s); compressed %s vs %s, raw-transient %s vs %s\n",
        memory::human_bytes(static_cast<std::size_t>(pred_resident_peak)).c_str(),
        memory::human_bytes(peak).c_str(), 100.0 * divergence,
        within ? "" : " — FLAG: > 10%",
        memory::human_bytes(static_cast<std::size_t>(pred_compressed_peak)).c_str(),
        memory::human_bytes(static_cast<std::size_t>(measured_compressed)).c_str(),
        memory::human_bytes(static_cast<std::size_t>(pred_raw_peak)).c_str(),
        memory::human_bytes(static_cast<std::size_t>(measured_raw)).c_str());
    if (!within) {
      std::fprintf(stderr,
                   "fig_budget_sweep WARN: timeline peak prediction diverges "
                   "%.1f%% from the pager-measured peak (> 10%%)\n",
                   100.0 * divergence);
    }
    report.add("timeline_bridge",
               {{"predicted_resident_peak_bytes",
                 static_cast<double>(pred_resident_peak)},
                {"measured_resident_peak_bytes", measured_resident},
                {"predicted_compressed_peak_bytes",
                 static_cast<double>(pred_compressed_peak)},
                {"measured_compressed_peak_bytes", measured_compressed},
                {"predicted_raw_peak_bytes", static_cast<double>(pred_raw_peak)},
                {"measured_raw_peak_bytes", measured_raw},
                {"timeline_total_peak_bytes", static_cast<double>(tl.peak_bytes)},
                {"compression_ratio_used", ratio},
                {"divergence_frac", divergence},
                {"within_10pct", within ? 1.0 : 0.0}});
  }

  const double fractions[] = {1.0, 0.75, 0.5, 0.25};
  for (const double frac : fractions) {
    const std::size_t budget =
        static_cast<std::size_t>(static_cast<double>(peak) * frac);
    const SweepPoint p = train(budget, iters, false, 0);
    const bool respected = p.pager.peak_resident_bytes <= budget;
    const bool identical = p.losses == ref.losses;
    char name[32];
    std::snprintf(name, sizeof(name), "budget_%d%%", static_cast<int>(frac * 100));
    std::printf(
        "%-12s %-12s %6.2f iter/s  peak %-12s spilled %-12s prefetch %zu/%zu  %s %s\n",
        name, memory::human_bytes(budget).c_str(),
        static_cast<double>(iters) / p.seconds,
        memory::human_bytes(p.pager.peak_resident_bytes).c_str(),
        memory::human_bytes(p.pager.spill_write_bytes).c_str(),
        p.pager.prefetch_hits, p.pager.prefetch_submitted,
        respected ? "budget-ok" : "BUDGET-VIOLATED",
        identical ? "bitwise-ok" : "TRAJECTORY-DIVERGED");
    report.add(name,
               {{"budget_bytes", static_cast<double>(budget)},
                {"iters_per_sec", static_cast<double>(iters) / p.seconds},
                {"peak_resident_bytes", static_cast<double>(p.pager.peak_resident_bytes)},
                {"spill_write_bytes", static_cast<double>(p.pager.spill_write_bytes)},
                {"spill_read_bytes", static_cast<double>(p.pager.spill_read_bytes)},
                {"evictions", static_cast<double>(p.pager.evictions)},
                {"prefetch_hits", static_cast<double>(p.pager.prefetch_hits)},
                {"budget_respected", respected ? 1.0 : 0.0},
                {"bitwise_identical", identical ? 1.0 : 0.0}});
    check(respected, "peak resident bytes respect the budget");
    check(identical, "training trajectory byte-identical under budget");
    if (frac <= 0.5) {
      check(p.pager.spill_write_bytes > 0,
            "a budget at <=50% of peak actually reaches the disk tier");
    }
  }

  // Write-behind spill queue under the same ladder points that reach disk:
  // spill writes are issued asynchronously, but victim selection projects
  // queued blobs as already gone while the budget check still counts their
  // bytes as resident — so the overshoot gate, the spill-file-leak gate and
  // bitwise trajectory identity must all hold exactly as in the synchronous
  // sweep above.
  for (const double frac : {0.5, 0.25}) {
    const std::size_t budget =
        static_cast<std::size_t>(static_cast<double>(peak) * frac);
    const SweepPoint p = train(budget, iters, false, 0, /*write_behind=*/true);
    const bool respected = p.pager.peak_resident_bytes <= budget;
    const bool identical = p.losses == ref.losses;
    char name[40];
    std::snprintf(name, sizeof(name), "budget_%d%%_writebehind",
                  static_cast<int>(frac * 100));
    std::printf("%-24s %6.2f iter/s  peak %-12s spilled %-12s %s %s\n", name,
                static_cast<double>(iters) / p.seconds,
                memory::human_bytes(p.pager.peak_resident_bytes).c_str(),
                memory::human_bytes(p.pager.spill_write_bytes).c_str(),
                respected ? "budget-ok" : "BUDGET-VIOLATED",
                identical ? "bitwise-ok" : "TRAJECTORY-DIVERGED");
    report.add(name,
               {{"budget_bytes", static_cast<double>(budget)},
                {"iters_per_sec", static_cast<double>(iters) / p.seconds},
                {"peak_resident_bytes", static_cast<double>(p.pager.peak_resident_bytes)},
                {"spill_write_bytes", static_cast<double>(p.pager.spill_write_bytes)},
                {"budget_respected", respected ? 1.0 : 0.0},
                {"bitwise_identical", identical ? 1.0 : 0.0}});
    check(respected, "write-behind peak resident bytes respect the budget");
    check(identical, "write-behind trajectory byte-identical under budget");
    check(p.pager.spill_write_bytes > 0,
          "write-behind sweep point actually reaches the disk tier");
  }

  // ROADMAP question: codec max_workers cap under async encode. cap=0 lets
  // encode tasks use the whole pool (stealing idle cycles from compute);
  // smaller caps pin them down.
  for (const std::uint32_t cap : {0u, 2u, 1u}) {
    const SweepPoint p = train(0, iters, /*async_encode=*/true, cap);
    check(p.losses == ref.losses, "async encode trajectory byte-identical");
    char name[32];
    std::snprintf(name, sizeof(name), "codec_cap_%u", cap);
    std::printf("%-12s %6.2f iter/s (vs sync %6.2f)\n", name,
                static_cast<double>(iters) / p.seconds,
                static_cast<double>(iters) / ref.seconds);
    report.add(name, {{"iters_per_sec", static_cast<double>(iters) / p.seconds},
                      {"sync_iters_per_sec", static_cast<double>(iters) / ref.seconds}});
  }

  // Graph-liveness A/B on Inception: same model, same data, same budgets —
  // one run pages put-order (graph_liveness=false, the seed policy), the
  // other with the graph IR's exact liveness + shared-stash dedup. Both
  // rows land in the JSON so the win is recorded, and the trajectories must
  // stay bitwise identical (the policy moves bytes, never values).
  {
    const std::size_t inc_iters = smoke ? 6 : 24;
    const SweepPoint inc_ref = train_inception(0, inc_iters, /*liveness=*/false);
    const std::size_t inc_peak = inc_ref.pager.peak_resident_bytes;
    std::printf("inception unbudgeted peak (put-order): %s\n",
                memory::human_bytes(inc_peak).c_str());
    // EBCT_GRAPH_LIVENESS overrides the config flag; when it pins both runs
    // to one policy the A/B collapses and its gates must not fire.
    const bool env_pinned = std::getenv("EBCT_GRAPH_LIVENESS") != nullptr;
    for (const double frac : {0.5, 0.25}) {
      const std::size_t budget =
          static_cast<std::size_t>(static_cast<double>(inc_peak) * frac);
      const SweepPoint put_order = train_inception(budget, inc_iters, false);
      const SweepPoint exact = train_inception(budget, inc_iters, true);
      char put_name[48], live_name[48];
      std::snprintf(put_name, sizeof(put_name), "inception_putorder_%d%%",
                    static_cast<int>(frac * 100));
      std::snprintf(live_name, sizeof(live_name), "inception_liveness_%d%%",
                    static_cast<int>(frac * 100));
      const auto add_row = [&](const char* name, const SweepPoint& p) {
        report.add(name,
                   {{"budget_bytes", static_cast<double>(budget)},
                    {"iters_per_sec", static_cast<double>(inc_iters) / p.seconds},
                    {"peak_resident_bytes",
                     static_cast<double>(p.pager.peak_resident_bytes)},
                    {"spill_write_bytes", static_cast<double>(p.pager.spill_write_bytes)},
                    {"dedup_pages", static_cast<double>(p.pager.dedup_pages)},
                    {"dedup_saved_bytes",
                     static_cast<double>(p.pager.dedup_saved_bytes)},
                    {"bitwise_identical", p.losses == inc_ref.losses ? 1.0 : 0.0}});
      };
      add_row(put_name, put_order);
      add_row(live_name, exact);
      std::printf("%-24s spilled %-12s  %-24s spilled %-12s (dedup %zu pages)\n",
                  put_name, memory::human_bytes(put_order.pager.spill_write_bytes).c_str(),
                  live_name, memory::human_bytes(exact.pager.spill_write_bytes).c_str(),
                  exact.pager.dedup_pages);
      check(put_order.losses == inc_ref.losses,
            "inception put-order trajectory byte-identical under budget");
      check(exact.losses == inc_ref.losses,
            "inception exact-liveness trajectory byte-identical under budget");
      check(put_order.pager.peak_resident_bytes <= budget,
            "inception put-order run respects the budget");
      check(exact.pager.peak_resident_bytes <= budget,
            "inception exact-liveness run respects the budget");
      if (!env_pinned) {
        check(exact.pager.spill_write_bytes <= put_order.pager.spill_write_bytes,
              "exact liveness never spills more than put-order");
        // The strict win: whenever dedup engaged (codec certifies layer
        // invariance — true for sz with uniform bounds) and put-order had
        // to spill at all, exact liveness must spill strictly less.
        if (exact.pager.dedup_pages > 0 && put_order.pager.spill_write_bytes > 0) {
          check(exact.pager.spill_write_bytes < put_order.pager.spill_write_bytes,
                "exact liveness spills strictly fewer bytes at a constrained budget");
        }
      }
    }

    // Recompute-tier ladder on the same Inception reference: pinned rates
    // that price replay below the disk roundtrip, so the cost model's
    // choice is deterministic and the gates below can demand actual
    // recompute drops. The decision moves bytes, never values — every row
    // must stay bitwise identical to inc_ref and inside its budget.
    // EBCT_RECOMPUTE / EBCT_RECOMPUTE_RATES override the config; when the
    // environment pins the tier off (or re-prices it) the drop gate
    // collapses and must not fire.
    const bool rc_env_pinned = std::getenv("EBCT_RECOMPUTE") != nullptr ||
                               std::getenv("EBCT_RECOMPUTE_RATES") != nullptr;
    const char* kReplayWins = "encode=1,decode=1,write=1000,read=1000,flop=0.0001";
    for (const double frac : {0.5, 0.25}) {
      const std::size_t budget =
          static_cast<std::size_t>(static_cast<double>(inc_peak) * frac);
      const SweepPoint p =
          train_inception(budget, inc_iters, /*liveness=*/true,
                          /*recompute=*/true, kReplayWins);
      const bool respected = p.pager.peak_resident_bytes <= budget;
      const bool identical = p.losses == inc_ref.losses;
      char name[48];
      std::snprintf(name, sizeof(name), "recompute_%d%%",
                    static_cast<int>(frac * 100));
      std::printf(
          "%-24s peak %-12s spilled %-12s drops %zu replays %zu  %s %s\n", name,
          memory::human_bytes(p.pager.peak_resident_bytes).c_str(),
          memory::human_bytes(p.pager.spill_write_bytes).c_str(),
          p.pager.recompute_drops, p.pager.recompute_replays,
          respected ? "budget-ok" : "BUDGET-VIOLATED",
          identical ? "bitwise-ok" : "TRAJECTORY-DIVERGED");
      report.add(name,
                 {{"budget_bytes", static_cast<double>(budget)},
                  {"iters_per_sec", static_cast<double>(inc_iters) / p.seconds},
                  {"peak_resident_bytes",
                   static_cast<double>(p.pager.peak_resident_bytes)},
                  {"spill_write_bytes", static_cast<double>(p.pager.spill_write_bytes)},
                  {"recompute_drops", static_cast<double>(p.pager.recompute_drops)},
                  {"recompute_replays", static_cast<double>(p.pager.recompute_replays)},
                  {"budget_respected", respected ? 1.0 : 0.0},
                  {"bitwise_identical", identical ? 1.0 : 0.0}});
      check(respected, "recompute run respects the budget");
      check(identical, "recompute trajectory byte-identical under budget");
      if (!rc_env_pinned) {
        check(p.pager.recompute_drops >= 1,
              "cost model picks recompute for at least one page at <=50% budget");
        check(p.pager.recompute_replays >= 1,
              "a recompute-dropped page was actually replayed");
      }
    }

    // Measured-mode calibration: no pinned rates — the model freezes
    // encode/write/read ns-per-byte from the first pages of the run and
    // the frozen rates land in the JSON as a micro row. Whether any drop
    // happens now depends on the machine, so only the identity and budget
    // gates apply.
    if (!rc_env_pinned) {
      const std::size_t budget =
          static_cast<std::size_t>(static_cast<double>(inc_peak) * 0.25);
      const SweepPoint p = train_inception(budget, inc_iters, /*liveness=*/true,
                                           /*recompute=*/true);
      check(p.losses == inc_ref.losses,
            "measured-mode recompute trajectory byte-identical");
      check(p.pager.peak_resident_bytes <= budget,
            "measured-mode recompute run respects the budget");
      report.add("cost_model_measured",
                 {{"calibrated", p.cost.calibrated ? 1.0 : 0.0},
                  {"encode_ns_per_byte", p.cost.rates.encode_ns_per_byte},
                  {"decode_ns_per_byte", p.cost.rates.decode_ns_per_byte},
                  {"write_ns_per_byte", p.cost.rates.write_ns_per_byte},
                  {"read_ns_per_byte", p.cost.rates.read_ns_per_byte},
                  {"flop_ns", p.cost.rates.flop_ns},
                  {"encode_samples", static_cast<double>(p.cost.encode_samples)},
                  {"write_samples", static_cast<double>(p.cost.write_samples)},
                  {"read_samples", static_cast<double>(p.cost.read_samples)},
                  {"recompute_drops", static_cast<double>(p.pager.recompute_drops)}});
      std::printf(
          "cost_model_measured: calibrated=%d encode=%.3f write=%.3f read=%.3f "
          "ns/byte, drops %zu\n",
          p.cost.calibrated ? 1 : 0, p.cost.rates.encode_ns_per_byte,
          p.cost.rates.write_ns_per_byte, p.cost.rates.read_ns_per_byte,
          p.pager.recompute_drops);
    }
  }

  // Spill-dir teardown: every pager above is destroyed; no descriptor and
  // no on-disk file may survive.
  check(memory::SpillFile::files_open() == 0, "no spill file left open");
  if (const char* dir = std::getenv("EBCT_SPILL_DIR")) {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().filename().string().rfind("ebct-spill-", 0) == 0) {
        check(false, "spill dir still contains an ebct-spill file");
      }
    }
  }

  if (g_failures == 0) std::printf("fig_budget_sweep: all invariants held\n");
  return g_failures == 0 ? 0 : 1;
}
