#pragma once

/// \file util_fig6.hpp
/// Gradient-error collection shared by the Fig. 6 / Fig. 8 benches: run a
/// conv layer's backward twice — clean and with uniform error injected into
/// its input activation — and return the per-element weight-gradient error.

#include <string>
#include <vector>

#include "core/error_injection.hpp"
#include "nn/conv2d.hpp"

namespace ebct::bench {

struct Fig6Layer {
  std::string name;
  nn::Conv2dSpec spec;
  std::size_t hw;          ///< input spatial size
  double loss_scale;       ///< magnitude of the incoming loss
};

/// AlexNet-flavoured conv layers at reduced spatial size (CPU budget).
inline const std::vector<Fig6Layer>& fig6_layers() {
  static const std::vector<Fig6Layer> layers = {
      {"conv2-like", {16, 32, 5, 1, 2, false}, 14, 0.05},
      {"conv3-like", {32, 48, 3, 1, 1, false}, 14, 0.03},
      {"conv5-like", {48, 32, 3, 1, 1, false}, 7, 0.02},
  };
  return layers;
}

/// Collect weight-gradient errors over `trials` independent (input, loss)
/// draws. `density_out`/`lbar_out` (optional) receive the layer stats of the
/// final trial, for feeding the Eq. 6 predictor.
inline std::vector<float> collect_gradient_errors(const Fig6Layer& cfg, double eb,
                                                  double sparsity, std::size_t batch,
                                                  bool preserve_zeros, int trials,
                                                  double* lbar_out = nullptr,
                                                  double* density_out = nullptr) {
  std::vector<float> all;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = 9000 + 31 * static_cast<std::uint64_t>(t);
    tensor::Rng rng(seed);
    nn::Conv2d conv(cfg.name, cfg.spec, rng);
    nn::RawStore store;
    conv.set_store(&store);

    tensor::Tensor x(tensor::Shape::nchw(batch, cfg.spec.in_channels, cfg.hw, cfg.hw));
    tensor::Rng xrng(seed + 1);
    xrng.fill_relu_like(x.span(), sparsity, 1.0f);
    tensor::Tensor loss(conv.output_shape(x.shape()));
    tensor::Rng lrng(seed + 2);
    for (std::size_t i = 0; i < loss.numel(); ++i)
      loss[i] = static_cast<float>(lrng.normal(0.0, cfg.loss_scale));

    conv.forward(x, true);
    conv.weight().grad.zero();
    conv.backward(loss);
    std::vector<float> clean(conv.weight().grad.data(),
                             conv.weight().grad.data() + conv.weight().grad.numel());
    if (lbar_out) *lbar_out = conv.last_loss_mean_abs();
    if (density_out) *density_out = conv.last_input_density();

    tensor::Tensor xp = x.clone();
    tensor::Rng inj(seed + 3);
    core::inject_uniform(xp.span(), eb, inj, preserve_zeros);
    conv.forward(xp, true);
    conv.weight().grad.zero();
    conv.backward(loss);
    for (std::size_t i = 0; i < clean.size(); ++i)
      all.push_back(conv.weight().grad[i] - clean[i]);
  }
  return all;
}

}  // namespace ebct::bench
