// Reproduces Fig. 6: the distribution of weight-gradient error when modelled
// (uniform) compression error is injected into conv-layer activations.
//   (a) zeros perturbed like any other value  -> normal, larger sigma
//   (b) exact zeros preserved                 -> normal, sigma shrinks ~sqrt(R)
// Gradient errors are collected from real backward passes on an AlexNet-style
// conv stack, per layer, exactly as the paper's §3.2 experiment does.

#include <cstdio>
#include <vector>

#include "core/error_injection.hpp"
#include "memory/report.hpp"
#include "nn/conv2d.hpp"
#include "stats/distribution.hpp"
#include "stats/histogram.hpp"
#include "util_fig6.hpp"

using namespace ebct;

int main() {
  std::puts("=== Fig. 6 — gradient error under injected activation error ===\n");
  const double eb = 1e-2;
  const std::size_t batch = 16;
  const double sparsity = 0.6;  // post-ReLU zero fraction of the input

  for (const bool preserve_zeros : {false, true}) {
    std::printf("--- %s (Fig. 6%c) ---\n",
                preserve_zeros ? "zeros preserved" : "zeros perturbed",
                preserve_zeros ? 'b' : 'a');
    memory::Table table({"layer", "sigma", "mean", "kurtosis", "within 1-sigma",
                         "looks normal"});
    for (const auto& layer : bench::fig6_layers()) {
      const auto errors =
          bench::collect_gradient_errors(layer, eb, sparsity, batch, preserve_zeros, 40);
      const auto d = stats::diagnose({errors.data(), errors.size()});
      table.add_row({layer.name, memory::fmt("%.3e", d.stddev),
                     memory::fmt("%+.1e", d.mean),
                     memory::fmt("%+.3f", d.excess_kurtosis),
                     memory::fmt("%.1f%% (normal: 68.2%%)", 100.0 * d.within_one_sigma),
                     stats::looks_normal(d, 0.2) ? "YES" : "no"});
    }
    table.print();

    // One representative histogram.
    const auto errors = bench::collect_gradient_errors(bench::fig6_layers()[0], eb,
                                                       sparsity, batch, preserve_zeros, 40);
    const auto d = stats::diagnose({errors.data(), errors.size()});
    stats::Histogram h(-3 * d.stddev, 3 * d.stddev, 60);
    h.add({errors.data(), errors.size()});
    std::printf("\n%s histogram (+-3 sigma):\n%s\n",
                bench::fig6_layers()[0].name.c_str(), h.ascii(9).c_str());
  }

  // The sqrt(R) contraction between 6a and 6b.
  const auto& l0 = bench::fig6_layers()[0];
  const auto ea = bench::collect_gradient_errors(l0, eb, sparsity, batch, false, 40);
  const auto eb_ = bench::collect_gradient_errors(l0, eb, sparsity, batch, true, 40);
  const double sa = stats::diagnose({ea.data(), ea.size()}).stddev;
  const double sb = stats::diagnose({eb_.data(), eb_.size()}).stddev;
  std::printf("sigma(zeros preserved) / sigma(zeros perturbed) = %.3f "
              "(Eq. 7 predicts sqrt(R) = sqrt(%.2f) = %.3f)\n",
              sb / sa, 1.0 - sparsity, std::sqrt(1.0 - sparsity));
  std::puts("\nShape check vs paper: both settings are Gaussian (68.2% within one");
  std::puts("sigma); preserving zeros shrinks sigma by ~sqrt(R), motivating §4.4.");
  return 0;
}
