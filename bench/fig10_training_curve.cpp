// Reproduces Fig. 10: training accuracy curve of the baseline vs the
// compression framework, together with the compression-ratio-vs-iteration
// curve. The framework's curve must track the baseline while sustaining a
// high conv-activation compression ratio.

#include <cstdio>

#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

int main() {
  std::puts("=== Fig. 10 — training curve: baseline vs framework ===");
  std::puts("ResNet-18 (scaled, 16px synthetic ImageNet substitute), batch 16.\n");

  const std::size_t kIters = 150;

  auto make_net = [] {
    models::ModelConfig mcfg;
    mcfg.input_hw = 16;
    mcfg.num_classes = 4;
    mcfg.width_multiplier = 0.25;
    mcfg.seed = 23;
    return models::make_resnet18(mcfg);
  };
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 128;
  dspec.test_per_class = 32;
  dspec.seed = 900;
  data::SyntheticImageDataset ds(dspec);

  // Baseline run.
  auto net_base = make_net();
  data::DataLoader loader_a(ds, 16, true, true, 71);
  core::SessionConfig base_cfg;
  base_cfg.framework.codec = "none";
  base_cfg.base_lr = 0.05;
  core::TrainingSession base(*net_base, loader_a, base_cfg);
  base.run(kIters);

  // Framework run (identical seeds).
  auto net_fw = make_net();
  data::DataLoader loader_b(ds, 16, true, true, 71);
  core::SessionConfig fw_cfg;
  fw_cfg.framework.codec = "sz";
  fw_cfg.framework.active_factor_w = 20;
  fw_cfg.base_lr = 0.05;
  core::TrainingSession fw(*net_fw, loader_b, fw_cfg);
  fw.run(kIters);

  memory::Table table({"iteration", "baseline acc", "framework acc",
                       "framework loss", "compression ratio"});
  const std::size_t stride = 10;
  for (std::size_t i = 0; i + stride <= kIters; i += stride) {
    // Smooth over a 10-iteration window (batch accuracy is noisy).
    double ab = 0, af = 0, lf = 0, cr = 0;
    for (std::size_t k = i; k < i + stride; ++k) {
      ab += base.history()[k].train_accuracy;
      af += fw.history()[k].train_accuracy;
      lf += fw.history()[k].loss;
      cr += fw.history()[k].mean_compression_ratio;
    }
    table.add_row({memory::fmt("%zu-%zu", i, i + stride - 1),
                   memory::fmt("%.3f", ab / stride), memory::fmt("%.3f", af / stride),
                   memory::fmt("%.3f", lf / stride), memory::fmt("%.1fx", cr / stride)});
  }
  table.print();

  data::DataLoader eval_a(ds, 16, false, false);
  data::DataLoader eval_b(ds, 16, false, false);
  const double acc_base = base.evaluate(eval_a, 8);
  const double acc_fw = fw.evaluate(eval_b, 8);
  std::printf("\nfinal eval top-1: baseline %.3f | framework %.3f (delta %+.3f)\n",
              acc_base, acc_fw, acc_fw - acc_base);
  const auto& last = fw.history().back();
  std::printf("final mean conv compression ratio: %.1fx\n", last.mean_compression_ratio);

  std::puts("\nShape check vs paper: the two accuracy curves overlap (Fig. 10's");
  std::puts("red/blue lines) while the compression ratio stays high, dipping only");
  std::puts("while early-training statistics are still moving.");
  return 0;
}
