// Reduced-size performance smoke test, run as a CTest target so CI catches
// structural perf regressions without relying on wall-clock thresholds
// (shared runners are too noisy for that). It asserts:
//   1. conv-shaped GEMMs (small m, large n) plan a parallel 2D tile grid —
//      the serial-fallback bug class this engine was built to kill;
//   2. GEMM outputs are bitwise identical across scheduler pool sizes;
//   3. a conv forward+backward pair is bitwise identical across pool sizes
//      (fixed-fanout gradient reduction riding the work-stealing pool).
// It also times the reduced shapes and emits BENCH_perf_smoke.json for
// trend tracking. Dedicated perf runners can opt into a wall-clock gate:
// point EBCT_PERF_BASELINE at a previous BENCH_perf_smoke.json and any
// timed row slower than EBCT_PERF_MAX_SLOWDOWN x its baseline (default
// 1.25) fails the run. Shared CI leaves the env unset. Exit code 0 = pass.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "models/model_zoo.hpp"
#include "nn/conv2d.hpp"
#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/rng.hpp"
#include "tensor/sched.hpp"

namespace {

using namespace ebct;

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "perf_smoke FAIL: %s\n", what);
    ++g_failures;
  }
}

void set_threads(int t) { tensor::sched::set_num_threads(t); }

/// Conv layer geometry from the Inception zoo: m = out_channels is far below
/// the old 4096-row parallel grain, so the seed GEMM ran serial here.
struct ConvShape {
  std::size_t m, k, n;
};
constexpr ConvShape kConvShapes[] = {
    {64, 576, 3136},   // 64ch 3x3 over 56x56
    {192, 1728, 784},  // 192ch 3x3 over 28x28
    {96, 64, 3136},    // 1x1 bottleneck
};

void check_parallel_plan() {
  for (const auto& s : kConvShapes) {
    const tensor::GemmStats plan = tensor::gemm_plan(s.m, s.k, s.n);
    check(plan.tiles > 1, "conv-shaped GEMM decomposes into >1 tile");
    check(plan.parallel, "conv-shaped GEMM passes the work-based grain");
  }
  // Tiny problems must stay serial — fork/join would swamp them.
  check(!tensor::gemm_plan(16, 16, 16).parallel, "tiny GEMM stays serial");
}

void check_gemm_determinism() {
  const ConvShape s = kConvShapes[0];
  tensor::Rng rng(42);
  std::vector<float> a(s.m * s.k), b(s.k * s.n);
  rng.fill_normal({a.data(), a.size()}, 0.0f, 1.0f);
  rng.fill_normal({b.data(), b.size()}, 0.0f, 1.0f);
  std::vector<float> ref(s.m * s.n), got(s.m * s.n);
  set_threads(1);
  tensor::gemm(a.data(), b.data(), ref.data(), s.m, s.k, s.n);
  for (int t : {2, 4}) {
    set_threads(t);
    tensor::gemm(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    check(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)) == 0,
          "GEMM bitwise identical across thread counts");
  }
}

void check_conv_determinism() {
  auto run = [](int threads, std::vector<float>& out, std::vector<float>& wgrad) {
    set_threads(threads);
    tensor::Rng rng(7);
    nn::Conv2d conv("c", nn::Conv2dSpec{16, 32, 3, 1, 1}, rng);
    nn::RawStore store;
    conv.set_store(&store);
    tensor::Tensor x(tensor::Shape::nchw(6, 16, 20, 20));
    rng.fill_normal(x.span(), 0.0f, 1.0f);
    tensor::Tensor y = conv.forward(x, true);
    tensor::Tensor gi = conv.backward(tensor::Tensor(y.shape(), 0.1f));
    out.assign(y.data(), y.data() + y.numel());
    out.insert(out.end(), gi.data(), gi.data() + gi.numel());
    wgrad.assign(conv.weight().grad.data(),
                 conv.weight().grad.data() + conv.weight().grad.numel());
  };
  std::vector<float> ref_out, ref_wg, out, wg;
  run(1, ref_out, ref_wg);
  for (int t : {2, 4}) {
    run(t, out, wg);
    check(std::memcmp(ref_out.data(), out.data(), out.size() * sizeof(float)) == 0,
          "conv forward/input-grad bitwise identical across thread counts");
    check(std::memcmp(ref_wg.data(), wg.data(), wg.size() * sizeof(float)) == 0,
          "conv weight-grad bitwise identical across thread counts");
  }
}

using TimingRows = std::vector<std::pair<std::string, double>>;

void time_reduced_shapes(bench::JsonReporter& report, TimingRows& timings,
                         int machine_threads) {
  set_threads(machine_threads);
  // The steal histogram accumulates across the timed section only, so the
  // emitted latencies describe a loaded pool — the regime pager prefetch
  // tasks compete in. A latency regression here shows up before it costs
  // backward-pass overlap. Discarding a drain (rather than reset + later
  // snapshot) makes the bracket atomic: steals recorded between the two
  // calls of a reset/snapshot pair can neither be dropped nor counted
  // twice across bench runs sharing the process.
  (void)tensor::sched::drain_steal_stats();
  for (const auto& s : kConvShapes) {
    tensor::Rng rng(9);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), c(s.m * s.n);
    rng.fill_normal({a.data(), a.size()}, 0.0f, 1.0f);
    rng.fill_normal({b.data(), b.size()}, 0.0f, 1.0f);
    const double sec = bench::time_median(
        [&] { tensor::gemm(a.data(), b.data(), c.data(), s.m, s.k, s.n); });
    const double gflops = 2.0 * s.m * s.k * s.n / sec / 1e9;
    char name[64];
    std::snprintf(name, sizeof(name), "gemm_m%zu_k%zu_n%zu", s.m, s.k, s.n);
    std::printf("%-24s %8.3f ms  %7.2f GFLOP/s\n", name, sec * 1e3, gflops);
    report.add(name, {{"seconds", sec}, {"gflops", gflops}});
    timings.emplace_back(name, sec);
  }

  // Small-batch conv forward+backward: the shape class the unified
  // batch x tile pool exists for (batch 4 alone cannot fill a big machine;
  // tile stealing has to).
  tensor::Rng rng(11);
  nn::Conv2d conv("c", nn::Conv2dSpec{32, 64, 3, 1, 1}, rng);
  nn::RawStore store;
  conv.set_store(&store);
  tensor::Tensor x(tensor::Shape::nchw(4, 32, 28, 28));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  const double sec = bench::time_median([&] {
    tensor::Tensor y = conv.forward(x, true);
    conv.backward(tensor::Tensor(y.shape(), 0.1f));
  });
  std::printf("%-24s %8.3f ms\n", "conv_fwd_bwd", sec * 1e3);
  report.add("conv_fwd_bwd", {{"seconds", sec}});
  timings.emplace_back("conv_fwd_bwd", sec);

  // Scheduler steal-latency histogram over the timed shapes (idle-scan to
  // successful steal, sleeps excluded — see sched.hpp). Single-core
  // machines legitimately record zero.
  const auto ss = tensor::sched::drain_steal_stats();
  std::printf("%-24s %8zu steals  p50 %6.0f ns  p90 %6.0f ns  p99 %6.0f ns\n",
              "steal_latency", static_cast<std::size_t>(ss.recorded),
              ss.percentile_ns(0.5), ss.percentile_ns(0.9), ss.percentile_ns(0.99));
  report.add("steal_latency", {{"steals", static_cast<double>(ss.recorded)},
                               {"p50_ns", ss.percentile_ns(0.5)},
                               {"p90_ns", ss.percentile_ns(0.9)},
                               {"p99_ns", ss.percentile_ns(0.99)}});
}

/// Per-phase iteration-to-iteration variance on a small framework training
/// run, via the obs::MetricsRegistry drained around every iteration. The
/// coefficient of variation per phase is the runner-noise characterization
/// the EBCT_PERF_ENFORCE decision (ROADMAP, carried from PR 3) is based
/// on: wall-clock gating is only as trustworthy as the quietest phase.
/// Rows use metric keys other than "seconds", so the wall-clock baseline
/// parser ignores them by construction.
void measure_phase_variance(bench::JsonReporter& report, int machine_threads) {
  set_threads(machine_threads);
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 6;
  auto net = models::make_resnet18(mcfg);
  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  dspec.seed = 2300;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 8, true, true, 4);
  core::SessionConfig cfg;
  cfg.framework.active_factor_w = 50;
  core::TrainingSession session(*net, loader, cfg);
  session.run(2);  // warm-up

  constexpr int kSamples = 8;
  auto& reg = obs::MetricsRegistry::instance();
  std::vector<obs::PhaseSnapshot> samples;
  (void)reg.drain();  // discard warm-up accumulation
  for (int i = 0; i < kSamples; ++i) {
    session.run(1);
    samples.push_back(reg.drain());
  }

  std::printf("%-24s %10s %10s %6s\n", "phase_variance", "mean ms", "stddev ms",
              "cv");
  for (int p = 0; p < obs::kNumPhases; ++p) {
    double mean = 0.0;
    for (const auto& s : samples) mean += static_cast<double>(s[p].ns);
    mean /= kSamples;
    if (mean <= 0.0) continue;  // phase never ran (e.g. no spill traffic)
    double var = 0.0;
    for (const auto& s : samples) {
      const double d = static_cast<double>(s[p].ns) - mean;
      var += d * d;
    }
    const double stddev = std::sqrt(var / kSamples);
    const double cv = stddev / mean;
    const char* name = obs::phase_name(static_cast<obs::Phase>(p));
    std::printf("  %-22s %10.3f %10.3f %6.3f\n", name, mean / 1e6, stddev / 1e6,
                cv);
    report.add(std::string("phase_variance_") + name,
               {{"mean_ns", mean}, {"stddev_ns", stddev}, {"cv", cv}});
  }

  // The full consolidated snapshot of this session, one machine-readable row.
  report.add("session_metrics", session.metrics());
}

/// Rows of a previous BENCH_perf_smoke.json: name -> seconds. The format is
/// our own JsonReporter's (one row object per line), so a line scan is a
/// complete parser for it.
std::map<std::string, double> read_baseline(const char* path) {
  std::map<std::string, double> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto npos = line.find("\"name\": \"");
    if (npos == std::string::npos) continue;
    const auto nend = line.find('"', npos + 9);
    if (nend == std::string::npos) continue;
    const auto spos = line.find("\"seconds\": ");
    if (spos == std::string::npos) continue;
    rows[line.substr(npos + 9, nend - npos - 9)] =
        std::strtod(line.c_str() + spos + 11, nullptr);
  }
  return rows;
}

/// Opt-in wall-clock regression gate for dedicated (quiet) perf runners;
/// see the file header. Rows present in the baseline but not in this run
/// (or vice versa) are ignored so shape-set changes don't hard-fail.
void check_wallclock_gate(const TimingRows& timings) {
  const char* base_path = std::getenv("EBCT_PERF_BASELINE");
  if (base_path == nullptr || base_path[0] == '\0') return;
  double max_slowdown = 1.25;
  if (const char* s = std::getenv("EBCT_PERF_MAX_SLOWDOWN")) {
    const double v = std::strtod(s, nullptr);
    if (v > 0.0) max_slowdown = v;
  }
  const auto baseline = read_baseline(base_path);
  check(!baseline.empty(), "EBCT_PERF_BASELINE readable and non-empty");
  for (const auto& [name, sec] : timings) {
    const auto it = baseline.find(name);
    if (it == baseline.end() || it->second <= 0.0) continue;
    const double ratio = sec / it->second;
    std::printf("gate %-24s %6.3fx of baseline (limit %.2fx)\n", name.c_str(), ratio,
                max_slowdown);
    if (ratio > max_slowdown) {
      std::fprintf(stderr, "perf_smoke FAIL: %s regressed %.3fx over baseline (limit %.2fx)\n",
                   name.c_str(), ratio, max_slowdown);
      ++g_failures;
    }
  }
}

}  // namespace

int main() {
  // Captured before the determinism checks resize the scheduler pool.
  const int machine_threads = tensor::hardware_threads();
  bench::JsonReporter report("perf_smoke");
  TimingRows timings;
  check_parallel_plan();
  check_gemm_determinism();
  check_conv_determinism();
  time_reduced_shapes(report, timings, machine_threads);
  measure_phase_variance(report, machine_threads);
  check_wallclock_gate(timings);
  if (g_failures == 0) std::printf("perf_smoke: all structural checks passed\n");
  return g_failures == 0 ? 0 : 1;
}
