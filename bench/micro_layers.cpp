// google-benchmark microbenchmarks of the nn substrate: convolution forward
// and backward (the layers the framework targets), batch norm, pooling and
// the GEMM kernel — the compute against which compression overhead is
// amortised (§5.4 and the 1x1-kernel caveat).

#include <benchmark/benchmark.h>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace ebct;

void BM_ConvForward(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(5000);
  nn::Conv2d conv("c", nn::Conv2dSpec{32, 32, k, 1, k / 2}, rng);
  nn::RawStore store;
  conv.set_store(&store);
  tensor::Tensor x(tensor::Shape::nchw(8, 32, 28, 28));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  for (auto _ : state) {
    auto y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
    conv.backward(tensor::Tensor(y.shape(), 0.1f));  // drain + realistic pair
  }
}
// kernel sizes 1 / 3 / 5 — the paper notes 1x1 kernels compress poorly
// relative to their compute cost.
BENCHMARK(BM_ConvForward)->Arg(1)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

// Small-batch conv forward+backward (batch 1 / 2 / 4): with batch-level
// parallelism alone these leave most cores idle — the unified work-stealing
// pool must fan each sample's GEMM tile grid out across the otherwise-idle
// threads. Watch this case when touching the scheduler: it is the shape
// class the batch x tile interleaving was built for.
void BM_ConvSmallBatch(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(5050);
  nn::Conv2d conv("c", nn::Conv2dSpec{64, 64, 3, 1, 1}, rng);
  nn::RawStore store;
  conv.set_store(&store);
  tensor::Tensor x(tensor::Shape::nchw(batch, 64, 56, 56));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  for (auto _ : state) {
    auto y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
    conv.backward(tensor::Tensor(y.shape(), 0.1f));
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(batch) * state.iterations(), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConvSmallBatch)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BatchNorm(benchmark::State& state) {
  nn::BatchNorm bn("bn", 64);
  tensor::Rng rng(5100);
  tensor::Tensor x(tensor::Shape::nchw(16, 64, 28, 28));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  for (auto _ : state) {
    auto y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNorm)->Unit(benchmark::kMillisecond);

void BM_MaxPool(benchmark::State& state) {
  nn::MaxPool pool("p", nn::PoolSpec{2, 2, 0});
  tensor::Rng rng(5200);
  tensor::Tensor x(tensor::Shape::nchw(16, 64, 56, 56));
  rng.fill_normal(x.span(), 0.0f, 1.0f);
  for (auto _ : state) {
    auto y = pool.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MaxPool)->Unit(benchmark::kMillisecond);

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> a(n * n), b(n * n), c(n * n);
  tensor::Rng rng(5300);
  rng.fill_normal({a.data(), a.size()}, 0.0f, 1.0f);
  rng.fill_normal({b.data(), b.size()}, 0.0f, 1.0f);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

// Conv-layer GEMM geometry (m = out_channels, k = in_channels*kh*kw,
// n = out_h*out_w): small m with large n is the shape the old row-parallel
// kernel ran serial on; the 2D-tiled engine must sustain full throughput.
void BM_GemmConvShape(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const std::size_t n = static_cast<std::size_t>(state.range(2));
  std::vector<float> a(m * k), b(k * n), c(m * n);
  tensor::Rng rng(5400);
  rng.fill_normal({a.data(), a.size()}, 0.0f, 1.0f);
  rng.fill_normal({b.data(), b.size()}, 0.0f, 1.0f);
  for (auto _ : state) {
    tensor::gemm(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * m * k * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmConvShape)
    ->Args({64, 576, 3136})    // 64ch 3x3 over 56x56
    ->Args({192, 1728, 784})   // 192ch 3x3 over 28x28
    ->Args({96, 64, 3136})     // 1x1 bottleneck
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
