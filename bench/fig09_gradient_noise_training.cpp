// Reproduces Fig. 9: the effect of injected *gradient* error on the training
// accuracy curve near the end of training. The paper pre-trains, then
// resumes with normal noise of sigma in {1%, 2%, 5%} of the mean gradient:
// 1% is indistinguishable from clean, 2% marginal, 5% visibly degrades —
// which is why the framework targets sigma = 0.01*Ḡ (Eq. 8).
//
// At our reduced scale the network has far fewer parameters than the
// paper's ImageNet models, so the tolerance knee sits at a larger sigma;
// the sweep therefore extends to 5x the gradient scale to expose the full
// shape: flat at small sigma, degrading monotonically past the knee.

#include <cstdio>
#include <vector>

#include "core/error_injection.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"
#include "nn/sgd.hpp"

using namespace ebct;

namespace {

struct NoiseResult {
  double tail_acc = 0.0;
  double tail_loss = 0.0;
  double eval_acc = 0.0;
};

/// Resume training from a shared pre-trained state with N(0, frac*Ḡ) noise
/// added to every gradient before the SGD step.
NoiseResult resume_with_noise(double sigma_fraction, std::size_t iters,
                              std::size_t pretrain_iters) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 8;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 17;
  auto net = models::make_resnet18(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 8;
  dspec.image_hw = 16;
  dspec.train_per_class = 96;
  dspec.test_per_class = 24;
  dspec.noise_stddev = 0.55;  // harder task: instances overlap more
  dspec.seed = 400;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 16, true, true, 41);

  nn::Sgd sgd(nn::SgdOptions{0.9, 1e-4});
  nn::SoftmaxCrossEntropy head;
  tensor::Rng noise_rng(500);

  tensor::Tensor x;
  std::vector<std::int32_t> labels;
  const std::size_t tail = iters / 4;
  NoiseResult res;
  std::size_t tail_count = 0;
  for (std::size_t it = 0; it < pretrain_iters + iters; ++it) {
    loader.next(x, labels);
    tensor::Tensor logits = net->forward(x, true);
    const auto r = head.compute(logits, labels);
    net->backward(r.grad_logits);
    auto params = net->params();
    if (it >= pretrain_iters && sigma_fraction > 0.0) {
      const double gbar = nn::Sgd::gradient_mean_abs(params);
      for (nn::Param* p : params)
        core::inject_normal(p->grad.span(), sigma_fraction * gbar, noise_rng);
    }
    sgd.step(params, 0.03);
    if (it >= pretrain_iters + iters - tail) {
      res.tail_acc += r.accuracy;
      res.tail_loss += r.loss;
      ++tail_count;
    }
  }
  res.tail_acc /= static_cast<double>(tail_count);
  res.tail_loss /= static_cast<double>(tail_count);

  // Evaluation accuracy on the held-out split.
  data::DataLoader ev(ds, 16, false, false);
  std::size_t correct = 0, total = 0;
  for (int b = 0; b < 12; ++b) {
    ev.next(x, labels);
    tensor::Tensor logits = net->forward(x, false);
    const std::size_t k = logits.shape()[1];
    for (std::size_t s = 0; s < logits.shape().n(); ++s) {
      const float* row = logits.data() + s * k;
      std::size_t argmax = 0;
      for (std::size_t j = 1; j < k; ++j)
        if (row[j] > row[argmax]) argmax = j;
      if (static_cast<std::int32_t>(argmax) == labels[s]) ++correct;
      ++total;
    }
    net->backward(tensor::Tensor(logits.shape(), 0.0f));  // drain stashes
    net->zero_grad();
  }
  res.eval_acc = static_cast<double>(correct) / static_cast<double>(total);
  return res;
}

}  // namespace

int main() {
  std::puts("=== Fig. 9 — training-accuracy impact of injected gradient error ===");
  std::puts("ResNet-18 (scaled), pre-trained 100 iterations, then resumed 100 more");
  std::puts("with N(0, sigma) gradient noise, sigma as a fraction of mean |grad|.\n");

  const std::size_t kPretrain = 100, kResume = 100;
  memory::Table table({"sigma / G", "tail train acc", "tail loss", "eval acc",
                       "eval delta vs clean"});
  double clean_acc = 0.0;
  for (const double frac : {0.0, 0.01, 0.02, 0.05, 0.5, 2.0, 5.0}) {
    const auto r = resume_with_noise(frac, kResume, kPretrain);
    if (frac == 0.0) clean_acc = r.eval_acc;
    table.add_row({frac == 0.0 ? "0 (clean)" : memory::fmt("%.2f", frac),
                   memory::fmt("%.3f", r.tail_acc), memory::fmt("%.3f", r.tail_loss),
                   memory::fmt("%.3f", r.eval_acc),
                   memory::fmt("%+.3f", r.eval_acc - clean_acc)});
  }
  table.print();

  std::puts("\nShape check vs paper: accuracy is flat for sigma at and below a few");
  std::puts("percent of the gradient (the paper's 0.01G/0.02G operating points)");
  std::puts("and degrades monotonically beyond the knee (the paper's 0.05G shows");
  std::puts("the first visible loss at ImageNet scale; our smaller models sit");
  std::puts("further from the knee, so it appears at larger sigma here).");
  return 0;
}
