#include "nn/streaming.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace ebct::nn {

namespace {

constexpr char kMagic[4] = {'E', 'B', 'C', 'S'};
constexpr std::uint8_t kVersion = 1;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// Fallback WindowEncoder: copies the window into a Tensor and runs the
/// codec's one-shot encode(). Correct for every codec by construction;
/// native hooks exist to skip exactly this copy.
class BufferedWindowEncoder final : public WindowEncoder {
 public:
  explicit BufferedWindowEncoder(std::shared_ptr<ActivationCodec> codec)
      : codec_(std::move(codec)) {}

  void encode_window(const float* data, std::size_t n,
                     std::vector<std::uint8_t>& out) override {
    tensor::Tensor t(tensor::Shape::nchw(1, 1, 1, n));
    std::memcpy(t.data(), data, n * sizeof(float));
    EncodedActivation enc = codec_->encode(kStreamLayer, t);
    out = std::move(enc.bytes);
  }

 private:
  std::shared_ptr<ActivationCodec> codec_;
};

/// Fallback WindowDecoder: rebuilds the EncodedActivation a one-shot encode
/// of the window would have produced and runs codec->decode().
class BufferedWindowDecoder final : public WindowDecoder {
 public:
  explicit BufferedWindowDecoder(std::shared_ptr<ActivationCodec> codec)
      : codec_(std::move(codec)) {}

  void decode_window(const std::uint8_t* payload, std::size_t payload_len,
                     std::size_t numel, std::vector<float>& out) override {
    EncodedActivation enc;
    enc.bytes.assign(payload, payload + payload_len);
    enc.shape = tensor::Shape::nchw(1, 1, 1, numel);
    enc.layer = kStreamLayer;
    tensor::Tensor t = codec_->decode(enc);
    if (t.numel() != numel)
      throw std::runtime_error("streaming decode: codec returned " +
                               std::to_string(t.numel()) + " elems, block declared " +
                               std::to_string(numel));
    out.resize(numel);
    std::memcpy(out.data(), t.data(), numel * sizeof(float));
  }

 private:
  std::shared_ptr<ActivationCodec> codec_;
};

std::size_t clamp_window(std::size_t w) {
  if (w == 0) return kDefaultWindowElems;
  return std::clamp(w, kMinWindowElems, kMaxWindowElems);
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamingEncoder

StreamingEncoder::StreamingEncoder(std::shared_ptr<ActivationCodec> codec,
                                   std::string spec, std::size_t window_elems,
                                   ByteSink sink)
    : codec_(std::move(codec)),
      spec_(std::move(spec)),
      window_elems_(clamp_window(window_elems)),
      sink_(std::move(sink)) {
  if (!codec_) throw std::invalid_argument("StreamingEncoder: null codec");
  if (!sink_) throw std::invalid_argument("StreamingEncoder: null sink");
  if (spec_.size() > 0xffff) throw std::invalid_argument("StreamingEncoder: spec too long");
  window_encoder_ = codec_->make_window_encoder();
  if (!window_encoder_) window_encoder_ = std::make_unique<BufferedWindowEncoder>(codec_);
  window_.reserve(window_elems_);
}

void StreamingEncoder::sink_bytes(const void* data, std::size_t n) {
  sink_(static_cast<const std::uint8_t*>(data), n);
  bytes_out_ += n;
}

void StreamingEncoder::emit_header() {
  std::vector<std::uint8_t> h;
  h.reserve(12 + spec_.size());
  h.insert(h.end(), kMagic, kMagic + 4);
  h.push_back(kVersion);
  h.push_back(0);  // reserved
  put_u16(h, static_cast<std::uint16_t>(spec_.size()));
  h.insert(h.end(), spec_.begin(), spec_.end());
  put_u32(h, static_cast<std::uint32_t>(window_elems_));
  sink_bytes(h.data(), h.size());
  header_emitted_ = true;
}

void StreamingEncoder::flush_window() {
  if (window_.empty()) return;
  encoded_.clear();
  window_encoder_->encode_window(window_.data(), window_.size(), encoded_);
  std::vector<std::uint8_t> frame;
  frame.reserve(8);
  put_u32(frame, static_cast<std::uint32_t>(encoded_.size()));
  put_u32(frame, static_cast<std::uint32_t>(window_.size()));
  sink_bytes(frame.data(), frame.size());
  sink_bytes(encoded_.data(), encoded_.size());
  window_.clear();
}

void StreamingEncoder::feed(const float* data, std::size_t n) {
  if (finished_) throw std::logic_error("StreamingEncoder::feed after finish");
  if (!header_emitted_) emit_header();
  floats_in_ += n;
  while (n > 0) {
    const std::size_t take = std::min(n, window_elems_ - window_.size());
    window_.insert(window_.end(), data, data + take);
    data += take;
    n -= take;
    if (window_.size() == window_elems_) flush_window();
  }
}

void StreamingEncoder::feed_bytes(const std::uint8_t* bytes, std::size_t n) {
  // Complete a split float left over from the previous call first.
  if (byte_carry_len_ > 0) {
    while (byte_carry_len_ < 4 && n > 0) {
      byte_carry_[byte_carry_len_++] = *bytes++;
      --n;
    }
    if (byte_carry_len_ == 4) {
      float f;
      std::memcpy(&f, byte_carry_, 4);
      feed(&f, 1);
      byte_carry_len_ = 0;
    }
  }
  const std::size_t whole = n / 4;
  if (whole > 0) {
    // The byte stream may be unaligned (pipe buffers); stage through memcpy.
    const std::size_t chunk = 4096;
    float tmp[chunk];
    std::size_t done = 0;
    while (done < whole) {
      const std::size_t take = std::min(chunk, whole - done);
      std::memcpy(tmp, bytes + done * 4, take * 4);
      feed(tmp, take);
      done += take;
    }
  }
  const std::size_t rem = n % 4;
  if (rem > 0) {
    std::memcpy(byte_carry_, bytes + whole * 4, rem);
    byte_carry_len_ = rem;
  }
}

void StreamingEncoder::finish() {
  if (finished_) return;
  if (byte_carry_len_ != 0)
    throw std::invalid_argument("StreamingEncoder::finish: input is not a whole number of "
                                "float32 values (" +
                                std::to_string(byte_carry_len_) + " trailing bytes)");
  if (!header_emitted_) emit_header();
  flush_window();
  std::vector<std::uint8_t> tail;
  put_u32(tail, 0);  // terminator: payload_len == 0
  put_u32(tail, 0);  //             numel == 0
  put_u64(tail, floats_in_);
  sink_bytes(tail.data(), tail.size());
  finished_ = true;
}

void StreamingEncoder::reset() {
  window_.clear();
  encoded_.clear();
  byte_carry_len_ = 0;
  header_emitted_ = false;
  finished_ = false;
  floats_in_ = 0;
  bytes_out_ = 0;
}

void StreamingEncoder::rebind(std::shared_ptr<ActivationCodec> codec, std::string spec,
                              std::size_t window_elems, ByteSink sink) {
  if (!codec) throw std::invalid_argument("StreamingEncoder::rebind: null codec");
  if (!sink) throw std::invalid_argument("StreamingEncoder::rebind: null sink");
  if (spec.size() > 0xffff) throw std::invalid_argument("StreamingEncoder::rebind: spec too long");
  codec_ = std::move(codec);
  spec_ = std::move(spec);
  window_elems_ = clamp_window(window_elems);
  sink_ = std::move(sink);
  window_encoder_ = codec_->make_window_encoder();
  if (!window_encoder_) window_encoder_ = std::make_unique<BufferedWindowEncoder>(codec_);
  window_.reserve(window_elems_);
  reset();
}

// ---------------------------------------------------------------------------
// StreamingDecoder

StreamingDecoder::StreamingDecoder(CodecFactory factory, FloatSink sink)
    : factory_(std::move(factory)), sink_(std::move(sink)) {
  if (!factory_) throw std::invalid_argument("StreamingDecoder: null codec factory");
  if (!sink_) throw std::invalid_argument("StreamingDecoder: null sink");
}

void StreamingDecoder::feed(const std::uint8_t* bytes, std::size_t n) {
  if (state_ == State::kDone && n > 0)
    throw std::runtime_error("streaming decode: trailing bytes after trailer");
  staging_.insert(staging_.end(), bytes, bytes + n);
  advance();
}

void StreamingDecoder::advance() {
  while (staging_.size() >= need_) {
    switch (state_) {
      case State::kMagic: {
        // magic + version + reserved + spec_len
        if (std::memcmp(staging_.data(), kMagic, 4) != 0)
          throw std::runtime_error("streaming decode: bad magic (not an EBCS stream)");
        if (staging_[4] != kVersion)
          throw std::runtime_error("streaming decode: unsupported EBCS version " +
                                   std::to_string(staging_[4]));
        const std::uint16_t spec_len = get_u16(staging_.data() + 6);
        state_ = State::kHeader;
        need_ = std::size_t{8} + spec_len + 4;  // rest of header incl. window_elems
        break;
      }
      case State::kHeader: {
        const std::uint16_t spec_len = get_u16(staging_.data() + 6);
        spec_.assign(reinterpret_cast<const char*>(staging_.data() + 8), spec_len);
        window_elems_ = get_u32(staging_.data() + 8 + spec_len);
        if (window_elems_ < kMinWindowElems || window_elems_ > kMaxWindowElems)
          throw std::runtime_error("streaming decode: window_elems " +
                                   std::to_string(window_elems_) + " out of range");
        codec_ = factory_(spec_);
        if (!codec_)
          throw std::runtime_error("streaming decode: unknown codec spec '" + spec_ + "'");
        window_decoder_ = codec_->make_window_decoder();
        if (!window_decoder_)
          window_decoder_ = std::make_unique<BufferedWindowDecoder>(codec_);
        staging_.erase(staging_.begin(), staging_.begin() + static_cast<std::ptrdiff_t>(need_));
        state_ = State::kBlockHeader;
        need_ = 8;
        break;
      }
      case State::kBlockHeader: {
        block_payload_len_ = get_u32(staging_.data());
        block_numel_ = get_u32(staging_.data() + 4);
        if (block_payload_len_ == 0 && block_numel_ == 0) {
          // Terminator: keep the 8 bytes consumed, expect the u64 trailer.
          staging_.erase(staging_.begin(), staging_.begin() + 8);
          state_ = State::kTrailer;
          need_ = 8;
          break;
        }
        if (block_numel_ == 0 || block_numel_ > window_elems_)
          throw std::runtime_error("streaming decode: block numel " +
                                   std::to_string(block_numel_) + " exceeds window " +
                                   std::to_string(window_elems_));
        if (block_payload_len_ > max_block_bytes())
          throw std::runtime_error("streaming decode: block payload " +
                                   std::to_string(block_payload_len_) +
                                   " bytes exceeds cap " + std::to_string(max_block_bytes()));
        staging_.erase(staging_.begin(), staging_.begin() + 8);
        state_ = State::kBlockPayload;
        need_ = block_payload_len_;
        break;
      }
      case State::kBlockPayload: {
        window_decoder_->decode_window(staging_.data(), block_payload_len_, block_numel_,
                                       decoded_);
        sink_(decoded_.data(), decoded_.size());
        floats_out_ += decoded_.size();
        staging_.erase(staging_.begin(),
                       staging_.begin() + static_cast<std::ptrdiff_t>(block_payload_len_));
        state_ = State::kBlockHeader;
        need_ = 8;
        break;
      }
      case State::kTrailer: {
        const std::uint64_t declared = get_u64(staging_.data());
        if (declared != floats_out_)
          throw std::runtime_error("streaming decode: trailer declares " +
                                   std::to_string(declared) + " elems, decoded " +
                                   std::to_string(floats_out_));
        staging_.erase(staging_.begin(), staging_.begin() + 8);
        state_ = State::kDone;
        need_ = 1;  // any further byte is an error, caught in feed()
        if (!staging_.empty())
          throw std::runtime_error("streaming decode: trailing bytes after trailer");
        return;
      }
      case State::kDone:
        return;
    }
  }
}

void StreamingDecoder::finish() {
  if (state_ != State::kDone)
    throw std::runtime_error("streaming decode: truncated stream (ended mid-" +
                             std::string(state_ == State::kMagic || state_ == State::kHeader
                                             ? "header"
                                             : state_ == State::kTrailer ? "trailer" : "block") +
                             ", " + std::to_string(staging_.size()) + " bytes buffered)");
}

void StreamingDecoder::rebind(FloatSink sink) {
  if (!sink) throw std::invalid_argument("StreamingDecoder::rebind: null sink");
  sink_ = std::move(sink);
  reset();
}

void StreamingDecoder::reset() {
  codec_.reset();
  window_decoder_.reset();
  spec_.clear();
  window_elems_ = 0;
  state_ = State::kMagic;
  staging_.clear();
  need_ = 8;
  block_payload_len_ = 0;
  block_numel_ = 0;
  decoded_.clear();
  floats_out_ = 0;
}

// ---------------------------------------------------------------------------
// One-shot helpers

std::vector<std::uint8_t> streaming_encode_all(std::shared_ptr<ActivationCodec> codec,
                                               const std::string& spec, const float* data,
                                               std::size_t n, std::size_t window_elems) {
  std::vector<std::uint8_t> out;
  StreamingEncoder enc(std::move(codec), spec, window_elems,
                       [&out](const std::uint8_t* p, std::size_t len) {
                         out.insert(out.end(), p, p + len);
                       });
  enc.feed(data, n);
  enc.finish();
  return out;
}

std::vector<float> streaming_decode_all(const CodecFactory& factory,
                                        const std::uint8_t* bytes, std::size_t n) {
  std::vector<float> out;
  StreamingDecoder dec(factory,
                       [&out](const float* p, std::size_t len) { out.insert(out.end(), p, p + len); });
  dec.feed(bytes, n);
  dec.finish();
  return out;
}

}  // namespace ebct::nn
