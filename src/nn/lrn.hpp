#pragma once

/// \file lrn.hpp
/// Local response normalisation across channels (AlexNet-style):
///   out = x / (k + alpha/size * sum_{c'} x_{c'}^2)^beta
/// over a window of `size` channels centred on c.

#include "nn/layer.hpp"

namespace ebct::nn {

struct LrnSpec {
  std::size_t size = 5;
  double alpha = 1e-4;
  double beta = 0.75;
  double k = 2.0;
};

class Lrn : public Layer {
 public:
  Lrn(std::string name, LrnSpec spec) : Layer(std::move(name)), spec_(spec) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  tensor::Shape output_shape(const tensor::Shape& input) const override { return input; }
  bool replayable() const override { return true; }
  /// Window sum-of-squares + pow, writing only the output (no saved state).
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  double replay_flops(const tensor::Shape& input) const override {
    return 3.0 * static_cast<double>(spec_.size) * static_cast<double>(input.numel());
  }

 private:
  LrnSpec spec_;
  tensor::Tensor saved_input_;
  tensor::Tensor scale_;  // k + alpha/size * window sum of squares
  StashHandle saved_handle_ = 0;   ///< exact-channel stashes when the store
  StashHandle scale_handle_ = 0;   ///< pages layer state
  bool saved_paged_ = false;
};

}  // namespace ebct::nn
