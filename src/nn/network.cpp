#include "nn/network.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

Layer& Network::add(std::unique_ptr<Layer> layer) {
  layer->set_store(store_);
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

void Network::set_store(ActivationStore* store) {
  store_ = store;
  for (auto& l : layers_) l->set_store(store);
}

Tensor Network::forward(const Tensor& input, bool train) {
  Tensor x = input.clone();
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

Tensor Network::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits.clone();
  for (std::size_t i = layers_.size(); i > 0; --i) g = layers_[i - 1]->backward(g);
  return g;
}

std::vector<Param*> Network::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

void Network::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

void Network::visit(const std::function<void(Layer&)>& fn) {
  for (auto& l : layers_) l->visit(fn);
}

graph::TensorId Network::build_graph(graph::Graph& g, graph::TensorId input) const {
  graph::TensorId t = input;
  for (const auto& l : layers_) t = l->build_graph(g, t);
  return t;
}

void Network::backward_schedule(std::vector<const Layer*>& order) const {
  for (std::size_t i = layers_.size(); i > 0; --i)
    layers_[i - 1]->backward_schedule(order);
}

std::vector<std::pair<std::string, Shape>> Network::shape_trace(const Shape& input) const {
  std::vector<std::pair<std::string, Shape>> out;
  Shape s = input;
  for (const auto& l : layers_) {
    s = l->output_shape(s);
    out.emplace_back(l->name(), s);
  }
  return out;
}

std::size_t Network::conv_activation_bytes(const Shape& input) const {
  std::size_t total = 0;
  Shape s = input;
  for (const auto& l : layers_) {
    total += l->activation_bytes(s);
    s = l->output_shape(s);
  }
  return total;
}

std::size_t Network::num_parameters() {
  std::size_t total = 0;
  for (Param* p : params()) total += p->value.numel();
  return total;
}

}  // namespace ebct::nn
