#pragma once

/// \file layer.hpp
/// Base layer interface of the training framework. Layers are stateful:
/// forward() may stash activations (through the ActivationStore) and
/// backward() consumes them in LIFO order, mirroring how Caffe keeps
/// per-layer bottom data alive between the passes.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/activation_store.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace ebct::graph {
class Graph;
using TensorId = std::uint32_t;
}  // namespace ebct::graph

namespace ebct::nn {

/// A learnable parameter with its gradient and momentum buffers.
struct Param {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
  tensor::Tensor momentum;
  double weight_decay_multiplier = 1.0;

  explicit Param(std::string n, tensor::Shape shape)
      : name(std::move(n)), value(shape), grad(shape, 0.0f), momentum(shape, 0.0f) {}
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }

  /// Forward pass. `train` enables dropout masks / batch statistics.
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool train) = 0;

  /// Backward pass: gradient w.r.t. output -> gradient w.r.t. input.
  /// Accumulates parameter gradients into Param::grad.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  virtual std::vector<Param*> params() { return {}; }

  /// Layers whose stashed input goes through the compressible activation
  /// store (the paper compresses convolutional layers only).
  virtual bool uses_activation_store() const { return false; }

  /// Output shape for a given input shape (shape inference, used by the
  /// memory planner's dry-run accounting).
  virtual tensor::Shape output_shape(const tensor::Shape& input) const = 0;

  /// Install the activation store used for stash/retrieve. Composite layers
  /// propagate this to their children.
  virtual void set_store(ActivationStore* store) { store_ = store; }

  /// Number of stashed-activation bytes this layer would hold for the given
  /// input shape (dry-run accounting; raw float bytes before compression).
  virtual std::size_t activation_bytes(const tensor::Shape& input) const {
    (void)input;
    return 0;
  }

  /// Apply `fn` to this layer, then (for containers) to every child.
  /// Every layer in the tree is visited exactly once — containers included,
  /// unlike the old dynamic_cast recursion that silently skipped them.
  virtual void visit(const std::function<void(Layer&)>& fn) { fn(*this); }

  /// Short op tag for the graph IR ("conv", "relu", ...). Drives the
  /// pattern matchers in graph/rewrite.hpp; the default is a generic tag.
  virtual std::string graph_op() const { return "op"; }

  /// Append this layer's node(s) to the graph IR, consuming tensor
  /// `input`; returns the produced tensor. The default emits one node with
  /// shape inferred through output_shape(); containers override to expose
  /// their internal edges (graph/graph.hpp). Implemented in layer.cpp.
  virtual graph::TensorId build_graph(graph::Graph& g, graph::TensorId input) const;

  /// Append the layers of this subtree in *actual backward execution
  /// order* (the order backward() consumes stashes). Leaves append
  /// themselves; containers override to mirror their backward() bodies.
  virtual void backward_schedule(std::vector<const Layer*>& order) const {
    order.push_back(this);
  }

  /// Whether replay_forward() can reproduce this layer's forward output.
  /// True only for layers whose forward is a pure function of (input,
  /// parameters) — Dropout (stateful RNG) and any layer with
  /// non-reproducible forward state must stay false, which excludes every
  /// replay plan containing them from the pager's recompute tier.
  virtual bool replayable() const { return false; }

  /// Side-effect-free re-execution of forward(train=true): byte-identical
  /// output for byte-identical input and unchanged parameters, without
  /// touching any member (no stash, no statistics, no running averages) —
  /// callable concurrently with this layer's own backward(). Used by the
  /// recompute tier (graph/replay.hpp) to rebuild a dropped activation
  /// during the backward pass. The default throws std::logic_error;
  /// replayable() gates every call.
  virtual tensor::Tensor replay_forward(const tensor::Tensor& input) const;

  /// Static cost estimate of replay_forward() at the given input shape, in
  /// floating-point operations. Feeds the pager's CostModel; precision only
  /// matters relative to the other layers (the model compares replay FLOPs
  /// against measured spill I/O rates). Default: one op per output element.
  virtual double replay_flops(const tensor::Shape& input) const {
    return static_cast<double>(output_shape(input).numel());
  }

 protected:
  ActivationStore* store_ = nullptr;
  std::string name_;
};

}  // namespace ebct::nn
