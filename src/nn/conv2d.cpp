#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/alloc.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {
/// Fixed fan-out of the weight-gradient reduction. Bounds the partial-buffer
/// memory (parts x weight size) while staying thread-count independent so
/// gradients are byte-identical at any parallelism level.
constexpr std::size_t kGradParts = 16;
}  // namespace

Conv2d::Conv2d(std::string name, Conv2dSpec spec, tensor::Rng& rng)
    : Layer(std::move(name)),
      spec_(spec),
      weight_(name_ + ".weight",
              Shape{spec.out_channels, spec.in_channels, spec.kh(), spec.kw()}),
      bias_(name_ + ".bias", Shape{spec.out_channels}) {
  // He-normal initialisation, the standard for ReLU networks.
  const double fan_in =
      static_cast<double>(spec.in_channels) * spec.kh() * spec.kw();
  rng.fill_normal(weight_.value.span(), 0.0f,
                  static_cast<float>(std::sqrt(2.0 / fan_in)));
  bias_.value.zero();
}

Shape Conv2d::output_shape(const Shape& input) const {
  const std::size_t oh = tensor::conv_out_dim(input.h(), spec_.kh(), spec_.stride, spec_.ph());
  const std::size_t ow = tensor::conv_out_dim(input.w(), spec_.kw(), spec_.stride, spec_.pw());
  return Shape::nchw(input.n(), spec_.out_channels, oh, ow);
}

std::vector<Param*> Conv2d::params() {
  if (spec_.bias) return {&weight_, &bias_};
  return {&weight_};
}

Tensor Conv2d::compute(const Tensor& input) const {
  if (input.shape().c() != spec_.in_channels)
    throw std::invalid_argument(name_ + ": channel mismatch");
  const Shape out_shape = output_shape(input.shape());
  const std::size_t n = input.shape().n();
  const std::size_t k = spec_.in_channels * spec_.kh() * spec_.kw();
  const std::size_t ohow = out_shape.h() * out_shape.w();
  const std::size_t in_img = input.shape().c() * input.shape().h() * input.shape().w();
  const std::size_t out_img = out_shape.c() * ohow;

  Tensor out(out_shape);
  // Parallel across the batch; samples are independent so any schedule gives
  // identical bytes. The im2col buffer comes from the thread-local scratch
  // arena — reused across samples and iterations, never reallocated. Batch
  // tasks and each sample's GEMM C-tile tasks share the work-stealing pool:
  // at small batch (or the tail of a skewed one) idle threads steal tile
  // tasks from in-flight samples instead of going idle, so every core stays
  // busy at batch 1 and batch 64 alike.
  tensor::parallel_for_tasks(n, 0, [&](std::size_t s) {
    tensor::ScratchBuffer cols(k * ohow);
    tensor::im2col(input.data() + s * in_img, spec_.in_channels, input.shape().h(),
                   input.shape().w(), spec_.kh(), spec_.kw(), spec_.stride, spec_.ph(),
                   cols.data(), spec_.pw());
    tensor::gemm(weight_.value.data(), cols.data(), out.data() + s * out_img,
                 spec_.out_channels, k, ohow);
    if (spec_.bias) {
      for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
        float* row = out.data() + s * out_img + oc * ohow;
        const float b = bias_.value[oc];
        for (std::size_t j = 0; j < ohow; ++j) row[j] += b;
      }
    }
  });
  return out;
}

Tensor Conv2d::replay_forward(const Tensor& input) const { return compute(input); }

double Conv2d::replay_flops(const Shape& input) const {
  const Shape out = output_shape(input);
  const double k =
      static_cast<double>(spec_.in_channels) * spec_.kh() * spec_.kw();
  return 2.0 * k * static_cast<double>(out.numel());
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  input_shape_ = input.shape();
  Tensor out = compute(input);

  if (store_ != nullptr) {
    // Stash the *input* activation (paper: G = A x L requires A in backward).
    last_input_density_ = tensor::nonzero_fraction(input.span());
    input_handle_ = store_->stash(name_, input.clone());
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  if (store_ == nullptr) throw std::logic_error(name_ + ": backward without store");
  Tensor input = store_->retrieve(input_handle_);
  input.reshape(input_shape_);

  last_loss_mean_abs_ = tensor::mean_abs(grad_output.span());

  const Shape out_shape = grad_output.shape();
  const std::size_t n = input_shape_.n();
  const std::size_t k = spec_.in_channels * spec_.kh() * spec_.kw();
  const std::size_t ohow = out_shape.h() * out_shape.w();
  const std::size_t in_img = input_shape_.c() * input_shape_.h() * input_shape_.w();
  const std::size_t out_img = out_shape.c() * ohow;

  Tensor grad_input(input_shape_);
  if (n == 0) return grad_input;

  // Weight/bias gradients reduce across the batch, so the partition must be
  // a function of the batch size alone — never of the thread count — for
  // byte-identical results at any parallelism level: each part accumulates
  // its samples in index order, and parts are folded into the grads in part
  // order below. The partial buffers come from the calling thread's scratch
  // arena (acquired here, filled by the tasks through raw pointers), so
  // steady-state training allocates no weight-grad workspace.
  const std::size_t parts = std::min<std::size_t>(n, kGradParts);
  const std::size_t per_part = (n + parts - 1) / parts;
  const std::size_t wnumel = weight_.value.numel();
  tensor::ScratchBuffer wgrad_parts(parts * wnumel);
  tensor::ScratchBuffer bgrad_parts(parts * spec_.out_channels);
  // Resolve the raw pointers *before* the parallel region: .data() walks
  // this thread's arena bookkeeping, which this same thread mutates while
  // helping execute tasks (nested ScratchBuffer acquires) — workers must
  // not read it concurrently. The blocks themselves never move.
  float* wparts = wgrad_parts.data();
  float* bparts = bgrad_parts.data();
  std::memset(wparts, 0, parts * wnumel * sizeof(float));
  std::memset(bparts, 0, parts * spec_.out_channels * sizeof(float));

  tensor::parallel_for_tasks(parts, 0, [&](std::size_t part) {
    const std::size_t begin = part * per_part;
    const std::size_t end = std::min(n, begin + per_part);
    tensor::ScratchBuffer cols(k * ohow);
    tensor::ScratchBuffer cols_grad(k * ohow);
    float* wg = wparts + part * wnumel;
    float* bg = bparts + part * spec_.out_channels;
    for (std::size_t s = begin; s < end; ++s) {
      const float* lgrad = grad_output.data() + s * out_img;
      // Weight gradient: dW[oc, k] += L[oc, ohow] * cols^T[ohow, k].
      tensor::im2col(input.data() + s * in_img, spec_.in_channels, input_shape_.h(),
                     input_shape_.w(), spec_.kh(), spec_.kw(), spec_.stride, spec_.ph(),
                     cols.data(), spec_.pw());
      tensor::gemm_bt(lgrad, cols.data(), wg, spec_.out_channels, ohow, k,
                      /*accumulate=*/true);
      if (spec_.bias) {
        for (std::size_t oc = 0; oc < spec_.out_channels; ++oc) {
          double acc = 0.0;
          const float* row = lgrad + oc * ohow;
          for (std::size_t j = 0; j < ohow; ++j) acc += row[j];
          bg[oc] += static_cast<float>(acc);
        }
      }
      // Input gradient: cols_grad[k, ohow] = W^T[k, oc] * L[oc, ohow].
      tensor::gemm_at(weight_.value.data(), lgrad, cols_grad.data(), k,
                      spec_.out_channels, ohow);
      tensor::col2im(cols_grad.data(), spec_.in_channels, input_shape_.h(), input_shape_.w(),
                     spec_.kh(), spec_.kw(), spec_.stride, spec_.ph(),
                     grad_input.data() + s * in_img, spec_.pw());
    }
  });

  for (std::size_t p = 0; p < parts; ++p) {
    tensor::axpy(1.0f, {wparts + p * wnumel, wnumel}, weight_.grad.span());
    if (spec_.bias)
      tensor::axpy(1.0f, {bparts + p * spec_.out_channels, spec_.out_channels},
                   bias_.grad.span());
  }
  return grad_input;
}

}  // namespace ebct::nn
