#pragma once

/// \file batchnorm.hpp
/// Spatial batch normalisation over (N, H, W) per channel, with learnable
/// scale/shift and running statistics for evaluation mode.

#include <vector>

#include "nn/layer.hpp"
#include "tensor/alloc.hpp"

namespace ebct::nn {

class BatchNorm : public Layer {
 public:
  BatchNorm(std::string name, std::size_t channels, double momentum = 0.9,
            double eps = 1e-5);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::string graph_op() const override { return "bn"; }
  tensor::Shape output_shape(const tensor::Shape& input) const override { return input; }
  bool replayable() const override { return true; }
  /// Re-runs the train-mode batch-statistics path (same Welford sweep, same
  /// float op order) but updates neither the running averages nor the saved
  /// x_hat / inv_std state — the batch statistics are a pure function of
  /// the input, so the output is byte-identical to the original forward.
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  double replay_flops(const tensor::Shape& input) const override {
    return 10.0 * static_cast<double>(input.numel());
  }

  std::span<const float> running_mean() const { return {running_mean_.data(), channels_}; }
  std::span<const float> running_var() const { return {running_var_.data(), channels_}; }

 private:
  std::size_t channels_;
  double momentum_;
  double eps_;
  Param gamma_;
  Param beta_;
  std::vector<float> running_mean_;
  std::vector<float> running_var_;
  // Saved forward state for backward. By default x_hat lives in the
  // thread-local scratch arena, not a tracked Tensor: it is pure workspace
  // between a forward and its backward, so routing it through the arena
  // keeps steady-state training malloc-free without distorting the
  // activation-memory accounting. When the installed store pages layer
  // state (a budgeted ActivationPager), x_hat is stashed byte-exact through
  // it instead, so the memory budget governs it too. Either way
  // forward/backward run on one thread (the training loop).
  tensor::ScratchHold x_hat_;
  StashHandle x_hat_handle_ = 0;
  bool x_hat_paged_ = false;
  std::vector<float> inv_std_;
  tensor::Shape in_shape_;
};

}  // namespace ebct::nn
