#pragma once

/// \file sgd.hpp
/// SGD with classical momentum (v = mu*v + g; w -= lr*v) and decoupled
/// per-parameter weight-decay multipliers. The momentum buffers are exactly
/// the M the paper's gradient assessment reads (Eq. 8: sigma = 0.01 * M̄).

#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace ebct::nn {

/// Learning-rate schedules.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double lr(std::size_t iteration) const = 0;
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double lr(std::size_t) const override { return lr_; }

 private:
  double lr_;
};

/// Multiply the base rate by `gamma` every `step_size` iterations (Caffe
/// "step" policy, the schedule the paper notes interacts with the
/// compression ratio).
class StepLr : public LrSchedule {
 public:
  StepLr(double base, double gamma, std::size_t step_size)
      : base_(base), gamma_(gamma), step_(step_size) {}
  double lr(std::size_t iteration) const override;

 private:
  double base_, gamma_;
  std::size_t step_;
};

struct SgdOptions {
  double momentum = 0.9;
  double weight_decay = 5e-4;
};

class Sgd {
 public:
  explicit Sgd(SgdOptions opts = {}) : opts_(opts) {}

  /// Apply one update to every parameter and clear the gradients.
  void step(std::span<Param* const> params, double lr);

  /// Mean |momentum| across the given parameters — the paper's M̄.
  static double momentum_mean_abs(std::span<Param* const> params);

  /// Mean |gradient| across the given parameters — the paper's Ḡ.
  static double gradient_mean_abs(std::span<Param* const> params);

  const SgdOptions& options() const { return opts_; }

 private:
  SgdOptions opts_;
};

}  // namespace ebct::nn
