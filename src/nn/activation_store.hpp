#pragma once

/// \file activation_store.hpp
/// Strategy interface for stashing forward-pass activations until the
/// backward pass needs them. This is the seam the paper's framework plugs
/// into: the baseline keeps raw tensors, the framework keeps SZ-compressed
/// bytes, and the comparison baselines (lossless, JPEG-ACT) keep their own
/// encodings — all behind the same stash/retrieve contract, so every memory
/// strategy runs through identical training code.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace ebct::nn {

/// Opaque ticket for a stashed activation.
using StashHandle = std::uint64_t;

/// Per-layer compression bookkeeping, aggregated across an iteration.
struct StoreStats {
  std::size_t stashed_tensors = 0;
  std::size_t original_bytes = 0;
  std::size_t stored_bytes = 0;
  double compression_ratio() const {
    return stored_bytes == 0 ? 0.0
                             : static_cast<double>(original_bytes) /
                                   static_cast<double>(stored_bytes);
  }
};

class ActivationStore {
 public:
  virtual ~ActivationStore() = default;

  /// Take ownership of `act` (the input activation of `layer`) until
  /// retrieve(). Implementations may transform it (compress, offload, ...).
  virtual StashHandle stash(const std::string& layer, tensor::Tensor&& act) = 0;

  /// Destructive pop: return the (possibly lossily reconstructed) activation.
  virtual tensor::Tensor retrieve(StashHandle handle) = 0;

  /// Bytes currently held by the store (the quantity the paper reduces).
  virtual std::size_t held_bytes() const = 0;

  /// Per-layer statistics accumulated since the last reset_stats().
  virtual std::map<std::string, StoreStats> stats() const { return {}; }
  virtual void reset_stats() {}
};

/// Baseline store: keeps raw tensors (what stock Caffe/TensorFlow do).
class RawStore : public ActivationStore {
 public:
  StashHandle stash(const std::string& layer, tensor::Tensor&& act) override;
  tensor::Tensor retrieve(StashHandle handle) override;
  std::size_t held_bytes() const override { return held_bytes_; }
  std::map<std::string, StoreStats> stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }

 private:
  struct Entry {
    tensor::Tensor t;
  };
  std::unordered_map<StashHandle, Entry> entries_;
  StashHandle next_ = 1;
  std::size_t held_bytes_ = 0;
  std::map<std::string, StoreStats> stats_;
};

/// A serialized activation produced by an ActivationCodec.
struct EncodedActivation {
  std::vector<std::uint8_t> bytes;
  tensor::Shape shape;
  std::string layer;
};

/// Pluggable lossy/lossless encoder for activations. The SZ-based framework
/// codec, the lossless baseline and the JPEG-ACT baseline all implement this.
class ActivationCodec {
 public:
  virtual ~ActivationCodec() = default;
  virtual EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) = 0;
  virtual tensor::Tensor decode(const EncodedActivation& enc) = 0;
  virtual std::string name() const = 0;
};

/// Store that routes activations through an ActivationCodec, holding only the
/// encoded bytes between forward and backward.
class CodecStore : public ActivationStore {
 public:
  explicit CodecStore(std::shared_ptr<ActivationCodec> codec) : codec_(std::move(codec)) {}

  StashHandle stash(const std::string& layer, tensor::Tensor&& act) override;
  tensor::Tensor retrieve(StashHandle handle) override;
  std::size_t held_bytes() const override { return held_bytes_; }
  std::map<std::string, StoreStats> stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }

  ActivationCodec& codec() { return *codec_; }

 private:
  std::shared_ptr<ActivationCodec> codec_;
  std::unordered_map<StashHandle, EncodedActivation> entries_;
  StashHandle next_ = 1;
  std::size_t held_bytes_ = 0;
  std::map<std::string, StoreStats> stats_;
};

/// Double-buffered asynchronous codec store: stash() hands the raw tensor to
/// a background worker and returns immediately, so the forward pass of layer
/// i overlaps the compression of layer i-1 (the paper's GPU pipeline, ported
/// to the CPU substrate). A bounded pending queue (default depth 2 = classic
/// double buffering) applies backpressure: when the compute thread outruns
/// the compressor it blocks on stash() instead of accumulating raw tensors,
/// which would defeat the memory budget. retrieve() waits until the worker
/// has encoded the handle, then decodes — the lossy roundtrip is exactly the
/// synchronous CodecStore's, just off the critical path.
class AsyncCodecStore : public ActivationStore {
 public:
  explicit AsyncCodecStore(std::shared_ptr<ActivationCodec> codec,
                           std::size_t queue_depth = 2);
  ~AsyncCodecStore() override;

  AsyncCodecStore(const AsyncCodecStore&) = delete;
  AsyncCodecStore& operator=(const AsyncCodecStore&) = delete;

  StashHandle stash(const std::string& layer, tensor::Tensor&& act) override;
  tensor::Tensor retrieve(StashHandle handle) override;

  /// Encoded bytes held plus raw bytes still waiting in the pending queue
  /// (those tensors are alive, so honest accounting includes them).
  std::size_t held_bytes() const override;
  std::map<std::string, StoreStats> stats() const override;
  void reset_stats() override;

  /// Block until every pending stash has been encoded.
  void drain();

  ActivationCodec& codec() { return *codec_; }

 private:
  struct Pending {
    StashHandle handle;
    std::string layer;
    tensor::Tensor raw;
  };

  void worker_loop();

  std::shared_ptr<ActivationCodec> codec_;
  const std::size_t queue_depth_;

  mutable std::mutex mu_;
  std::condition_variable queue_space_;  ///< signalled when the queue shrinks
  std::condition_variable work_ready_;   ///< signalled when work arrives/stops
  std::condition_variable encoded_cv_;   ///< signalled when an encode finishes
  std::deque<Pending> queue_;
  bool in_flight_ = false;               ///< worker is encoding right now
  bool stop_ = false;
  std::unordered_map<StashHandle, EncodedActivation> encoded_;
  std::unordered_map<StashHandle, std::exception_ptr> failed_;
  StashHandle next_ = 1;
  std::size_t pending_raw_bytes_ = 0;
  std::size_t encoded_bytes_ = 0;
  std::map<std::string, StoreStats> stats_;

  std::thread worker_;  ///< started last, joined first
};

}  // namespace ebct::nn
