#pragma once

/// \file activation_store.hpp
/// Strategy interface for stashing forward-pass activations until the
/// backward pass needs them. This is the seam the paper's framework plugs
/// into: the baseline keeps raw tensors, the framework keeps SZ-compressed
/// bytes, and the comparison baselines (lossless, JPEG-ACT) keep their own
/// encodings — all behind the same stash/retrieve contract, so every memory
/// strategy runs through identical training code.
///
/// Two channels share the handle space:
///  - stash()/retrieve(): the compressible channel (conv inputs — what the
///    paper lossily compresses). Implementations may transform the tensor.
///  - stash_exact()/retrieve_exact(): byte-preserving layer state that must
///    round-trip exactly (batchnorm's normalised activations, pooling argmax
///    indices, linear/LRN saved inputs). The default keeps it raw in RAM;
///    the tiered pager (memory/pager.hpp) pages it against the byte budget
///    without ever routing it through a lossy codec. Layers only divert
///    their state here when pages_layer_state() says the store wants it, so
///    the fast member/arena paths stay untouched under the default stores.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace ebct::nn {

class WindowEncoder;  // streaming.hpp — per-window streaming capability
class WindowDecoder;

/// Opaque ticket for a stashed activation.
using StashHandle = std::uint64_t;

/// Per-layer compression bookkeeping, aggregated across an iteration.
struct StoreStats {
  std::size_t stashed_tensors = 0;
  std::size_t original_bytes = 0;
  std::size_t stored_bytes = 0;
  double compression_ratio() const {
    return stored_bytes == 0 ? 0.0
                             : static_cast<double>(original_bytes) /
                                   static_cast<double>(stored_bytes);
  }
};

class ActivationStore {
 public:
  virtual ~ActivationStore() = default;

  /// Take ownership of `act` (the input activation of `layer`) until
  /// retrieve(). Implementations may transform it (compress, offload, ...).
  virtual StashHandle stash(const std::string& layer, tensor::Tensor&& act) = 0;

  /// Destructive pop: return the (possibly lossily reconstructed) activation.
  virtual tensor::Tensor retrieve(StashHandle handle) = 0;

  /// Bytes currently held by the store (the quantity the paper reduces).
  virtual std::size_t held_bytes() const = 0;

  /// Per-layer statistics accumulated since the last reset_stats().
  virtual std::map<std::string, StoreStats> stats() const { return {}; }
  virtual void reset_stats() {}

  /// True when the store wants layers to route their byte-exact saved state
  /// (stash_exact) through it instead of private members — the budgeted
  /// pager returns true so every saved-for-backward byte is governed by one
  /// budget. Default stores return false and layers keep their fast paths.
  virtual bool pages_layer_state() const { return false; }

  /// Byte-preserving channel: the returned tensor is bit-identical to the
  /// stashed one (safe for bitcast index data). Layers only call these
  /// when pages_layer_state() is true, so the default (for stores that
  /// never claim layer state) throws rather than silently hoarding.
  virtual StashHandle stash_exact(const std::string& layer, tensor::Tensor&& t);
  virtual tensor::Tensor retrieve_exact(StashHandle handle);

  /// Hint that the consumer is about to replay handles in LIFO order (the
  /// backward pass); prefetching stores start fetching ahead. Default no-op.
  virtual void prepare_backward() {}
};

/// Baseline store: keeps raw tensors (what stock Caffe/TensorFlow do).
class RawStore : public ActivationStore {
 public:
  StashHandle stash(const std::string& layer, tensor::Tensor&& act) override;
  tensor::Tensor retrieve(StashHandle handle) override;
  std::size_t held_bytes() const override { return held_bytes_; }
  std::map<std::string, StoreStats> stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }

 private:
  struct Entry {
    tensor::Tensor t;
  };
  std::unordered_map<StashHandle, Entry> entries_;
  StashHandle next_ = 1;
  std::size_t held_bytes_ = 0;
  std::map<std::string, StoreStats> stats_;
};

/// A serialized activation produced by an ActivationCodec.
struct EncodedActivation {
  std::vector<std::uint8_t> bytes;
  tensor::Shape shape;
  std::string layer;
};

/// Pluggable lossy/lossless encoder for activations. The SZ-based framework
/// codec, the lossless baseline and the JPEG-ACT baseline all implement this.
/// Concrete codecs are usually obtained by name through the CodecRegistry
/// (core/codec_registry.hpp) rather than constructed directly.
class ActivationCodec {
 public:
  virtual ~ActivationCodec() = default;
  virtual EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) = 0;
  virtual tensor::Tensor decode(const EncodedActivation& enc) = 0;
  virtual std::string name() const = 0;

  /// Compression ratio of the most recent encode, per layer. Optional stat
  /// hook: codecs that don't track ratios report nothing and consumers
  /// (IterationRecord's mean ratio, the benches) degrade gracefully.
  virtual std::map<std::string, double> last_ratios() const { return {}; }

  /// True when encode(a, t) and encode(b, t) are guaranteed byte-identical
  /// for every tensor t *right now* — i.e. the codec's transform does not
  /// depend on which of the two layer names it runs under. The pager's
  /// shared-stash dedup only aliases two puts when this holds, so a codec
  /// with per-layer state (adaptive error bounds, per-layer quality) must
  /// answer from its current configuration. Default is the safe "no".
  virtual bool encoding_layer_invariant(const std::string& /*a*/,
                                        const std::string& /*b*/) const {
    return false;
  }

  /// Streaming capability hooks (nn/streaming.hpp). A codec that can encode
  /// or decode fixed float windows without materialising a Tensor returns a
  /// fresh product object; the defaults return nullptr and
  /// StreamingEncoder/StreamingDecoder fall back to block-buffering through
  /// encode()/decode(). A native product MUST produce payload bytes
  /// byte-identical to the one-shot encode()/decode() path for the same
  /// window (layer name nn::kStreamLayer) — test_serve asserts this.
  /// Products are used from a single thread but may outlive concurrent use
  /// of the codec by other sessions, so they must not share mutable codec
  /// state.
  virtual std::unique_ptr<WindowEncoder> make_window_encoder();
  virtual std::unique_ptr<WindowDecoder> make_window_decoder();
};

/// Capability sub-interface of ActivationCodec: a codec whose per-element
/// reconstruction error is controlled by an installable per-layer absolute
/// bound. This is the seam the adaptive scheme (core/adaptive.hpp) programs
/// against — phases 1-4 run for any codec implementing it and silently
/// disable for unbounded codecs such as JPEG-ACT. Implementations inherit
/// both ActivationCodec and ErrorBoundedCodec.
class ErrorBoundedCodec {
 public:
  virtual ~ErrorBoundedCodec() = default;

  /// Install the adaptive per-layer absolute bound (phase 3 output).
  virtual void set_layer_bound(const std::string& layer, double eb) = 0;

  /// Bound currently in force for `layer` (base/bootstrap bound when unset).
  virtual double layer_bound(const std::string& layer) const = 0;

  /// Whether bounds installed now actually constrain the error. Composite
  /// codecs (CodecPolicy) return false when no member is error-bounded, so
  /// the adaptive scheme can tell a plumbing-only implementation from a
  /// real one.
  virtual bool error_bounded() const { return true; }
};

/// Store that routes activations through an ActivationCodec, holding only the
/// encoded bytes between forward and backward.
///
/// The asynchronous double-buffered variant that used to live here
/// (AsyncCodecStore, with its dedicated worker thread) is retired: the
/// tiered pager's PagedStore (memory/pager.hpp) provides the same
/// off-critical-path encode by submitting tasks to the shared work-stealing
/// pool, plus budget enforcement and a disk tier on top.
class CodecStore : public ActivationStore {
 public:
  explicit CodecStore(std::shared_ptr<ActivationCodec> codec) : codec_(std::move(codec)) {}

  StashHandle stash(const std::string& layer, tensor::Tensor&& act) override;
  tensor::Tensor retrieve(StashHandle handle) override;
  std::size_t held_bytes() const override { return held_bytes_; }
  std::map<std::string, StoreStats> stats() const override { return stats_; }
  void reset_stats() override { stats_.clear(); }

  ActivationCodec& codec() { return *codec_; }

 private:
  std::shared_ptr<ActivationCodec> codec_;
  std::unordered_map<StashHandle, EncodedActivation> entries_;
  StashHandle next_ = 1;
  std::size_t held_bytes_ = 0;
  std::map<std::string, StoreStats> stats_;
};

}  // namespace ebct::nn
