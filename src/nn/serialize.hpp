#pragma once

/// \file serialize.hpp
/// Model checkpointing: save/restore all learnable parameters and their
/// momentum buffers to a compact binary format. The paper's Fig. 9
/// methodology ("pre-train, snapshot every epoch, resume from snapshots with
/// injected error") needs exactly this.
///
/// Format (little-endian):
///   magic "EBCK" | u32 version | u64 param_count
///   per param: u64 name_len | name bytes | u64 numel |
///              numel floats (value) | numel floats (momentum)
/// Restore matches parameters by name and requires identical shapes.

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace ebct::nn {

/// Serialize every parameter (value + momentum) of `net` into bytes.
std::vector<std::uint8_t> save_checkpoint(Network& net);

/// Write save_checkpoint() output to a file. Throws on I/O failure.
void save_checkpoint_file(Network& net, const std::string& path);

/// Restore parameters by name. Throws if a stored parameter is missing from
/// the network or has mismatched size. Parameters in the network that are
/// absent from the checkpoint are left untouched (allows partial restores).
void load_checkpoint(Network& net, std::span<const std::uint8_t> bytes);

void load_checkpoint_file(Network& net, const std::string& path);

}  // namespace ebct::nn
