#include "nn/sgd.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace ebct::nn {

double StepLr::lr(std::size_t iteration) const {
  double rate = base_;
  for (std::size_t t = step_; t <= iteration; t += step_) rate *= gamma_;
  return rate;
}

void Sgd::step(std::span<Param* const> params, double lr) {
  for (Param* p : params) {
    const double wd = opts_.weight_decay * p->weight_decay_multiplier;
    const float mu = static_cast<float>(opts_.momentum);
    const float flr = static_cast<float>(lr);
    auto w = p->value.span();
    auto g = p->grad.span();
    auto v = p->momentum.span();
    tensor::parallel_for(w.size(), [&](std::size_t i) {
      const float grad = g[i] + static_cast<float>(wd) * w[i];
      v[i] = mu * v[i] + grad;
      w[i] -= flr * v[i];
      g[i] = 0.0f;
    });
  }
}

double Sgd::momentum_mean_abs(std::span<Param* const> params) {
  double acc = 0.0;
  std::size_t count = 0;
  for (Param* p : params) {
    acc += tensor::mean_abs(p->momentum.span()) * static_cast<double>(p->momentum.numel());
    count += p->momentum.numel();
  }
  return count ? acc / static_cast<double>(count) : 0.0;
}

double Sgd::gradient_mean_abs(std::span<Param* const> params) {
  double acc = 0.0;
  std::size_t count = 0;
  for (Param* p : params) {
    acc += tensor::mean_abs(p->grad.span()) * static_cast<double>(p->grad.numel());
    count += p->grad.numel();
  }
  return count ? acc / static_cast<double>(count) : 0.0;
}

}  // namespace ebct::nn
