#pragma once

/// \file simple_layers.hpp
/// Lightweight layers: ReLU (bitmask backward), Flatten, Dropout.
/// None of these route through the ActivationStore — the paper compresses
/// convolutional inputs only; these layers keep compact private state.

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace ebct::nn {

/// Rectified linear unit. Backward needs only the sign of the forward
/// output, kept as a 1 bit/element mask (64x smaller than the activation).
class ReLU : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string graph_op() const override { return "relu"; }
  tensor::Shape output_shape(const tensor::Shape& input) const override { return input; }
  bool replayable() const override { return true; }
  /// max(x, 0) without rebuilding the sign mask.
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;

 private:
  std::vector<std::uint64_t> mask_;
  tensor::Shape shape_;
};

/// Reshape [N, C, H, W] -> [N, C*H*W]; backward restores the shape.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : Layer(std::move(name)) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  tensor::Shape output_shape(const tensor::Shape& input) const override {
    return tensor::Shape{input.n(), input.numel() / input.n()};
  }
  bool replayable() const override { return true; }
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;

 private:
  tensor::Shape shape_;
};

/// Inverted dropout: scales kept units by 1/(1-p) at train time so eval
/// needs no rescaling. Mask stored as one bit per element.
class Dropout : public Layer {
 public:
  Dropout(std::string name, double p, std::uint64_t seed)
      : Layer(std::move(name)), p_(p), rng_(seed) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  tensor::Shape output_shape(const tensor::Shape& input) const override { return input; }

  double rate() const { return p_; }

 private:
  double p_;
  tensor::Rng rng_;
  std::vector<std::uint64_t> mask_;
  bool train_mode_ = false;
};

}  // namespace ebct::nn
