#include "nn/lrn.hpp"

#include <cmath>

#include "tensor/parallel.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Lrn::forward(const Tensor& input, bool /*train*/) {
  const Shape& s = input.shape();
  saved_input_ = input.clone();
  scale_ = Tensor(s);
  Tensor out(s);
  const std::size_t C = s.c(), hw = s.h() * s.w();
  const std::size_t half = spec_.size / 2;
  const double a = spec_.alpha / static_cast<double>(spec_.size);
  tensor::parallel_for(s.n() * hw, [&](std::size_t p) {
    const std::size_t n = p / hw, i = p % hw;
    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t lo = c >= half ? c - half : 0;
      const std::size_t hi = std::min(C - 1, c + half);
      double acc = 0.0;
      for (std::size_t cc = lo; cc <= hi; ++cc) {
        const double v = input.data()[(n * C + cc) * hw + i];
        acc += v * v;
      }
      const std::size_t idx = (n * C + c) * hw + i;
      const double sc = spec_.k + a * acc;
      scale_[idx] = static_cast<float>(sc);
      out[idx] = static_cast<float>(input[idx] * std::pow(sc, -spec_.beta));
    }
  });
  // Under a paging store both saved tensors go through the byte-exact
  // channel so the memory budget governs them; stash order (input, then
  // scale) is the reverse of backward's retrieve order, keeping the
  // pager's LIFO prefetch heuristic accurate.
  if (store_ != nullptr && store_->pages_layer_state()) {
    saved_handle_ = store_->stash_exact(name_, std::move(saved_input_));
    scale_handle_ = store_->stash_exact(name_ + ".scale", std::move(scale_));
    saved_paged_ = true;
  } else {
    saved_paged_ = false;
  }
  return out;
}

Tensor Lrn::replay_forward(const Tensor& input) const {
  const Shape& s = input.shape();
  Tensor out(s);
  const std::size_t C = s.c(), hw = s.h() * s.w();
  const std::size_t half = spec_.size / 2;
  const double a = spec_.alpha / static_cast<double>(spec_.size);
  // Same window scan as forward, minus the scale_ save — `sc` is computed
  // with the identical float op sequence so the bytes match.
  tensor::parallel_for(s.n() * hw, [&](std::size_t p) {
    const std::size_t n = p / hw, i = p % hw;
    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t lo = c >= half ? c - half : 0;
      const std::size_t hi = std::min(C - 1, c + half);
      double acc = 0.0;
      for (std::size_t cc = lo; cc <= hi; ++cc) {
        const double v = input.data()[(n * C + cc) * hw + i];
        acc += v * v;
      }
      const std::size_t idx = (n * C + c) * hw + i;
      const double sc = spec_.k + a * acc;
      out[idx] = static_cast<float>(input[idx] * std::pow(sc, -spec_.beta));
    }
  });
  return out;
}

Tensor Lrn::backward(const Tensor& grad_output) {
  if (saved_paged_) {
    scale_ = store_->retrieve_exact(scale_handle_);
    saved_input_ = store_->retrieve_exact(saved_handle_);
    saved_paged_ = false;
  }
  const Shape& s = saved_input_.shape();
  Tensor grad(s);
  const std::size_t C = s.c(), hw = s.h() * s.w();
  const std::size_t half = spec_.size / 2;
  const double a = spec_.alpha / static_cast<double>(spec_.size);
  // d out_c / d x_j = scale_c^{-beta} * [c==j] -
  //   2*a*beta * x_c * x_j * scale_c^{-beta-1}  (j in window of c)
  tensor::parallel_for(s.n() * hw, [&](std::size_t p) {
    const std::size_t n = p / hw, i = p % hw;
    for (std::size_t j = 0; j < C; ++j) {
      const std::size_t jdx = (n * C + j) * hw + i;
      double acc = grad_output[jdx] * std::pow(static_cast<double>(scale_[jdx]), -spec_.beta);
      const std::size_t lo = j >= half ? j - half : 0;
      const std::size_t hi = std::min(C - 1, j + half);
      for (std::size_t c = lo; c <= hi; ++c) {
        const std::size_t cdx = (n * C + c) * hw + i;
        acc -= 2.0 * a * spec_.beta * saved_input_[cdx] * saved_input_[jdx] *
               std::pow(static_cast<double>(scale_[cdx]), -spec_.beta - 1.0) *
               grad_output[cdx];
      }
      grad[jdx] = static_cast<float>(acc);
    }
  });
  saved_input_ = Tensor();
  scale_ = Tensor();
  return grad;
}

}  // namespace ebct::nn
