#pragma once

/// \file concat.hpp
/// Multi-branch block with channel concatenation (the Inception building
/// block): every branch consumes the same input; outputs are concatenated
/// along C. Backward splits the gradient by channel range, runs each branch
/// backward, and sums the per-branch input gradients.

#include <functional>
#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace ebct::nn {

class ConcatBranches : public Layer {
 public:
  /// Each branch is a layer sequence; an empty branch acts as identity.
  ConcatBranches(std::string name,
                 std::vector<std::vector<std::unique_ptr<Layer>>> branches);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override;
  tensor::Shape output_shape(const tensor::Shape& input) const override;
  void set_store(ActivationStore* store) override;
  std::size_t activation_bytes(const tensor::Shape& input) const override;

  /// Visit the block itself, then every child in every branch.
  void visit(const std::function<void(Layer&)>& fn) override;

  /// IR: one chain per branch from the shared input tensor (an empty
  /// branch passes the input tensor through), joined by a "concat" node —
  /// the edges that expose the branch-head layers as co-consumers of one
  /// produced tensor (the pager's shared-stash groups come from this).
  graph::TensorId build_graph(graph::Graph& g, graph::TensorId input) const override;

  /// Mirrors backward(): branches in reverse forward order, each reversed.
  void backward_schedule(std::vector<const Layer*>& order) const override;

  std::size_t num_branches() const { return branches_.size(); }

 private:
  tensor::Shape branch_output_shape(std::size_t b, const tensor::Shape& input) const;

  std::vector<std::vector<std::unique_ptr<Layer>>> branches_;
  std::vector<std::size_t> out_channels_;  // per branch, from last forward
  tensor::Shape in_shape_;
};

}  // namespace ebct::nn
