#pragma once

/// \file streaming.hpp
/// Chunked streaming codec API: encode/decode a float payload of any size
/// in bounded windows, so the full tensor never needs to be resident. This
/// is the constant-memory seam the serving subsystem (src/serve/) and the
/// stdin/stdout mode of ebct_compress_cli are built on — the push-style
/// (SAX-like) idiom LJSON uses for parse-while-reading /
/// print-while-writing, applied to the activation codecs.
///
/// Format ("EBCS" container, all integers little-endian):
///
///   "EBCS" | u8 version=1 | u8 reserved=0 | u16 spec_len | spec bytes |
///   u32 window_elems |
///   blocks: { u32 payload_len | u32 numel | payload } ...   (numel >= 1)
///   terminator: u32 0 | u32 0 | u64 total_numel
///
/// Each block's payload is EXACTLY the bytes the underlying registry codec's
/// one-shot encode() produces for that window's floats (shape
/// nchw(1,1,1,numel), layer name "stream"). The window size is a property of
/// the stream, fixed at encoder construction and recorded in the header —
/// never of how the caller happens to feed bytes. Two consequences, which
/// together extend the repo's determinism contract across the chunk
/// boundary:
///
///  - Feed granularity is invisible: pushing the payload 1 KiB at a time,
///    64 KiB at a time, or whole produces bitwise-identical container bytes.
///  - Every window round-trips exactly as the one-shot codec path would:
///    decoding a container yields the concatenation of
///    codec->decode(codec->encode("stream", window_i)) for each window.
///
/// Memory: an encoder holds at most one window of staged floats plus one
/// window's encoded bytes (and the codec's own scratch); a decoder holds at
/// most one framed block plus its decoded floats. Both expose the cap.
///
/// Codecs may accelerate the per-window transform through the
/// WindowEncoder/WindowDecoder capability hooks on ActivationCodec
/// (activation_store.hpp): a native implementation skips the fallback's
/// tensor copy and reuses compressor scratch across windows, but must
/// produce byte-identical payloads to the one-shot encode()/decode() —
/// tests/test_serve.cpp asserts this for every in-tree codec.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/activation_store.hpp"

namespace ebct::nn {

/// Destination for produced container/output bytes. Called zero or more
/// times per feed(); the pointed-to range is only valid for the call.
using ByteSink = std::function<void(const std::uint8_t*, std::size_t)>;

/// Destination for decoded floats, same lifetime rules as ByteSink.
using FloatSink = std::function<void(const float*, std::size_t)>;

/// Capability product: encodes one window of floats to the codec's payload
/// bytes. encode_window(data, n, out) must leave `out` holding exactly
/// ActivationCodec::encode("stream", T) .bytes for a tensor T of shape
/// nchw(1,1,1,n) containing data[0..n) — the streamed and one-shot paths
/// stay bitwise interchangeable. Implementations may keep scratch across
/// calls (that is the point of the hook); they are used from one thread.
class WindowEncoder {
 public:
  virtual ~WindowEncoder() = default;
  virtual void encode_window(const float* data, std::size_t n,
                             std::vector<std::uint8_t>& out) = 0;
};

/// Capability product: decodes one window's payload bytes back to floats.
/// Must reproduce ActivationCodec::decode() of the matching
/// EncodedActivation bit-for-bit.
class WindowDecoder {
 public:
  virtual ~WindowDecoder() = default;
  virtual void decode_window(const std::uint8_t* payload, std::size_t payload_len,
                             std::size_t numel, std::vector<float>& out) = 0;
};

/// Layer name every streamed window is encoded under. Constant so container
/// bytes are a pure function of (spec, window_elems, payload).
inline constexpr const char* kStreamLayer = "stream";

/// Bounds on the per-stream window size (elements). The default, 64 Ki
/// floats = 256 KiB raw per window, keeps resident memory small while
/// amortising per-window codec setup.
inline constexpr std::size_t kMinWindowElems = 256;
inline constexpr std::size_t kMaxWindowElems = std::size_t{1} << 26;
inline constexpr std::size_t kDefaultWindowElems = 64 * 1024;

/// Push-style streaming encoder. Feed float data in any granularity;
/// complete windows are encoded and framed into the ByteSink as they fill.
/// finish() flushes the tail window (if any), the terminator and the
/// element-count trailer. reset() rearms for a new payload, retaining
/// buffer capacity — serve sessions reuse one encoder across requests.
class StreamingEncoder {
 public:
  /// `spec` is recorded verbatim in the container header (a decoder
  /// rebuilds the codec from it); `codec` must be the codec that spec
  /// resolves to. window_elems is clamped to [kMinWindowElems,
  /// kMaxWindowElems]; 0 selects kDefaultWindowElems.
  StreamingEncoder(std::shared_ptr<ActivationCodec> codec, std::string spec,
                   std::size_t window_elems, ByteSink sink);

  /// Push n floats.
  void feed(const float* data, std::size_t n);

  /// Push raw bytes of float32 data; handles reads that split a float
  /// (stdin pipes deliver arbitrary byte counts).
  void feed_bytes(const std::uint8_t* bytes, std::size_t n);

  /// Flush the tail window, terminator and trailer. Throws
  /// std::invalid_argument if buffered bytes do not form whole floats.
  void finish();

  /// Rearm for a new payload through the same sink (capacity retained).
  void reset();

  /// Re-target the encoder at a different codec/spec/window/sink, keeping
  /// the staging buffers' capacity — how pooled serve sessions reuse one
  /// encoder across requests with different specs.
  void rebind(std::shared_ptr<ActivationCodec> codec, std::string spec,
              std::size_t window_elems, ByteSink sink);

  std::size_t window_elems() const { return window_elems_; }
  std::uint64_t floats_in() const { return floats_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }

  /// Upper bound on bytes this encoder keeps resident: one staged window
  /// plus one encoded window (conservatively 2x raw, lossy codecs emit
  /// less) plus the float-split remainder.
  std::size_t resident_cap_bytes() const { return 3 * window_elems_ * sizeof(float) + 4; }

 private:
  void emit_header();
  void flush_window();
  void sink_bytes(const void* data, std::size_t n);

  std::shared_ptr<ActivationCodec> codec_;
  std::unique_ptr<WindowEncoder> window_encoder_;  ///< native or fallback
  std::string spec_;
  std::size_t window_elems_;
  ByteSink sink_;
  std::vector<float> window_;          ///< staged floats, < window_elems_
  std::vector<std::uint8_t> encoded_;  ///< per-window payload scratch
  std::uint8_t byte_carry_[4] = {0, 0, 0, 0};
  std::size_t byte_carry_len_ = 0;
  bool header_emitted_ = false;
  bool finished_ = false;
  std::uint64_t floats_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

/// Builds the codec a container names. The serve layer passes the
/// CodecRegistry; keeping it a callback keeps nn/ free of a dependency on
/// core/ (which already depends on nn/).
using CodecFactory =
    std::function<std::shared_ptr<ActivationCodec>(const std::string& spec)>;

/// Push-style streaming decoder for the EBCS container. Feed container
/// bytes in any granularity; each completed block is decoded and its floats
/// pushed into the FloatSink. finish() validates the terminator/trailer and
/// throws std::runtime_error on a truncated or malformed stream.
class StreamingDecoder {
 public:
  StreamingDecoder(CodecFactory factory, FloatSink sink);

  void feed(const std::uint8_t* bytes, std::size_t n);
  void finish();
  void reset();

  /// Re-target at a new sink (pooled reuse), keeping buffer capacity.
  void rebind(FloatSink sink);

  /// Spec recorded in the header (empty until the header has been parsed).
  const std::string& spec() const { return spec_; }
  std::size_t window_elems() const { return window_elems_; }
  std::uint64_t floats_out() const { return floats_out_; }
  bool done() const { return state_ == State::kDone; }

  /// Bytes kept resident: at most one framed block plus its decoded floats.
  /// A block payload is capped at 4x the raw window + 1 MiB (codecs can
  /// expand incompressible data, but not unboundedly) — larger frames fail
  /// loudly as malformed.
  std::size_t max_block_bytes() const {
    return 4 * window_elems_ * sizeof(float) + (std::size_t{1} << 20);
  }

 private:
  enum class State { kMagic, kHeader, kBlockHeader, kBlockPayload, kTrailer, kDone };

  void advance();  ///< consume as much of staging_ as the state allows

  CodecFactory factory_;
  FloatSink sink_;
  std::shared_ptr<ActivationCodec> codec_;
  std::unique_ptr<WindowDecoder> window_decoder_;
  std::string spec_;
  std::size_t window_elems_ = 0;
  State state_ = State::kMagic;
  std::vector<std::uint8_t> staging_;  ///< unconsumed input prefix
  std::size_t need_ = 8;               ///< bytes required to advance
  std::uint32_t block_payload_len_ = 0;
  std::uint32_t block_numel_ = 0;
  std::vector<float> decoded_;  ///< per-window float scratch
  std::uint64_t floats_out_ = 0;
};

/// One-shot helpers over the streaming classes — the reference "one-shot
/// path" the determinism tests compare streamed output against, and the
/// convenience API for callers with the payload already resident.
std::vector<std::uint8_t> streaming_encode_all(std::shared_ptr<ActivationCodec> codec,
                                               const std::string& spec,
                                               const float* data, std::size_t n,
                                               std::size_t window_elems);
std::vector<float> streaming_decode_all(const CodecFactory& factory,
                                        const std::uint8_t* bytes, std::size_t n);

}  // namespace ebct::nn
