#pragma once

/// \file softmax_xent.hpp
/// Fused softmax + cross-entropy head. Not a Layer: it terminates the
/// network, producing the scalar loss and the gradient w.r.t. logits.
/// The per-sample loss rows are also where the paper's L statistics
/// (L̄, L_max) originate for the last layer.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace ebct::nn {

struct LossResult {
  double loss = 0.0;              ///< mean cross-entropy over the batch
  double accuracy = 0.0;          ///< top-1 accuracy over the batch
  tensor::Tensor grad_logits;     ///< dL/dlogits, already divided by batch size
};

class SoftmaxCrossEntropy {
 public:
  /// logits: [N, classes]; labels: N class indices.
  LossResult compute(const tensor::Tensor& logits, std::span<const std::int32_t> labels) const;

  /// Softmax probabilities only (evaluation).
  static tensor::Tensor softmax(const tensor::Tensor& logits);
};

}  // namespace ebct::nn
