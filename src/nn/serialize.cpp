#include "nn/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "tensor/bytes.hpp"

namespace ebct::nn {

namespace {
constexpr char kMagic[4] = {'E', 'B', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

using tensor::append_bytes;

template <typename T>
void put_pod(std::vector<std::uint8_t>& out, T v) {
  append_bytes(out, &v, sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::uint8_t>& in) {
  if (in.size() < sizeof(T)) throw std::runtime_error("checkpoint: truncated");
  T v;
  std::memcpy(&v, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return v;
}
}  // namespace

std::vector<std::uint8_t> save_checkpoint(Network& net) {
  std::vector<std::uint8_t> out;
  append_bytes(out, kMagic, 4);
  put_pod<std::uint32_t>(out, kVersion);
  const auto params = net.params();
  put_pod<std::uint64_t>(out, params.size());
  for (Param* p : params) {
    put_pod<std::uint64_t>(out, p->name.size());
    append_bytes(out, p->name.data(), p->name.size());
    put_pod<std::uint64_t>(out, p->value.numel());
    append_bytes(out, p->value.data(), p->value.bytes());
    append_bytes(out, p->momentum.data(), p->momentum.bytes());
  }
  return out;
}

void save_checkpoint_file(Network& net, const std::string& path) {
  const auto bytes = save_checkpoint(net);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("checkpoint: cannot open " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) throw std::runtime_error("checkpoint: short write " + path);
}

void load_checkpoint(Network& net, std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, 4) != 0)
    throw std::runtime_error("checkpoint: bad magic");
  bytes = bytes.subspan(4);
  const auto version = read_pod<std::uint32_t>(bytes);
  if (version != kVersion) throw std::runtime_error("checkpoint: unsupported version");

  std::unordered_map<std::string, Param*> by_name;
  for (Param* p : net.params()) by_name.emplace(p->name, p);

  const auto count = read_pod<std::uint64_t>(bytes);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint64_t>(bytes);
    if (bytes.size() < name_len) throw std::runtime_error("checkpoint: truncated name");
    std::string name(reinterpret_cast<const char*>(bytes.data()), name_len);
    bytes = bytes.subspan(name_len);
    const auto numel = read_pod<std::uint64_t>(bytes);
    const std::size_t blob = numel * sizeof(float);
    if (bytes.size() < 2 * blob) throw std::runtime_error("checkpoint: truncated data");

    auto it = by_name.find(name);
    if (it == by_name.end())
      throw std::runtime_error("checkpoint: unknown parameter " + name);
    Param* p = it->second;
    if (p->value.numel() != numel)
      throw std::runtime_error("checkpoint: size mismatch for " + name);
    std::memcpy(p->value.data(), bytes.data(), blob);
    std::memcpy(p->momentum.data(), bytes.data() + blob, blob);
    bytes = bytes.subspan(2 * blob);
  }
}

void load_checkpoint_file(Network& net, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("checkpoint: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) throw std::runtime_error("checkpoint: short read " + path);
  load_checkpoint(net, bytes);
}

}  // namespace ebct::nn
