#include "nn/softmax_xent.hpp"

#include <cmath>
#include <stdexcept>

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor SoftmaxCrossEntropy::softmax(const Tensor& logits) {
  const std::size_t n = logits.shape().n();
  const std::size_t k = logits.shape()[1];
  Tensor probs(logits.shape());
  for (std::size_t s = 0; s < n; ++s) {
    const float* row = logits.data() + s * k;
    float* prow = probs.data() + s * k;
    float mx = row[0];
    for (std::size_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      prow[j] = std::exp(row[j] - mx);
      denom += prow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t j = 0; j < k; ++j) prow[j] *= inv;
  }
  return probs;
}

LossResult SoftmaxCrossEntropy::compute(const Tensor& logits,
                                        std::span<const std::int32_t> labels) const {
  const std::size_t n = logits.shape().n();
  const std::size_t k = logits.shape()[1];
  if (labels.size() != n) throw std::invalid_argument("SoftmaxCrossEntropy: label count");

  LossResult r;
  r.grad_logits = softmax(logits);
  double loss = 0.0;
  std::size_t correct = 0;
  const float invn = 1.0f / static_cast<float>(n);
  for (std::size_t s = 0; s < n; ++s) {
    float* prow = r.grad_logits.data() + s * k;
    const auto y = static_cast<std::size_t>(labels[s]);
    if (y >= k) throw std::invalid_argument("SoftmaxCrossEntropy: label out of range");
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < k; ++j)
      if (prow[j] > prow[argmax]) argmax = j;
    if (argmax == y) ++correct;
    loss += -std::log(std::max(1e-12, static_cast<double>(prow[y])));
    prow[y] -= 1.0f;
    for (std::size_t j = 0; j < k; ++j) prow[j] *= invn;
  }
  r.loss = loss / static_cast<double>(n);
  r.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return r;
}

}  // namespace ebct::nn
