#include "nn/layer.hpp"

#include "graph/graph.hpp"

namespace ebct::nn {

graph::TensorId Layer::build_graph(graph::Graph& g, graph::TensorId input) const {
  return g.add_layer_node(*this, graph_op(), {input});
}

}  // namespace ebct::nn
