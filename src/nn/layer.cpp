#include "nn/layer.hpp"

#include <stdexcept>

#include "graph/graph.hpp"

namespace ebct::nn {

graph::TensorId Layer::build_graph(graph::Graph& g, graph::TensorId input) const {
  return g.add_layer_node(*this, graph_op(), {input});
}

tensor::Tensor Layer::replay_forward(const tensor::Tensor& /*input*/) const {
  throw std::logic_error(name_ + ": replay_forward on a non-replayable layer");
}

}  // namespace ebct::nn
