#include "nn/linear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

Linear::Linear(std::string name, std::size_t in_features, std::size_t out_features,
               tensor::Rng& rng)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_(name_ + ".weight", Shape{out_features, in_features}),
      bias_(name_ + ".bias", Shape{out_features}) {
  rng.fill_normal(weight_.value.span(), 0.0f,
                  static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_features))));
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  if (input.shape().rank() != 2 || input.shape()[1] != in_features_)
    throw std::invalid_argument(name_ + ": expected [N, " + std::to_string(in_features_) + "]");
  const std::size_t n = input.shape().n();
  Tensor out(Shape{n, out_features_});
  tensor::gemm_bt(input.data(), weight_.value.data(), out.data(), n, in_features_,
                  out_features_);
  tensor::parallel_for(n, out_features_, [&](std::size_t s) {
    float* row = out.data() + s * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
  });
  // The saved input is what the weight gradient needs in backward. Under a
  // paging store it is stashed byte-exact (budget-governed, spillable);
  // otherwise it stays a private member as before.
  if (store_ != nullptr && store_->pages_layer_state()) {
    saved_handle_ = store_->stash_exact(name_, input.clone());
    saved_paged_ = true;
  } else {
    saved_input_ = input.clone();
    saved_paged_ = false;
  }
  return out;
}

Tensor Linear::replay_forward(const Tensor& input) const {
  if (input.shape().rank() != 2 || input.shape()[1] != in_features_)
    throw std::invalid_argument(name_ + ": expected [N, " + std::to_string(in_features_) + "]");
  const std::size_t n = input.shape().n();
  Tensor out(Shape{n, out_features_});
  tensor::gemm_bt(input.data(), weight_.value.data(), out.data(), n, in_features_,
                  out_features_);
  tensor::parallel_for(n, out_features_, [&](std::size_t s) {
    float* row = out.data() + s * out_features_;
    for (std::size_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
  });
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (saved_paged_) {
    saved_input_ = store_->retrieve_exact(saved_handle_);
    saved_paged_ = false;
  }
  const std::size_t n = saved_input_.shape().n();
  // dW[out, in] += L^T[out, N] * x[N, in]
  tensor::gemm_at(grad_output.data(), saved_input_.data(), weight_.grad.data(),
                  out_features_, n, in_features_, /*accumulate=*/true);
  // Bias grad parallelises over column *ranges*: each j owns its
  // accumulator and sums samples in index order, so the result is
  // byte-identical to the serial loop at any thread count. Within a range
  // the walk stays row-major (s outer) so every grad_output cache line is
  // fetched once, not once per column sharing it.
  const std::size_t col_grain = std::max<std::size_t>(
      1, tensor::kParallelWorkGrain / std::max<std::size_t>(n, 1));
  tensor::sched::parallel_ranges(out_features_, col_grain, 0,
                                 [&](std::size_t jb, std::size_t je) {
                                   for (std::size_t s = 0; s < n; ++s) {
                                     const float* row = grad_output.data() + s * out_features_;
                                     for (std::size_t j = jb; j < je; ++j) {
                                       bias_.grad[j] += row[j];
                                     }
                                   }
                                 });
  // dX[N, in] = L[N, out] * W[out, in]
  Tensor grad_input(saved_input_.shape());
  tensor::gemm(grad_output.data(), weight_.value.data(), grad_input.data(), n,
               out_features_, in_features_);
  saved_input_ = Tensor();
  return grad_input;
}

}  // namespace ebct::nn
