#pragma once

/// \file conv2d.hpp
/// 2-D convolution implemented as im2col + GEMM, parallel over the batch.
/// This is the layer whose input activation the paper compresses: forward()
/// stashes the input through the ActivationStore and backward() retrieves
/// the (possibly lossily reconstructed) copy to form the weight gradient —
/// exactly the G = A x L data path analysed in §3.2.

#include "nn/layer.hpp"

namespace ebct::nn {

struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 3;    ///< kernel height (and width unless kernel_w set)
  std::size_t stride = 1;
  std::size_t pad = 1;       ///< vertical padding (and horizontal unless pad_w set)
  bool bias = true;
  /// Rectangular kernels (Inception's 1x7 / 7x1 factorisation): 0 means
  /// "same as kernel"; kNoOverride means "same as pad".
  std::size_t kernel_w = 0;
  static constexpr std::size_t kNoOverride = static_cast<std::size_t>(-1);
  std::size_t pad_w = kNoOverride;

  std::size_t kh() const { return kernel; }
  std::size_t kw() const { return kernel_w ? kernel_w : kernel; }
  std::size_t ph() const { return pad; }
  std::size_t pw() const { return pad_w == kNoOverride ? pad : pad_w; }
};

class Conv2d : public Layer {
 public:
  Conv2d(std::string name, Conv2dSpec spec, tensor::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override;
  bool uses_activation_store() const override { return true; }
  std::string graph_op() const override { return "conv"; }
  tensor::Shape output_shape(const tensor::Shape& input) const override;
  std::size_t activation_bytes(const tensor::Shape& input) const override {
    return input.numel() * sizeof(float);
  }
  bool replayable() const override { return true; }
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  /// 2 * K * out_elements (im2col GEMM), the dominant term of forward.
  double replay_flops(const tensor::Shape& input) const override;

  const Conv2dSpec& spec() const { return spec_; }
  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }

  /// Mean absolute value of the incoming loss (grad_output) observed in the
  /// most recent backward pass — the paper's per-layer L̄ statistic.
  double last_loss_mean_abs() const { return last_loss_mean_abs_; }
  /// Non-zero fraction of the stashed input in the most recent forward pass
  /// — the paper's sparsity ratio R.
  double last_input_density() const { return last_input_density_; }

 private:
  /// The im2col+GEMM+bias compute of forward(), with no member writes —
  /// shared by forward() and replay_forward() so both produce the same
  /// bytes by construction.
  tensor::Tensor compute(const tensor::Tensor& input) const;

  Conv2dSpec spec_;
  Param weight_;
  Param bias_;
  StashHandle input_handle_ = 0;
  tensor::Shape input_shape_;
  double last_loss_mean_abs_ = 0.0;
  double last_input_density_ = 1.0;
};

}  // namespace ebct::nn
