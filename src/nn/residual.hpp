#pragma once

/// \file residual.hpp
/// Composite residual block (ResNet): out = ReLU(main(x) + shortcut(x)).
/// The main path is a layer sequence; the shortcut is identity or a
/// projection (1x1 conv [+ BN]) when shape changes. Children share the
/// block's ActivationStore, so their conv inputs are compressed exactly like
/// top-level convolutions.

#include <functional>
#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "nn/simple_layers.hpp"

namespace ebct::nn {

class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::string name, std::vector<std::unique_ptr<Layer>> main_path,
                std::vector<std::unique_ptr<Layer>> shortcut_path);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override;
  tensor::Shape output_shape(const tensor::Shape& input) const override;
  void set_store(ActivationStore* store) override;
  std::size_t activation_bytes(const tensor::Shape& input) const override;

  /// Visit the block itself, then every child (including the output ReLU).
  void visit(const std::function<void(Layer&)>& fn) override;

  /// IR: main chain and shortcut chain from the same input tensor, joined
  /// by an explicit "add" node, then the output ReLU.
  graph::TensorId build_graph(graph::Graph& g, graph::TensorId input) const override;

  /// Mirrors backward(): output ReLU, main path reversed, shortcut
  /// reversed — deliberately *not* LIFO with respect to the forward
  /// stash order (the shortcut stashes last but is consumed last).
  void backward_schedule(std::vector<const Layer*>& order) const override;

 private:
  std::vector<std::unique_ptr<Layer>> main_;
  std::vector<std::unique_ptr<Layer>> shortcut_;
  ReLU out_relu_;
};

}  // namespace ebct::nn
