#include "nn/concat.hpp"

#include <cstring>
#include <stdexcept>

#include "graph/graph.hpp"
#include "tensor/ops.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

ConcatBranches::ConcatBranches(std::string name,
                               std::vector<std::vector<std::unique_ptr<Layer>>> branches)
    : Layer(std::move(name)), branches_(std::move(branches)) {
  if (branches_.empty()) throw std::invalid_argument("ConcatBranches: no branches");
}

void ConcatBranches::set_store(ActivationStore* store) {
  store_ = store;
  for (auto& branch : branches_)
    for (auto& l : branch) l->set_store(store);
}

void ConcatBranches::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  for (auto& branch : branches_)
    for (auto& l : branch) l->visit(fn);
}

graph::TensorId ConcatBranches::build_graph(graph::Graph& g, graph::TensorId input) const {
  std::vector<graph::TensorId> outs;
  outs.reserve(branches_.size());
  for (const auto& branch : branches_) {
    graph::TensorId t = input;
    for (const auto& l : branch) t = l->build_graph(g, t);
    outs.push_back(t);
  }
  return g.add_node(name_, "concat", this, std::move(outs),
                    output_shape(g.tensor(input).shape));
}

void ConcatBranches::backward_schedule(std::vector<const Layer*>& order) const {
  for (std::size_t b = branches_.size(); b > 0; --b) {
    const auto& branch = branches_[b - 1];
    for (std::size_t i = branch.size(); i > 0; --i)
      branch[i - 1]->backward_schedule(order);
  }
}

Shape ConcatBranches::branch_output_shape(std::size_t b, const Shape& input) const {
  Shape s = input;
  for (const auto& l : branches_[b]) s = l->output_shape(s);
  return s;
}

Shape ConcatBranches::output_shape(const Shape& input) const {
  Shape first = branch_output_shape(0, input);
  std::size_t channels = first.c();
  for (std::size_t b = 1; b < branches_.size(); ++b) {
    const Shape s = branch_output_shape(b, input);
    if (s.h() != first.h() || s.w() != first.w())
      throw std::logic_error(name_ + ": branch spatial shapes differ");
    channels += s.c();
  }
  return Shape::nchw(first.n(), channels, first.h(), first.w());
}

std::size_t ConcatBranches::activation_bytes(const Shape& input) const {
  std::size_t total = 0;
  for (const auto& branch : branches_) {
    Shape s = input;
    for (const auto& l : branch) {
      total += l->activation_bytes(s);
      s = l->output_shape(s);
    }
  }
  return total;
}

Tensor ConcatBranches::forward(const Tensor& input, bool train) {
  in_shape_ = input.shape();
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  out_channels_.clear();
  for (auto& branch : branches_) {
    if (branch.empty()) {
      outs.push_back(input.clone());
    } else {
      Tensor y = branch.front()->forward(input, train);
      for (std::size_t i = 1; i < branch.size(); ++i) y = branch[i]->forward(y, train);
      outs.push_back(std::move(y));
    }
    out_channels_.push_back(outs.back().shape().c());
  }
  const Shape os = output_shape(in_shape_);
  Tensor out(os);
  const std::size_t n = os.n(), hw = os.h() * os.w();
  std::size_t c_off = 0;
  for (const Tensor& y : outs) {
    const std::size_t c = y.shape().c();
    for (std::size_t s = 0; s < n; ++s) {
      std::memcpy(out.data() + (s * os.c() + c_off) * hw, y.data() + s * c * hw,
                  c * hw * sizeof(float));
    }
    c_off += c;
  }
  return out;
}

Tensor ConcatBranches::backward(const Tensor& grad_output) {
  const Shape& os = grad_output.shape();
  const std::size_t n = os.n(), hw = os.h() * os.w();
  Tensor grad_input(in_shape_, 0.0f);
  std::size_t c_off = 0;
  // Branches run backward in reverse forward order so nested stores pop in
  // LIFO order when a store implementation cares.
  std::vector<Tensor> slices(branches_.size());
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    const std::size_t c = out_channels_[b];
    Tensor g(Shape::nchw(n, c, os.h(), os.w()));
    for (std::size_t s = 0; s < n; ++s) {
      std::memcpy(g.data() + s * c * hw, grad_output.data() + (s * os.c() + c_off) * hw,
                  c * hw * sizeof(float));
    }
    slices[b] = std::move(g);
    c_off += c;
  }
  for (std::size_t b = branches_.size(); b > 0; --b) {
    auto& branch = branches_[b - 1];
    Tensor g = std::move(slices[b - 1]);
    for (std::size_t i = branch.size(); i > 0; --i) g = branch[i - 1]->backward(g);
    tensor::axpy(1.0f, g.span(), grad_input.span());
  }
  return grad_input;
}

std::vector<Param*> ConcatBranches::params() {
  std::vector<Param*> out;
  for (auto& branch : branches_)
    for (auto& l : branch)
      for (Param* p : l->params()) out.push_back(p);
  return out;
}

}  // namespace ebct::nn
