#include "nn/simple_layers.hpp"

#include "tensor/parallel.hpp"

namespace ebct::nn {

using tensor::Tensor;

namespace {
inline void set_bit(std::vector<std::uint64_t>& mask, std::size_t i, bool v) {
  if (v)
    mask[i >> 6] |= (1ULL << (i & 63));
  else
    mask[i >> 6] &= ~(1ULL << (i & 63));
}
inline bool get_bit(const std::vector<std::uint64_t>& mask, std::size_t i) {
  return (mask[i >> 6] >> (i & 63)) & 1ULL;
}
}  // namespace

Tensor ReLU::forward(const Tensor& input, bool /*train*/) {
  shape_ = input.shape();
  mask_.assign((input.numel() + 63) / 64, 0);
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool pos = input[i] > 0.0f;
    out[i] = pos ? input[i] : 0.0f;
    set_bit(mask_, i, pos);
  }
  return out;
}

Tensor ReLU::replay_forward(const Tensor& input) const {
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad(shape_);
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] = get_bit(mask_, i) ? grad_output[i] : 0.0f;
  }
  return grad;
}

Tensor Flatten::forward(const Tensor& input, bool /*train*/) {
  shape_ = input.shape();
  Tensor out = input.clone();
  out.reshape(output_shape(shape_));
  return out;
}

Tensor Flatten::replay_forward(const Tensor& input) const {
  Tensor out = input.clone();
  out.reshape(output_shape(input.shape()));
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad = grad_output.clone();
  grad.reshape(shape_);
  return grad;
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  train_mode_ = train;
  if (!train) return input.clone();
  mask_.assign((input.numel() + 63) / 64, 0);
  Tensor out(input.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool keep = rng_.uniform() >= p_;
    set_bit(mask_, i, keep);
    out[i] = keep ? input[i] * scale : 0.0f;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!train_mode_) return grad_output.clone();
  Tensor grad(grad_output.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    grad[i] = get_bit(mask_, i) ? grad_output[i] * scale : 0.0f;
  }
  return grad;
}

}  // namespace ebct::nn
