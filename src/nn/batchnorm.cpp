#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/parallel.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

BatchNorm::BatchNorm(std::string name, std::size_t channels, double momentum, double eps)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name_ + ".gamma", Shape{channels}),
      beta_(name_ + ".beta", Shape{channels}),
      running_mean_(channels, 0.0f),
      running_var_(channels, 1.0f) {
  gamma_.value.fill(1.0f);
  beta_.value.zero();
  // Scale/shift conventionally exempt from weight decay.
  gamma_.weight_decay_multiplier = 0.0;
  beta_.weight_decay_multiplier = 0.0;
}

Tensor BatchNorm::forward(const Tensor& input, bool train) {
  if (input.shape().rank() != 4 || input.shape().c() != channels_)
    throw std::invalid_argument(name_ + ": expected NCHW with C=" + std::to_string(channels_));
  in_shape_ = input.shape();
  const std::size_t n = in_shape_.n(), hw = in_shape_.h() * in_shape_.w();
  const std::size_t chw = channels_ * hw;
  const double count = static_cast<double>(n * hw);

  Tensor out(in_shape_);
  // When the store pages layer state, x_hat goes through it as a byte-exact
  // tensor (governed by the memory budget, spillable to disk); otherwise it
  // stays in the malloc-free scratch arena.
  const bool paged = store_ != nullptr && store_->pages_layer_state();
  Tensor x_hat_paged_t;
  float* x_hat;
  if (paged) {
    x_hat_paged_t = Tensor(in_shape_);
    x_hat = x_hat_paged_t.data();
  } else {
    x_hat = x_hat_.acquire(in_shape_.numel());
  }
  inv_std_.assign(channels_, 0.0f);

  // Channels are few (well under the elementwise grain) but each sweeps the
  // whole batch — pass the per-channel cost so the loop actually forks.
  tensor::parallel_for(channels_, 4 * n * hw, [&](std::size_t c) {
    double mean, var;
    if (train) {
      // Single Welford sweep per channel: mean and M2 accumulate together
      // in one pass, immune to the cancellation of the old sum/sum-of-
      // squares formulation when |mean| >> stddev. The element order is a
      // pure function of the shape (sample-major, index order), so the
      // statistics are byte-identical at every pool size.
      double mean_w = 0.0, m2 = 0.0;
      std::size_t k = 0;
      for (std::size_t s = 0; s < n; ++s) {
        const float* src = input.data() + s * chw + c * hw;
        for (std::size_t i = 0; i < hw; ++i) {
          const double x = src[i];
          ++k;
          const double d = x - mean_w;
          mean_w += d / static_cast<double>(k);
          m2 += d * (x - mean_w);
        }
      }
      mean = mean_w;
      var = m2 / count;
      if (var < 0.0) var = 0.0;
      running_mean_[c] = static_cast<float>(momentum_ * running_mean_[c] + (1.0 - momentum_) * mean);
      running_var_[c] = static_cast<float>(momentum_ * running_var_[c] + (1.0 - momentum_) * var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const double istd = 1.0 / std::sqrt(var + eps_);
    inv_std_[c] = static_cast<float>(istd);
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::size_t s = 0; s < n; ++s) {
      const float* src = input.data() + s * chw + c * hw;
      float* xh = x_hat + s * chw + c * hw;
      float* dst = out.data() + s * chw + c * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const float xhat = static_cast<float>((src[i] - mean) * istd);
        xh[i] = xhat;
        dst[i] = g * xhat + b;
      }
    }
  });
  if (paged) {
    x_hat_handle_ = store_->stash_exact(name_, std::move(x_hat_paged_t));
    x_hat_paged_ = true;
  } else {
    x_hat_paged_ = false;
  }
  return out;
}

Tensor BatchNorm::replay_forward(const Tensor& input) const {
  if (input.shape().rank() != 4 || input.shape().c() != channels_)
    throw std::invalid_argument(name_ + ": expected NCHW with C=" + std::to_string(channels_));
  const tensor::Shape& s = input.shape();
  const std::size_t n = s.n(), hw = s.h() * s.w();
  const std::size_t chw = channels_ * hw;
  const double count = static_cast<double>(n * hw);

  Tensor out(s);
  // Mirror of forward(train=true) computing only `out`: the same Welford
  // sweep in the same element order, then the same per-element xhat — but
  // no running-stat update, no x_hat stash, no inv_std_ write. Any change
  // to the float op sequence in forward() must be mirrored here, or the
  // recompute tier's byte-identity contract breaks.
  tensor::parallel_for(channels_, 4 * n * hw, [&](std::size_t c) {
    double mean_w = 0.0, m2 = 0.0;
    std::size_t k = 0;
    for (std::size_t smp = 0; smp < n; ++smp) {
      const float* src = input.data() + smp * chw + c * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const double x = src[i];
        ++k;
        const double d = x - mean_w;
        mean_w += d / static_cast<double>(k);
        m2 += d * (x - mean_w);
      }
    }
    const double mean = mean_w;
    double var = m2 / count;
    if (var < 0.0) var = 0.0;
    const double istd = 1.0 / std::sqrt(var + eps_);
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::size_t smp = 0; smp < n; ++smp) {
      const float* src = input.data() + smp * chw + c * hw;
      float* dst = out.data() + smp * chw + c * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        const float xhat = static_cast<float>((src[i] - mean) * istd);
        dst[i] = g * xhat + b;
      }
    }
  });
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (!x_hat_paged_ && !x_hat_.held())
    throw std::logic_error(name_ + ": backward without forward");
  const std::size_t n = in_shape_.n(), hw = in_shape_.h() * in_shape_.w();
  const std::size_t chw = channels_ * hw;
  const double count = static_cast<double>(n * hw);
  Tensor x_hat_t;
  const float* x_hat;
  if (x_hat_paged_) {
    x_hat_t = store_->retrieve_exact(x_hat_handle_);
    x_hat = x_hat_t.data();
  } else {
    x_hat = x_hat_.data();
  }

  Tensor grad_input(in_shape_);
  tensor::parallel_for(channels_, 6 * n * hw, [&](std::size_t c) {
    // Accumulate dL/dgamma, dL/dbeta and the two reduction terms of dL/dx.
    double dg = 0.0, db = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      const float* go = grad_output.data() + s * chw + c * hw;
      const float* xh = x_hat + s * chw + c * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        dg += static_cast<double>(go[i]) * xh[i];
        db += go[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(dg);
    beta_.grad[c] += static_cast<float>(db);
    const double g = gamma_.value[c];
    const double istd = inv_std_[c];
    // dL/dx = (g*istd/count) * (count*go - db - xh*dg)
    const double k = g * istd / count;
    for (std::size_t s = 0; s < n; ++s) {
      const float* go = grad_output.data() + s * chw + c * hw;
      const float* xh = x_hat + s * chw + c * hw;
      float* gi = grad_input.data() + s * chw + c * hw;
      for (std::size_t i = 0; i < hw; ++i) {
        gi[i] = static_cast<float>(k * (count * go[i] - db - xh[i] * dg));
      }
    }
  });
  if (x_hat_paged_)
    x_hat_paged_ = false;
  else
    x_hat_.release();
  return grad_input;
}

}  // namespace ebct::nn
