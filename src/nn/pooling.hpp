#pragma once

/// \file pooling.hpp
/// Max and average pooling. MaxPool keeps argmax indices (4 bytes per output
/// element) for the backward scatter; AvgPool is stateless apart from shapes.
/// GlobalAvgPool reduces each channel plane to one value (ResNet head).

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace ebct::nn {

struct PoolSpec {
  std::size_t kernel = 2;
  std::size_t stride = 2;
  std::size_t pad = 0;
};

class MaxPool : public Layer {
 public:
  MaxPool(std::string name, PoolSpec spec) : Layer(std::move(name)), spec_(spec) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string graph_op() const override { return "maxpool"; }
  tensor::Shape output_shape(const tensor::Shape& input) const override;
  bool replayable() const override { return true; }
  /// Same window scan as forward, discarding the argmax indices.
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  double replay_flops(const tensor::Shape& input) const override {
    return static_cast<double>(spec_.kernel * spec_.kernel) *
           static_cast<double>(output_shape(input).numel());
  }

 private:
  PoolSpec spec_;
  std::vector<std::uint32_t> argmax_;
  // When the store pages layer state, the argmax indices are stashed
  // byte-exact through it (bitcast into float storage — the exact channel
  // never touches the lossy codec, so the bits round-trip).
  StashHandle argmax_handle_ = 0;
  bool argmax_paged_ = false;
  tensor::Shape in_shape_;
};

class AvgPool : public Layer {
 public:
  AvgPool(std::string name, PoolSpec spec) : Layer(std::move(name)), spec_(spec) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::string graph_op() const override { return "avgpool"; }
  tensor::Shape output_shape(const tensor::Shape& input) const override;
  bool replayable() const override { return true; }
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  double replay_flops(const tensor::Shape& input) const override {
    return static_cast<double>(spec_.kernel * spec_.kernel) *
           static_cast<double>(output_shape(input).numel());
  }

 private:
  PoolSpec spec_;
  tensor::Shape in_shape_;
};

/// Mean over H x W per (n, c): output [N, C, 1, 1].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  tensor::Shape output_shape(const tensor::Shape& input) const override {
    return tensor::Shape::nchw(input.n(), input.c(), 1, 1);
  }
  bool replayable() const override { return true; }
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  double replay_flops(const tensor::Shape& input) const override {
    return static_cast<double>(input.numel());
  }

 private:
  tensor::Shape in_shape_;
};

}  // namespace ebct::nn
