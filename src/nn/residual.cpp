#include "nn/residual.hpp"

#include <stdexcept>

#include "graph/graph.hpp"
#include "tensor/ops.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

ResidualBlock::ResidualBlock(std::string name, std::vector<std::unique_ptr<Layer>> main_path,
                             std::vector<std::unique_ptr<Layer>> shortcut_path)
    : Layer(std::move(name)),
      main_(std::move(main_path)),
      shortcut_(std::move(shortcut_path)),
      out_relu_(name_ + ".relu_out") {
  if (main_.empty()) throw std::invalid_argument("ResidualBlock: empty main path");
}

void ResidualBlock::set_store(ActivationStore* store) {
  store_ = store;
  for (auto& l : main_) l->set_store(store);
  for (auto& l : shortcut_) l->set_store(store);
}

void ResidualBlock::visit(const std::function<void(Layer&)>& fn) {
  fn(*this);
  for (auto& l : main_) l->visit(fn);
  for (auto& l : shortcut_) l->visit(fn);
  out_relu_.visit(fn);
}

graph::TensorId ResidualBlock::build_graph(graph::Graph& g, graph::TensorId input) const {
  graph::TensorId y = input;
  for (const auto& l : main_) y = l->build_graph(g, y);
  graph::TensorId sc = input;
  for (const auto& l : shortcut_) sc = l->build_graph(g, sc);
  const graph::TensorId sum =
      g.add_node(name_ + ".add", "add", nullptr, {y, sc}, g.tensor(y).shape);
  return out_relu_.build_graph(g, sum);
}

void ResidualBlock::backward_schedule(std::vector<const Layer*>& order) const {
  out_relu_.backward_schedule(order);
  for (std::size_t i = main_.size(); i > 0; --i) main_[i - 1]->backward_schedule(order);
  for (std::size_t i = shortcut_.size(); i > 0; --i)
    shortcut_[i - 1]->backward_schedule(order);
}

Shape ResidualBlock::output_shape(const Shape& input) const {
  Shape s = input;
  for (const auto& l : main_) s = l->output_shape(s);
  return s;
}

std::size_t ResidualBlock::activation_bytes(const Shape& input) const {
  std::size_t total = 0;
  Shape s = input;
  for (const auto& l : main_) {
    total += l->activation_bytes(s);
    s = l->output_shape(s);
  }
  Shape sc = input;
  for (const auto& l : shortcut_) {
    total += l->activation_bytes(sc);
    sc = l->output_shape(sc);
  }
  return total;
}

Tensor ResidualBlock::forward(const Tensor& input, bool train) {
  Tensor y = main_.front()->forward(input, train);
  for (std::size_t i = 1; i < main_.size(); ++i) y = main_[i]->forward(y, train);

  Tensor sc;
  if (shortcut_.empty()) {
    sc = input.clone();
  } else {
    sc = shortcut_.front()->forward(input, train);
    for (std::size_t i = 1; i < shortcut_.size(); ++i) sc = shortcut_[i]->forward(sc, train);
  }
  if (sc.shape() != y.shape())
    throw std::logic_error(name_ + ": shortcut/main shape mismatch");
  tensor::axpy(1.0f, sc.span(), y.span());
  return out_relu_.forward(y, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor g = out_relu_.backward(grad_output);
  // The add distributes the gradient to both paths unchanged.
  Tensor g_main = g.clone();
  for (std::size_t i = main_.size(); i > 0; --i) g_main = main_[i - 1]->backward(g_main);

  if (shortcut_.empty()) {
    tensor::axpy(1.0f, g.span(), g_main.span());
    return g_main;
  }
  Tensor g_sc = std::move(g);
  for (std::size_t i = shortcut_.size(); i > 0; --i) g_sc = shortcut_[i - 1]->backward(g_sc);
  tensor::axpy(1.0f, g_sc.span(), g_main.span());
  return g_main;
}

std::vector<Param*> ResidualBlock::params() {
  std::vector<Param*> out;
  for (auto& l : main_)
    for (Param* p : l->params()) out.push_back(p);
  for (auto& l : shortcut_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

}  // namespace ebct::nn
