#include "nn/pooling.hpp"

#include <cstring>
#include <limits>

#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace ebct::nn {

using tensor::Shape;
using tensor::Tensor;

Shape MaxPool::output_shape(const Shape& input) const {
  return Shape::nchw(input.n(), input.c(),
                     tensor::conv_out_dim(input.h(), spec_.kernel, spec_.stride, spec_.pad),
                     tensor::conv_out_dim(input.w(), spec_.kernel, spec_.stride, spec_.pad));
}

Tensor MaxPool::forward(const Tensor& input, bool /*train*/) {
  in_shape_ = input.shape();
  const Shape os = output_shape(in_shape_);
  Tensor out(os);
  argmax_.assign(out.numel(), 0);
  const std::size_t planes = os.n() * os.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const std::size_t n = p / os.c();
    const std::size_t c = p % os.c();
    for (std::size_t oy = 0; oy < os.h(); ++oy) {
      for (std::size_t ox = 0; ox < os.w(); ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::uint32_t best_idx = 0;
        for (std::size_t ky = 0; ky < spec_.kernel; ++ky) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec_.stride + ky) -
                                    static_cast<std::ptrdiff_t>(spec_.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_shape_.h())) continue;
          for (std::size_t kx = 0; kx < spec_.kernel; ++kx) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec_.stride + kx) -
                                      static_cast<std::ptrdiff_t>(spec_.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_shape_.w())) continue;
            const std::size_t idx = in_shape_.offset(n, c, static_cast<std::size_t>(iy),
                                                     static_cast<std::size_t>(ix));
            if (input[idx] > best) {
              best = input[idx];
              best_idx = static_cast<std::uint32_t>(idx);
            }
          }
        }
        const std::size_t oidx = os.offset(n, c, oy, ox);
        out[oidx] = best;
        argmax_[oidx] = best_idx;
      }
    }
  });
  if (store_ != nullptr && store_->pages_layer_state()) {
    // Bitcast the index array into float storage: stash_exact preserves
    // bytes, so the uint32 values survive paging (and disk spill) intact.
    Tensor idx(tensor::Shape{argmax_.size()});
    std::memcpy(idx.data(), argmax_.data(), argmax_.size() * sizeof(std::uint32_t));
    argmax_handle_ = store_->stash_exact(name_, std::move(idx));
    argmax_paged_ = true;
    argmax_.clear();
    argmax_.shrink_to_fit();
  } else {
    argmax_paged_ = false;
  }
  return out;
}

Tensor MaxPool::replay_forward(const Tensor& input) const {
  const Shape& is = input.shape();
  const Shape os = output_shape(is);
  Tensor out(os);
  const std::size_t planes = os.n() * os.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const std::size_t n = p / os.c();
    const std::size_t c = p % os.c();
    for (std::size_t oy = 0; oy < os.h(); ++oy) {
      for (std::size_t ox = 0; ox < os.w(); ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        for (std::size_t ky = 0; ky < spec_.kernel; ++ky) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec_.stride + ky) -
                                    static_cast<std::ptrdiff_t>(spec_.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(is.h())) continue;
          for (std::size_t kx = 0; kx < spec_.kernel; ++kx) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec_.stride + kx) -
                                      static_cast<std::ptrdiff_t>(spec_.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(is.w())) continue;
            const std::size_t idx = is.offset(n, c, static_cast<std::size_t>(iy),
                                              static_cast<std::size_t>(ix));
            if (input[idx] > best) best = input[idx];
          }
        }
        out.at(n, c, oy, ox) = best;
      }
    }
  });
  return out;
}

Tensor MaxPool::backward(const Tensor& grad_output) {
  if (argmax_paged_) {
    Tensor idx = store_->retrieve_exact(argmax_handle_);
    argmax_.resize(idx.numel());
    std::memcpy(argmax_.data(), idx.data(), idx.numel() * sizeof(std::uint32_t));
    argmax_paged_ = false;
  }
  Tensor grad(in_shape_, 0.0f);
  // Pooling windows can overlap when stride < kernel; serial scatter-add.
  for (std::size_t i = 0; i < grad_output.numel(); ++i) {
    grad[argmax_[i]] += grad_output[i];
  }
  return grad;
}

Shape AvgPool::output_shape(const Shape& input) const {
  return Shape::nchw(input.n(), input.c(),
                     tensor::conv_out_dim(input.h(), spec_.kernel, spec_.stride, spec_.pad),
                     tensor::conv_out_dim(input.w(), spec_.kernel, spec_.stride, spec_.pad));
}

Tensor AvgPool::forward(const Tensor& input, bool /*train*/) {
  in_shape_ = input.shape();
  const Shape os = output_shape(in_shape_);
  Tensor out(os);
  const float inv = 1.0f / static_cast<float>(spec_.kernel * spec_.kernel);
  const std::size_t planes = os.n() * os.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const std::size_t n = p / os.c();
    const std::size_t c = p % os.c();
    for (std::size_t oy = 0; oy < os.h(); ++oy) {
      for (std::size_t ox = 0; ox < os.w(); ++ox) {
        float acc = 0.0f;
        for (std::size_t ky = 0; ky < spec_.kernel; ++ky) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec_.stride + ky) -
                                    static_cast<std::ptrdiff_t>(spec_.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_shape_.h())) continue;
          for (std::size_t kx = 0; kx < spec_.kernel; ++kx) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec_.stride + kx) -
                                      static_cast<std::ptrdiff_t>(spec_.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_shape_.w())) continue;
            acc += input.at(n, c, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix));
          }
        }
        out.at(n, c, oy, ox) = acc * inv;
      }
    }
  });
  return out;
}

Tensor AvgPool::replay_forward(const Tensor& input) const {
  const Shape& is = input.shape();
  const Shape os = output_shape(is);
  Tensor out(os);
  const float inv = 1.0f / static_cast<float>(spec_.kernel * spec_.kernel);
  const std::size_t planes = os.n() * os.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const std::size_t n = p / os.c();
    const std::size_t c = p % os.c();
    for (std::size_t oy = 0; oy < os.h(); ++oy) {
      for (std::size_t ox = 0; ox < os.w(); ++ox) {
        float acc = 0.0f;
        for (std::size_t ky = 0; ky < spec_.kernel; ++ky) {
          const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec_.stride + ky) -
                                    static_cast<std::ptrdiff_t>(spec_.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(is.h())) continue;
          for (std::size_t kx = 0; kx < spec_.kernel; ++kx) {
            const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec_.stride + kx) -
                                      static_cast<std::ptrdiff_t>(spec_.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(is.w())) continue;
            acc += input.at(n, c, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix));
          }
        }
        out.at(n, c, oy, ox) = acc * inv;
      }
    }
  });
  return out;
}

Tensor AvgPool::backward(const Tensor& grad_output) {
  Tensor grad(in_shape_, 0.0f);
  const Shape os = grad_output.shape();
  const float inv = 1.0f / static_cast<float>(spec_.kernel * spec_.kernel);
  for (std::size_t n = 0; n < os.n(); ++n) {
    for (std::size_t c = 0; c < os.c(); ++c) {
      for (std::size_t oy = 0; oy < os.h(); ++oy) {
        for (std::size_t ox = 0; ox < os.w(); ++ox) {
          const float g = grad_output.at(n, c, oy, ox) * inv;
          for (std::size_t ky = 0; ky < spec_.kernel; ++ky) {
            const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * spec_.stride + ky) -
                                      static_cast<std::ptrdiff_t>(spec_.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_shape_.h())) continue;
            for (std::size_t kx = 0; kx < spec_.kernel; ++kx) {
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox * spec_.stride + kx) -
                                        static_cast<std::ptrdiff_t>(spec_.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_shape_.w())) continue;
              grad.at(n, c, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix)) += g;
            }
          }
        }
      }
    }
  }
  return grad;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*train*/) {
  in_shape_ = input.shape();
  Tensor out(output_shape(in_shape_));
  const std::size_t hw = in_shape_.h() * in_shape_.w();
  const std::size_t planes = in_shape_.n() * in_shape_.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const float* src = input.data() + p * hw;
    double acc = 0.0;
    for (std::size_t i = 0; i < hw; ++i) acc += src[i];
    out[p] = static_cast<float>(acc / static_cast<double>(hw));
  });
  return out;
}

Tensor GlobalAvgPool::replay_forward(const Tensor& input) const {
  const Shape& is = input.shape();
  Tensor out(output_shape(is));
  const std::size_t hw = is.h() * is.w();
  const std::size_t planes = is.n() * is.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const float* src = input.data() + p * hw;
    double acc = 0.0;
    for (std::size_t i = 0; i < hw; ++i) acc += src[i];
    out[p] = static_cast<float>(acc / static_cast<double>(hw));
  });
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  Tensor grad(in_shape_);
  const std::size_t hw = in_shape_.h() * in_shape_.w();
  const float inv = 1.0f / static_cast<float>(hw);
  const std::size_t planes = in_shape_.n() * in_shape_.c();
  tensor::parallel_for(planes, [&](std::size_t p) {
    const float g = grad_output[p] * inv;
    float* dst = grad.data() + p * hw;
    for (std::size_t i = 0; i < hw; ++i) dst[i] = g;
  });
  return grad;
}

}  // namespace ebct::nn
