#pragma once

/// \file network.hpp
/// Sequential network container (residual blocks make the graph non-linear
/// internally while the top level stays a sequence, as in the paper's CNNs).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/activation_store.hpp"
#include "nn/layer.hpp"

namespace ebct::nn {

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)), store_(&default_store_) {}

  const std::string& name() const { return name_; }

  Layer& add(std::unique_ptr<Layer> layer);

  /// Replace the activation store (baseline raw vs compressed framework).
  void set_store(ActivationStore* store);
  ActivationStore& store() { return *store_; }

  /// Forward through all layers. `train` toggles dropout/BN behaviour.
  tensor::Tensor forward(const tensor::Tensor& input, bool train);

  /// Backward from dL/dlogits; returns dL/dinput (rarely needed).
  tensor::Tensor backward(const tensor::Tensor& grad_logits);

  std::vector<Param*> params();
  void zero_grad();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// Visit every layer — containers *and* their children — via the
  /// virtual Layer::visit (each layer is visited exactly once).
  void visit(const std::function<void(Layer&)>& fn);

  /// Append this network's chain to the graph IR; returns the output
  /// tensor (see graph/graph.hpp, used by Graph::from_network).
  graph::TensorId build_graph(graph::Graph& g, graph::TensorId input) const;

  /// Layers in actual backward execution order (containers expanded).
  void backward_schedule(std::vector<const Layer*>& order) const;

  /// Shape trace for an input shape: (layer name, output shape) per layer.
  std::vector<std::pair<std::string, tensor::Shape>> shape_trace(
      const tensor::Shape& input) const;

  /// Total raw bytes of activations stashed through the store for one
  /// iteration at the given input shape (dry-run; the paper's
  /// "convolutional activation size" column).
  std::size_t conv_activation_bytes(const tensor::Shape& input) const;

  /// Total number of learnable scalars.
  std::size_t num_parameters();

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
  RawStore default_store_;
  ActivationStore* store_;
};

}  // namespace ebct::nn
