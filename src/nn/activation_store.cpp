#include "nn/activation_store.hpp"

#include <stdexcept>

namespace ebct::nn {

StashHandle RawStore::stash(const std::string& layer, tensor::Tensor&& act) {
  const StashHandle h = next_++;
  StoreStats& s = stats_[layer];
  s.stashed_tensors += 1;
  s.original_bytes += act.bytes();
  s.stored_bytes += act.bytes();
  held_bytes_ += act.bytes();
  entries_.emplace(h, Entry{std::move(act)});
  return h;
}

tensor::Tensor RawStore::retrieve(StashHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::logic_error("RawStore::retrieve: unknown handle");
  tensor::Tensor t = std::move(it->second.t);
  held_bytes_ -= t.bytes();
  entries_.erase(it);
  return t;
}

StashHandle CodecStore::stash(const std::string& layer, tensor::Tensor&& act) {
  const StashHandle h = next_++;
  const std::size_t original = act.bytes();
  EncodedActivation enc = codec_->encode(layer, act);
  enc.shape = act.shape();
  enc.layer = layer;
  StoreStats& s = stats_[layer];
  s.stashed_tensors += 1;
  s.original_bytes += original;
  s.stored_bytes += enc.bytes.size();
  held_bytes_ += enc.bytes.size();
  entries_.emplace(h, std::move(enc));
  // `act` frees here: only the encoded bytes stay alive, as in the paper.
  return h;
}

tensor::Tensor CodecStore::retrieve(StashHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::logic_error("CodecStore::retrieve: unknown handle");
  tensor::Tensor t = codec_->decode(it->second);
  held_bytes_ -= it->second.bytes.size();
  entries_.erase(it);
  return t;
}

// --- AsyncCodecStore --------------------------------------------------------

AsyncCodecStore::AsyncCodecStore(std::shared_ptr<ActivationCodec> codec,
                                 std::size_t queue_depth)
    : codec_(std::move(codec)),
      queue_depth_(queue_depth == 0 ? 1 : queue_depth),
      worker_([this] { worker_loop(); }) {}

AsyncCodecStore::~AsyncCodecStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  worker_.join();
}

void AsyncCodecStore::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained before shutdown
      continue;
    }
    Pending job = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = true;
    queue_space_.notify_all();

    // Encode outside the lock: this is the expensive call the pipeline
    // overlaps with the next layer's forward compute.
    lock.unlock();
    EncodedActivation enc;
    std::exception_ptr err;
    const std::size_t original = job.raw.bytes();
    try {
      enc = codec_->encode(job.layer, job.raw);
      enc.shape = job.raw.shape();
      enc.layer = job.layer;
    } catch (...) {
      err = std::current_exception();
    }
    job.raw = tensor::Tensor();  // free the raw copy before re-locking
    lock.lock();

    pending_raw_bytes_ -= original;
    if (err) {
      failed_.emplace(job.handle, err);
    } else {
      StoreStats& s = stats_[job.layer];
      s.stashed_tensors += 1;
      s.original_bytes += original;
      s.stored_bytes += enc.bytes.size();
      encoded_bytes_ += enc.bytes.size();
      encoded_.emplace(job.handle, std::move(enc));
    }
    in_flight_ = false;
    encoded_cv_.notify_all();
  }
}

StashHandle AsyncCodecStore::stash(const std::string& layer, tensor::Tensor&& act) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_space_.wait(lock, [this] { return queue_.size() < queue_depth_; });
  const StashHandle h = next_++;
  pending_raw_bytes_ += act.bytes();
  queue_.push_back(Pending{h, layer, std::move(act)});
  lock.unlock();
  work_ready_.notify_one();
  return h;
}

tensor::Tensor AsyncCodecStore::retrieve(StashHandle handle) {
  EncodedActivation enc;
  {
    std::unique_lock<std::mutex> lock(mu_);
    encoded_cv_.wait(lock, [&] {
      if (encoded_.count(handle) || failed_.count(handle)) return true;
      // Still queued or in flight? Keep waiting; anything else is a bug.
      if (in_flight_) return false;
      for (const auto& p : queue_) {
        if (p.handle == handle) return false;
      }
      return true;
    });
    auto fit = failed_.find(handle);
    if (fit != failed_.end()) {
      std::exception_ptr err = fit->second;
      failed_.erase(fit);
      std::rethrow_exception(err);
    }
    auto it = encoded_.find(handle);
    if (it == encoded_.end())
      throw std::logic_error("AsyncCodecStore::retrieve: unknown handle");
    enc = std::move(it->second);
    encoded_bytes_ -= enc.bytes.size();
    encoded_.erase(it);
  }
  return codec_->decode(enc);
}

std::size_t AsyncCodecStore::held_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return encoded_bytes_ + pending_raw_bytes_;
}

std::map<std::string, StoreStats> AsyncCodecStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncCodecStore::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

void AsyncCodecStore::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  encoded_cv_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

}  // namespace ebct::nn
