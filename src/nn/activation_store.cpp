#include "nn/activation_store.hpp"

#include <stdexcept>

#include "nn/streaming.hpp"

namespace ebct::nn {

// Default: no native streaming capability — StreamingEncoder/Decoder use the
// block-buffering fallback through encode()/decode(). Out-of-line so TUs that
// only see activation_store.hpp never instantiate unique_ptr<incomplete>.
std::unique_ptr<WindowEncoder> ActivationCodec::make_window_encoder() { return nullptr; }
std::unique_ptr<WindowDecoder> ActivationCodec::make_window_decoder() { return nullptr; }

StashHandle ActivationStore::stash_exact(const std::string& layer, tensor::Tensor&&) {
  throw std::logic_error("ActivationStore::stash_exact(" + layer +
                         "): this store does not page layer state");
}

tensor::Tensor ActivationStore::retrieve_exact(StashHandle) {
  throw std::logic_error("ActivationStore::retrieve_exact: this store does not page layer state");
}

StashHandle RawStore::stash(const std::string& layer, tensor::Tensor&& act) {
  const StashHandle h = next_++;
  StoreStats& s = stats_[layer];
  s.stashed_tensors += 1;
  s.original_bytes += act.bytes();
  s.stored_bytes += act.bytes();
  held_bytes_ += act.bytes();
  entries_.emplace(h, Entry{std::move(act)});
  return h;
}

tensor::Tensor RawStore::retrieve(StashHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::logic_error("RawStore::retrieve: unknown handle");
  tensor::Tensor t = std::move(it->second.t);
  held_bytes_ -= t.bytes();
  entries_.erase(it);
  return t;
}

StashHandle CodecStore::stash(const std::string& layer, tensor::Tensor&& act) {
  const StashHandle h = next_++;
  const std::size_t original = act.bytes();
  EncodedActivation enc = codec_->encode(layer, act);
  enc.shape = act.shape();
  enc.layer = layer;
  StoreStats& s = stats_[layer];
  s.stashed_tensors += 1;
  s.original_bytes += original;
  s.stored_bytes += enc.bytes.size();
  held_bytes_ += enc.bytes.size();
  entries_.emplace(h, std::move(enc));
  // `act` frees here: only the encoded bytes stay alive, as in the paper.
  return h;
}

tensor::Tensor CodecStore::retrieve(StashHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::logic_error("CodecStore::retrieve: unknown handle");
  tensor::Tensor t = codec_->decode(it->second);
  held_bytes_ -= it->second.bytes.size();
  entries_.erase(it);
  return t;
}

}  // namespace ebct::nn
