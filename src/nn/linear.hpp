#pragma once

/// \file linear.hpp
/// Fully-connected layer: out = x * W^T + b over [N, in] inputs.

#include "nn/layer.hpp"

namespace ebct::nn {

class Linear : public Layer {
 public:
  Linear(std::string name, std::size_t in_features, std::size_t out_features,
         tensor::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string graph_op() const override { return "linear"; }
  tensor::Shape output_shape(const tensor::Shape& input) const override {
    return tensor::Shape{input.n(), out_features_};
  }
  bool replayable() const override { return true; }
  /// GEMM + bias only, skipping the saved-input stash.
  tensor::Tensor replay_forward(const tensor::Tensor& input) const override;
  double replay_flops(const tensor::Shape& input) const override {
    return 2.0 * static_cast<double>(input.n()) * static_cast<double>(in_features_) *
           static_cast<double>(out_features_);
  }

  Param& weight() { return weight_; }
  Param& bias_param() { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Param weight_;
  Param bias_;
  tensor::Tensor saved_input_;
  StashHandle saved_handle_ = 0;  ///< exact-channel stash when the store pages state
  bool saved_paged_ = false;
};

}  // namespace ebct::nn
