#pragma once
// Process-wide, near-zero-overhead tracing: per-thread fixed-capacity event
// rings with lock-free emit, flushed on demand to Chrome trace-event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev).
//
// Design contract (see docs/OBSERVABILITY.md for the full write-up):
//
//  - The hot path is ONE relaxed atomic load when tracing is disabled
//    (`enabled()`); a Span then costs nothing else — no clock read, no TLS
//    access, no allocation. The disabled-mode overhead is gated < 2% by
//    bench/sec54_overhead.cpp.
//  - When enabled, each emitting thread owns a fixed-capacity ring of event
//    slots, allocated once on that thread's first emit and registered with a
//    process-wide registry (under a cold mutex). Emit itself is lock-free:
//    single-producer relaxed stores into the next slot, then a release store
//    of the ring's event count.
//  - Rings never block: when a ring wraps, the oldest events are overwritten
//    and counted as dropped (drops = total emitted − ring capacity, clamped
//    at 0). Size rings with EBCT_TRACE_RING_EVENTS (default 65536 events,
//    ~2.5 MB/thread) if a trace shows a nonzero drop count.
//  - flush() may run concurrently with emitters (every slot field is an
//    atomic, so there is no data race); events overwritten *during* the copy
//    are detected by re-reading the count and discarded rather than emitted
//    torn. Flushing mid-run is therefore safe but may drop in-flight events;
//    the canonical flush point is process exit (EBCT_TRACE installs an
//    atexit handler) or an explicit flush() after workers quiesce.
//  - Span names and categories must be string literals (or otherwise outlive
//    the process): rings store the pointers, not copies.
//
// Tracing is observation-only: it never changes scheduling, eviction, or any
// other decision, so training is bitwise identical with tracing on or off
// (asserted by tests/test_obs.cpp).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace obs {
namespace trace {

// Event category — becomes the "cat" field in the Chrome trace, so a
// Perfetto query can slice by subsystem.
enum class Cat : std::uint8_t {
  kSched = 0,   // scheduler: task bodies, steals
  kExec = 1,    // graph executor: node dispatch, joins, drop pump
  kPager = 2,   // pager tier transitions: spill I/O, prefetch, replay, waits
  kCodec = 3,   // codec encode/decode (sync and async paths)
  kSession = 4, // training loop phases: forward/backward brackets
  kServe = 5,   // serving: per-request spans, window encode/decode tasks
};
const char* cat_name(Cat cat);

namespace detail {

extern std::atomic<bool> g_enabled;

struct Ring;

// The calling thread's ring, allocating + registering it on first use.
// Only called from emit paths, i.e. only when tracing is enabled.
Ring* ring();

// Single-producer append of a completed span [t0_ns, t1_ns).
void emit(Ring* r, const char* name, Cat cat, std::uint64_t t0_ns,
          std::uint64_t t1_ns);

// Monotonic nanoseconds since process start (steady_clock).
std::uint64_t now_ns();

}  // namespace detail

// The one hot-path check. Relaxed: emitters may observe an enable/disable
// transition late, which only affects which events land in the ring.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// Programmatic control (EBCT_TRACE enables automatically at startup).
// ring_events sizes rings created *after* the call; 0 keeps the current
// (env or default) capacity. Existing rings are not resized.
void enable(std::size_t ring_events = 0);
void disable();

// Serialize every registered ring to Chrome trace-event JSON at `path`.
// Returns the number of events written; throws std::runtime_error when the
// file cannot be written. Safe to call while emitters run (see header
// comment); call after quiescing for a complete picture.
std::size_t flush(const std::string& path);

// Total events emitted / dropped-on-wrap across all rings since the last
// reset(). dropped() counts events no longer recoverable from any ring.
std::uint64_t emitted();
std::uint64_t dropped();

// Test helper: zero every ring and counter. Callers must ensure no thread
// is emitting concurrently (disable() first and quiesce the pool).
void reset();

// One-shot emission of an externally-timed span (for sites that already
// bracket with their own clock reads, e.g. the scheduler's steal timer).
// Times are detail::now_ns() values. No-op when disabled.
inline void emit_span(const char* name, Cat cat, std::uint64_t t0_ns,
                      std::uint64_t t1_ns) {
  if (enabled()) detail::emit(detail::ring(), name, cat, t0_ns, t1_ns);
}

// RAII span: records [construction, destruction) under `name` when tracing
// is enabled at construction time. `name` must be a string literal.
class Span {
 public:
  Span(const char* name, Cat cat) {
    if (enabled()) {
      name_ = name;
      cat_ = cat;
      t0_ = detail::now_ns();
    }
  }
  ~Span() {
    if (name_) detail::emit(detail::ring(), name_, cat_, t0_, detail::now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = tracing was off at construction
  Cat cat_ = Cat::kSched;
  std::uint64_t t0_ = 0;
};

}  // namespace trace
}  // namespace obs
