#pragma once
// Consolidated runtime metrics: one process-wide registry of per-phase
// timing accumulators, plus the glue that assembles the pre-existing
// counter islands (PagerCounters, TierAccounting, sched::steal_stats,
// executor dispatch stats) into a single named snapshot — exposed as
// `TrainingSession::metrics()` and emitted by the benches into their
// BENCH_*.json rows (schema in docs/BENCH_SCHEMA.md).
//
// The hot-path cost of a phase sample is two relaxed fetch_adds; phase
// accumulation is always on (it piggybacks on clock reads the pager's
// cost-model calibration already performs). `drain()` supports
// per-iteration sampling: perf_smoke uses it to measure per-phase variance
// across iterations. Like every obs:: facility, metrics are
// observation-only — they never feed back into scheduling or eviction, so
// the bitwise-determinism contract is untouched.

#include <array>
#include <atomic>
#include <cstdint>

namespace obs {

// Phases of one training iteration that are worth attributing wall-clock
// to. kForward/kBackward bracket the session's passes; the rest accumulate
// from the pager/codec sites (concurrent with compute when async paths or
// the graph executor overlap them — sums can legitimately exceed step time).
enum class Phase : int {
  kForward = 0,   // session forward pass (executor or sequential)
  kBackward,      // session prepare_backward + backward pass
  kEncode,        // codec encode (sync put + async encode tasks)
  kDecode,        // codec decode (fetch, prefetch, replay re-decode)
  kSpillWrite,    // spill-file write (sync and write-behind)
  kSpillRead,     // spill-file read
  kSpillWait,     // blocked waiting on spill/encode I/O (budget enforce, drain)
  kNumPhases,
};

constexpr int kNumPhases = static_cast<int>(Phase::kNumPhases);

const char* phase_name(Phase p);  // "forward", "backward", ...

struct PhaseSample {
  std::uint64_t ns = 0;     // accumulated wall-clock
  std::uint64_t count = 0;  // number of samples
};

using PhaseSnapshot = std::array<PhaseSample, kNumPhases>;

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Hot path: record one completed phase interval.
  void add(Phase p, std::uint64_t ns) {
    const int i = static_cast<int>(p);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    count_[i].fetch_add(1, std::memory_order_relaxed);
  }

  // Non-destructive read of every phase accumulator.
  PhaseSnapshot snapshot() const;

  // Atomically read-and-zero every accumulator (per-bucket exchange, same
  // convention as sched::drain_steal_stats) — per-iteration sampling.
  PhaseSnapshot drain();

  void reset();

 private:
  MetricsRegistry() = default;
  std::atomic<std::uint64_t> ns_[kNumPhases] = {};
  std::atomic<std::uint64_t> count_[kNumPhases] = {};
};

// ---------------------------------------------------------------------------
// Serving metrics — the `serve_*` section of the consolidated snapshot.
//
// One process-wide instance fed by the ebct_serve request loop (and the
// in-process Server the tests/bench spin up). Same discipline as the phase
// registry: relaxed atomics on the hot path, a log2-ns latency histogram
// (the sched::StealStats pattern, widened to cover multi-second requests),
// and snapshot()/drain() for consumers. Gauges (active sessions) use
// add/sub pairs. Everything here is observation-only.
// ---------------------------------------------------------------------------

struct ServeSnapshot {
  static constexpr std::size_t kLatBuckets = 34;  // up to ~17 s in log2 ns
  std::uint64_t requests = 0;        // completed requests (encode + decode)
  std::uint64_t rejects = 0;         // 429 budget rejects
  std::uint64_t errors = 0;          // 4xx/5xx other than budget rejects
  std::uint64_t bytes_in = 0;        // payload bytes received
  std::uint64_t bytes_out = 0;       // payload bytes sent
  std::uint64_t active_sessions = 0; // gauge at snapshot time
  std::uint64_t peak_sessions = 0;
  std::uint64_t latency_buckets[kLatBuckets] = {};

  // Upper bound (ns) of the bucket where the cumulative request count first
  // reaches fraction p; 0 when no requests completed.
  double latency_percentile_ns(double p) const;
};

class ServeMetrics {
 public:
  static ServeMetrics& instance();

  void on_session_open() {
    const std::uint64_t now = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void on_session_close() { active_.fetch_sub(1, std::memory_order_relaxed); }
  void on_bytes_in(std::uint64_t n) { bytes_in_.fetch_add(n, std::memory_order_relaxed); }
  void on_bytes_out(std::uint64_t n) { bytes_out_.fetch_add(n, std::memory_order_relaxed); }
  void on_reject() { rejects_.fetch_add(1, std::memory_order_relaxed); }
  void on_error() { errors_.fetch_add(1, std::memory_order_relaxed); }
  void on_request_done(std::uint64_t latency_ns);

  ServeSnapshot snapshot() const;
  void reset();  // test helper; callers quiesce the server first

 private:
  ServeMetrics() = default;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejects_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> lat_[ServeSnapshot::kLatBuckets] = {};
};

// RAII phase timer: adds [construction, destruction) to the registry.
// Unconditional (metrics are always on) — the cost is one steady_clock
// read at each end plus two relaxed adds.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase p_;
  std::uint64_t t0_;
};

}  // namespace obs
