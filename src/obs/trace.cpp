#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace obs {
namespace trace {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kSched:   return "sched";
    case Cat::kExec:    return "exec";
    case Cat::kPager:   return "pager";
    case Cat::kCodec:   return "codec";
    case Cat::kSession: return "session";
    case Cat::kServe:   return "serve";
  }
  return "?";
}

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

// Ring capacity for rings created from now on. Power of two (emit indexes
// with a mask); default 65536 events ≈ 2.5 MB per emitting thread.
constexpr std::size_t kDefaultRingEvents = 1u << 16;
constexpr std::size_t kMinRingEvents = 256;
constexpr std::size_t kMaxRingEvents = 1u << 24;
std::atomic<std::size_t> g_ring_cap{kDefaultRingEvents};

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Steady-clock origin captured at static init (single-threaded), so every
// emitted timestamp is a small "ns since process start" value.
const std::chrono::steady_clock::time_point g_origin =
    std::chrono::steady_clock::now();

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - g_origin)
          .count());
}

// One event slot. Every field is an atomic so a concurrent flush() is reads
// of atomics, never a data race; relaxed stores compile to plain moves on
// x86/ARM, so the emit path stays a handful of instructions.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> t0{0};
  std::atomic<std::uint64_t> t1{0};
  std::atomic<std::uint8_t> cat{0};
};

struct Ring {
  explicit Ring(std::size_t capacity, std::size_t tid_)
      : slots(new Slot[capacity]), cap(capacity), mask(capacity - 1),
        tid(tid_) {}
  std::unique_ptr<Slot[]> slots;
  const std::size_t cap;
  const std::size_t mask;
  const std::size_t tid;  // stable per-ring id, becomes the trace "tid"
  // Total events ever emitted into this ring. Slot writes happen-before the
  // release store; flush pairs with an acquire load.
  std::atomic<std::uint64_t> count{0};
};

namespace {

struct Registry {
  std::mutex mu;
  std::vector<Ring*> rings;  // owned; never freed (process lifetime)
};

// Leaked deliberately: the atexit flush handler and late-exiting threads
// must be able to reach the rings regardless of static-destruction order.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

thread_local Ring* t_ring = nullptr;

}  // namespace

Ring* ring() {
  Ring* r = t_ring;
  if (r) return r;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  r = new Ring(g_ring_cap.load(std::memory_order_relaxed), reg.rings.size());
  reg.rings.push_back(r);
  t_ring = r;
  return r;
}

void emit(Ring* r, const char* name, Cat cat, std::uint64_t t0_ns,
          std::uint64_t t1_ns) {
  const std::uint64_t c = r->count.load(std::memory_order_relaxed);
  Slot& s = r->slots[c & r->mask];
  s.name.store(name, std::memory_order_relaxed);
  s.t0.store(t0_ns, std::memory_order_relaxed);
  s.t1.store(t1_ns, std::memory_order_relaxed);
  s.cat.store(static_cast<std::uint8_t>(cat), std::memory_order_relaxed);
  r->count.store(c + 1, std::memory_order_release);
}

}  // namespace detail

void enable(std::size_t ring_events) {
  if (ring_events > 0) {
    std::size_t cap = detail::round_pow2(ring_events);
    if (cap < detail::kMinRingEvents) cap = detail::kMinRingEvents;
    if (cap > detail::kMaxRingEvents) cap = detail::kMaxRingEvents;
    detail::g_ring_cap.store(cap, std::memory_order_seq_cst);
  }
  detail::g_enabled.store(true, std::memory_order_seq_cst);
}

void disable() {
  detail::g_enabled.store(false, std::memory_order_seq_cst);
}

std::uint64_t emitted() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t total = 0;
  for (detail::Ring* r : reg.rings)
    total += r->count.load(std::memory_order_acquire);
  return total;
}

std::uint64_t dropped() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::uint64_t total = 0;
  for (detail::Ring* r : reg.rings) {
    const std::uint64_t c = r->count.load(std::memory_order_acquire);
    if (c > r->cap) total += c - r->cap;
  }
  return total;
}

void reset() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (detail::Ring* r : reg.rings)
    r->count.store(0, std::memory_order_seq_cst);
}

namespace {

struct CopiedEvent {
  const char* name;
  std::uint64_t t0;
  std::uint64_t t1;
  std::uint8_t cat;
  std::size_t tid;
};

}  // namespace

std::size_t flush(const std::string& path) {
  // Snapshot every ring first (cheap atomic copies), then do file I/O.
  std::vector<CopiedEvent> events;
  std::uint64_t total_emitted = 0;
  std::uint64_t total_dropped = 0;
  std::size_t num_rings = 0;
  {
    detail::Registry& reg = detail::registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    num_rings = reg.rings.size();
    for (detail::Ring* r : reg.rings) {
      const std::uint64_t c = r->count.load(std::memory_order_acquire);
      const std::uint64_t start = c > r->cap ? c - r->cap : 0;
      const std::size_t first = events.size();
      for (std::uint64_t i = start; i < c; ++i) {
        const detail::Slot& s = r->slots[i & r->mask];
        events.push_back(CopiedEvent{
            s.name.load(std::memory_order_relaxed),
            s.t0.load(std::memory_order_relaxed),
            s.t1.load(std::memory_order_relaxed),
            s.cat.load(std::memory_order_relaxed), r->tid});
      }
      // Re-read the count: any event whose slot an emitter may have
      // overwritten during the copy is discarded rather than emitted torn.
      // (An emitter writes slot fields before publishing count c2, so
      // events with index <= c2 - cap are suspect; +1 covers the one write
      // that may be in flight but unpublished.)
      const std::uint64_t c2 = r->count.load(std::memory_order_acquire);
      const std::uint64_t safe_start =
          (c2 + 1 > r->cap) ? c2 + 1 - r->cap : 0;
      if (safe_start > start) {
        const std::uint64_t discard = safe_start - start;
        const std::size_t kept_end = events.size();
        const std::uint64_t copied = c - start;
        if (discard >= copied) {
          events.resize(first);
        } else {
          events.erase(events.begin() + static_cast<std::ptrdiff_t>(first),
                       events.begin() +
                           static_cast<std::ptrdiff_t>(first + discard));
        }
        (void)kept_end;
      }
      total_emitted += c;
      if (c > r->cap) total_dropped += c - r->cap;
    }
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("obs::trace::flush: cannot open " + path);

  // Chrome trace-event JSON (JSON Object Format). Span names and categories
  // are compile-time literals without quotes/backslashes, so they are
  // written verbatim. ts/dur are microseconds (double, ns resolution).
  out << "{\"displayTimeUnit\":\"ns\",\n\"otherData\":{\"emitted\":"
      << total_emitted << ",\"dropped\":" << total_dropped << "},\n"
      << "\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"ebct\"}}";
  for (std::size_t t = 0; t < num_rings; ++t) {
    out << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"ebct-thread-" << t
        << "\"}}";
  }
  char buf[256];
  for (const CopiedEvent& e : events) {
    const double ts_us = static_cast<double>(e.t0) / 1000.0;
    const double dur_us =
        static_cast<double>(e.t1 >= e.t0 ? e.t1 - e.t0 : 0) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%zu,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"%s\"}",
                  e.tid, ts_us, dur_us, e.name ? e.name : "?",
                  cat_name(static_cast<Cat>(e.cat)));
    out << buf;
  }
  out << "\n]}\n";
  out.flush();
  if (!out) throw std::runtime_error("obs::trace::flush: write failed: " + path);
  return events.size();
}

namespace {

// EBCT_TRACE / EBCT_TRACE_RING_EVENTS are read here, at static init, so
// that tracing covers the whole process (including pre-main pool spin-up)
// without any call-site wiring. Like EBCT_SCHED_THREADS — and unlike every
// other EBCT_* variable — EBCT_TRACE_RING_EVENTS is parsed leniently
// (strtoull + clamp): throwing from a static initializer terminates the
// process before main, which is strictly worse than a clamped ring size.
// docs/CONFIG.md documents both exceptions.
std::string* g_env_path = nullptr;

void flush_env_path() {
  if (!g_env_path || g_env_path->empty()) return;
  try {
    flush(*g_env_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[obs] EBCT_TRACE flush failed: %s\n", e.what());
  }
}

struct EnvInit {
  EnvInit() {
    if (const char* cap = std::getenv("EBCT_TRACE_RING_EVENTS")) {
      if (*cap) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(cap, &end, 10);
        if (end != cap && v > 0)
          detail::g_ring_cap.store(
              [] (std::size_t n) {
                std::size_t p = detail::round_pow2(n);
                if (p < detail::kMinRingEvents) p = detail::kMinRingEvents;
                if (p > detail::kMaxRingEvents) p = detail::kMaxRingEvents;
                return p;
              }(static_cast<std::size_t>(v)),
              std::memory_order_seq_cst);
      }
    }
    if (const char* path = std::getenv("EBCT_TRACE")) {
      if (*path) {
        g_env_path = new std::string(path);  // leaked: outlives atexit
        detail::g_enabled.store(true, std::memory_order_seq_cst);
        std::atexit(&flush_env_path);
      }
    }
  }
};
EnvInit g_env_init;

}  // namespace

}  // namespace trace
}  // namespace obs
