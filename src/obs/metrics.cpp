#include "obs/metrics.hpp"

#include "obs/trace.hpp"

namespace obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kForward:    return "forward";
    case Phase::kBackward:   return "backward";
    case Phase::kEncode:     return "encode";
    case Phase::kDecode:     return "decode";
    case Phase::kSpillWrite: return "spill_write";
    case Phase::kSpillRead:  return "spill_read";
    case Phase::kSpillWait:  return "spill_wait";
    case Phase::kNumPhases:  break;
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: process lifetime
  return *r;
}

PhaseSnapshot MetricsRegistry::snapshot() const {
  PhaseSnapshot s;
  for (int i = 0; i < kNumPhases; ++i) {
    s[i].ns = ns_[i].load(std::memory_order_relaxed);
    s[i].count = count_[i].load(std::memory_order_relaxed);
  }
  return s;
}

PhaseSnapshot MetricsRegistry::drain() {
  PhaseSnapshot s;
  for (int i = 0; i < kNumPhases; ++i) {
    s[i].ns = ns_[i].exchange(0, std::memory_order_relaxed);
    s[i].count = count_[i].exchange(0, std::memory_order_relaxed);
  }
  return s;
}

void MetricsRegistry::reset() {
  for (int i = 0; i < kNumPhases; ++i) {
    ns_[i].store(0, std::memory_order_relaxed);
    count_[i].store(0, std::memory_order_relaxed);
  }
}

ScopedPhase::ScopedPhase(Phase p) : p_(p), t0_(trace::detail::now_ns()) {}

ScopedPhase::~ScopedPhase() {
  MetricsRegistry::instance().add(p_, trace::detail::now_ns() - t0_);
}

}  // namespace obs
