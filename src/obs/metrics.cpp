#include "obs/metrics.hpp"

#include "obs/trace.hpp"

namespace obs {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kForward:    return "forward";
    case Phase::kBackward:   return "backward";
    case Phase::kEncode:     return "encode";
    case Phase::kDecode:     return "decode";
    case Phase::kSpillWrite: return "spill_write";
    case Phase::kSpillRead:  return "spill_read";
    case Phase::kSpillWait:  return "spill_wait";
    case Phase::kNumPhases:  break;
  }
  return "?";
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: process lifetime
  return *r;
}

PhaseSnapshot MetricsRegistry::snapshot() const {
  PhaseSnapshot s;
  for (int i = 0; i < kNumPhases; ++i) {
    s[i].ns = ns_[i].load(std::memory_order_relaxed);
    s[i].count = count_[i].load(std::memory_order_relaxed);
  }
  return s;
}

PhaseSnapshot MetricsRegistry::drain() {
  PhaseSnapshot s;
  for (int i = 0; i < kNumPhases; ++i) {
    s[i].ns = ns_[i].exchange(0, std::memory_order_relaxed);
    s[i].count = count_[i].exchange(0, std::memory_order_relaxed);
  }
  return s;
}

void MetricsRegistry::reset() {
  for (int i = 0; i < kNumPhases; ++i) {
    ns_[i].store(0, std::memory_order_relaxed);
    count_[i].store(0, std::memory_order_relaxed);
  }
}

double ServeSnapshot::latency_percentile_ns(double p) const {
  if (requests == 0) return 0.0;
  const double target = p * static_cast<double>(requests);
  double cum = 0.0;
  for (std::size_t i = 0; i < kLatBuckets; ++i) {
    cum += static_cast<double>(latency_buckets[i]);
    if (cum >= target) return static_cast<double>(std::uint64_t{1} << (i + 1));
  }
  return static_cast<double>(std::uint64_t{1} << kLatBuckets);
}

ServeMetrics& ServeMetrics::instance() {
  static ServeMetrics* m = new ServeMetrics;  // leaked: process lifetime
  return *m;
}

void ServeMetrics::on_request_done(std::uint64_t latency_ns) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::size_t b = 0;
  while (b + 1 < ServeSnapshot::kLatBuckets && (std::uint64_t{1} << (b + 1)) < latency_ns) ++b;
  lat_[b].fetch_add(1, std::memory_order_relaxed);
}

ServeSnapshot ServeMetrics::snapshot() const {
  ServeSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.active_sessions = active_.load(std::memory_order_relaxed);
  s.peak_sessions = peak_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < ServeSnapshot::kLatBuckets; ++i)
    s.latency_buckets[i] = lat_[i].load(std::memory_order_relaxed);
  return s;
}

void ServeMetrics::reset() {
  requests_.store(0, std::memory_order_relaxed);
  rejects_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  bytes_in_.store(0, std::memory_order_relaxed);
  bytes_out_.store(0, std::memory_order_relaxed);
  active_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
  for (auto& b : lat_) b.store(0, std::memory_order_relaxed);
}

ScopedPhase::ScopedPhase(Phase p) : p_(p), t0_(trace::detail::now_ns()) {}

ScopedPhase::~ScopedPhase() {
  MetricsRegistry::instance().add(p_, trace::detail::now_ns() - t0_);
}

}  // namespace obs
