#pragma once

/// \file huffman.hpp
/// Canonical Huffman coder over 32-bit symbols (quantization codes). This is
/// the entropy-coding stage of the SZ pipeline (cuSZ step 3). Code lengths are
/// capped at kMaxCodeLen by iterative frequency flattening.

#include <cstdint>
#include <span>
#include <vector>

namespace ebct::sz {

class HuffmanCodec {
 public:
  static constexpr unsigned kMaxCodeLen = 32;

  /// Build the code table from symbol frequencies (index = symbol).
  void build(std::span<const std::uint64_t> freqs);

  /// Encode `symbols` (each < alphabet size) into a byte vector.
  std::vector<std::uint8_t> encode(std::span<const std::uint32_t> symbols) const;

  /// Decode exactly `count` symbols from `bytes`.
  std::vector<std::uint32_t> decode(std::span<const std::uint8_t> bytes,
                                    std::size_t count) const;

  /// Serialize the code-length table (enough to reconstruct canonical codes).
  std::vector<std::uint8_t> serialize_table() const;
  void deserialize_table(std::span<const std::uint8_t> bytes);

  std::size_t alphabet_size() const { return lengths_.size(); }
  unsigned code_length(std::uint32_t symbol) const { return lengths_[symbol]; }

  /// Shannon-optimal size estimate in bits for the given frequencies.
  static double entropy_bits(std::span<const std::uint64_t> freqs);

  /// Width of the decode lookup table: one peek of this many bits resolves
  /// any code of length <= kLutBits in a single table load. Longer (rare)
  /// codes fall back to the canonical first-code scan.
  static constexpr unsigned kLutBits = 11;

 private:
  void assign_canonical();

  /// LUT entry: the decoded symbol and its code length (0 = no code of
  /// length <= kLutBits has this prefix; take the slow path).
  struct LutEntry {
    std::uint32_t symbol = 0;
    std::uint8_t len = 0;
  };

  std::vector<std::uint8_t> lengths_;    // per-symbol code length (0 = unused)
  std::vector<std::uint32_t> codes_;     // per-symbol canonical code
  // Canonical decode tables.
  std::vector<std::uint32_t> first_code_;    // per length
  std::vector<std::uint32_t> offset_;        // per length, into sorted_symbols_
  std::vector<std::uint32_t> count_;         // per length
  std::vector<std::uint32_t> sorted_symbols_;
  // Table-driven fast path, rebuilt alongside the canonical tables.
  std::vector<LutEntry> lut_;
  unsigned lut_bits_ = 0;  // min(kLutBits, max code length)
};

}  // namespace ebct::sz
