#include "sz/lz77.hpp"

#include <cstring>
#include <stdexcept>

#include "sz/bitstream.hpp"
#include "sz/huffman.hpp"
#include "tensor/bytes.hpp"

namespace ebct::sz {

namespace {

// Token alphabet: 0..255 literals, 256 = end-of-block, 257.. = match lengths
// bucketed as in deflate (here simplified: length stored as varint after a
// single MATCH symbol, distance as varint — simpler than deflate's extra-bit
// tables but with the same asymptotics).
constexpr std::uint32_t kEob = 256;
constexpr std::uint32_t kMatch = 257;
constexpr std::uint32_t kAlphabet = 258;

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 255 + kMinMatch;
constexpr std::size_t kWindow = 1 << 16;
constexpr std::size_t kHashBits = 15;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Token {
  std::uint32_t symbol;  // literal byte, kEob or kMatch
  std::uint32_t length = 0;
  std::uint32_t distance = 0;
};

}  // namespace

std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input) {
  // Pass 1: tokenize with a hash-head + chain matcher.
  std::vector<Token> tokens;
  tokens.reserve(input.size() / 2 + 16);
  std::vector<std::int64_t> head(1u << kHashBits, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t best_len = 0, best_dist = 0;
    if (i + kMinMatch <= input.size()) {
      const std::uint32_t h = hash4(&input[i]);
      std::int64_t cand = head[h];
      int chain = 32;  // bounded chain walk keeps compression O(n)
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        const std::size_t max_len = std::min(kMaxMatch, input.size() - i);
        while (len < max_len && input[c + len] == input[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == max_len) break;
        }
        cand = prev[c];
      }
      head[h] = static_cast<std::int64_t>(i);
      prev[i] = cand;  // note: approximate chain (head before update)
    }
    if (best_len >= kMinMatch) {
      tokens.push_back({kMatch, static_cast<std::uint32_t>(best_len),
                        static_cast<std::uint32_t>(best_dist)});
      // Insert hash entries for the skipped positions so later matches can
      // reference them.
      const std::size_t end = std::min(i + best_len, input.size() - kMinMatch);
      for (std::size_t j = i + 1; j < end; ++j) {
        const std::uint32_t h = hash4(&input[j]);
        prev[j] = head[h];
        head[h] = static_cast<std::int64_t>(j);
      }
      i += best_len;
    } else {
      tokens.push_back({input[i]});
      ++i;
    }
  }
  tokens.push_back({kEob});

  // Pass 2: Huffman-code the symbols; lengths/distances ride as varints.
  std::vector<std::uint64_t> freqs(kAlphabet, 0);
  for (const Token& t : tokens) ++freqs[t.symbol];
  HuffmanCodec codec;
  codec.build(freqs);
  const auto table = codec.serialize_table();

  // Symbols go through one Huffman stream; match lengths/distances ride in a
  // side varint stream (simpler than deflate's extra-bit tables, same
  // asymptotics).
  std::vector<std::uint32_t> symbols;
  symbols.reserve(tokens.size());
  BitWriter side;
  for (const Token& t : tokens) {
    symbols.push_back(t.symbol);
    if (t.symbol == kMatch) {
      side.put_varint(t.length - kMinMatch);
      side.put_varint(t.distance);
    }
  }
  const auto sym_bytes = codec.encode(symbols);
  const auto side_bytes = side.finish();

  std::vector<std::uint8_t> out;
  auto put_u64 = [&out](std::uint64_t v) { tensor::append_bytes(out, &v, 8); };
  put_u64(input.size());
  put_u64(tokens.size());
  put_u64(table.size());
  put_u64(sym_bytes.size());
  put_u64(side_bytes.size());
  out.insert(out.end(), table.begin(), table.end());
  out.insert(out.end(), sym_bytes.begin(), sym_bytes.end());
  out.insert(out.end(), side_bytes.begin(), side_bytes.end());
  return out;
}

std::vector<std::uint8_t> lz77_decompress(std::span<const std::uint8_t> input) {
  if (input.size() < 40) throw std::runtime_error("lz77: truncated header");
  const std::uint8_t* p = input.data();
  auto get_u64 = [&p]() {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  };
  const std::uint64_t raw_size = get_u64();
  const std::uint64_t token_count = get_u64();
  const std::uint64_t table_size = get_u64();
  const std::uint64_t sym_size = get_u64();
  const std::uint64_t side_size = get_u64();
  if (static_cast<std::size_t>(40 + table_size + sym_size + side_size) > input.size())
    throw std::runtime_error("lz77: truncated body");

  HuffmanCodec codec;
  codec.deserialize_table({p, static_cast<std::size_t>(table_size)});
  p += table_size;
  const auto symbols = codec.decode({p, static_cast<std::size_t>(sym_size)},
                                    static_cast<std::size_t>(token_count));
  p += sym_size;
  BitReader side({p, static_cast<std::size_t>(side_size)});

  std::vector<std::uint8_t> out;
  out.reserve(raw_size);
  for (std::uint32_t sym : symbols) {
    if (sym < 256) {
      out.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == kEob) {
      break;
    } else {  // kMatch
      const std::size_t length = static_cast<std::size_t>(side.get_varint()) + kMinMatch;
      const std::size_t distance = static_cast<std::size_t>(side.get_varint());
      if (distance == 0 || distance > out.size())
        throw std::runtime_error("lz77: bad distance");
      // Byte-by-byte copy handles overlapping matches (run-length idiom).
      const std::size_t start = out.size() - distance;
      for (std::size_t k = 0; k < length; ++k) out.push_back(out[start + k]);
    }
  }
  if (out.size() != raw_size) throw std::runtime_error("lz77: size mismatch");
  return out;
}

}  // namespace ebct::sz
