#pragma once

/// \file metrics.hpp
/// Quality metrics for compressed reconstructions: error-bound verification,
/// PSNR, and per-element error extraction used by the Fig. 3 bench.

#include <cmath>
#include <span>
#include <vector>

namespace ebct::sz {

/// True iff every |orig - recon| <= eb * (1 + slack).
inline bool within_bound(std::span<const float> orig, std::span<const float> recon,
                         double eb, double slack = 1e-6) {
  if (orig.size() != recon.size()) return false;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (std::fabs(static_cast<double>(orig[i]) - static_cast<double>(recon[i])) >
        eb * (1.0 + slack)) {
      return false;
    }
  }
  return true;
}

/// Per-element reconstruction errors (recon - orig), the quantity whose
/// distribution Fig. 3 plots.
inline std::vector<float> pointwise_errors(std::span<const float> orig,
                                           std::span<const float> recon) {
  std::vector<float> e(orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) e[i] = recon[i] - orig[i];
  return e;
}

/// Peak signal-to-noise ratio in dB against the data range.
inline double psnr(std::span<const float> orig, std::span<const float> recon) {
  if (orig.empty()) return 0.0;
  double lo = orig[0], hi = orig[0], mse = 0.0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    lo = std::min<double>(lo, orig[i]);
    hi = std::max<double>(hi, orig[i]);
    const double d = static_cast<double>(orig[i]) - static_cast<double>(recon[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(orig.size());
  const double range = hi - lo;
  if (mse == 0.0 || range == 0.0) return 999.0;
  return 20.0 * std::log10(range) - 10.0 * std::log10(mse);
}

}  // namespace ebct::sz
