#pragma once

/// \file lz77.hpp
/// Deflate-style general-purpose lossless byte compressor: greedy LZ77 with
/// a hash-chain matcher over a 64 KiB window, followed by canonical Huffman
/// coding of the literal/length symbols and distance symbols. SZ's third
/// stage ("customized Huffman coding AND lossless compression") uses this to
/// squeeze the Huffman-coded quantization stream further, and the lossless
/// activation baseline uses it standalone.

#include <cstdint>
#include <span>
#include <vector>

namespace ebct::sz {

/// Compress arbitrary bytes. Output is self-describing (header + streams).
std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input);

/// Inverse of lz77_compress. Throws std::runtime_error on corrupt input.
std::vector<std::uint8_t> lz77_decompress(std::span<const std::uint8_t> input);

}  // namespace ebct::sz
