#include "sz/compressor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "sz/bitstream.hpp"
#include "sz/huffman.hpp"
#include "tensor/bytes.hpp"
#include "tensor/parallel.hpp"

namespace ebct::sz {

namespace {

constexpr std::uint32_t kMagic = 0x455A4331;  // "EZC1"

#pragma pack(push, 1)
struct Header {
  std::uint32_t magic = kMagic;
  std::uint64_t num_elements = 0;
  double abs_eb = 0.0;
  std::uint8_t predictor = 0;
  std::uint8_t zero_mode = 0;
  std::uint32_t radius = 0;
  std::uint32_t block_size = 0;
  std::uint64_t num_quantized = 0;  // elements that went through the code path
  std::uint64_t table_bytes = 0;
  std::uint64_t rle_bytes = 0;
  std::uint64_t num_blocks = 0;
};
#pragma pack(pop)

struct BlockResult {
  std::vector<std::uint32_t> symbols;
  std::vector<float> outliers;
  std::vector<std::uint8_t> encoded;
};

/// Quantize one block with a 1-D Lorenzo predictor (previous reconstructed
/// value). Emits symbol 0 for outliers; otherwise symbol = code + radius.
void quantize_block_1d(std::span<const float> block, double eb, std::uint32_t radius,
                       std::vector<std::uint32_t>& symbols, std::vector<float>& outliers) {
  symbols.resize(block.size());
  const double inv_step = 1.0 / (2.0 * eb);
  float prev_recon = 0.0f;
  for (std::size_t i = 0; i < block.size(); ++i) {
    const float x = block[i];
    const double diff = static_cast<double>(x) - static_cast<double>(prev_recon);
    const double code_d = std::nearbyint(diff * inv_step);
    bool outlier = std::fabs(code_d) >= static_cast<double>(radius);
    float recon = 0.0f;
    if (!outlier) {
      recon = static_cast<float>(static_cast<double>(prev_recon) +
                                 code_d * 2.0 * eb);
      // Float rounding can push the reconstruction past the bound; escape.
      if (std::fabs(static_cast<double>(recon) - static_cast<double>(x)) > eb) {
        outlier = true;
      }
    }
    if (outlier) {
      symbols[i] = 0;
      outliers.push_back(x);
      prev_recon = x;
    } else {
      symbols[i] = static_cast<std::uint32_t>(static_cast<std::int64_t>(code_d) +
                                              static_cast<std::int64_t>(radius));
      prev_recon = recon;
    }
  }
}

/// 2-D Lorenzo over a plane of width w: pred = left + top - topleft, using
/// reconstructed values. Single block (serial) by design.
void quantize_2d(std::span<const float> data, std::size_t w, double eb,
                 std::uint32_t radius, std::vector<std::uint32_t>& symbols,
                 std::vector<float>& outliers, std::vector<float>& recon) {
  symbols.resize(data.size());
  recon.resize(data.size());
  const double inv_step = 1.0 / (2.0 * eb);
  const std::size_t rows = (data.size() + w - 1) / w;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < w; ++c) {
      const std::size_t i = r * w + c;
      if (i >= data.size()) break;
      const double left = c > 0 ? recon[i - 1] : 0.0;
      const double top = r > 0 ? recon[i - w] : 0.0;
      const double tl = (c > 0 && r > 0) ? recon[i - w - 1] : 0.0;
      const double pred = left + top - tl;
      const float x = data[i];
      const double code_d = std::nearbyint((static_cast<double>(x) - pred) * inv_step);
      bool outlier = std::fabs(code_d) >= static_cast<double>(radius);
      float rec = 0.0f;
      if (!outlier) {
        rec = static_cast<float>(pred + code_d * 2.0 * eb);
        if (std::fabs(static_cast<double>(rec) - static_cast<double>(x)) > eb) outlier = true;
      }
      if (outlier) {
        symbols[i] = 0;
        outliers.push_back(x);
        recon[i] = x;
      } else {
        symbols[i] = static_cast<std::uint32_t>(static_cast<std::int64_t>(code_d) +
                                                static_cast<std::int64_t>(radius));
        recon[i] = rec;
      }
    }
  }
}

using tensor::append_bytes;

template <typename T>
T read_pod(const std::uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

}  // namespace

Compressor::Compressor(Config cfg) : cfg_(cfg) {
  if (cfg_.error_bound <= 0.0) throw std::invalid_argument("Compressor: error_bound must be > 0");
  if (cfg_.radius < 2) throw std::invalid_argument("Compressor: radius must be >= 2");
  if (cfg_.block_size == 0) throw std::invalid_argument("Compressor: block_size must be > 0");
  if (cfg_.predictor == Predictor::kLorenzo2D && cfg_.plane_width == 0)
    throw std::invalid_argument("Compressor: kLorenzo2D requires plane_width");
}

CompressedBuffer Compressor::compress(std::span<const float> data) const {
  // Resolve the absolute bound.
  double eb = cfg_.error_bound;
  if (cfg_.bound_mode == BoundMode::kRelative) {
    float lo = 0.0f, hi = 0.0f;
    if (!data.empty()) {
      lo = hi = data[0];
      for (float v : data) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    const double range = static_cast<double>(hi) - static_cast<double>(lo);
    eb = range > 0.0 ? cfg_.error_bound * range : cfg_.error_bound;
  }

  // Exact-zero RLE mode: strip zeros into a run-length side stream and
  // compress only the packed non-zero sequence.
  std::vector<std::uint8_t> rle_bytes;
  std::vector<float> packed;
  std::span<const float> payload = data;
  if (cfg_.zero_mode == ZeroMode::kExactRle) {
    BitWriter rle;
    packed.reserve(data.size());
    std::size_t i = 0;
    while (i < data.size()) {
      std::size_t z = i;
      while (z < data.size() && data[z] == 0.0f) ++z;
      rle.put_varint(z - i);
      std::size_t nz = z;
      while (nz < data.size() && data[nz] != 0.0f) ++nz;
      rle.put_varint(nz - z);
      for (std::size_t k = z; k < nz; ++k) packed.push_back(data[k]);
      i = nz;
    }
    rle_bytes = rle.finish();
    payload = packed;
  }

  const std::size_t n = payload.size();
  const std::size_t bs = cfg_.block_size;
  const bool two_d = cfg_.predictor == Predictor::kLorenzo2D;
  const std::size_t num_blocks = two_d ? (n ? 1 : 0) : (n + bs - 1) / bs;

  // Stage 1 — block-parallel Lorenzo + quantization. Every block predicts
  // from a fresh context (prev_recon = 0), so blocks are fully independent;
  // each worker writes only its own BlockResult. The per-block tasks go to
  // the shared work-stealing pool, so a compress launched from inside a
  // training step (activation stash) interleaves with layer compute instead
  // of waiting for a free OpenMP team, and skewed blocks (outlier-heavy
  // ones encode slower) are absorbed by stealing.
  std::vector<BlockResult> blocks(num_blocks);
  if (two_d && n > 0) {
    std::vector<float> recon;
    quantize_2d(payload, cfg_.plane_width, eb, cfg_.radius, blocks[0].symbols,
                blocks[0].outliers, recon);
  } else {
    tensor::parallel_for_tasks(num_blocks, cfg_.num_threads, [&](std::size_t b) {
      const std::size_t begin = b * bs;
      const std::size_t end = std::min(n, begin + bs);
      quantize_block_1d(payload.subspan(begin, end - begin), eb, cfg_.radius,
                        blocks[b].symbols, blocks[b].outliers);
    });
  }

  // Stage 2 — global Huffman table. Histograms accumulate into per-chunk
  // buffers and merge in chunk order, so the frequency vector (and hence the
  // table and the output bytes) is independent of the thread count.
  const std::size_t alphabet = 2ull * cfg_.radius;
  const std::size_t hw = static_cast<std::size_t>(tensor::hardware_threads());
  const std::size_t workers =
      cfg_.num_threads == 0 ? hw : std::min<std::size_t>(cfg_.num_threads, hw);
  const std::size_t nchunks = std::min(num_blocks, std::max<std::size_t>(workers, 1));
  std::vector<std::vector<std::uint64_t>> chunk_freqs(nchunks);
  tensor::parallel_for_tasks(nchunks, cfg_.num_threads, [&](std::size_t c) {
    auto& f = chunk_freqs[c];
    f.assign(alphabet, 0);
    const std::size_t lo = c * num_blocks / nchunks;
    const std::size_t hi = (c + 1) * num_blocks / nchunks;
    for (std::size_t b = lo; b < hi; ++b) {
      for (std::uint32_t s : blocks[b].symbols) ++f[s];
    }
  });
  std::vector<std::uint64_t> freqs(alphabet, 0);
  for (const auto& f : chunk_freqs) {
    for (std::size_t s = 0; s < alphabet; ++s) freqs[s] += f[s];
  }
  HuffmanCodec codec;
  codec.build(freqs);
  const std::vector<std::uint8_t> table = codec.serialize_table();

  // Stage 3 — block-parallel entropy coding against the shared table.
  tensor::parallel_for_tasks(num_blocks, cfg_.num_threads, [&](std::size_t b) {
    blocks[b].encoded = codec.encode(blocks[b].symbols);
  });

  Header h;
  h.num_elements = data.size();
  h.abs_eb = eb;
  h.predictor = static_cast<std::uint8_t>(cfg_.predictor);
  h.zero_mode = static_cast<std::uint8_t>(cfg_.zero_mode);
  h.radius = cfg_.radius;
  h.block_size = cfg_.block_size;
  h.num_quantized = n;
  h.table_bytes = table.size();
  h.rle_bytes = rle_bytes.size();
  h.num_blocks = num_blocks;

  CompressedBuffer out;
  out.num_elements = data.size();
  out.abs_error_bound = eb;
  append_bytes(out.bytes, &h, sizeof(h));
  append_bytes(out.bytes, table.data(), table.size());
  append_bytes(out.bytes, rle_bytes.data(), rle_bytes.size());
  // Block-offset index: one (symbols, encoded bytes, outliers) triplet per
  // block. Prefix sums over it give each block's payload offsets, which is
  // what lets decompression fan the blocks back out across threads.
  for (const auto& blk : blocks) {
    const std::uint64_t counts[3] = {blk.symbols.size(), blk.encoded.size(),
                                     blk.outliers.size()};
    append_bytes(out.bytes, counts, sizeof(counts));
  }
  for (const auto& blk : blocks) append_bytes(out.bytes, blk.encoded.data(), blk.encoded.size());
  for (const auto& blk : blocks)
    append_bytes(out.bytes, blk.outliers.data(), blk.outliers.size() * sizeof(float));
  return out;
}

void Compressor::decompress(const CompressedBuffer& buf, std::span<float> out) const {
  if (buf.bytes.size() < sizeof(Header))
    throw std::runtime_error("Compressor::decompress: truncated buffer");
  const std::uint8_t* p = buf.bytes.data();
  const Header h = read_pod<Header>(p);
  if (h.magic != kMagic) throw std::runtime_error("Compressor::decompress: bad magic");
  // Each untrusted length is checked against the bytes that remain, never
  // summed up front: summing unchecked uint64 fields could wrap and slip a
  // crafted header past the guard.
  std::size_t remaining = buf.bytes.size() - sizeof(Header);
  if (h.table_bytes > remaining)
    throw std::runtime_error("Compressor::decompress: corrupt header (table)");
  remaining -= static_cast<std::size_t>(h.table_bytes);
  if (h.rle_bytes > remaining)
    throw std::runtime_error("Compressor::decompress: corrupt header (rle)");
  remaining -= static_cast<std::size_t>(h.rle_bytes);
  constexpr std::size_t kIndexEntry = 3 * sizeof(std::uint64_t);
  if (h.num_blocks > remaining / kIndexEntry)
    throw std::runtime_error("Compressor::decompress: corrupt header (blocks)");
  remaining -= static_cast<std::size_t>(h.num_blocks) * kIndexEntry;
  if (h.predictor > static_cast<std::uint8_t>(Predictor::kLorenzo2D) ||
      h.zero_mode > static_cast<std::uint8_t>(ZeroMode::kExactRle))
    throw std::runtime_error("Compressor::decompress: corrupt header (mode)");
  // num_quantized sizes the payload buffer and, for the non-RLE modes, is
  // copied verbatim into `out` — forging it must not move the write bounds.
  if (static_cast<ZeroMode>(h.zero_mode) == ZeroMode::kExactRle
          ? h.num_quantized > h.num_elements
          : h.num_quantized != h.num_elements)
    throw std::runtime_error("Compressor::decompress: corrupt header (count)");
  if (static_cast<Predictor>(h.predictor) == Predictor::kLorenzo2D && cfg_.plane_width == 0)
    throw std::runtime_error(
        "Compressor::decompress: 2-D stream needs a compressor with plane_width set");
  if (out.size() != h.num_elements)
    throw std::invalid_argument("Compressor::decompress: output size mismatch");

  HuffmanCodec codec;
  codec.deserialize_table({p, static_cast<std::size_t>(h.table_bytes)});
  p += h.table_bytes;
  std::span<const std::uint8_t> rle{p, static_cast<std::size_t>(h.rle_bytes)};
  p += h.rle_bytes;

  struct BlockMeta {
    std::uint64_t symbol_count, encoded_bytes, outlier_count;
    std::size_t encoded_off, outlier_off, out_off;
  };
  // Walk the block index with the same no-sum discipline: every offset is
  // validated against what is left before it is committed, so a corrupt
  // index throws instead of steering reads/writes out of bounds.
  std::vector<BlockMeta> metas(h.num_blocks);
  std::size_t enc_off = 0, outl_off = 0, sym_off = 0;
  for (auto& m : metas) {
    m.symbol_count = read_pod<std::uint64_t>(p);
    m.encoded_bytes = read_pod<std::uint64_t>(p);
    m.outlier_count = read_pod<std::uint64_t>(p);
    // Invariant: sym_off <= num_quantized and enc_off + outl_off*4 <=
    // remaining, so these subtractions cannot wrap.
    const std::size_t avail = remaining - enc_off - outl_off * sizeof(float);
    if (m.symbol_count > h.num_quantized - sym_off || m.encoded_bytes > avail ||
        m.outlier_count > (avail - m.encoded_bytes) / sizeof(float))
      throw std::runtime_error("Compressor::decompress: corrupt block index");
    m.encoded_off = enc_off;
    m.outlier_off = outl_off;
    m.out_off = sym_off;
    enc_off += static_cast<std::size_t>(m.encoded_bytes);
    outl_off += static_cast<std::size_t>(m.outlier_count);
    sym_off += static_cast<std::size_t>(m.symbol_count);
  }
  if (sym_off != h.num_quantized)
    throw std::runtime_error("Compressor::decompress: corrupt block index");
  const std::uint8_t* enc_base = p;
  const std::uint8_t* outlier_base = p + enc_off;

  std::vector<float> payload(h.num_quantized);
  const bool two_d = static_cast<Predictor>(h.predictor) == Predictor::kLorenzo2D;
  const double eb = h.abs_eb;
  const std::uint32_t radius = h.radius;

  tensor::parallel_for_tasks(metas.size(), cfg_.num_threads, [&](std::size_t b) {
    const BlockMeta& m = metas[b];
    const auto symbols = codec.decode(
        {enc_base + m.encoded_off, static_cast<std::size_t>(m.encoded_bytes)},
        static_cast<std::size_t>(m.symbol_count));
    std::vector<float> outliers(m.outlier_count);
    if (m.outlier_count > 0) {
      std::memcpy(outliers.data(), outlier_base + m.outlier_off * sizeof(float),
                  m.outlier_count * sizeof(float));
    }
    float* dst = payload.data() + m.out_off;
    std::size_t oi = 0;
    if (two_d) {
      const std::size_t w = cfg_.plane_width;
      for (std::size_t i = 0; i < symbols.size(); ++i) {
        const std::size_t r = i / w, c = i % w;
        const double left = c > 0 ? dst[i - 1] : 0.0;
        const double top = r > 0 ? dst[i - w] : 0.0;
        const double tl = (c > 0 && r > 0) ? dst[i - w - 1] : 0.0;
        const double pred = left + top - tl;
        if (symbols[i] == 0) {
          // A corrupt symbol stream can claim more escapes than the block
          // index promised; clamp rather than read out of bounds.
          dst[i] = oi < outliers.size() ? outliers[oi++] : 0.0f;
        } else {
          const auto code = static_cast<std::int64_t>(symbols[i]) -
                            static_cast<std::int64_t>(radius);
          dst[i] = static_cast<float>(pred + static_cast<double>(code) * 2.0 * eb);
        }
      }
    } else {
      float prev = 0.0f;
      for (std::size_t i = 0; i < symbols.size(); ++i) {
        if (symbols[i] == 0) {
          prev = oi < outliers.size() ? outliers[oi++] : 0.0f;
        } else {
          const auto code = static_cast<std::int64_t>(symbols[i]) -
                            static_cast<std::int64_t>(radius);
          prev = static_cast<float>(static_cast<double>(prev) +
                                    static_cast<double>(code) * 2.0 * eb);
        }
        dst[i] = prev;
      }
    }
  });

  const auto zero_mode = static_cast<ZeroMode>(h.zero_mode);
  if (zero_mode == ZeroMode::kExactRle) {
    BitReader r(rle);
    std::size_t oi = 0, pi = 0;
    while (oi < out.size()) {
      const std::uint64_t zrun = r.get_varint();
      for (std::uint64_t k = 0; k < zrun && oi < out.size(); ++k) out[oi++] = 0.0f;
      if (oi >= out.size()) break;
      const std::uint64_t nzrun = r.get_varint();
      // A valid stream never emits a (0, 0) pair while elements remain; an
      // exhausted (corrupt) reader yields exactly that — stop instead of
      // spinning.
      if (zrun == 0 && nzrun == 0) break;
      for (std::uint64_t k = 0; k < nzrun && oi < out.size() && pi < payload.size(); ++k)
        out[oi++] = payload[pi++];
    }
    while (oi < out.size()) out[oi++] = 0.0f;  // corrupt-stream remainder
  } else {
    std::copy(payload.begin(), payload.end(), out.begin());
    if (zero_mode == ZeroMode::kRezero) {
      // The paper's decompression filter (§4.4): values under the bound are
      // re-zeroed so ReLU-induced zeros survive exactly.
      tensor::parallel_for(out.size(), [&](std::size_t i) {
        if (std::fabs(static_cast<double>(out[i])) < eb) out[i] = 0.0f;
      });
    }
  }
}

std::vector<float> Compressor::decompress(const CompressedBuffer& buf) const {
  std::vector<float> out(buf.num_elements);
  decompress(buf, out);
  return out;
}

double max_abs_error(std::span<const float> original, std::span<const float> reconstructed) {
  double m = 0.0;
  const std::size_t n = std::min(original.size(), reconstructed.size());
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, std::fabs(static_cast<double>(original[i]) -
                              static_cast<double>(reconstructed[i])));
  }
  return m;
}

}  // namespace ebct::sz
