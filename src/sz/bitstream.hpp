#pragma once

/// \file bitstream.hpp
/// MSB-first bit writer/reader over a byte vector. Used by the Huffman coder
/// and the run-length streams inside the SZ compressor.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ebct::sz {

class BitWriter {
 public:
  /// Append the low `nbits` bits of `value`, most-significant first.
  void put(std::uint64_t value, unsigned nbits) {
    while (nbits > 0) {
      const unsigned take = nbits < (64 - fill_) ? nbits : (64 - fill_);
      // take == 64 (empty accumulator, full-word put) would make the shift
      // below UB; acc_ is 0 then, so the word replaces it wholesale.
      acc_ = take == 64 ? value
                        : (acc_ << take) | ((value >> (nbits - take)) & mask(take));
      fill_ += take;
      nbits -= take;
      if (fill_ == 64) flush_word();
    }
  }

  void put_bit(bool b) { put(b ? 1 : 0, 1); }

  /// Unsigned LEB128 varint (byte-aligned is not required; emitted as bits).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put((v & 0x7f) | 0x80, 8);
      v >>= 7;
    }
    put(v, 8);
  }

  /// Pad to a byte boundary and return the underlying bytes.
  std::vector<std::uint8_t> finish() {
    if (fill_ % 8 != 0) put(0, 8 - (fill_ % 8));
    while (fill_ >= 8) {
      fill_ -= 8;
      bytes_.push_back(static_cast<std::uint8_t>((acc_ >> fill_) & 0xff));
    }
    acc_ = 0;
    return std::move(bytes_);
  }

  std::size_t bit_count() const { return bytes_.size() * 8 + fill_; }

 private:
  static std::uint64_t mask(unsigned n) { return n >= 64 ? ~0ULL : ((1ULL << n) - 1); }
  void flush_word() {
    for (int s = 56; s >= 0; s -= 8) {
      bytes_.push_back(static_cast<std::uint8_t>((acc_ >> s) & 0xff));
    }
    acc_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

/// Word-buffered reader: bits are staged in a 64-bit accumulator refilled in
/// 32-bit gulps, so hot decoders (the Huffman LUT) pay one peek + one skip
/// per symbol instead of a byte-bounded loop per bit. Reading past the end
/// yields zero bits; callers track logical lengths.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t get(unsigned nbits) {
    if (nbits > 32) {
      const std::uint64_t hi = get(nbits - 32);
      return (hi << 32) | get(32);
    }
    const std::uint64_t v = peek(nbits);
    consume(nbits);
    return v;
  }

  bool get_bit() { return get(1) != 0; }

  /// Next `nbits` (<= 32) without consuming, MSB-first, zero-padded past the
  /// end of the stream.
  std::uint32_t peek(unsigned nbits) {
    if (nbits == 0) return 0;
    ensure(nbits);
    return static_cast<std::uint32_t>((acc_ >> (avail_ - nbits)) & mask(nbits));
  }

  /// Discard `nbits` previously made available by peek().
  void skip(unsigned nbits) { consume(nbits); }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
      const std::uint64_t byte = get(8);
      // A valid 64-bit varint never exceeds 10 groups; a corrupt stream can
      // keep continuation bits set, so drop groups past bit 63 rather than
      // shift out of range (an exhausted reader yields 0x00 and terminates
      // the loop).
      if (shift < 64) v |= (byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  /// True once every real input bit has been consumed (zero padding fetched
  /// by overreads does not count as remaining input).
  bool exhausted() const { return pos_ >= bytes_.size() && avail_ <= padding_; }

 private:
  static std::uint64_t mask(unsigned n) { return n >= 64 ? ~0ULL : ((1ULL << n) - 1); }

  void consume(unsigned nbits) {
    avail_ -= nbits;
    if (padding_ > avail_) padding_ = avail_;
  }

  /// Top up the accumulator until `nbits` are staged: whole 32-bit words
  /// while at least four input bytes remain, single bytes at the tail, and
  /// zero bytes past the end (tracked as padding so exhausted() stays
  /// accurate).
  void ensure(unsigned nbits) {
    while (avail_ < nbits) {
      if (avail_ <= 32 && pos_ + 4 <= bytes_.size()) {
        const std::uint64_t word = (std::uint64_t{bytes_[pos_]} << 24) |
                                   (std::uint64_t{bytes_[pos_ + 1]} << 16) |
                                   (std::uint64_t{bytes_[pos_ + 2]} << 8) |
                                   std::uint64_t{bytes_[pos_ + 3]};
        acc_ = (acc_ << 32) | word;
        avail_ += 32;
        pos_ += 4;
      } else if (pos_ < bytes_.size()) {
        acc_ = (acc_ << 8) | bytes_[pos_++];
        avail_ += 8;
      } else {
        acc_ <<= 8;
        avail_ += 8;
        padding_ += 8;
      }
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned avail_ = 0;
  unsigned padding_ = 0;
};

}  // namespace ebct::sz
