#pragma once

/// \file bitstream.hpp
/// MSB-first bit writer/reader over a byte vector. Used by the Huffman coder
/// and the run-length streams inside the SZ compressor.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ebct::sz {

class BitWriter {
 public:
  /// Append the low `nbits` bits of `value`, most-significant first.
  void put(std::uint64_t value, unsigned nbits) {
    while (nbits > 0) {
      const unsigned take = nbits < (64 - fill_) ? nbits : (64 - fill_);
      acc_ = (acc_ << take) | ((value >> (nbits - take)) & mask(take));
      fill_ += take;
      nbits -= take;
      if (fill_ == 64) flush_word();
    }
  }

  void put_bit(bool b) { put(b ? 1 : 0, 1); }

  /// Unsigned LEB128 varint (byte-aligned is not required; emitted as bits).
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put((v & 0x7f) | 0x80, 8);
      v >>= 7;
    }
    put(v, 8);
  }

  /// Pad to a byte boundary and return the underlying bytes.
  std::vector<std::uint8_t> finish() {
    if (fill_ % 8 != 0) put(0, 8 - (fill_ % 8));
    while (fill_ >= 8) {
      fill_ -= 8;
      bytes_.push_back(static_cast<std::uint8_t>((acc_ >> fill_) & 0xff));
    }
    acc_ = 0;
    return std::move(bytes_);
  }

  std::size_t bit_count() const { return bytes_.size() * 8 + fill_; }

 private:
  static std::uint64_t mask(unsigned n) { return n >= 64 ? ~0ULL : ((1ULL << n) - 1); }
  void flush_word() {
    for (int s = 56; s >= 0; s -= 8) {
      bytes_.push_back(static_cast<std::uint8_t>((acc_ >> s) & 0xff));
    }
    acc_ = 0;
    fill_ = 0;
  }

  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t get(unsigned nbits) {
    std::uint64_t out = 0;
    while (nbits > 0) {
      if (avail_ == 0) refill();
      const unsigned take = nbits < avail_ ? nbits : avail_;
      out = (out << take) | ((acc_ >> (avail_ - take)) & mask(take));
      avail_ -= take;
      nbits -= take;
    }
    return out;
  }

  bool get_bit() { return get(1) != 0; }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
      const std::uint64_t byte = get(8);
      v |= (byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  bool exhausted() const { return pos_ >= bytes_.size() && avail_ == 0; }

 private:
  static std::uint64_t mask(unsigned n) { return n >= 64 ? ~0ULL : ((1ULL << n) - 1); }
  void refill() {
    acc_ = 0;
    avail_ = 0;
    while (avail_ < 64 && pos_ < bytes_.size()) {
      acc_ = (acc_ << 8) | bytes_[pos_++];
      avail_ += 8;
    }
    if (avail_ == 0) {
      // Reading past the end yields zeros; callers track logical lengths.
      acc_ = 0;
      avail_ = 64;
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned avail_ = 0;
};

}  // namespace ebct::sz
