#include "sz/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "sz/bitstream.hpp"

namespace ebct::sz {

namespace {

struct Node {
  std::uint64_t freq;
  std::int32_t symbol;  // -1 for internal
  std::int32_t left = -1, right = -1;
};

/// Compute per-symbol depths of a Huffman tree for `freqs`; returns max depth.
unsigned tree_depths(std::span<const std::uint64_t> freqs, std::vector<std::uint8_t>& lengths) {
  std::vector<Node> nodes;
  using Item = std::pair<std::uint64_t, std::int32_t>;  // (freq, node index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::uint32_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      nodes.push_back({freqs[s], static_cast<std::int32_t>(s)});
      heap.emplace(freqs[s], static_cast<std::int32_t>(nodes.size() - 1));
    }
  }
  lengths.assign(freqs.size(), 0);
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return 1;
  }
  while (heap.size() > 1) {
    auto [fa, ia] = heap.top();
    heap.pop();
    auto [fb, ib] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, -1, ia, ib});
    heap.emplace(fa + fb, static_cast<std::int32_t>(nodes.size() - 1));
  }
  // DFS to collect depths without recursion.
  unsigned max_depth = 0;
  std::vector<std::pair<std::int32_t, unsigned>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] = static_cast<std::uint8_t>(depth ? depth : 1);
      max_depth = std::max(max_depth, depth ? depth : 1);
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  return max_depth;
}

}  // namespace

void HuffmanCodec::build(std::span<const std::uint64_t> freqs) {
  std::vector<std::uint64_t> f(freqs.begin(), freqs.end());
  unsigned depth = tree_depths(f, lengths_);
  // Flatten extreme skew until the canonical code fits in kMaxCodeLen bits.
  while (depth > kMaxCodeLen) {
    for (auto& v : f)
      if (v > 0) v = (v + 1) / 2;
    depth = tree_depths(f, lengths_);
  }
  assign_canonical();
}

void HuffmanCodec::assign_canonical() {
  const std::size_t alphabet = lengths_.size();
  codes_.assign(alphabet, 0);
  unsigned max_len = 0;
  for (auto l : lengths_) max_len = std::max<unsigned>(max_len, l);
  count_.assign(max_len + 1, 0);
  for (auto l : lengths_)
    if (l > 0) ++count_[l];

  first_code_.assign(max_len + 1, 0);
  offset_.assign(max_len + 1, 0);
  std::uint32_t code = 0;
  std::uint32_t off = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    first_code_[len] = code;
    offset_[len] = off;
    code = (code + count_[len]) << 1;
    off += count_[len];
  }
  sorted_symbols_.clear();
  sorted_symbols_.reserve(off);
  // Symbols sorted by (length, symbol) get consecutive canonical codes.
  std::vector<std::uint32_t> next = first_code_;
  std::vector<std::uint32_t> fill(max_len + 1, 0);
  sorted_symbols_.assign(off, 0);
  for (std::uint32_t s = 0; s < alphabet; ++s) {
    const unsigned len = lengths_[s];
    if (len == 0) continue;
    codes_[s] = next[len]++;
    sorted_symbols_[offset_[len] + fill[len]++] = s;
  }

  // Decode LUT: every lut_bits_ window whose prefix is a code of length
  // l <= lut_bits_ maps straight to (symbol, l); windows left at len 0
  // belong to longer codes and fall through to the canonical scan.
  lut_bits_ = std::min<unsigned>(kLutBits, max_len);
  lut_.assign(lut_bits_ > 0 ? (std::size_t{1} << lut_bits_) : 0, LutEntry{});
  for (std::uint32_t s = 0; s < alphabet; ++s) {
    const unsigned len = lengths_[s];
    if (len == 0 || len > lut_bits_) continue;
    const std::size_t base = std::size_t{codes_[s]} << (lut_bits_ - len);
    const std::size_t span = std::size_t{1} << (lut_bits_ - len);
    for (std::size_t w = 0; w < span; ++w)
      lut_[base + w] = {s, static_cast<std::uint8_t>(len)};
  }
}

std::vector<std::uint8_t> HuffmanCodec::encode(std::span<const std::uint32_t> symbols) const {
  BitWriter w;
  for (std::uint32_t s : symbols) {
    const unsigned len = lengths_[s];
    if (len == 0) throw std::logic_error("HuffmanCodec::encode: symbol has no code");
    w.put(codes_[s], len);
  }
  return w.finish();
}

std::vector<std::uint32_t> HuffmanCodec::decode(std::span<const std::uint8_t> bytes,
                                                std::size_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count > 0 && count_.empty())
    throw std::runtime_error("HuffmanCodec::decode: no code table");
  BitReader r(bytes);
  const unsigned max_len = static_cast<unsigned>(count_.size()) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    // Fast path: one lut_bits_ peek resolves every code of that length or
    // shorter with a single table load.
    if (lut_bits_ > 0) {
      const LutEntry e = lut_[r.peek(lut_bits_)];
      if (e.len != 0) {
        r.skip(e.len);
        out.push_back(e.symbol);
        continue;
      }
    }
    // Slow path (codes longer than lut_bits_, or an empty table): peek the
    // maximal window once and scan the canonical first-code ranges.
    const std::uint32_t window = r.peek(max_len);
    unsigned len = lut_bits_ + 1;
    for (; len <= max_len; ++len) {
      const std::uint32_t code = window >> (max_len - len);
      if (count_[len] > 0 && code >= first_code_[len] &&
          code - first_code_[len] < count_[len]) {
        out.push_back(sorted_symbols_[offset_[len] + (code - first_code_[len])]);
        r.skip(len);
        break;
      }
    }
    if (len > max_len) throw std::runtime_error("HuffmanCodec::decode: corrupt stream");
  }
  return out;
}

std::vector<std::uint8_t> HuffmanCodec::serialize_table() const {
  // Varint alphabet size, then run-length-encoded lengths (value, run).
  BitWriter w;
  w.put_varint(lengths_.size());
  std::size_t i = 0;
  while (i < lengths_.size()) {
    std::size_t j = i;
    while (j < lengths_.size() && lengths_[j] == lengths_[i]) ++j;
    w.put_varint(lengths_[i]);
    w.put_varint(j - i);
    i = j;
  }
  return w.finish();
}

void HuffmanCodec::deserialize_table(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  const std::size_t alphabet = r.get_varint();
  lengths_.assign(alphabet, 0);
  std::size_t i = 0;
  while (i < alphabet) {
    const std::uint64_t raw_len = r.get_varint();
    // The decoder's peek window and canonical shifts assume lengths fit in
    // 32 bits; build() guarantees that, so anything longer is corruption.
    if (raw_len > kMaxCodeLen) throw std::runtime_error("Huffman table: code length > 32");
    const auto len = static_cast<std::uint8_t>(raw_len);
    const std::size_t run = r.get_varint();
    if (i + run > alphabet) throw std::runtime_error("Huffman table: corrupt run length");
    for (std::size_t k = 0; k < run; ++k) lengths_[i + k] = len;
    i += run;
  }
  // Kraft inequality: sum of 2^-len over coded symbols must not exceed 1,
  // or the lengths are not a prefix code and canonical code assignment
  // (and the decode-LUT fill) would run past its tables. build() always
  // satisfies this; serialized bytes are disk/attacker-controlled.
  std::uint64_t kraft = 0;  // in units of 2^-kMaxCodeLen
  for (const auto len : lengths_)
    if (len > 0) kraft += std::uint64_t{1} << (kMaxCodeLen - len);
  if (kraft > (std::uint64_t{1} << kMaxCodeLen))
    throw std::runtime_error("Huffman table: not a prefix code");
  assign_canonical();
}

double HuffmanCodec::entropy_bits(std::span<const std::uint64_t> freqs) {
  std::uint64_t total = 0;
  for (auto f : freqs) total += f;
  if (total == 0) return 0.0;
  double bits = 0.0;
  for (auto f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    bits += -static_cast<double>(f) * std::log2(p);
  }
  return bits;
}

}  // namespace ebct::sz
