#include "sz/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "sz/bitstream.hpp"

namespace ebct::sz {

namespace {

struct Node {
  std::uint64_t freq;
  std::int32_t symbol;  // -1 for internal
  std::int32_t left = -1, right = -1;
};

/// Compute per-symbol depths of a Huffman tree for `freqs`; returns max depth.
unsigned tree_depths(std::span<const std::uint64_t> freqs, std::vector<std::uint8_t>& lengths) {
  std::vector<Node> nodes;
  using Item = std::pair<std::uint64_t, std::int32_t>;  // (freq, node index)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (std::uint32_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] > 0) {
      nodes.push_back({freqs[s], static_cast<std::int32_t>(s)});
      heap.emplace(freqs[s], static_cast<std::int32_t>(nodes.size() - 1));
    }
  }
  lengths.assign(freqs.size(), 0);
  if (nodes.empty()) return 0;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return 1;
  }
  while (heap.size() > 1) {
    auto [fa, ia] = heap.top();
    heap.pop();
    auto [fb, ib] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, -1, ia, ib});
    heap.emplace(fa + fb, static_cast<std::int32_t>(nodes.size() - 1));
  }
  // DFS to collect depths without recursion.
  unsigned max_depth = 0;
  std::vector<std::pair<std::int32_t, unsigned>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.symbol >= 0) {
      lengths[static_cast<std::size_t>(n.symbol)] = static_cast<std::uint8_t>(depth ? depth : 1);
      max_depth = std::max(max_depth, depth ? depth : 1);
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  return max_depth;
}

}  // namespace

void HuffmanCodec::build(std::span<const std::uint64_t> freqs) {
  std::vector<std::uint64_t> f(freqs.begin(), freqs.end());
  unsigned depth = tree_depths(f, lengths_);
  // Flatten extreme skew until the canonical code fits in kMaxCodeLen bits.
  while (depth > kMaxCodeLen) {
    for (auto& v : f)
      if (v > 0) v = (v + 1) / 2;
    depth = tree_depths(f, lengths_);
  }
  assign_canonical();
}

void HuffmanCodec::assign_canonical() {
  const std::size_t alphabet = lengths_.size();
  codes_.assign(alphabet, 0);
  unsigned max_len = 0;
  for (auto l : lengths_) max_len = std::max<unsigned>(max_len, l);
  count_.assign(max_len + 1, 0);
  for (auto l : lengths_)
    if (l > 0) ++count_[l];

  first_code_.assign(max_len + 1, 0);
  offset_.assign(max_len + 1, 0);
  std::uint32_t code = 0;
  std::uint32_t off = 0;
  for (unsigned len = 1; len <= max_len; ++len) {
    first_code_[len] = code;
    offset_[len] = off;
    code = (code + count_[len]) << 1;
    off += count_[len];
  }
  sorted_symbols_.clear();
  sorted_symbols_.reserve(off);
  // Symbols sorted by (length, symbol) get consecutive canonical codes.
  std::vector<std::uint32_t> next = first_code_;
  std::vector<std::uint32_t> fill(max_len + 1, 0);
  sorted_symbols_.assign(off, 0);
  for (std::uint32_t s = 0; s < alphabet; ++s) {
    const unsigned len = lengths_[s];
    if (len == 0) continue;
    codes_[s] = next[len]++;
    sorted_symbols_[offset_[len] + fill[len]++] = s;
  }
}

std::vector<std::uint8_t> HuffmanCodec::encode(std::span<const std::uint32_t> symbols) const {
  BitWriter w;
  for (std::uint32_t s : symbols) {
    const unsigned len = lengths_[s];
    if (len == 0) throw std::logic_error("HuffmanCodec::encode: symbol has no code");
    w.put(codes_[s], len);
  }
  return w.finish();
}

std::vector<std::uint32_t> HuffmanCodec::decode(std::span<const std::uint8_t> bytes,
                                                std::size_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  BitReader r(bytes);
  const unsigned max_len = static_cast<unsigned>(count_.size()) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint32_t code = 0;
    unsigned len = 0;
    while (true) {
      code = (code << 1) | (r.get_bit() ? 1u : 0u);
      ++len;
      if (len > max_len) throw std::runtime_error("HuffmanCodec::decode: corrupt stream");
      if (count_[len] > 0 && code >= first_code_[len] &&
          code - first_code_[len] < count_[len]) {
        out.push_back(sorted_symbols_[offset_[len] + (code - first_code_[len])]);
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> HuffmanCodec::serialize_table() const {
  // Varint alphabet size, then run-length-encoded lengths (value, run).
  BitWriter w;
  w.put_varint(lengths_.size());
  std::size_t i = 0;
  while (i < lengths_.size()) {
    std::size_t j = i;
    while (j < lengths_.size() && lengths_[j] == lengths_[i]) ++j;
    w.put_varint(lengths_[i]);
    w.put_varint(j - i);
    i = j;
  }
  return w.finish();
}

void HuffmanCodec::deserialize_table(std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  const std::size_t alphabet = r.get_varint();
  lengths_.assign(alphabet, 0);
  std::size_t i = 0;
  while (i < alphabet) {
    const auto len = static_cast<std::uint8_t>(r.get_varint());
    const std::size_t run = r.get_varint();
    if (i + run > alphabet) throw std::runtime_error("Huffman table: corrupt run length");
    for (std::size_t k = 0; k < run; ++k) lengths_[i + k] = len;
    i += run;
  }
  assign_canonical();
}

double HuffmanCodec::entropy_bits(std::span<const std::uint64_t> freqs) {
  std::uint64_t total = 0;
  for (auto f : freqs) total += f;
  if (total == 0) return 0.0;
  double bits = 0.0;
  for (auto f : freqs) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / static_cast<double>(total);
    bits += -static_cast<double>(f) * std::log2(p);
  }
  return bits;
}

}  // namespace ebct::sz
