#pragma once

/// \file compressor.hpp
/// SZ-style error-bounded lossy compressor for float32 tensors (the CPU
/// stand-in for cuSZ). Pipeline: Lorenzo prediction -> linear-scaling
/// quantization against the user error bound -> canonical Huffman coding,
/// with unpredictable values escaped to a raw outlier stream.
///
/// Zero handling reproduces both behaviours discussed in the paper (§4.4):
///  - kNone        : zeros flow through prediction and may reconstruct as
///                   small values within the bound (stock cuSZ behaviour),
///  - kRezero      : the paper's fix — a decompression filter that re-zeros
///                   any reconstructed value with |x| < eb. NOTE: for an
///                   original value x with eb < |x| < 2*eb whose
///                   reconstruction lands below eb, re-zeroing yields an
///                   error of up to 2*eb; the effective worst-case bound in
///                   this mode is therefore 2*eb (the paper accepts this:
///                   such values are indistinguishable from noise),
///  - kExactRle    : our extension — exact zeros are run-length encoded in a
///                   side stream and restored verbatim, preserving the
///                   strict eb bound for all elements.

#include <cstdint>
#include <span>
#include <vector>

namespace ebct::sz {

enum class Predictor : std::uint8_t {
  kLorenzo1D = 0,  ///< previous reconstructed value
  kLorenzo2D = 1,  ///< left + top - topleft over a plane of `plane_width`
};

enum class ZeroMode : std::uint8_t {
  kNone = 0,
  kRezero = 1,
  kExactRle = 2,
};

enum class BoundMode : std::uint8_t {
  kAbsolute = 0,  ///< error_bound is the absolute bound
  kRelative = 1,  ///< absolute bound = error_bound * (max - min) of the input
};

struct Config {
  double error_bound = 1e-3;
  BoundMode bound_mode = BoundMode::kAbsolute;
  Predictor predictor = Predictor::kLorenzo1D;
  ZeroMode zero_mode = ZeroMode::kRezero;
  std::uint32_t radius = 32768;      ///< quantization codes in (-radius, radius)
  std::uint32_t block_size = 65536;  ///< independent prediction blocks (parallelism)
  std::uint32_t plane_width = 0;     ///< required for kLorenzo2D

  /// Concurrency cap for the block-parallel compress/decompress paths,
  /// which run as tasks in the shared work-stealing scheduler (see
  /// tensor/sched.hpp): 0 = the whole pool, 1 = serial, N = at most N
  /// pool threads pulling blocks dynamically. The compressed bytes are
  /// identical for every setting and every pool size — blocks are laid
  /// out in index order and the Huffman table is built from
  /// deterministically merged per-chunk histograms — so this is purely a
  /// throughput knob.
  std::uint32_t num_threads = 0;
};

/// Opaque compressed representation. `bytes` is self-describing; the
/// metadata fields mirror the header for convenience.
struct CompressedBuffer {
  std::vector<std::uint8_t> bytes;
  std::size_t num_elements = 0;
  double abs_error_bound = 0.0;

  std::size_t compressed_bytes() const { return bytes.size(); }
  std::size_t original_bytes() const { return num_elements * sizeof(float); }
  double compression_ratio() const {
    return bytes.empty() ? 0.0
                         : static_cast<double>(original_bytes()) /
                               static_cast<double>(bytes.size());
  }
};

class Compressor {
 public:
  explicit Compressor(Config cfg = {});

  const Config& config() const { return cfg_; }

  CompressedBuffer compress(std::span<const float> data) const;

  /// Reconstruct into `out` (must have buf.num_elements elements).
  void decompress(const CompressedBuffer& buf, std::span<float> out) const;

  std::vector<float> decompress(const CompressedBuffer& buf) const;

 private:
  Config cfg_;
};

/// Largest |original - reconstructed| over the span pair.
double max_abs_error(std::span<const float> original, std::span<const float> reconstructed);

}  // namespace ebct::sz
