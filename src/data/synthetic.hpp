#pragma once

/// \file synthetic.hpp
/// Deterministic procedural image-classification dataset — the offline
/// substitute for ImageNet-2012 (see DESIGN.md). Each class owns a smooth
/// random prototype texture (low-frequency Fourier synthesis); an instance
/// is the prototype under random gain, circular shift and pixel noise. The
/// task is non-trivial (instances overlap across classes through noise) yet
/// learnable by small CNNs, producing realistic sparse post-ReLU activations
/// and a falling loss curve.

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace ebct::data {

struct SyntheticSpec {
  std::size_t num_classes = 10;
  std::size_t image_hw = 32;
  std::size_t channels = 3;
  std::size_t train_per_class = 256;
  std::size_t test_per_class = 64;
  double noise_stddev = 0.35;     ///< instance pixel noise
  double max_shift_frac = 0.25;   ///< circular shift as a fraction of hw
  std::uint64_t seed = 1234;
};

class SyntheticImageDataset {
 public:
  explicit SyntheticImageDataset(SyntheticSpec spec);

  const SyntheticSpec& spec() const { return spec_; }
  std::size_t train_size() const { return spec_.num_classes * spec_.train_per_class; }
  std::size_t test_size() const { return spec_.num_classes * spec_.test_per_class; }

  /// Materialise sample `index` of the given split into `out` (CHW floats,
  /// roughly zero-mean/unit-range); returns its label. Deterministic in
  /// (seed, split, index).
  std::int32_t fill_sample(bool train_split, std::size_t index, std::span<float> out) const;

  std::size_t sample_numel() const {
    return spec_.channels * spec_.image_hw * spec_.image_hw;
  }

 private:
  void build_prototypes();

  SyntheticSpec spec_;
  // Per class: channels * hw * hw prototype.
  std::vector<std::vector<float>> prototypes_;
};

/// Batches samples from a SyntheticImageDataset with optional shuffling.
class DataLoader {
 public:
  DataLoader(const SyntheticImageDataset& ds, std::size_t batch_size, bool train_split,
             bool shuffle, std::uint64_t seed = 7);

  /// Number of full batches per epoch (remainder dropped, as is usual).
  std::size_t batches_per_epoch() const;

  /// Produce the next batch; wraps and reshuffles at epoch end.
  void next(tensor::Tensor& images, std::vector<std::int32_t>& labels);

  std::size_t batch_size() const { return batch_size_; }

 private:
  const SyntheticImageDataset& ds_;
  std::size_t batch_size_;
  bool train_split_;
  bool shuffle_;
  tensor::Rng rng_;
  std::vector<std::uint32_t> order_;
  std::size_t cursor_ = 0;
};

}  // namespace ebct::data
