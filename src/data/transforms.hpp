#pragma once

/// \file transforms.hpp
/// Training-time data augmentation: random crop with zero padding and
/// horizontal flip — the standard ImageNet/CIFAR pipeline the paper's
/// training recipes rely on. Applied in-place on a CHW sample.

#include <span>

#include "tensor/rng.hpp"

namespace ebct::data {

/// Flip a CHW image horizontally with probability p.
void random_hflip(std::span<float> chw, std::size_t channels, std::size_t hw,
                  tensor::Rng& rng, double p = 0.5);

/// Pad by `pad` zeros on each side, then crop a random hw x hw window
/// (the CIFAR "pad-and-crop" augmentation).
void random_pad_crop(std::span<float> chw, std::size_t channels, std::size_t hw,
                     std::size_t pad, tensor::Rng& rng);

/// Normalise each channel to zero mean / unit variance in place.
void per_channel_standardize(std::span<float> chw, std::size_t channels, std::size_t hw);

}  // namespace ebct::data
