#include "data/transforms.hpp"

#include <cmath>
#include <vector>

namespace ebct::data {

void random_hflip(std::span<float> chw, std::size_t channels, std::size_t hw,
                  tensor::Rng& rng, double p) {
  if (rng.uniform() >= p) return;
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = chw.data() + c * hw * hw;
    for (std::size_t y = 0; y < hw; ++y) {
      float* row = plane + y * hw;
      for (std::size_t x = 0; x < hw / 2; ++x) std::swap(row[x], row[hw - 1 - x]);
    }
  }
}

void random_pad_crop(std::span<float> chw, std::size_t channels, std::size_t hw,
                     std::size_t pad, tensor::Rng& rng) {
  if (pad == 0) return;
  const std::size_t padded = hw + 2 * pad;
  const std::size_t ox = rng.uniform_index(2 * pad + 1);
  const std::size_t oy = rng.uniform_index(2 * pad + 1);
  std::vector<float> buf(padded * padded, 0.0f);
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = chw.data() + c * hw * hw;
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        buf[(y + pad) * padded + (x + pad)] = plane[y * hw + x];
      }
    }
    for (std::size_t y = 0; y < hw; ++y) {
      for (std::size_t x = 0; x < hw; ++x) {
        plane[y * hw + x] = buf[(y + oy) * padded + (x + ox)];
      }
    }
    // Clear the scratch for the next channel (crop may read padded zeros).
    std::fill(buf.begin(), buf.end(), 0.0f);
  }
}

void per_channel_standardize(std::span<float> chw, std::size_t channels, std::size_t hw) {
  const std::size_t n = hw * hw;
  for (std::size_t c = 0; c < channels; ++c) {
    float* plane = chw.data() + c * n;
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += plane[i];
      sq += static_cast<double>(plane[i]) * plane[i];
    }
    const double mean = sum / static_cast<double>(n);
    double var = sq / static_cast<double>(n) - mean * mean;
    if (var < 1e-12) var = 1e-12;
    const float inv = static_cast<float>(1.0 / std::sqrt(var));
    for (std::size_t i = 0; i < n; ++i)
      plane[i] = static_cast<float>((plane[i] - mean) * inv);
  }
}

}  // namespace ebct::data
