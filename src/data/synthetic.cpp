#include "data/synthetic.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ebct::data {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

namespace {
constexpr double kPi = 3.14159265358979323846;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  // 64-bit mix (splitmix-style) for per-sample seeding.
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

SyntheticImageDataset::SyntheticImageDataset(SyntheticSpec spec) : spec_(spec) {
  if (spec_.num_classes == 0) throw std::invalid_argument("SyntheticImageDataset: 0 classes");
  build_prototypes();
}

void SyntheticImageDataset::build_prototypes() {
  const std::size_t hw = spec_.image_hw;
  prototypes_.resize(spec_.num_classes);
  for (std::size_t cls = 0; cls < spec_.num_classes; ++cls) {
    Rng rng(mix(spec_.seed, cls));
    auto& proto = prototypes_[cls];
    proto.assign(spec_.channels * hw * hw, 0.0f);
    // Low-frequency Fourier synthesis: 6 random gratings per channel.
    for (std::size_t ch = 0; ch < spec_.channels; ++ch) {
      const double channel_bias = rng.uniform(-0.5, 0.5);
      for (int g = 0; g < 6; ++g) {
        const double fx = rng.uniform(0.5, 4.0);
        const double fy = rng.uniform(0.5, 4.0);
        const double phase = rng.uniform(0.0, 2.0 * kPi);
        const double amp = rng.uniform(0.2, 0.7) / (1.0 + 0.3 * g);
        for (std::size_t y = 0; y < hw; ++y) {
          for (std::size_t x = 0; x < hw; ++x) {
            const double v = amp * std::cos(2.0 * kPi *
                                                (fx * static_cast<double>(x) / hw +
                                                 fy * static_cast<double>(y) / hw) +
                                            phase);
            proto[(ch * hw + y) * hw + x] += static_cast<float>(v);
          }
        }
      }
      for (std::size_t i = 0; i < hw * hw; ++i)
        proto[ch * hw * hw + i] += static_cast<float>(channel_bias);
    }
  }
}

std::int32_t SyntheticImageDataset::fill_sample(bool train_split, std::size_t index,
                                                std::span<float> out) const {
  const std::size_t per_class = train_split ? spec_.train_per_class : spec_.test_per_class;
  const std::size_t total = spec_.num_classes * per_class;
  if (index >= total) throw std::out_of_range("SyntheticImageDataset: sample index");
  if (out.size() != sample_numel())
    throw std::invalid_argument("SyntheticImageDataset: output span size");

  const std::size_t cls = index / per_class;
  const std::size_t inst = index % per_class;
  Rng rng(mix(mix(spec_.seed, train_split ? 0x7a1 : 0x7e57), cls * 1000003 + inst));

  const std::size_t hw = spec_.image_hw;
  const auto max_shift = static_cast<std::size_t>(spec_.max_shift_frac * hw);
  const std::size_t sx = max_shift ? rng.uniform_index(2 * max_shift + 1) : 0;
  const std::size_t sy = max_shift ? rng.uniform_index(2 * max_shift + 1) : 0;
  const double gain = rng.uniform(0.7, 1.3);

  const auto& proto = prototypes_[cls];
  for (std::size_t ch = 0; ch < spec_.channels; ++ch) {
    for (std::size_t y = 0; y < hw; ++y) {
      const std::size_t py = (y + sy) % hw;
      for (std::size_t x = 0; x < hw; ++x) {
        const std::size_t px = (x + sx) % hw;
        const double v = gain * proto[(ch * hw + py) * hw + px] +
                         rng.normal(0.0, spec_.noise_stddev);
        out[(ch * hw + y) * hw + x] = static_cast<float>(v);
      }
    }
  }
  return static_cast<std::int32_t>(cls);
}

DataLoader::DataLoader(const SyntheticImageDataset& ds, std::size_t batch_size,
                       bool train_split, bool shuffle, std::uint64_t seed)
    : ds_(ds), batch_size_(batch_size), train_split_(train_split), shuffle_(shuffle),
      rng_(seed) {
  const std::size_t n = train_split ? ds.train_size() : ds.test_size();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  if (shuffle_) rng_.shuffle(std::span<std::uint32_t>(order_));
}

std::size_t DataLoader::batches_per_epoch() const {
  return order_.size() / batch_size_;
}

void DataLoader::next(Tensor& images, std::vector<std::int32_t>& labels) {
  const std::size_t hw = ds_.spec().image_hw;
  const Shape want = Shape::nchw(batch_size_, ds_.spec().channels, hw, hw);
  if (images.shape() != want) images = Tensor(want);
  labels.resize(batch_size_);
  const std::size_t stride = ds_.sample_numel();
  for (std::size_t b = 0; b < batch_size_; ++b) {
    if (cursor_ >= order_.size()) {
      cursor_ = 0;
      if (shuffle_) rng_.shuffle(std::span<std::uint32_t>(order_));
    }
    const std::size_t idx = order_[cursor_++];
    labels[b] =
        ds_.fill_sample(train_split_, idx, {images.data() + b * stride, stride});
  }
}

}  // namespace ebct::data
