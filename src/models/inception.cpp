// Inception-V4 (Szegedy et al., AAAI'17) — the paper's motivating example:
// "training Inception-V4 with batch size 32 on ImageNet-2012 requires more
// than 40 GB of memory" (§1). Faithful at 299px: stem with dual-branch
// concatenations, Inception-A/B/C blocks with 1x7/7x1 factorised
// convolutions, reduction blocks, global average pooling. Every conv is
// conv -> BN -> ReLU as in the published network. Below 128px the stem is
// reduced (stride-1, no reductions lost to tiny spatial sizes).

#include "models/model_zoo.hpp"

#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/simple_layers.hpp"

namespace ebct::models {

using nn::AvgPool;
using nn::BatchNorm;
using nn::ConcatBranches;
using nn::Conv2d;
using nn::Conv2dSpec;
using nn::Dropout;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Layer;
using nn::Linear;
using nn::MaxPool;
using nn::Network;
using nn::PoolSpec;
using nn::ReLU;
using tensor::Rng;
using tensor::Shape;

namespace {

using Seq = std::vector<std::unique_ptr<Layer>>;

std::size_t scaled(std::size_t channels, double mult) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(channels * mult + 0.5));
}

/// conv -> BN -> ReLU, the Inception-V4 unit. kh x kw kernel, given stride,
/// pad chosen as "same" (k/2) unless valid is requested.
void conv_bn(Seq& seq, const std::string& name, std::size_t in, std::size_t out,
             std::size_t kh, std::size_t kw, std::size_t stride, bool valid, Rng& rng) {
  Conv2dSpec spec;
  spec.in_channels = in;
  spec.out_channels = out;
  spec.kernel = kh;
  spec.kernel_w = kw;
  spec.stride = stride;
  spec.pad = valid ? 0 : kh / 2;
  spec.pad_w = valid ? 0 : kw / 2;
  spec.bias = false;
  seq.push_back(std::make_unique<Conv2d>(name, spec, rng));
  seq.push_back(std::make_unique<BatchNorm>(name + ".bn", out));
  seq.push_back(std::make_unique<ReLU>(name + ".relu"));
}

Seq seq_conv_bn(const std::string& name, std::size_t in, std::size_t out, std::size_t kh,
                std::size_t kw, std::size_t stride, bool valid, Rng& rng) {
  Seq s;
  conv_bn(s, name, in, out, kh, kw, stride, valid, rng);
  return s;
}

/// Inception-A: 35x35 grid module; output channels 4 x 96.
std::unique_ptr<Layer> inception_a(const std::string& name, std::size_t in, double m,
                                   Rng& rng) {
  std::vector<Seq> branches;
  branches.push_back(seq_conv_bn(name + ".b0", in, scaled(96, m), 1, 1, 1, false, rng));
  {
    Seq b;
    conv_bn(b, name + ".b1a", in, scaled(64, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b1b", scaled(64, m), scaled(96, m), 3, 3, 1, false, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    conv_bn(b, name + ".b2a", in, scaled(64, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b2b", scaled(64, m), scaled(96, m), 3, 3, 1, false, rng);
    conv_bn(b, name + ".b2c", scaled(96, m), scaled(96, m), 3, 3, 1, false, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    b.push_back(std::make_unique<AvgPool>(name + ".b3pool", PoolSpec{3, 1, 1}));
    conv_bn(b, name + ".b3", in, scaled(96, m), 1, 1, 1, false, rng);
    branches.push_back(std::move(b));
  }
  return std::make_unique<ConcatBranches>(name, std::move(branches));
}

/// Reduction-A: 35 -> 17, output 1024 (at m=1, in=384).
std::unique_ptr<Layer> reduction_a(const std::string& name, std::size_t in, double m,
                                   Rng& rng) {
  std::vector<Seq> branches;
  branches.push_back(seq_conv_bn(name + ".b0", in, scaled(384, m), 3, 3, 2, true, rng));
  {
    Seq b;
    conv_bn(b, name + ".b1a", in, scaled(192, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b1b", scaled(192, m), scaled(224, m), 3, 3, 1, false, rng);
    conv_bn(b, name + ".b1c", scaled(224, m), scaled(256, m), 3, 3, 2, true, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    b.push_back(std::make_unique<MaxPool>(name + ".b2pool", PoolSpec{3, 2, 0}));
    branches.push_back(std::move(b));
  }
  return std::make_unique<ConcatBranches>(name, std::move(branches));
}

/// Inception-B: 17x17 module with 1x7 / 7x1 factorisation; output 1024.
std::unique_ptr<Layer> inception_b(const std::string& name, std::size_t in, double m,
                                   Rng& rng) {
  std::vector<Seq> branches;
  branches.push_back(seq_conv_bn(name + ".b0", in, scaled(384, m), 1, 1, 1, false, rng));
  {
    Seq b;
    conv_bn(b, name + ".b1a", in, scaled(192, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b1b", scaled(192, m), scaled(224, m), 1, 7, 1, false, rng);
    conv_bn(b, name + ".b1c", scaled(224, m), scaled(256, m), 7, 1, 1, false, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    conv_bn(b, name + ".b2a", in, scaled(192, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b2b", scaled(192, m), scaled(192, m), 7, 1, 1, false, rng);
    conv_bn(b, name + ".b2c", scaled(192, m), scaled(224, m), 1, 7, 1, false, rng);
    conv_bn(b, name + ".b2d", scaled(224, m), scaled(224, m), 7, 1, 1, false, rng);
    conv_bn(b, name + ".b2e", scaled(224, m), scaled(256, m), 1, 7, 1, false, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    b.push_back(std::make_unique<AvgPool>(name + ".b3pool", PoolSpec{3, 1, 1}));
    conv_bn(b, name + ".b3", in, scaled(128, m), 1, 1, 1, false, rng);
    branches.push_back(std::move(b));
  }
  return std::make_unique<ConcatBranches>(name, std::move(branches));
}

/// Reduction-B: 17 -> 8, output 1536.
std::unique_ptr<Layer> reduction_b(const std::string& name, std::size_t in, double m,
                                   Rng& rng) {
  std::vector<Seq> branches;
  {
    Seq b;
    conv_bn(b, name + ".b0a", in, scaled(192, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b0b", scaled(192, m), scaled(192, m), 3, 3, 2, true, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    conv_bn(b, name + ".b1a", in, scaled(256, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b1b", scaled(256, m), scaled(256, m), 1, 7, 1, false, rng);
    conv_bn(b, name + ".b1c", scaled(256, m), scaled(320, m), 7, 1, 1, false, rng);
    conv_bn(b, name + ".b1d", scaled(320, m), scaled(320, m), 3, 3, 2, true, rng);
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    b.push_back(std::make_unique<MaxPool>(name + ".b2pool", PoolSpec{3, 2, 0}));
    branches.push_back(std::move(b));
  }
  return std::make_unique<ConcatBranches>(name, std::move(branches));
}

/// Inception-C: 8x8 module with nested 1x3/3x1 splits; output 1536.
std::unique_ptr<Layer> inception_c(const std::string& name, std::size_t in, double m,
                                   Rng& rng) {
  std::vector<Seq> branches;
  branches.push_back(seq_conv_bn(name + ".b0", in, scaled(256, m), 1, 1, 1, false, rng));
  {
    // 1x1 -> {1x3, 3x1} nested concat.
    Seq b;
    conv_bn(b, name + ".b1a", in, scaled(384, m), 1, 1, 1, false, rng);
    std::vector<Seq> split;
    split.push_back(
        seq_conv_bn(name + ".b1s0", scaled(384, m), scaled(256, m), 1, 3, 1, false, rng));
    split.push_back(
        seq_conv_bn(name + ".b1s1", scaled(384, m), scaled(256, m), 3, 1, 1, false, rng));
    b.push_back(std::make_unique<ConcatBranches>(name + ".b1split", std::move(split)));
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    conv_bn(b, name + ".b2a", in, scaled(384, m), 1, 1, 1, false, rng);
    conv_bn(b, name + ".b2b", scaled(384, m), scaled(448, m), 1, 3, 1, false, rng);
    conv_bn(b, name + ".b2c", scaled(448, m), scaled(512, m), 3, 1, 1, false, rng);
    std::vector<Seq> split;
    split.push_back(
        seq_conv_bn(name + ".b2s0", scaled(512, m), scaled(256, m), 1, 3, 1, false, rng));
    split.push_back(
        seq_conv_bn(name + ".b2s1", scaled(512, m), scaled(256, m), 3, 1, 1, false, rng));
    b.push_back(std::make_unique<ConcatBranches>(name + ".b2split", std::move(split)));
    branches.push_back(std::move(b));
  }
  {
    Seq b;
    b.push_back(std::make_unique<AvgPool>(name + ".b3pool", PoolSpec{3, 1, 1}));
    conv_bn(b, name + ".b3", in, scaled(256, m), 1, 1, 1, false, rng);
    branches.push_back(std::move(b));
  }
  return std::make_unique<ConcatBranches>(name, std::move(branches));
}

}  // namespace

std::unique_ptr<Network> make_inception_v4(const ModelConfig& cfg) {
  auto net = std::make_unique<Network>("Inception-V4");
  Rng rng(cfg.seed);
  const double m = cfg.width_multiplier;
  const bool full = cfg.input_hw >= 128;
  Shape shape = Shape::nchw(1, 3, cfg.input_hw, cfg.input_hw);

  auto add = [&](std::unique_ptr<Layer> l) -> Layer& {
    shape = l->output_shape(shape);
    return net->add(std::move(l));
  };

  if (full) {
    // --- Stem (299 -> 35x35x384 at m=1). ------------------------------------
    Seq s1;
    conv_bn(s1, "stem.c1", 3, scaled(32, m), 3, 3, 2, true, rng);
    conv_bn(s1, "stem.c2", scaled(32, m), scaled(32, m), 3, 3, 1, true, rng);
    conv_bn(s1, "stem.c3", scaled(32, m), scaled(64, m), 3, 3, 1, false, rng);
    for (auto& l : s1) add(std::move(l));

    {
      std::vector<Seq> br;
      Seq pool;
      pool.push_back(std::make_unique<MaxPool>("stem.s1pool", PoolSpec{3, 2, 0}));
      br.push_back(std::move(pool));
      br.push_back(seq_conv_bn("stem.s1conv", scaled(64, m), scaled(96, m), 3, 3, 2,
                               true, rng));
      add(std::make_unique<ConcatBranches>("stem.split1", std::move(br)));
    }
    {
      const std::size_t in = shape.c();
      std::vector<Seq> br;
      Seq a;
      conv_bn(a, "stem.s2a1", in, scaled(64, m), 1, 1, 1, false, rng);
      conv_bn(a, "stem.s2a2", scaled(64, m), scaled(96, m), 3, 3, 1, true, rng);
      br.push_back(std::move(a));
      Seq b;
      conv_bn(b, "stem.s2b1", in, scaled(64, m), 1, 1, 1, false, rng);
      conv_bn(b, "stem.s2b2", scaled(64, m), scaled(64, m), 7, 1, 1, false, rng);
      conv_bn(b, "stem.s2b3", scaled(64, m), scaled(64, m), 1, 7, 1, false, rng);
      conv_bn(b, "stem.s2b4", scaled(64, m), scaled(96, m), 3, 3, 1, true, rng);
      br.push_back(std::move(b));
      add(std::make_unique<ConcatBranches>("stem.split2", std::move(br)));
    }
    {
      const std::size_t in = shape.c();
      std::vector<Seq> br;
      br.push_back(seq_conv_bn("stem.s3conv", in, scaled(192, m), 3, 3, 2, true, rng));
      Seq pool;
      pool.push_back(std::make_unique<MaxPool>("stem.s3pool", PoolSpec{3, 2, 0}));
      br.push_back(std::move(pool));
      add(std::make_unique<ConcatBranches>("stem.split3", std::move(br)));
    }
  } else {
    // Reduced stem for CPU-scale inputs.
    Seq s;
    conv_bn(s, "stem.c1", 3, scaled(96, m), 3, 3, 1, false, rng);
    for (auto& l : s) add(std::move(l));
  }

  const std::size_t a_blocks = full ? 4 : 2;
  const std::size_t b_blocks = full ? 7 : 2;
  const std::size_t c_blocks = full ? 3 : 1;

  for (std::size_t i = 0; i < a_blocks; ++i)
    add(inception_a(std::string("a") + std::to_string(i + 1), shape.c(), m, rng));
  add(reduction_a("reduce_a", shape.c(), m, rng));
  for (std::size_t i = 0; i < b_blocks; ++i)
    add(inception_b(std::string("b") + std::to_string(i + 1), shape.c(), m, rng));
  add(reduction_b("reduce_b", shape.c(), m, rng));
  for (std::size_t i = 0; i < c_blocks; ++i)
    add(inception_c(std::string("c") + std::to_string(i + 1), shape.c(), m, rng));

  add(std::make_unique<GlobalAvgPool>("gap"));
  add(std::make_unique<Flatten>("flatten"));
  add(std::make_unique<Dropout>("dropout", 1.0 - 0.8, cfg.seed + 9));
  add(std::make_unique<Linear>("fc", shape.numel(), cfg.num_classes, rng));
  return net;
}

}  // namespace ebct::models
