#pragma once

/// \file model_zoo.hpp
/// Builders for the four CNNs evaluated in the paper: AlexNet, VGG-16,
/// ResNet-18 and ResNet-50. Each builder is resolution-aware: at ImageNet
/// resolution (>=128 px) it reproduces the published architecture exactly
/// (for the Table 1 / Fig. 2 activation-geometry accounting); below that it
/// uses the standard CIFAR-style adaptation (3x3 stem, fewer pools) so the
/// same networks can actually be trained at CPU-feasible cost.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/rng.hpp"

namespace ebct::models {

struct ModelConfig {
  std::size_t input_hw = 224;    ///< square input resolution
  std::size_t num_classes = 1000;
  double width_multiplier = 1.0; ///< scales channel counts (1.0 = published)
  std::uint64_t seed = 42;       ///< weight-init seed
  double dropout = 0.5;          ///< classifier dropout (AlexNet / VGG)
};

std::unique_ptr<nn::Network> make_alexnet(const ModelConfig& cfg);
std::unique_ptr<nn::Network> make_vgg16(const ModelConfig& cfg);
std::unique_ptr<nn::Network> make_resnet18(const ModelConfig& cfg);
std::unique_ptr<nn::Network> make_resnet50(const ModelConfig& cfg);

/// Inception-V4 — the paper's §1 motivating example (>40 GB at batch 32).
/// Faithful at >=128 px (use 299); reduced stem below. Not part of
/// model_names() since the paper's Table 1 evaluates only the four above.
std::unique_ptr<nn::Network> make_inception_v4(const ModelConfig& cfg);

/// Registry lookup by the names used in the paper's tables.
using ModelBuilder = std::function<std::unique_ptr<nn::Network>(const ModelConfig&)>;
std::vector<std::string> model_names();
ModelBuilder find_model(const std::string& name);

}  // namespace ebct::models
