#include "models/model_zoo.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/lrn.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/simple_layers.hpp"

namespace ebct::models {

using nn::AvgPool;
using nn::BatchNorm;
using nn::Conv2d;
using nn::Conv2dSpec;
using nn::Dropout;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::Lrn;
using nn::LrnSpec;
using nn::MaxPool;
using nn::Network;
using nn::PoolSpec;
using nn::ReLU;
using nn::ResidualBlock;
using tensor::Rng;
using tensor::Shape;

namespace {

std::size_t scaled(std::size_t channels, double mult) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(channels * mult + 0.5));
}

/// Track the running shape while appending layers so classifier sizes can be
/// derived without a forward pass.
struct BuildCursor {
  Network& net;
  Shape shape;

  nn::Layer& add(std::unique_ptr<nn::Layer> l) {
    shape = l->output_shape(shape);
    return net.add(std::move(l));
  }
};

std::unique_ptr<nn::Layer> conv(const std::string& name, std::size_t in, std::size_t out,
                                std::size_t k, std::size_t s, std::size_t p, Rng& rng) {
  return std::make_unique<Conv2d>(name, Conv2dSpec{in, out, k, s, p, /*bias=*/true}, rng);
}

std::unique_ptr<nn::Layer> conv_nobias(const std::string& name, std::size_t in,
                                       std::size_t out, std::size_t k, std::size_t s,
                                       std::size_t p, Rng& rng) {
  return std::make_unique<Conv2d>(name, Conv2dSpec{in, out, k, s, p, /*bias=*/false}, rng);
}

}  // namespace

std::unique_ptr<Network> make_alexnet(const ModelConfig& cfg) {
  auto net = std::make_unique<Network>("AlexNet");
  Rng rng(cfg.seed);
  const double m = cfg.width_multiplier;
  BuildCursor c{*net, Shape::nchw(1, 3, cfg.input_hw, cfg.input_hw)};
  const bool full = cfg.input_hw >= 128;

  if (full) {
    c.add(conv("conv1", 3, scaled(96, m), 11, 4, 2, rng));
  } else {
    c.add(conv("conv1", 3, scaled(96, m), 3, 1, 1, rng));
  }
  c.add(std::make_unique<ReLU>("relu1"));
  c.add(std::make_unique<Lrn>("lrn1", LrnSpec{}));
  c.add(std::make_unique<MaxPool>("pool1", PoolSpec{3, 2, 0}));

  c.add(conv("conv2", scaled(96, m), scaled(256, m), 5, 1, 2, rng));
  c.add(std::make_unique<ReLU>("relu2"));
  c.add(std::make_unique<Lrn>("lrn2", LrnSpec{}));
  c.add(std::make_unique<MaxPool>("pool2", PoolSpec{3, 2, 0}));

  c.add(conv("conv3", scaled(256, m), scaled(384, m), 3, 1, 1, rng));
  c.add(std::make_unique<ReLU>("relu3"));
  c.add(conv("conv4", scaled(384, m), scaled(384, m), 3, 1, 1, rng));
  c.add(std::make_unique<ReLU>("relu4"));
  c.add(conv("conv5", scaled(384, m), scaled(256, m), 3, 1, 1, rng));
  c.add(std::make_unique<ReLU>("relu5"));
  if (c.shape.h() >= 3) c.add(std::make_unique<MaxPool>("pool5", PoolSpec{3, 2, 0}));

  c.add(std::make_unique<Flatten>("flatten"));
  const std::size_t feat = c.shape[1];
  const std::size_t fc_dim = full ? scaled(4096, m) : scaled(512, m);
  c.add(std::make_unique<Linear>("fc6", feat, fc_dim, rng));
  c.add(std::make_unique<ReLU>("relu6"));
  c.add(std::make_unique<Dropout>("drop6", cfg.dropout, cfg.seed + 1));
  c.add(std::make_unique<Linear>("fc7", fc_dim, fc_dim, rng));
  c.add(std::make_unique<ReLU>("relu7"));
  c.add(std::make_unique<Dropout>("drop7", cfg.dropout, cfg.seed + 2));
  c.add(std::make_unique<Linear>("fc8", fc_dim, cfg.num_classes, rng));
  return net;
}

std::unique_ptr<Network> make_vgg16(const ModelConfig& cfg) {
  auto net = std::make_unique<Network>("VGG-16");
  Rng rng(cfg.seed);
  const double m = cfg.width_multiplier;
  BuildCursor c{*net, Shape::nchw(1, 3, cfg.input_hw, cfg.input_hw)};

  const std::vector<std::vector<std::size_t>> blocks = {
      {64, 64}, {128, 128}, {256, 256, 256}, {512, 512, 512}, {512, 512, 512}};
  std::size_t in = 3;
  int conv_id = 1;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::size_t ch : blocks[b]) {
      const std::size_t out = scaled(ch, m);
      c.add(conv("conv" + std::to_string(conv_id), in, out, 3, 1, 1, rng));
      c.add(std::make_unique<ReLU>("relu" + std::to_string(conv_id)));
      in = out;
      ++conv_id;
    }
    if (c.shape.h() >= 2) {
      c.add(std::make_unique<MaxPool>("pool" + std::to_string(b + 1), PoolSpec{2, 2, 0}));
    }
  }
  c.add(std::make_unique<Flatten>("flatten"));
  const std::size_t feat = c.shape[1];
  const bool full = cfg.input_hw >= 128;
  const std::size_t fc_dim = full ? scaled(4096, m) : scaled(512, m);
  c.add(std::make_unique<Linear>("fc1", feat, fc_dim, rng));
  c.add(std::make_unique<ReLU>("fc_relu1"));
  c.add(std::make_unique<Dropout>("fc_drop1", cfg.dropout, cfg.seed + 1));
  c.add(std::make_unique<Linear>("fc2", fc_dim, fc_dim, rng));
  c.add(std::make_unique<ReLU>("fc_relu2"));
  c.add(std::make_unique<Dropout>("fc_drop2", cfg.dropout, cfg.seed + 2));
  c.add(std::make_unique<Linear>("fc3", fc_dim, cfg.num_classes, rng));
  return net;
}

namespace {

/// BasicBlock (ResNet-18/34): 3x3 conv -> BN -> ReLU -> 3x3 conv -> BN,
/// projection shortcut on stride/channel change.
std::unique_ptr<nn::Layer> basic_block(const std::string& name, std::size_t in,
                                       std::size_t out, std::size_t stride, Rng& rng) {
  std::vector<std::unique_ptr<nn::Layer>> main;
  main.push_back(conv_nobias(name + ".conv1", in, out, 3, stride, 1, rng));
  main.push_back(std::make_unique<BatchNorm>(name + ".bn1", out));
  main.push_back(std::make_unique<ReLU>(name + ".relu1"));
  main.push_back(conv_nobias(name + ".conv2", out, out, 3, 1, 1, rng));
  main.push_back(std::make_unique<BatchNorm>(name + ".bn2", out));

  std::vector<std::unique_ptr<nn::Layer>> shortcut;
  if (stride != 1 || in != out) {
    shortcut.push_back(conv_nobias(name + ".down", in, out, 1, stride, 0, rng));
    shortcut.push_back(std::make_unique<BatchNorm>(name + ".down_bn", out));
  }
  return std::make_unique<ResidualBlock>(name, std::move(main), std::move(shortcut));
}

/// Bottleneck (ResNet-50+): 1x1 reduce -> 3x3 -> 1x1 expand (x4).
std::unique_ptr<nn::Layer> bottleneck_block(const std::string& name, std::size_t in,
                                            std::size_t mid, std::size_t stride, Rng& rng) {
  const std::size_t out = mid * 4;
  std::vector<std::unique_ptr<nn::Layer>> main;
  main.push_back(conv_nobias(name + ".conv1", in, mid, 1, 1, 0, rng));
  main.push_back(std::make_unique<BatchNorm>(name + ".bn1", mid));
  main.push_back(std::make_unique<ReLU>(name + ".relu1"));
  main.push_back(conv_nobias(name + ".conv2", mid, mid, 3, stride, 1, rng));
  main.push_back(std::make_unique<BatchNorm>(name + ".bn2", mid));
  main.push_back(std::make_unique<ReLU>(name + ".relu2"));
  main.push_back(conv_nobias(name + ".conv3", mid, out, 1, 1, 0, rng));
  main.push_back(std::make_unique<BatchNorm>(name + ".bn3", out));

  std::vector<std::unique_ptr<nn::Layer>> shortcut;
  if (stride != 1 || in != out) {
    shortcut.push_back(conv_nobias(name + ".down", in, out, 1, stride, 0, rng));
    shortcut.push_back(std::make_unique<BatchNorm>(name + ".down_bn", out));
  }
  return std::make_unique<ResidualBlock>(name, std::move(main), std::move(shortcut));
}

std::unique_ptr<Network> make_resnet(const ModelConfig& cfg, bool bottleneck,
                                     const std::vector<std::size_t>& stage_blocks,
                                     const std::string& name) {
  auto net = std::make_unique<Network>(name);
  Rng rng(cfg.seed);
  const double m = cfg.width_multiplier;
  BuildCursor c{*net, Shape::nchw(1, 3, cfg.input_hw, cfg.input_hw)};
  const bool full = cfg.input_hw >= 128;

  const std::size_t base = scaled(64, m);
  if (full) {
    c.add(conv_nobias("stem.conv", 3, base, 7, 2, 3, rng));
    c.add(std::make_unique<BatchNorm>("stem.bn", base));
    c.add(std::make_unique<ReLU>("stem.relu"));
    c.add(std::make_unique<MaxPool>("stem.pool", PoolSpec{3, 2, 1}));
  } else {
    c.add(conv_nobias("stem.conv", 3, base, 3, 1, 1, rng));
    c.add(std::make_unique<BatchNorm>("stem.bn", base));
    c.add(std::make_unique<ReLU>("stem.relu"));
  }

  std::size_t in = base;
  for (std::size_t stage = 0; stage < stage_blocks.size(); ++stage) {
    const std::size_t mid = scaled(64u << stage, m);
    for (std::size_t blk = 0; blk < stage_blocks[stage]; ++blk) {
      const std::size_t stride = (stage > 0 && blk == 0) ? 2 : 1;
      const std::string bname =
          "stage" + std::to_string(stage + 1) + ".block" + std::to_string(blk + 1);
      if (bottleneck) {
        c.add(bottleneck_block(bname, in, mid, stride, rng));
        in = mid * 4;
      } else {
        c.add(basic_block(bname, in, mid, stride, rng));
        in = mid;
      }
    }
  }
  c.add(std::make_unique<GlobalAvgPool>("gap"));
  c.add(std::make_unique<Flatten>("flatten"));
  c.add(std::make_unique<Linear>("fc", in, cfg.num_classes, rng));
  return net;
}

}  // namespace

std::unique_ptr<Network> make_resnet18(const ModelConfig& cfg) {
  return make_resnet(cfg, /*bottleneck=*/false, {2, 2, 2, 2}, "ResNet-18");
}

std::unique_ptr<Network> make_resnet50(const ModelConfig& cfg) {
  return make_resnet(cfg, /*bottleneck=*/true, {3, 4, 6, 3}, "ResNet-50");
}

std::vector<std::string> model_names() {
  return {"AlexNet", "VGG-16", "ResNet-18", "ResNet-50"};
}

ModelBuilder find_model(const std::string& name) {
  if (name == "AlexNet") return make_alexnet;
  if (name == "VGG-16") return make_vgg16;
  if (name == "ResNet-18") return make_resnet18;
  if (name == "ResNet-50") return make_resnet50;
  if (name == "Inception-V4") return make_inception_v4;
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace ebct::models
