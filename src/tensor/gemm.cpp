#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/alloc.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"

namespace ebct::tensor {

namespace {

using B = GemmBlocking;

inline std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Pack an mc x kc block of A (element (i, kk) at a[i*rs + kk*cs]) into
/// kMr-row panels: panel p holds rows [p*kMr, p*kMr+kMr) stored kk-major so
/// the micro-kernel streams it linearly. Short panels are zero-padded, which
/// keeps the kernel branch-free and — because the padded lanes multiply into
/// accumulator rows that are never stored — bitwise-neutral.
void pack_a(const float* a, std::size_t rs, std::size_t cs, std::size_t mc,
            std::size_t kc, float* dst) {
  for (std::size_t ir = 0; ir < mc; ir += B::kMr) {
    const std::size_t rows = std::min(B::kMr, mc - ir);
    for (std::size_t kk = 0; kk < kc; ++kk) {
      for (std::size_t r = 0; r < rows; ++r) *dst++ = a[(ir + r) * rs + kk * cs];
      for (std::size_t r = rows; r < B::kMr; ++r) *dst++ = 0.0f;
    }
  }
}

/// Pack a kc x nc block of B (element (kk, j) at b[kk*rs + j*cs]) into
/// kNr-column panels, kk-major, zero-padded on the right.
void pack_b(const float* b, std::size_t rs, std::size_t cs, std::size_t kc,
            std::size_t nc, float* dst) {
  for (std::size_t jr = 0; jr < nc; jr += B::kNr) {
    const std::size_t cols = std::min(B::kNr, nc - jr);
    if (cols == B::kNr && cs == 1) {
      for (std::size_t kk = 0; kk < kc; ++kk) {
        std::memcpy(dst, b + kk * rs + jr, B::kNr * sizeof(float));
        dst += B::kNr;
      }
      continue;
    }
    for (std::size_t kk = 0; kk < kc; ++kk) {
      for (std::size_t c = 0; c < cols; ++c) *dst++ = b[kk * rs + (jr + c) * cs];
      for (std::size_t c = cols; c < B::kNr; ++c) *dst++ = 0.0f;
    }
  }
}

/// kMr x kNr register-blocked FMA kernel over packed panels. `ap` walks one
/// A panel (kMr floats per k step), `bp` one B panel (kNr floats per k
/// step); `acc` stays in registers across the whole kc sweep.
void micro_kernel(const float* ap, const float* bp, std::size_t kc,
                  float acc[B::kMr * B::kNr]) {
  for (std::size_t kk = 0; kk < kc; ++kk) {
    const float* brow = bp + kk * B::kNr;
    const float* arow = ap + kk * B::kMr;
    for (std::size_t r = 0; r < B::kMr; ++r) {
      const float av = arow[r];
      float* crow = acc + r * B::kNr;
#ifdef _OPENMP
#pragma omp simd
#endif
      for (std::size_t c = 0; c < B::kNr; ++c) crow[c] += av * brow[c];
    }
  }
}

/// One (i0, j0) tile of C: sweep k in kKc slabs, packing the A block and B
/// panel for each slab into this thread's scratch arena, then run the
/// micro-kernel grid. Accumulation order is a pure function of the shape —
/// tiles never share C elements and the k sweep is sequential — so outputs
/// are bitwise identical at every thread count.
void compute_tile(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b,
                  std::size_t b_rs, std::size_t b_cs, float* c, std::size_t k,
                  std::size_t n, bool accumulate, std::size_t i0, std::size_t mc,
                  std::size_t j0, std::size_t nc) {
  const std::size_t a_panels = ceil_div(mc, B::kMr);
  const std::size_t b_panels = ceil_div(nc, B::kNr);
  ScratchBuffer apack(a_panels * B::kMr * B::kKc);
  ScratchBuffer bpack(b_panels * B::kNr * B::kKc);

  for (std::size_t p0 = 0; p0 < k; p0 += B::kKc) {
    const std::size_t kc = std::min(B::kKc, k - p0);
    const bool first = p0 == 0 && !accumulate;
    pack_a(a + i0 * a_rs + p0 * a_cs, a_rs, a_cs, mc, kc, apack.data());
    pack_b(b + p0 * b_rs + j0 * b_cs, b_rs, b_cs, kc, nc, bpack.data());

    for (std::size_t jr = 0; jr < nc; jr += B::kNr) {
      const std::size_t cols = std::min(B::kNr, nc - jr);
      const float* bp = bpack.data() + (jr / B::kNr) * B::kNr * kc;
      for (std::size_t ir = 0; ir < mc; ir += B::kMr) {
        const std::size_t rows = std::min(B::kMr, mc - ir);
        const float* ap = apack.data() + (ir / B::kMr) * B::kMr * kc;
        float acc[B::kMr * B::kNr] = {};
        micro_kernel(ap, bp, kc, acc);
        for (std::size_t r = 0; r < rows; ++r) {
          float* crow = c + (i0 + ir + r) * n + j0 + jr;
          const float* arow = acc + r * B::kNr;
          if (first) {
            for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] = arow[cc];
          } else {
            for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] += arow[cc];
          }
        }
      }
    }
  }
}

/// Shared driver for all three transposition variants: the logical operands
/// A[m,k] and B[k,n] are described by (row, col) element strides, so the
/// packers absorb the layout difference and the tile kernel is identical.
void gemm_driver(const float* a, std::size_t a_rs, std::size_t a_cs, const float* b,
                 std::size_t b_rs, std::size_t b_cs, float* c, std::size_t m,
                 std::size_t k, std::size_t n, bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::memset(c, 0, m * n * sizeof(float));
    return;
  }
  const std::size_t mt = ceil_div(m, B::kMc);
  const std::size_t nt = ceil_div(n, B::kNc);
  const std::size_t tiles = mt * nt;
  // Per-tile cost in element-ops; the work-based grain (not the tile count)
  // decides whether the 2D tile grid forks. Must stay in sync with
  // gemm_plan() below, which exposes this decision to tests. Each C-tile
  // becomes one task in the shared work-stealing pool, so when this GEMM
  // runs inside a per-sample batch task the tiles are stolen by whichever
  // threads the batch level left idle — small-batch conv shapes fan out
  // across the whole machine instead of one tile grid per busy thread.
  const std::size_t tile_work =
      2 * std::min(B::kMc, m) * std::min(B::kNc, n) * k;
  parallel_for(tiles, tile_work, [&](std::size_t t) {
    const std::size_t i0 = (t / nt) * B::kMc;
    const std::size_t j0 = (t % nt) * B::kNc;
    compute_tile(a, a_rs, a_cs, b, b_rs, b_cs, c, k, n, accumulate, i0,
                 std::min(B::kMc, m - i0), j0, std::min(B::kNc, n - j0));
  });
}

}  // namespace

GemmStats gemm_plan(std::size_t m, std::size_t k, std::size_t n) {
  GemmStats s;
  if (m == 0 || n == 0 || k == 0) return s;
  s.tiles = ceil_div(m, B::kMc) * ceil_div(n, B::kNc);
  s.parallel =
      parallel_worthwhile(s.tiles, 2 * std::min(B::kMc, m) * std::min(B::kNc, n) * k);
  return s;
}

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate) {
  gemm_driver(a, k, 1, b, n, 1, c, m, k, n, accumulate);
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
  // A is stored [k, m]: element (i, kk) lives at a[kk*m + i].
  gemm_driver(a, 1, m, b, n, 1, c, m, k, n, accumulate);
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
  // B is stored [n, k]: element (kk, j) lives at b[j*k + kk].
  gemm_driver(a, k, 1, b, 1, k, c, m, k, n, accumulate);
}

}  // namespace ebct::tensor
