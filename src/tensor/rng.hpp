#pragma once

/// \file rng.hpp
/// Deterministic random number generation. A single Rng owns a 64-bit
/// SplitMix-seeded xoshiro256** state; all fills used in experiments go
/// through this type so results are reproducible from one seed.

#include <cmath>
#include <cstdint>
#include <span>

namespace ebct::tensor {

/// xoshiro256** PRNG — fast, high-quality, suitable for statistical work.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
    gauss_cached_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Standard normal via Box–Muller with caching of the second deviate.
  double normal() {
    if (gauss_cached_) {
      gauss_cached_ = false;
      return gauss_cache_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    gauss_cache_ = r * std::sin(theta);
    gauss_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // --- span fills -----------------------------------------------------------

  void fill_uniform(std::span<float> out, float lo, float hi) {
    for (auto& v : out) v = static_cast<float>(uniform(lo, hi));
  }

  void fill_normal(std::span<float> out, float mean, float stddev) {
    for (auto& v : out) v = static_cast<float>(normal(mean, stddev));
  }

  /// Fill to mimic post-ReLU activations: `sparsity` fraction of exact zeros,
  /// remainder half-normal with the given scale. This is the activation
  /// texture the paper's conv layers see after ReLU.
  void fill_relu_like(std::span<float> out, double sparsity, float scale) {
    for (auto& v : out) {
      if (uniform() < sparsity) {
        v = 0.0f;
      } else {
        v = static_cast<float>(std::fabs(normal(0.0, scale)));
      }
    }
  }

  /// Fisher–Yates shuffle of an index span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4]{};
  double gauss_cache_ = 0.0;
  bool gauss_cached_ = false;
};

}  // namespace ebct::tensor
