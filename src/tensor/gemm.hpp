#pragma once

/// \file gemm.hpp
/// Tuning knobs and diagnostics for the blocked GEMM engine (gemm.cpp). The
/// public entry points (gemm / gemm_at / gemm_bt) live in ops.hpp; this
/// header exposes the blocking geometry and the scheduling plan so tests
/// and the perf-smoke harness can assert the engine's decisions — most
/// importantly that conv-shaped problems (small m, large n) take the
/// parallel 2D-tiled path instead of silently running serial.

#include <cstddef>

namespace ebct::tensor {

/// BLIS-style blocking geometry. One (Mc x Nc) tile of C is one parallel
/// task; inside a task the k dimension is swept in Kc slabs through packed
/// panels, and a Mr x Nr register-blocked micro-kernel does the flops.
/// The micro-kernel tile is chosen per SIMD ISA (empirically, on the conv
/// shapes in bench/perf_smoke): wide-register builds profit from a larger
/// accumulator tile, while the SSE2 baseline is fastest at 4x16 where the
/// accumulators stay closest to the 16 xmm registers. Results are bitwise
/// reproducible across thread counts for a given binary; across builds the
/// geometry (hence accumulation order) may differ, as with any ISA change.
struct GemmBlocking {
#if defined(__AVX2__)
  static constexpr std::size_t kMr = 6;    ///< micro-kernel rows (accumulator rows)
  static constexpr std::size_t kNr = 32;   ///< micro-kernel cols (SIMD stripes)
#else
  static constexpr std::size_t kMr = 4;    ///< micro-kernel rows (accumulator rows)
  static constexpr std::size_t kNr = 16;   ///< micro-kernel cols (SIMD stripes)
#endif
  static constexpr std::size_t kMc = 96;   ///< C-tile rows; multiple of kMr
  static constexpr std::size_t kNc = 160;  ///< C-tile cols; multiple of kNr
  static constexpr std::size_t kKc = 256;  ///< packed-panel depth (L1/L2 resident)
};
static_assert(GemmBlocking::kMc % GemmBlocking::kMr == 0);
static_assert(GemmBlocking::kNc % GemmBlocking::kNr == 0);

/// Scheduling decision the engine makes for a given problem shape.
struct GemmStats {
  std::size_t tiles = 0;      ///< tasks in the 2D (m/Mc) x (n/Nc) decomposition
  bool parallel = false;      ///< whether the tile loop takes the OpenMP path
};

/// Number of parallel tasks the engine creates for an (m, k, n) problem,
/// and whether the work-based grain admits them to the OpenMP path. Pure
/// function of the shape (it IS the driver's decision, not a mirror of it)
/// — used by the perf-smoke CTest target to catch serial-fallback
/// regressions without timing anything.
GemmStats gemm_plan(std::size_t m, std::size_t k, std::size_t n);

}  // namespace ebct::tensor
