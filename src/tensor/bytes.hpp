#pragma once

/// \file bytes.hpp
/// Append raw bytes to a byte vector. Deliberately the resize+memcpy form
/// rather than vector::insert: GCC 12's -Wstringop-overflow/-Wrestrict
/// false-positives on the insert form once it inlines into serializers.

#include <cstdint>
#include <cstring>
#include <vector>

namespace ebct::tensor {

inline void append_bytes(std::vector<std::uint8_t>& dst, const void* src, std::size_t n) {
  if (n == 0) return;
  const std::size_t old = dst.size();
  dst.resize(old + n);
  std::memcpy(dst.data() + old, src, n);
}

}  // namespace ebct::tensor
