#pragma once

/// \file shape.hpp
/// Fixed-capacity tensor shape (rank ≤ 4) used throughout the library.
/// Convention: 4-D shapes are NCHW (batch, channels, height, width).

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace ebct::tensor {

/// Shape of a dense tensor, rank 0..4, NCHW layout for rank-4.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::size_t> dims) {
    if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4");
    rank_ = dims.size();
    std::size_t i = 0;
    for (std::size_t d : dims) dims_[i++] = d;
  }

  static Shape nchw(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return Shape{n, c, h, w};
  }

  std::size_t rank() const { return rank_; }

  std::size_t dim(std::size_t i) const {
    if (i >= rank_) throw std::out_of_range("Shape::dim index out of range");
    return dims_[i];
  }

  std::size_t operator[](std::size_t i) const { return dims_[i]; }

  /// Total number of elements; 1 for rank-0 (scalar), 0 if any dim is 0.
  std::size_t numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  // NCHW accessors (valid for rank-4; for lower ranks they throw).
  std::size_t n() const { return dim(0); }
  std::size_t c() const { return dim(1); }
  std::size_t h() const { return dim(2); }
  std::size_t w() const { return dim(3); }

  /// Flat offset of (n, c, h, w) in a rank-4 row-major layout.
  std::size_t offset(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return ((n * dims_[1] + c) * dims_[2] + h) * dims_[3] + w;
  }

  bool operator==(const Shape& o) const {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i)
      if (dims_[i] != o.dims_[i]) return false;
    return true;
  }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string to_string() const;

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace ebct::tensor
