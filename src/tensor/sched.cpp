#include "tensor/sched.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ebct::tensor::sched {

// ---------------------------------------------------------------------------
// Task representation. A TaskSet is the join object of one parallel call; it
// lives on the submitting thread's stack for the duration of the call (or
// inside a heap AsyncState for async() submissions). `remaining` counts
// indices (not tasks): it reaches zero exactly when every i in [0, n) has
// been executed, which is the join condition. Workers touch the set strictly
// before their final fetch_sub, so once the submitter observes zero the set
// can safely go out of scope. Namespace-scope (not anonymous) only so the
// header-declared detail::AsyncState can hold one.
// ---------------------------------------------------------------------------

struct TaskSet {
  void (*body)(void*, std::size_t, std::size_t);
  void* ctx;
  std::atomic<std::size_t> remaining;
  std::size_t grain;
  bool splittable;  ///< false for capped (max_workers) worker-slot sets
};

namespace {

/// Capped submission (max_workers = k > 1): the set's tasks are min(k, n)
/// *worker slots*, not index ranges — each slot pulls indices one at a time
/// from the shared counter until the range drains. At most k threads can
/// hold a slot (the cap), while index distribution stays dynamic at
/// granularity 1, matching the old OpenMP schedule(dynamic,1)
/// num_threads(k) behaviour for skewed iteration costs. Which thread runs
/// which index floats; callers observe only per-index writes, so outputs
/// stay deterministic.
struct CappedLoop {
  void (*body)(void*, std::size_t, std::size_t);
  void* ctx;
  std::atomic<std::size_t> next;
  std::size_t n;
};

void run_capped_slot(void* c, std::size_t, std::size_t) {
  auto* loop = static_cast<CappedLoop*>(c);
  std::size_t i;
  while ((i = loop->next.fetch_add(1, std::memory_order_relaxed)) < loop->n) {
    loop->body(loop->ctx, i, i + 1);
  }
}

struct Task {
  TaskSet* set;
  std::size_t begin;
  std::size_t end;
};

// ---------------------------------------------------------------------------
// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05). Single owner
// pushes/pops at the bottom (LIFO, keeps the cache-hot half of a split
// local); any thread steals from the top (FIFO, hands thieves the largest
// unsplit range).
//
// Deviations from the textbook version, all deliberate:
//  - The buffer is fixed-size ("fixed-size task graph"): push reports
//    failure when full and the caller runs the range inline instead of
//    growing the array. Capacity 256 is far beyond the log2(n/grain) split
//    depth any real submission produces, so in practice push never fails;
//    the bound just makes memory use static and the code resize-free.
//  - Each cell's fields are individual relaxed atomics rather than one
//    plain struct. A thief reads the cell *before* its CAS on `top`
//    confirms ownership, so under wrap-around it can observe a cell the
//    owner is concurrently rewriting. The CAS fails in exactly that case
//    and the torn value is discarded — but the read itself must still be
//    data-race-free for TSan and the C++ memory model, hence atomics.
//  - top/bottom use seq_cst *operations*, not the fence-based formulation
//    of Lê et al. (PPoPP'13). Two reasons: the store-load orderings the
//    protocol needs (pop's bottom decrement vs top read, steal's top read
//    vs bottom read) fall out of the seq_cst total order without separate
//    reasoning, and — decisive here — the publication edge for the task
//    *payload* (cells plus the submitter-stack TaskSet behind the pointer)
//    must be carried by bottom's store-release pairing with the thief's
//    load-acquire, because thread fences are not modelled by TSan and a
//    sanitizer-hostile scheduler cannot be raced-gated in CI. The extra
//    fence per deque op is noise against task bodies that are µs-scale by
//    grain-policy construction.
// ---------------------------------------------------------------------------

struct Cell {
  std::atomic<TaskSet*> set{nullptr};
  std::atomic<std::size_t> begin{0};
  std::atomic<std::size_t> end{0};
};

constexpr std::size_t kDequeCap = 256;  // power of two
constexpr std::size_t kDequeMask = kDequeCap - 1;

struct alignas(64) Slot {
  std::atomic<std::int64_t> top{0};
  std::atomic<std::int64_t> bottom{0};
  std::atomic<bool> claimed{false};
  Cell cells[kDequeCap];
};

/// Owner-only push. False when full (caller runs the task inline). The
/// seq_cst bottom store is the publication point: everything sequenced
/// before it — the cell fields AND the submitter-stack TaskSet the cell
/// points at — becomes visible to a thief whose bottom load reads it.
bool deque_push(Slot& s, const Task& t) {
  const std::int64_t b = s.bottom.load(std::memory_order_relaxed);
  const std::int64_t top = s.top.load(std::memory_order_seq_cst);
  if (b - top >= static_cast<std::int64_t>(kDequeCap)) return false;
  Cell& c = s.cells[static_cast<std::size_t>(b) & kDequeMask];
  c.set.store(t.set, std::memory_order_relaxed);
  c.begin.store(t.begin, std::memory_order_relaxed);
  c.end.store(t.end, std::memory_order_relaxed);
  s.bottom.store(b + 1, std::memory_order_seq_cst);
  return true;
}

/// Owner-only pop from the bottom. The seq_cst order between the bottom
/// decrement and the top read is what stops owner and thief both taking a
/// sole remaining task.
bool deque_pop(Slot& s, Task& out) {
  const std::int64_t b = s.bottom.load(std::memory_order_relaxed) - 1;
  s.bottom.store(b, std::memory_order_seq_cst);
  std::int64_t t = s.top.load(std::memory_order_seq_cst);
  bool got = false;
  if (t <= b) {
    const Cell& c = s.cells[static_cast<std::size_t>(b) & kDequeMask];
    out.set = c.set.load(std::memory_order_relaxed);
    out.begin = c.begin.load(std::memory_order_relaxed);
    out.end = c.end.load(std::memory_order_relaxed);
    got = true;
    if (t == b) {
      // Last element: race the thieves for it.
      if (!s.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                         std::memory_order_seq_cst)) {
        got = false;
      }
      s.bottom.store(b + 1, std::memory_order_seq_cst);
    }
  } else {
    s.bottom.store(b + 1, std::memory_order_seq_cst);
  }
  return got;
}

/// Thief-side steal from the top; any thread but the owner. The cell (and
/// the TaskSet it points at) may only be *used* after the CAS confirms this
/// thief owns entry t; a failed CAS discards the possibly-stale fields.
bool deque_steal(Slot& s, Task& out) {
  std::int64_t t = s.top.load(std::memory_order_seq_cst);
  const std::int64_t b = s.bottom.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  const Cell& c = s.cells[static_cast<std::size_t>(t) & kDequeMask];
  Task task;
  task.set = c.set.load(std::memory_order_relaxed);
  task.begin = c.begin.load(std::memory_order_relaxed);
  task.end = c.end.load(std::memory_order_relaxed);
  if (!s.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_seq_cst)) {
    return false;
  }
  out = task;
  return true;
}

// ---------------------------------------------------------------------------
// Slot registry. Slots are plain static storage (trivially destructible
// atomics) so a thread releasing its slot during thread exit never races
// static destruction of the scheduler itself. Pool workers and external
// submitters (main thread, the async codec store's thread, test threads)
// all claim from the same array; thieves scan all of it.
// ---------------------------------------------------------------------------

// Sized for manycore servers: 128 slots ≈ 0.8 MB of static task storage and
// a 2-load-per-slot steal scan, both cheap. Workers are capped below the
// slot count so external submitter threads (main, async codec stores,
// tests) can always claim one; a thread that finds no free slot just runs
// serially.
constexpr int kMaxSlots = 128;
constexpr int kMaxThreads = kMaxSlots - 16;

Slot g_slots[kMaxSlots];

Slot* claim_slot() {
  for (auto& s : g_slots) {
    bool expected = false;
    if (s.claimed.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
      return &s;
    }
  }
  return nullptr;
}

/// Thread-local lease: claimed on a thread's first submission (or at worker
/// startup) and released at thread exit. For the main thread, thread_local
/// destruction is sequenced before static destruction, so the release in
/// the destructor never touches freed scheduler state (and g_slots itself
/// is immortal).
struct SlotLease {
  Slot* slot = nullptr;
  bool tried = false;
  ~SlotLease() {
    if (slot != nullptr) slot->claimed.store(false, std::memory_order_release);
  }
};

thread_local SlotLease t_lease;

Slot* this_thread_slot() {
  if (!t_lease.tried) {
    t_lease.tried = true;
    t_lease.slot = claim_slot();
  }
  return t_lease.slot;
}

// ---------------------------------------------------------------------------
// Wake machinery + steal-latency histogram. File-scope (not Scheduler
// members) because the task-execution protocol is shared by three call
// sites — the workers, run()'s join loop and Future::wait()'s help loop —
// and the last runs on arbitrary external threads.
// ---------------------------------------------------------------------------

std::atomic<std::uint64_t> g_signal{0};
std::atomic<int> g_sleepers{0};
std::mutex g_wake_mu;
std::condition_variable g_wake_cv;

/// Wake sleeping workers. The signal bump is unconditional and ordered
/// before the sleeper check (see worker_main for the pairing argument).
void notify_workers() {
  g_signal.fetch_add(1, std::memory_order_seq_cst);
  if (g_sleepers.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk(g_wake_mu);
    g_wake_cv.notify_all();
  }
}

// The histogram is the single source of truth: `recorded` totals are
// derived from the buckets at read time (every episode lands in exactly one
// bucket), so snapshot and drain stay internally consistent without a
// separate counter that could skew against the buckets mid-update.
std::atomic<std::uint64_t> g_steal_hist[StealStats::kBuckets];

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record_steal_latency(std::uint64_t ns) {
  std::size_t idx = 0;
  while (ns > 1 && idx + 1 < StealStats::kBuckets) {
    ns >>= 1;
    ++idx;
  }
  g_steal_hist[idx].fetch_add(1, std::memory_order_relaxed);
}

/// Tracks one thread's idle episode: armed at the first failed acquisition
/// attempt, recorded into the histogram when a steal ends it. Clock reads
/// happen only on those two transitions, never per successful pop, so the
/// hot path is untouched.
struct IdleEpisode {
  std::uint64_t since = 0;
  void miss() {
    if (since == 0) since = now_ns();
  }
  void found_local() { since = 0; }
  void found_steal() {
    // First-attempt steals never armed the clock: count them as latency 0
    // (bucket 0) so the histogram's total matches the steal count without
    // a clock read on the hot path.
    if (since != 0) {
      const std::uint64_t waited = now_ns() - since;
      record_steal_latency(waited);
      if (obs::trace::enabled()) {
        // Translate the already-measured wait onto the trace clock with a
        // single extra read: [t1 - waited, t1) on the trace's origin.
        const std::uint64_t t1 = obs::trace::detail::now_ns();
        obs::trace::emit_span("sched.steal_wait", obs::trace::Cat::kSched,
                              t1 >= waited ? t1 - waited : 0, t1);
      }
    } else {
      record_steal_latency(0);
    }
    since = 0;
  }
};

bool try_steal(Slot* self, Task& out) {
  // Rotating start index decorrelates victims across thieves.
  thread_local unsigned rot =
      static_cast<unsigned>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  rot = rot * 1664525u + 1013904223u;
  const unsigned start = rot % kMaxSlots;
  for (unsigned i = 0; i < kMaxSlots; ++i) {
    Slot* victim = &g_slots[(start + i) % kMaxSlots];
    if (victim == self) continue;
    if (deque_steal(*victim, out)) return true;
  }
  return false;
}

/// Execute a range task, splitting off the upper half for thieves while
/// the range still exceeds the set's grain (help-first: publish before
/// compute). The final fetch_sub is the worker's last touch of the set.
/// noexcept on purpose: a body that throws mid-set would unwind the
/// submitter's stack-resident TaskSet under running workers; terminating
/// instead matches the OpenMP-parallel-region semantics this scheduler
/// replaced (the serial path in run() still propagates normally; async()
/// bodies catch into their AsyncState before reaching here).
void execute(const Task& t, Slot* slot) noexcept {
  TaskSet* s = t.set;
  std::size_t b = t.begin;
  std::size_t e = t.end;
  if (s->splittable && slot != nullptr) {
    while (e - b > s->grain) {
      const std::size_t mid = b + (e - b) / 2;
      if (!deque_push(*slot, {s, mid, e})) break;
      notify_workers();
      e = mid;
    }
  }
  {
    obs::trace::Span span("sched.task", obs::trace::Cat::kSched);
    s->body(s->ctx, b, e);
  }
  s->remaining.fetch_sub(e - b, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Scheduler: worker lifecycle + the submit/join protocol.
// ---------------------------------------------------------------------------

class Scheduler {
 public:
  static Scheduler& instance() {
    static Scheduler s;
    return s;
  }

  int threads() const { return threads_.load(std::memory_order_relaxed); }

  void set_threads(int n) {
    if (n < 1) n = 1;
    if (n > kMaxThreads) n = kMaxThreads;
    std::lock_guard<std::mutex> config_lock(config_mu_);
    if (n == threads_.load(std::memory_order_relaxed)) return;
    stop_workers();
    start_workers(n);
  }

  void run(std::size_t n, std::size_t grain, unsigned max_workers,
           void (*body)(void*, std::size_t, std::size_t), void* ctx) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    // A single task's worth of work never forks: n == 1, an uncapped range
    // that fits in one grain, or an explicit serial cap.
    const bool one_task = max_workers == 0 ? n <= grain : (n == 1 || max_workers == 1);
    Slot* slot = nullptr;
    if (!one_task && threads() > 1) slot = this_thread_slot();
    if (slot == nullptr) {
      // Serial: one thread configured, caller capped the set to one worker,
      // or no free submitter slot (extreme external-thread pressure).
      body(ctx, 0, n);
      return;
    }

    // Once a set is published, every body invocation must be no-throw (see
    // execute()): an unwind past the stack-resident set while workers hold
    // its address would be use-after-scope.
    CappedLoop capped{body, ctx, {0}, n};
    TaskSet set{body, ctx, {n}, grain, /*splittable=*/true};
    if (max_workers > 1) {
      // See CappedLoop: min(max_workers, n) pull-loop slots bound the
      // concurrency while keeping index distribution dynamic.
      const std::size_t parts = std::min<std::size_t>(max_workers, n);
      set.body = run_capped_slot;
      set.ctx = &capped;
      set.remaining.store(parts, std::memory_order_relaxed);
      set.splittable = false;
      const auto run_slot = [&]() noexcept {
        run_capped_slot(&capped, 0, 0);
        set.remaining.fetch_sub(1, std::memory_order_release);
      };
      for (std::size_t p = 1; p < parts; ++p) {
        if (deque_push(*slot, {&set, p, p + 1})) {
          notify_workers();
        } else {
          run_slot();
        }
      }
      run_slot();
    } else if (deque_push(*slot, {&set, 0, n})) {
      // Publish the whole range; the join loop below pops it straight back
      // and execute() fans it out (help-first), racing the woken workers.
      notify_workers();
    } else {
      body(ctx, 0, n);
      return;
    }

    // Join: drain our own deque, then steal. Stolen tasks may belong to
    // *other* sets (an outer batch loop, a sibling submission) — executing
    // them here is what lets nested levels share one pool without anyone
    // blocking. A joining thread never sleeps.
    Task t;
    IdleEpisode idle;
    while (set.remaining.load(std::memory_order_acquire) != 0) {
      if (deque_pop(*slot, t)) {
        idle.found_local();
        execute(t, slot);
      } else if (try_steal(slot, t)) {
        idle.found_steal();
        execute(t, slot);
      } else {
        idle.miss();
        std::this_thread::yield();
      }
    }
  }

 private:
  Scheduler() {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("EBCT_SCHED_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 1) n = static_cast<int>(v);
    }
    if (n < 1) n = 1;
    if (n > kMaxThreads) n = kMaxThreads;
    start_workers(n);
  }

  ~Scheduler() { stop_workers(); }

  void start_workers(int total) {
    stop_.store(false, std::memory_order_relaxed);
    threads_.store(total, std::memory_order_relaxed);
    workers_.reserve(static_cast<std::size_t>(total - 1));
    for (int i = 1; i < total; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void stop_workers() {
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(g_wake_mu);
      g_signal.fetch_add(1, std::memory_order_release);
      g_wake_cv.notify_all();
    }
    for (auto& w : workers_) w.join();
    workers_.clear();
    threads_.store(1, std::memory_order_relaxed);
  }

  void worker_main() {
    Slot* slot = this_thread_slot();
    IdleEpisode idle;
    while (!stop_.load(std::memory_order_acquire)) {
      // `seen` is recorded before the scan: a task pushed after this load
      // bumps the signal past `seen` and the sleep predicate fails, so the
      // push is never missed. A task pushed before it is visible to the
      // scan (the signal bump's release pairs with this acquire).
      const std::uint64_t seen = g_signal.load(std::memory_order_acquire);
      bool found = false;
      Task t;
      for (int spin = 0; spin < 64; ++spin) {
        if (slot != nullptr && deque_pop(*slot, t)) {
          idle.found_local();
          execute(t, slot);
          found = true;
          break;
        }
        if (try_steal(slot, t)) {
          idle.found_steal();
          execute(t, slot);
          found = true;
          break;
        }
        idle.miss();
        std::this_thread::yield();
      }
      if (found) continue;
      // Sleeping is idleness, not scan latency: drop the episode so the
      // histogram reflects responsiveness under load only.
      idle.found_local();
      g_sleepers.fetch_add(1, std::memory_order_seq_cst);
      {
        std::unique_lock<std::mutex> lk(g_wake_mu);
        g_wake_cv.wait(lk, [&] {
          return stop_.load(std::memory_order_relaxed) ||
                 g_signal.load(std::memory_order_relaxed) != seen;
        });
      }
      g_sleepers.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  std::vector<std::thread> workers_;
  std::atomic<int> threads_{1};
  std::atomic<bool> stop_{false};
  std::mutex config_mu_;
};

}  // namespace

int num_threads() { return Scheduler::instance().threads(); }

void set_num_threads(int n) { Scheduler::instance().set_threads(n); }

// ---------------------------------------------------------------------------
// async(): one fire-and-forget task on the pool, joined through a Future.
// The state is heap-shared because the executing worker's last touch of the
// TaskSet (the remaining fetch_sub in execute()) happens *after* the body
// returns — the submitter must keep the set alive until it observes zero.
// ---------------------------------------------------------------------------

namespace detail {
struct AsyncState {
  std::function<void()> fn;
  std::exception_ptr error;  ///< written before remaining's release decrement
  TaskSet set;
};
}  // namespace detail

namespace {
void run_async_body(void* ctx, std::size_t, std::size_t) {
  auto* st = static_cast<detail::AsyncState*>(ctx);
  try {
    st->fn();
  } catch (...) {
    st->error = std::current_exception();
  }
}
}  // namespace

Future async(std::function<void()> fn) {
  auto st = std::make_shared<detail::AsyncState>();
  st->fn = std::move(fn);
  st->set.body = run_async_body;
  st->set.ctx = st.get();
  st->set.remaining.store(1, std::memory_order_relaxed);
  st->set.grain = 1;
  st->set.splittable = false;
  Slot* slot = Scheduler::instance().threads() > 1 ? this_thread_slot() : nullptr;
  if (slot != nullptr && deque_push(*slot, {&st->set, 0, 1})) {
    notify_workers();
  } else {
    // Single-threaded pool, no free slot, or a full deque: run inline. The
    // Future is already constructed-compatible — just mark it done.
    run_async_body(st.get(), 0, 1);
    st->set.remaining.store(0, std::memory_order_release);
  }
  return Future(std::move(st));
}

Future& Future::operator=(Future&& o) noexcept {
  if (this != &o) {
    if (state_ != nullptr) {
      try {
        wait();
      } catch (...) {
        // Overwritten before observation: the exception has no consumer.
      }
    }
    state_ = std::move(o.state_);
  }
  return *this;
}

Future::~Future() {
  if (state_ != nullptr) {
    try {
      wait();
    } catch (...) {
      // Destructor join, like std::jthread: the exception has no consumer.
    }
  }
}

bool Future::ready() const {
  return state_ != nullptr &&
         state_->set.remaining.load(std::memory_order_acquire) == 0;
}

void Future::wait() {
  if (state_ == nullptr) return;
  detail::AsyncState* st = state_.get();
  Slot* slot = this_thread_slot();  // may be null under extreme slot pressure
  Task t;
  IdleEpisode idle;
  while (st->set.remaining.load(std::memory_order_acquire) != 0) {
    if (slot != nullptr && deque_pop(*slot, t)) {
      idle.found_local();
      execute(t, slot);
    } else if (try_steal(slot, t)) {
      idle.found_steal();
      execute(t, slot);
    } else {
      idle.miss();
      std::this_thread::yield();
    }
  }
  std::shared_ptr<detail::AsyncState> done = std::move(state_);
  if (done->error) std::rethrow_exception(done->error);
}

void help_while(const std::function<bool()>& done) {
  Slot* slot = this_thread_slot();
  Task t;
  IdleEpisode idle;
  while (!done()) {
    if (slot != nullptr && deque_pop(*slot, t)) {
      idle.found_local();
      execute(t, slot);
    } else if (try_steal(slot, t)) {
      idle.found_steal();
      execute(t, slot);
    } else {
      idle.miss();
      std::this_thread::yield();
    }
  }
}

StealStats steal_stats() {
  StealStats s;
  for (std::size_t i = 0; i < StealStats::kBuckets; ++i) {
    s.bucket[i] = g_steal_hist[i].load(std::memory_order_relaxed);
    s.recorded += s.bucket[i];
  }
  return s;
}

StealStats drain_steal_stats() {
  // Per-bucket exchange(0): each episode is observed by exactly one drain.
  // Concurrent recorders may land in a bucket this loop already passed and
  // be picked up by the *next* drain — never lost, never double-counted.
  StealStats s;
  for (std::size_t i = 0; i < StealStats::kBuckets; ++i) {
    s.bucket[i] = g_steal_hist[i].exchange(0, std::memory_order_relaxed);
    s.recorded += s.bucket[i];
  }
  return s;
}

void reset_steal_stats() { (void)drain_steal_stats(); }

namespace detail {
void run_range(std::size_t n, std::size_t grain, unsigned max_workers,
               void (*body)(void*, std::size_t, std::size_t), void* ctx) {
  Scheduler::instance().run(n, grain, max_workers, body, ctx);
}
}  // namespace detail

}  // namespace ebct::tensor::sched
