#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/parallel.hpp"

namespace ebct::tensor {

namespace {
// Register-blocking tile for the k loop; keeps the inner loop vectorisable.
constexpr std::size_t kKTile = 256;
}  // namespace

void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate) {
  parallel_for(m, [&](std::size_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::memset(crow, 0, n * sizeof(float));
    for (std::size_t k0 = 0; k0 < k; k0 += kKTile) {
      const std::size_t k1 = std::min(k, k0 + kKTile);
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const float av = a[i * k + kk];
        if (av == 0.0f) continue;
        const float* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
}

void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
  // A is [k, m]; we compute C[i,j] = sum_kk A[kk,i] * B[kk,j].
  parallel_for(m, [&](std::size_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::memset(crow, 0, n * sizeof(float));
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[kk * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
}

void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate) {
  // B is [n, k]; C[i,j] = dot(A.row(i), B.row(j)).
  parallel_for(m, [&](std::size_t i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      if (accumulate)
        crow[j] += acc;
      else
        crow[j] = acc;
    }
  });
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const std::size_t n = x.size();
  parallel_for(n, [&](std::size_t i) { y[i] += alpha * x[i]; });
}

void scale(float alpha, std::span<float> x) {
  parallel_for(x.size(), [&](std::size_t i) { x[i] *= alpha; });
}

double sum(std::span<const float> x) {
  return parallel_sum(x.size(), [&](std::size_t i) { return static_cast<double>(x[i]); });
}

double mean_abs(std::span<const float> x) {
  if (x.empty()) return 0.0;
  const double s =
      parallel_sum(x.size(), [&](std::size_t i) { return std::fabs(static_cast<double>(x[i])); });
  return s / static_cast<double>(x.size());
}

float max_abs(std::span<const float> x) {
  float m = 0.0f;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(max : m)
#endif
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(x.size()); ++i) {
    const float v = std::fabs(x[static_cast<std::size_t>(i)]);
    if (v > m) m = v;
  }
  return m;
}

double nonzero_fraction(std::span<const float> x) {
  if (x.empty()) return 0.0;
  const double nz =
      parallel_sum(x.size(), [&](std::size_t i) { return x[i] != 0.0f ? 1.0 : 0.0; });
  return nz / static_cast<double>(x.size());
}

void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* cols, std::size_t pad_w) {
  if (pad_w == kSamePad) pad_w = pad;
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad_w);
  const std::size_t col_stride = out_h * out_w;
  // Row r of the column matrix corresponds to (c, ki, kj).
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((c * kh + ki) * kw + kj) * col_stride;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ki) - static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(height)) {
            std::memset(dst + oy * out_w, 0, out_w * sizeof(float));
            continue;
          }
          const float* src = img + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kj) -
                static_cast<std::ptrdiff_t>(pad_w);
            dst[oy * out_w + ox] =
                (ix >= 0 && ix < static_cast<std::ptrdiff_t>(width))
                    ? src[static_cast<std::size_t>(ix)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* img, std::size_t pad_w) {
  if (pad_w == kSamePad) pad_w = pad;
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad_w);
  const std::size_t col_stride = out_h * out_w;
  std::memset(img, 0, channels * height * width * sizeof(float));
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((c * kh + ki) * kw + kj) * col_stride;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ki) - static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(height)) continue;
          float* dstrow = img + (c * height + static_cast<std::size_t>(iy)) * width;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kj) -
                static_cast<std::ptrdiff_t>(pad_w);
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(width)) {
              dstrow[static_cast<std::size_t>(ix)] += src[oy * out_w + ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace ebct::tensor
