#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/parallel.hpp"

namespace ebct::tensor {

// The gemm / gemm_at / gemm_bt entry points live in gemm.cpp (the blocked,
// packed, 2D-parallel engine); this file keeps the elementwise kernels,
// reductions and the im2col/col2im pair.

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  const std::size_t n = x.size();
  parallel_for(n, [&](std::size_t i) { y[i] += alpha * x[i]; });
}

void scale(float alpha, std::span<float> x) {
  parallel_for(x.size(), [&](std::size_t i) { x[i] *= alpha; });
}

double sum(std::span<const float> x) {
  return parallel_sum(x.size(), [&](std::size_t i) { return static_cast<double>(x[i]); });
}

double mean_abs(std::span<const float> x) {
  if (x.empty()) return 0.0;
  const double s =
      parallel_sum(x.size(), [&](std::size_t i) { return std::fabs(static_cast<double>(x[i])); });
  return s / static_cast<double>(x.size());
}

float max_abs(std::span<const float> x) {
  // Max is exact under any merge order, but parallel_reduce's fixed
  // partition keeps it under the library-wide thread-count-free contract.
  return parallel_reduce(
      x.size(), 0.0f,
      [&x](std::size_t lo, std::size_t hi, float& m) {
        for (std::size_t i = lo; i < hi; ++i) m = std::max(m, std::fabs(x[i]));
      },
      [](float& m, float p) { m = std::max(m, p); });
}

double nonzero_fraction(std::span<const float> x) {
  if (x.empty()) return 0.0;
  const double nz =
      parallel_sum(x.size(), [&](std::size_t i) { return x[i] != 0.0f ? 1.0 : 0.0; });
  return nz / static_cast<double>(x.size());
}

void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* cols, std::size_t pad_w) {
  if (pad_w == kSamePad) pad_w = pad;
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad_w);
  const std::size_t col_stride = out_h * out_w;
  // Row r of the column matrix corresponds to (c, ki, kj).
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        float* dst = cols + ((c * kh + ki) * kw + kj) * col_stride;
        // Stride-1 rows are a contiguous window of the source row: the valid
        // ox span [lo, hi) maps to src[ox + kj - pad_w], so the inner loop
        // collapses to zero-fill edges plus one memcpy.
        const std::ptrdiff_t shift =
            static_cast<std::ptrdiff_t>(kj) - static_cast<std::ptrdiff_t>(pad_w);
        // Both span ends clamp to [0, out_w]: a kernel tap can sit entirely
        // in the padding (kernel wider than width + pad), leaving no valid
        // span at all.
        const std::size_t lo = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
            -shift, 0, static_cast<std::ptrdiff_t>(out_w)));
        const std::size_t hi = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
            static_cast<std::ptrdiff_t>(width) - shift,
            static_cast<std::ptrdiff_t>(lo), static_cast<std::ptrdiff_t>(out_w)));
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ki) - static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(height)) {
            std::memset(dst + oy * out_w, 0, out_w * sizeof(float));
            continue;
          }
          const float* src = img + (c * height + static_cast<std::size_t>(iy)) * width;
          float* drow = dst + oy * out_w;
          if (stride == 1) {
            if (lo > 0) std::memset(drow, 0, lo * sizeof(float));
            if (hi > lo)
              std::memcpy(drow + lo, src + static_cast<std::ptrdiff_t>(lo) + shift,
                          (hi - lo) * sizeof(float));
            if (hi < out_w) std::memset(drow + hi, 0, (out_w - hi) * sizeof(float));
            continue;
          }
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kj) -
                static_cast<std::ptrdiff_t>(pad_w);
            drow[ox] = (ix >= 0 && ix < static_cast<std::ptrdiff_t>(width))
                           ? src[static_cast<std::size_t>(ix)]
                           : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* img, std::size_t pad_w) {
  if (pad_w == kSamePad) pad_w = pad;
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad_w);
  const std::size_t col_stride = out_h * out_w;
  std::memset(img, 0, channels * height * width * sizeof(float));
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        const float* src = cols + ((c * kh + ki) * kw + kj) * col_stride;
        // Mirror of the im2col fast path: at stride 1 the valid ox span is
        // contiguous, so the scatter-add becomes one branch-free vector add.
        const std::ptrdiff_t shift =
            static_cast<std::ptrdiff_t>(kj) - static_cast<std::ptrdiff_t>(pad_w);
        const std::size_t lo = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
            -shift, 0, static_cast<std::ptrdiff_t>(out_w)));
        const std::size_t hi = static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(
            static_cast<std::ptrdiff_t>(width) - shift,
            static_cast<std::ptrdiff_t>(lo), static_cast<std::ptrdiff_t>(out_w)));
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ki) - static_cast<std::ptrdiff_t>(pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(height)) continue;
          float* dstrow = img + (c * height + static_cast<std::size_t>(iy)) * width;
          if (stride == 1) {
            const std::size_t len = hi - lo;
            if (len == 0) continue;
            float* d = dstrow + static_cast<std::ptrdiff_t>(lo) + shift;
            const float* s = src + oy * out_w + lo;
#ifdef _OPENMP
#pragma omp simd
#endif
            for (std::size_t ox = 0; ox < len; ++ox) d[ox] += s[ox];
            continue;
          }
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kj) -
                static_cast<std::ptrdiff_t>(pad_w);
            if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(width)) {
              dstrow[static_cast<std::size_t>(ix)] += src[oy * out_w + ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace ebct::tensor
