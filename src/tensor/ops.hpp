#pragma once

/// \file ops.hpp
/// Dense linear-algebra and elementwise kernels used by the nn layers.
/// All kernels are OpenMP-parallel over the largest independent dimension.

#include <cstddef>
#include <span>

namespace ebct::tensor {

/// C[m,n] = A[m,k] * B[k,n] (+ C if accumulate). Row-major. Implemented by
/// the cache-blocked, packed-panel engine in gemm.cpp: 2D-parallel over
/// Mc x Nc tiles of C with a register-blocked micro-kernel, bitwise
/// deterministic at every thread count (see gemm.hpp for the geometry).
void gemm(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
          std::size_t n, bool accumulate = false);

/// C[m,n] = A^T[k,m] * B[k,n] (+ C if accumulate). A is stored [k,m].
void gemm_at(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate = false);

/// C[m,n] = A[m,k] * B^T[n,k] (+ C if accumulate). B is stored [n,k].
void gemm_bt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n, bool accumulate = false);

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(float alpha, std::span<float> x);

/// Sum of all elements.
double sum(std::span<const float> x);

/// Mean of absolute values (used for momentum / gradient magnitude stats).
double mean_abs(std::span<const float> x);

/// Maximum of absolute values.
float max_abs(std::span<const float> x);

/// Fraction of non-zero elements (the paper's R, activation density).
double nonzero_fraction(std::span<const float> x);

/// Sentinel for "horizontal padding equals vertical padding".
inline constexpr std::size_t kSamePad = static_cast<std::size_t>(-1);

/// im2col: expand input [C,H,W] into columns [C*kh*kw, out_h*out_w] for
/// convolution-as-GEMM. One image at a time (the batch loop lives above).
/// `pad` pads vertically; `pad_w` horizontally (kSamePad = use `pad`).
void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* cols, std::size_t pad_w = kSamePad);

/// col2im: scatter-add the column matrix back into the image gradient.
void col2im(const float* cols, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t stride,
            std::size_t pad, float* img, std::size_t pad_w = kSamePad);

/// Output spatial size of a convolution/pool dimension.
inline std::size_t conv_out_dim(std::size_t in, std::size_t kernel, std::size_t stride,
                                std::size_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace ebct::tensor
