#pragma once

/// \file parallel.hpp
/// Thin OpenMP wrappers so the rest of the library never touches raw pragmas.
/// Grain-size aware: small loops run serially to avoid fork/join overhead.

#include <cstddef>
#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ebct::tensor {

/// Number of worker threads the runtime will use for parallel regions.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Minimum iteration count below which parallel_for runs serially.
inline constexpr std::size_t kParallelGrain = 4096;

/// Run `fn(i)` for i in [0, n). Parallelises across OpenMP threads when the
/// trip count justifies it. `fn` must be safe to call concurrently for
/// distinct indices.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  if (n < kParallelGrain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Run `fn(i)` for i in [0, n) with NO grain threshold — for coarse tasks
/// (per-block codec work) where every iteration is already substantial and
/// the caller wants parallelism even at small trip counts. `num_threads`
/// caps the worker count: 0 = all hardware threads, 1 = force serial. Work
/// is distributed dynamically since block cost can be skewed (outlier-heavy
/// blocks encode slower). The iteration order a thread observes is
/// unspecified, so `fn` must write only to per-index state.
template <typename Fn>
void parallel_for_tasks(std::size_t n, unsigned num_threads, Fn&& fn) {
  if (n == 0) return;
#ifdef _OPENMP
  const int want = num_threads == 0 ? omp_get_max_threads()
                                    : static_cast<int>(num_threads);
  if (want > 1 && n > 1) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(want)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      fn(static_cast<std::size_t>(i));
    }
    return;
  }
#endif
  (void)num_threads;
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Run `fn(begin, end, chunk_index)` over disjoint chunks of [0, n) — one
/// chunk per thread. The chunk index is deterministic (derived from the
/// range, not from scheduling order), so per-chunk accumulators can be
/// reduced in a reproducible order.
template <typename Fn>
void parallel_chunks(std::size_t n, Fn&& fn) {
  if (n == 0) return;
#ifdef _OPENMP
  if (n >= kParallelGrain || hardware_threads() > 1) {
#pragma omp parallel
    {
      const std::size_t nthreads = static_cast<std::size_t>(omp_get_num_threads());
      const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
      const std::size_t chunk = (n + nthreads - 1) / nthreads;
      const std::size_t begin = tid * chunk;
      const std::size_t end = begin + chunk < n ? begin + chunk : n;
      if (begin < end) fn(begin, end, tid);
    }
    return;
  }
#endif
  fn(static_cast<std::size_t>(0), n, static_cast<std::size_t>(0));
}

/// Sum-reduce `fn(i)` over [0, n) in parallel.
template <typename Fn>
double parallel_sum(std::size_t n, Fn&& fn) {
  double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) total += fn(i);
#endif
  return total;
}

}  // namespace ebct::tensor
