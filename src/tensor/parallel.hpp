#pragma once

/// \file parallel.hpp
/// Thin shims over the shared work-stealing scheduler (sched.hpp) so the
/// rest of the library keeps its loop-shaped API. Historically these
/// wrapped raw OpenMP pragmas, which made batch-level vs GEMM-level
/// parallelism first-fork-wins (OpenMP nesting off: whichever parallel_for
/// forked first got every core and inner loops ran serial). All levels now
/// submit into one task pool and interleave; the grain policies below are
/// unchanged, they just pick task sizes instead of gating a pragma.
///
/// Determinism: chunk partitions and reduction trees are pure functions of
/// the iteration count — never of the thread count — so every wrapper here
/// yields byte-identical results at any pool size (parallel_sum is *more*
/// deterministic than the old OpenMP reduction, which partitioned by thread
/// count).

#include <cstddef>
#include <vector>

#include "tensor/sched.hpp"

namespace ebct::tensor {

/// Number of worker threads the runtime will use for parallel regions
/// (the scheduler pool, including the calling thread).
inline int hardware_threads() { return sched::num_threads(); }

/// Minimum iteration count below which parallel_for runs serially.
inline constexpr std::size_t kParallelGrain = 4096;

/// Minimum *total work* (in rough element-op units) below which a loop is
/// not worth forking for. Gating on trip count alone starved loops with few
/// but heavy iterations: a conv-layer GEMM with m = 64 output channels never
/// crossed the 4096-row grain even though each row cost ~million flops.
inline constexpr std::size_t kParallelWorkGrain = 64 * 1024;

/// True when a loop of `n` iterations, each costing roughly `work_per_iter`
/// element-ops, justifies a fork/join. This is the grain policy shared by
/// parallel_for and the GEMM tile scheduler (exposed so callers like the
/// perf-smoke harness can assert a shape *would* parallelise).
inline bool parallel_worthwhile(std::size_t n, std::size_t work_per_iter) {
  if (n < 2) return false;
  if (work_per_iter == 0) work_per_iter = 1;
  if (n >= kParallelWorkGrain) return true;  // avoid overflow in the product
  return n * work_per_iter >= kParallelWorkGrain;
}

/// Run `fn(i)` for i in [0, n), forking when the total work — trip count x
/// `work_per_iter` element-ops — crosses kParallelWorkGrain. Tasks are
/// sized so each carries about one work-grain of element-ops (heavy
/// iterations, like GEMM C-tiles, become one task each and steal freely
/// across batch-level siblings). `fn` must be safe to call concurrently for
/// distinct indices.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t work_per_iter, Fn&& fn) {
  if (!parallel_worthwhile(n, work_per_iter)) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (work_per_iter == 0) work_per_iter = 1;
  const std::size_t grain = kParallelWorkGrain / work_per_iter;
  sched::parallel_indices(n, grain, 0, fn);
}

/// Run `fn(i)` for i in [0, n) assuming unit-cost iterations (elementwise
/// kernels). Kept as the common entry point; heavy-bodied loops should pass
/// their per-iteration cost to the overload above.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  // Preserve the historical trip-count grain for unit-cost loops: 4096
  // elementwise iterations is where fork/join starts paying off.
  if (n < kParallelGrain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  sched::parallel_indices(n, kParallelGrain, 0, fn);
}

/// Run `fn(i)` for i in [0, n) with NO grain threshold — for coarse tasks
/// (per-block codec work, per-sample conv batches) where every iteration is
/// already substantial and the caller wants parallelism even at small trip
/// counts. `num_threads` caps the worker count: 0 = the whole pool, 1 =
/// force serial, N = at most N pool threads pulling indices dynamically
/// (scheduler worker slots). Index distribution stays dynamic at
/// granularity 1 in every mode, which is what absorbs skewed iteration
/// costs (outlier-heavy codec blocks encode slower). The iteration order a
/// thread observes is unspecified, so `fn` must write only to per-index
/// state.
template <typename Fn>
void parallel_for_tasks(std::size_t n, unsigned num_threads, Fn&& fn) {
  sched::parallel_indices(n, 1, num_threads, fn);
}

/// Fixed-partition reduction over [0, n): the range is cut into
/// kParallelGrain-sized chunks (a pure function of n alone), `chunk(lo, hi,
/// acc)` reduces each one serially into its own accumulator, and the
/// partials merge in index order via `merge(total, partial)` — so the
/// result is identical at every pool size, and below the grain the
/// reduction degenerates to the exact serial loop. This is the one place
/// the chunking scaffolding lives; parallel_sum and tensor::max_abs are
/// thin instantiations.
template <typename T, typename ChunkFn, typename MergeFn>
T parallel_reduce(std::size_t n, T identity, ChunkFn&& chunk, MergeFn&& merge) {
  if (n < kParallelGrain) {
    T acc = identity;
    chunk(std::size_t{0}, n, acc);
    return acc;
  }
  const std::size_t nchunks = (n + kParallelGrain - 1) / kParallelGrain;
  std::vector<T> partial(nchunks, identity);
  sched::parallel_ranges(nchunks, 1, 0, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t lo = c * kParallelGrain;
      chunk(lo, lo + kParallelGrain < n ? lo + kParallelGrain : n, partial[c]);
    }
  });
  T total = identity;
  for (const T& p : partial) merge(total, p);
  return total;
}

/// Sum-reduce `fn(i)` over [0, n) in parallel. Fixed partition + in-order
/// merge: identical at every thread count (unlike an OpenMP reduction
/// clause, whose partitioning tracked the team size).
template <typename Fn>
double parallel_sum(std::size_t n, Fn&& fn) {
  return parallel_reduce(
      n, 0.0,
      [&fn](std::size_t lo, std::size_t hi, double& acc) {
        for (std::size_t i = lo; i < hi; ++i) acc += fn(i);
      },
      [](double& total, double p) { total += p; });
}

}  // namespace ebct::tensor
