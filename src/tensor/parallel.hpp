#pragma once

/// \file parallel.hpp
/// Thin OpenMP wrappers so the rest of the library never touches raw pragmas.
/// Grain-size aware: small loops run serially to avoid fork/join overhead.

#include <cstddef>
#include <cstdint>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ebct::tensor {

/// Number of worker threads the runtime will use for parallel regions.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Minimum iteration count below which parallel_for runs serially.
inline constexpr std::size_t kParallelGrain = 4096;

/// Minimum *total work* (in rough element-op units) below which a loop is
/// not worth forking for. Gating on trip count alone starved loops with few
/// but heavy iterations: a conv-layer GEMM with m = 64 output channels never
/// crossed the 4096-row grain even though each row cost ~million flops.
inline constexpr std::size_t kParallelWorkGrain = 64 * 1024;

/// True when a loop of `n` iterations, each costing roughly `work_per_iter`
/// element-ops, justifies an OpenMP fork/join. This is the grain policy
/// shared by parallel_for and the GEMM tile scheduler (exposed so callers
/// like the perf-smoke harness can assert a shape *would* parallelise).
inline bool parallel_worthwhile(std::size_t n, std::size_t work_per_iter) {
  if (n < 2) return false;
  if (work_per_iter == 0) work_per_iter = 1;
  if (n >= kParallelWorkGrain) return true;  // avoid overflow in the product
  return n * work_per_iter >= kParallelWorkGrain;
}

/// Run `fn(i)` for i in [0, n), forking when the total work — trip count x
/// `work_per_iter` element-ops — crosses kParallelWorkGrain. `fn` must be
/// safe to call concurrently for distinct indices.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t work_per_iter, Fn&& fn) {
  if (!parallel_worthwhile(n, work_per_iter)) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Run `fn(i)` for i in [0, n) assuming unit-cost iterations (elementwise
/// kernels). Kept as the common entry point; heavy-bodied loops should pass
/// their per-iteration cost to the overload above.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  // Preserve the historical trip-count grain for unit-cost loops: 4096
  // elementwise iterations is where fork/join starts paying off.
  if (n < kParallelGrain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) fn(i);
#endif
}

/// Run `fn(i)` for i in [0, n) with NO grain threshold — for coarse tasks
/// (per-block codec work) where every iteration is already substantial and
/// the caller wants parallelism even at small trip counts. `num_threads`
/// caps the worker count: 0 = all hardware threads, 1 = force serial. Work
/// is distributed dynamically since block cost can be skewed (outlier-heavy
/// blocks encode slower). The iteration order a thread observes is
/// unspecified, so `fn` must write only to per-index state.
template <typename Fn>
void parallel_for_tasks(std::size_t n, unsigned num_threads, Fn&& fn) {
  if (n == 0) return;
#ifdef _OPENMP
  const int want = num_threads == 0 ? omp_get_max_threads()
                                    : static_cast<int>(num_threads);
  if (want > 1 && n > 1) {
#pragma omp parallel for schedule(dynamic, 1) num_threads(want)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
      fn(static_cast<std::size_t>(i));
    }
    return;
  }
#endif
  (void)num_threads;
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

/// Sum-reduce `fn(i)` over [0, n) in parallel.
template <typename Fn>
double parallel_sum(std::size_t n, Fn&& fn) {
  double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    total += fn(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) total += fn(i);
#endif
  return total;
}

}  // namespace ebct::tensor
