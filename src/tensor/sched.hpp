#pragma once

/// \file sched.hpp
/// Shared work-stealing task scheduler: one process-wide pool of worker
/// threads with per-thread Chase–Lev-style deques. Every parallel construct
/// in the library (batch loops in the nn layers, the GEMM engine's 2D
/// C-tile grid, the SZ per-block codec pipeline) submits range tasks into
/// the same pool, so batch-level and tile-level work interleave instead of
/// the first fork winning the thread pool and the inner level running
/// serial.
///
/// Scheduling model
///  - A `parallel` call splits [0, n) into range tasks no smaller than
///    `grain` indices. The submitting thread pushes tasks onto its own
///    deque (help-first: the upper half of a range is published *before*
///    the lower half is executed, so idle workers can steal it), then joins
///    by draining its deque and stealing from peers until every index has
///    run. Joining threads never block: nested submissions — a conv batch
///    task forking its sample's GEMM tile grid — are executed cooperatively
///    on whichever thread gets there first.
///  - Determinism contract: the scheduler fixes *what* runs (a partition of
///    [0, n) that is a pure function of n, grain and max_workers — never of
///    the thread count) but not *where or when*. Callers that write results
///    only to per-index locations, or reduce through fixed partitions merged
///    in index order, produce byte-identical output at every thread count.
///    Every hot path in this library follows that discipline.
///
/// Concurrency is `num_threads()`: the calling thread plus the pool
/// workers. It defaults to the hardware thread count, can be pinned with
/// the EBCT_SCHED_THREADS environment variable (read once, at first use),
/// and can be reconfigured at runtime with set_num_threads() while no
/// parallel work is in flight. Per-call caps (sz::Config::num_threads)
/// arrive through the `max_workers` argument.

#include <cstddef>
#include <memory>
#include <type_traits>

namespace ebct::tensor::sched {

/// Total concurrency: pool workers + the calling thread. Always >= 1.
int num_threads();

/// Resize the pool to `n` total threads (clamped to [1, 112], the slot
/// table's worker bound). Blocks until the old workers have drained and
/// exited. Must only be called while no parallel region is executing;
/// intended for tests, benchmarks and process-level configuration, not
/// per-call throttling (use `max_workers` for that).
void set_num_threads(int n);

namespace detail {
/// Type-erased core. Executes body(ctx, begin, end) over disjoint
/// subranges that exactly cover [0, n), blocking until all have run.
///  - grain: minimum indices per task (0 behaves as 1); ranges above it are
///    split so thieves can share the work.
///  - max_workers: 0 = no cap; 1 = run serially inline; k > 1 = submit
///    min(k, n) worker-slot tasks that pull indices one at a time from a
///    shared counter, so at most k threads ever touch the set while load
///    balance stays index-granular (which index runs where floats, but
///    callers observe only per-index writes — determinism holds).
void run_range(std::size_t n, std::size_t grain, unsigned max_workers,
               void (*body)(void*, std::size_t, std::size_t), void* ctx);
}  // namespace detail

/// Run fn(begin, end) over disjoint chunks covering [0, n). See
/// detail::run_range for grain / max_workers semantics. `fn` must tolerate
/// concurrent invocation on distinct ranges and write only range-owned
/// state.
template <typename Fn>
void parallel_ranges(std::size_t n, std::size_t grain, unsigned max_workers, Fn&& fn) {
  using Body = std::remove_reference_t<Fn>;
  Body& body = fn;
  detail::run_range(
      n, grain, max_workers,
      [](void* ctx, std::size_t b, std::size_t e) { (*static_cast<Body*>(ctx))(b, e); },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// Run fn(i) for every i in [0, n); chunking is an internal detail.
template <typename Fn>
void parallel_indices(std::size_t n, std::size_t grain, unsigned max_workers, Fn&& fn) {
  parallel_ranges(n, grain, max_workers, [&fn](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fn(i);
  });
}

}  // namespace ebct::tensor::sched
