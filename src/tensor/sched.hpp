#pragma once

/// \file sched.hpp
/// Shared work-stealing task scheduler: one process-wide pool of worker
/// threads with per-thread Chase–Lev-style deques. Every parallel construct
/// in the library (batch loops in the nn layers, the GEMM engine's 2D
/// C-tile grid, the SZ per-block codec pipeline) submits range tasks into
/// the same pool, so batch-level and tile-level work interleave instead of
/// the first fork winning the thread pool and the inner level running
/// serial.
///
/// Scheduling model
///  - A `parallel` call splits [0, n) into range tasks no smaller than
///    `grain` indices. The submitting thread pushes tasks onto its own
///    deque (help-first: the upper half of a range is published *before*
///    the lower half is executed, so idle workers can steal it), then joins
///    by draining its deque and stealing from peers until every index has
///    run. Joining threads never block: nested submissions — a conv batch
///    task forking its sample's GEMM tile grid — are executed cooperatively
///    on whichever thread gets there first.
///  - Determinism contract: the scheduler fixes *what* runs (a partition of
///    [0, n) that is a pure function of n, grain and max_workers — never of
///    the thread count) but not *where or when*. Callers that write results
///    only to per-index locations, or reduce through fixed partitions merged
///    in index order, produce byte-identical output at every thread count.
///    Every hot path in this library follows that discipline.
///
/// Concurrency is `num_threads()`: the calling thread plus the pool
/// workers. It defaults to the hardware thread count, can be pinned with
/// the EBCT_SCHED_THREADS environment variable (read once, at first use),
/// and can be reconfigured at runtime with set_num_threads() while no
/// parallel work is in flight. Per-call caps (sz::Config::num_threads)
/// arrive through the `max_workers` argument.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>

namespace ebct::tensor::sched {

/// Total concurrency: pool workers + the calling thread. Always >= 1.
int num_threads();

/// Resize the pool to `n` total threads (clamped to [1, 112], the slot
/// table's worker bound). Blocks until the old workers have drained and
/// exited. Must only be called while no parallel region is executing;
/// intended for tests, benchmarks and process-level configuration, not
/// per-call throttling (use `max_workers` for that).
void set_num_threads(int n);

namespace detail {
struct AsyncState;  // defined in sched.cpp; carries one fire-and-forget task
}  // namespace detail

/// Handle to a single task submitted with async(). Join semantics mirror
/// std::thread: a valid Future must be waited before destruction (the
/// destructor waits, swallowing any task exception; call wait() yourself to
/// observe it). wait() does not block idle — like the scheduler's join loop
/// it helps execute queued tasks (its own deque first, then steals), so
/// waiting inside a parallel region cannot deadlock the pool.
class Future {
 public:
  Future() = default;
  Future(Future&& o) noexcept : state_(std::move(o.state_)) {}
  Future& operator=(Future&& o) noexcept;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;
  ~Future();

  bool valid() const { return state_ != nullptr; }
  /// True when the task has finished (valid futures only).
  bool ready() const;
  /// Block (helping the pool) until the task finishes; rethrows the task's
  /// exception if it threw, then releases the state (valid() becomes false).
  void wait();

 private:
  friend Future async(std::function<void()> fn);
  explicit Future(std::shared_ptr<detail::AsyncState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::AsyncState> state_;
};

/// Submit `fn` as one task on the shared pool and return its Future. The
/// task may run on any worker (or inline, when the pool has one thread or
/// the submitter's deque is full) and must not assume a particular thread.
/// Exceptions thrown by `fn` are captured and rethrown from wait().
/// Do not call while holding a lock the task body also takes: on a
/// single-thread pool the body runs inline, inside this call.
[[nodiscard]] Future async(std::function<void()> fn);

/// Execute queued pool tasks (own deque first, then steals) until `done()`
/// returns true, yielding when no task is available. This is how code
/// blocked on an async side effect (an encode landing, a prefetch
/// installing) waits without idling a core or deadlocking a one-thread
/// pool. `done` is re-evaluated between task executions and must be safe
/// to call repeatedly from this thread; it alone must detect completion
/// (typically via an atomic published by the task).
void help_while(const std::function<bool()>& done);

/// Steal-latency histogram: how long threads that went looking for work
/// scanned before a successful steal. Latency is measured from the first
/// failed pop/steal attempt of an idle episode to the steal that ended it;
/// a steal that lands on the first attempt counts as latency 0 (bucket 0),
/// and time spent sleeping (empty pool) is excluded — the numbers reflect
/// wake-to-work responsiveness under load, not idleness. Bucket i counts
/// steals with latency in [2^i, 2^(i+1)) ns.
struct StealStats {
  static constexpr std::size_t kBuckets = 26;
  std::uint64_t recorded = 0;                      ///< episodes ending in a steal
  std::array<std::uint64_t, kBuckets> bucket{};    ///< log2-ns latency histogram

  /// Upper bound (ns) of the bucket where the cumulative count first
  /// reaches fraction `p` of `recorded`; 0 when nothing was recorded.
  double percentile_ns(double p) const {
    if (recorded == 0) return 0.0;
    const double target = p * static_cast<double>(recorded);
    double cum = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += static_cast<double>(bucket[i]);
      if (cum >= target) return static_cast<double>(std::uint64_t{1} << (i + 1));
    }
    return static_cast<double>(std::uint64_t{1} << kBuckets);
  }
};

/// Non-destructive snapshot of the process-wide steal histogram (all
/// threads). `recorded` is derived from the buckets, so the snapshot is
/// internally consistent even while steals are being recorded concurrently.
StealStats steal_stats();

/// Atomically drain the histogram: returns everything recorded since the
/// previous drain/reset and zeroes the counters in the same per-bucket
/// exchange, so two consumers (or two bench runs in one long-lived process)
/// can never double-count or lose an episode between a snapshot and a
/// reset. Benches bracket their timed section with a discarded drain before
/// and a reported drain after.
StealStats drain_steal_stats();
void reset_steal_stats();

namespace detail {
/// Type-erased core. Executes body(ctx, begin, end) over disjoint
/// subranges that exactly cover [0, n), blocking until all have run.
///  - grain: minimum indices per task (0 behaves as 1); ranges above it are
///    split so thieves can share the work.
///  - max_workers: 0 = no cap; 1 = run serially inline; k > 1 = submit
///    min(k, n) worker-slot tasks that pull indices one at a time from a
///    shared counter, so at most k threads ever touch the set while load
///    balance stays index-granular (which index runs where floats, but
///    callers observe only per-index writes — determinism holds).
void run_range(std::size_t n, std::size_t grain, unsigned max_workers,
               void (*body)(void*, std::size_t, std::size_t), void* ctx);
}  // namespace detail

/// Run fn(begin, end) over disjoint chunks covering [0, n). See
/// detail::run_range for grain / max_workers semantics. `fn` must tolerate
/// concurrent invocation on distinct ranges and write only range-owned
/// state.
template <typename Fn>
void parallel_ranges(std::size_t n, std::size_t grain, unsigned max_workers, Fn&& fn) {
  using Body = std::remove_reference_t<Fn>;
  Body& body = fn;
  detail::run_range(
      n, grain, max_workers,
      [](void* ctx, std::size_t b, std::size_t e) { (*static_cast<Body*>(ctx))(b, e); },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// Run fn(i) for every i in [0, n); chunking is an internal detail.
template <typename Fn>
void parallel_indices(std::size_t n, std::size_t grain, unsigned max_workers, Fn&& fn) {
  parallel_ranges(n, grain, max_workers, [&fn](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fn(i);
  });
}

}  // namespace ebct::tensor::sched
