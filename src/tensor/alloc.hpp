#pragma once

/// \file alloc.hpp
/// Global allocation tracker for tensor buffers plus a thread-local scratch
/// arena for transient workspace (im2col columns, GEMM packing panels).
/// Every Tensor reports its byte footprint to the tracker, giving the memory
/// module exact live/peak statistics without intercepting malloc; scratch
/// buffers are deliberately *not* tracked there so workspace reuse does not
/// distort the paper's activation-memory figures. Tracker is thread-safe via
/// atomics; the arena is thread-local and needs no locking.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ebct::tensor {

/// Process-wide counters of tensor memory. Peak tracking uses a CAS loop so
/// concurrent allocations never under-report the high-water mark.
class AllocTracker {
 public:
  static AllocTracker& instance() {
    static AllocTracker t;
    return t;
  }

  void on_alloc(std::size_t bytes) {
    const std::size_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    total_allocated_.fetch_add(bytes, std::memory_order_relaxed);
    alloc_count_.fetch_add(1, std::memory_order_relaxed);
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  void on_free(std::size_t bytes) { live_.fetch_sub(bytes, std::memory_order_relaxed); }

  std::size_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  std::size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::size_t total_allocated_bytes() const {
    return total_allocated_.load(std::memory_order_relaxed);
  }
  std::size_t alloc_count() const { return alloc_count_.load(std::memory_order_relaxed); }

  /// Reset the peak to the current live size (start of a measured region).
  void reset_peak() { peak_.store(live_.load(std::memory_order_relaxed), std::memory_order_relaxed); }

 private:
  AllocTracker() = default;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> total_allocated_{0};
  std::atomic<std::size_t> alloc_count_{0};
};

/// RAII scope that measures the peak tensor memory between construction and
/// `peak_delta()` queries. Only valid when scopes are not interleaved across
/// threads (benchmark usage).
class PeakScope {
 public:
  PeakScope() : base_(AllocTracker::instance().live_bytes()) {
    AllocTracker::instance().reset_peak();
  }
  /// Peak bytes above the live baseline when this scope began.
  std::size_t peak_delta() const {
    const std::size_t p = AllocTracker::instance().peak_bytes();
    return p > base_ ? p - base_ : 0;
  }

 private:
  std::size_t base_;
};

/// Thread-local pool of reusable float workspace blocks. Hot paths that need
/// a transient buffer per sample (im2col columns, packed GEMM panels) borrow
/// one via ScratchBuffer instead of constructing a fresh std::vector: after
/// the first iteration every acquire is a free-list hit, so steady-state
/// training does zero workspace mallocs. Blocks are handed back uncleared —
/// callers must fully write what they read. Nesting is safe (a conv column
/// buffer can be live while the GEMM inside borrows packing panels); blocks
/// are keyed in-use/free, not stack-ordered.
class ScratchArena {
 public:
  static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

  /// Total bytes this thread's arena has ever allocated (diagnostics).
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  /// Process-unique id of this arena instance (see ScratchHold::release:
  /// address equality alone cannot prove liveness because freed arena
  /// memory can be reused for a new thread's arena).
  std::uint64_t serial() const { return serial_; }

 private:
  ScratchArena() {
    static std::atomic<std::uint64_t> next_serial{1};
    serial_ = next_serial.fetch_add(1, std::memory_order_relaxed);
  }
  struct Block {
    std::unique_ptr<float[]> mem;
    std::size_t cap = 0;
    bool in_use = false;
  };

  /// Smallest free block that fits, else a new geometrically-sized block.
  std::size_t acquire(std::size_t count) {
    std::size_t best = blocks_.size();
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      const Block& b = blocks_[i];
      if (b.in_use || b.cap < count) continue;
      if (best == blocks_.size() || b.cap < blocks_[best].cap) best = i;
    }
    if (best == blocks_.size()) {
      std::size_t cap = 1024;
      while (cap < count) cap *= 2;
      blocks_.push_back({std::make_unique<float[]>(cap), cap, false});
      capacity_bytes_ += cap * sizeof(float);
    }
    blocks_[best].in_use = true;
    return best;
  }

  void release(std::size_t index) { blocks_[index].in_use = false; }

  std::vector<Block> blocks_;
  std::size_t capacity_bytes_ = 0;
  std::uint64_t serial_ = 0;

  friend class ScratchBuffer;
  friend class ScratchHold;
};

/// RAII borrow of an arena block. Must be released on the thread that
/// acquired it (automatic when used as a local inside a parallel task).
/// When the buffer is shared with parallel tasks (fixed-partition grad
/// reductions), resolve data() on the owning thread *before* submitting:
/// data() walks the arena's bookkeeping, which the owner mutates whenever
/// it acquires nested scratch while helping execute tasks. The block
/// memory itself is stable, so the resolved pointer stays valid.
class ScratchBuffer {
 public:
  explicit ScratchBuffer(std::size_t count)
      : arena_(&ScratchArena::local()), index_(arena_->acquire(count)), count_(count) {}
  ~ScratchBuffer() { arena_->release(index_); }

  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  float* data() { return arena_->blocks_[index_].mem.get(); }
  const float* data() const { return arena_->blocks_[index_].mem.get(); }
  std::size_t size() const { return count_; }

 private:
  ScratchArena* arena_;
  std::size_t index_;
  std::size_t count_;
};

/// Explicit (non-scoped) arena borrow for workspace that must outlive one
/// call — e.g. a layer's saved forward state that the matching backward
/// consumes (batchnorm's normalised activations). acquire() and release()
/// must run on the same thread, which for layer state means forward and
/// backward of a given layer execute on one thread (the training loop);
/// the buffer's *contents* may be filled by parallel tasks on any thread.
/// Re-acquiring releases the previous block first, so steady-state training
/// reuses one block and never grows the arena.
///
/// If the holder is destroyed on a *different* thread (a layer built on a
/// worker thread, joined, then torn down elsewhere), the acquiring thread's
/// thread_local arena may already be gone, so release() must not touch it:
/// the block is abandoned instead — a bounded leak of one free-list slot in
/// an arena that is usually already destroyed, never a use-after-free.
class ScratchHold {
 public:
  ScratchHold() = default;
  ~ScratchHold() { release(); }

  ScratchHold(const ScratchHold&) = delete;
  ScratchHold& operator=(const ScratchHold&) = delete;

  float* acquire(std::size_t count) {
    release();
    arena_ = &ScratchArena::local();
    serial_ = arena_->serial();
    index_ = arena_->acquire(count);
    count_ = count;
    return data();
  }

  void release() {
    if (arena_ != nullptr) {
      // Safe only when the acquiring arena is provably this thread's live
      // arena. Address + serial together are that proof: thread ids
      // recycle, and a freed arena's memory can be reused for a new
      // thread's arena (same address), but the construction serial is
      // process-unique. Any mismatch means cross-thread or dead arena —
      // abandon the block instead of touching it.
      ScratchArena& mine = ScratchArena::local();
      if (&mine == arena_ && mine.serial() == serial_) mine.release(index_);
      arena_ = nullptr;
      count_ = 0;
    }
  }

  bool held() const { return arena_ != nullptr; }
  float* data() { return arena_->blocks_[index_].mem.get(); }
  const float* data() const { return arena_->blocks_[index_].mem.get(); }
  std::size_t size() const { return count_; }

 private:
  ScratchArena* arena_ = nullptr;
  std::uint64_t serial_ = 0;
  std::size_t index_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ebct::tensor
