#pragma once

/// \file alloc.hpp
/// Global allocation tracker for tensor buffers. Every Tensor reports its
/// byte footprint here, giving the memory module exact live/peak statistics
/// without intercepting malloc. Thread-safe via atomics.

#include <atomic>
#include <cstddef>

namespace ebct::tensor {

/// Process-wide counters of tensor memory. Peak tracking uses a CAS loop so
/// concurrent allocations never under-report the high-water mark.
class AllocTracker {
 public:
  static AllocTracker& instance() {
    static AllocTracker t;
    return t;
  }

  void on_alloc(std::size_t bytes) {
    const std::size_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    total_allocated_.fetch_add(bytes, std::memory_order_relaxed);
    alloc_count_.fetch_add(1, std::memory_order_relaxed);
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev && !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  void on_free(std::size_t bytes) { live_.fetch_sub(bytes, std::memory_order_relaxed); }

  std::size_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  std::size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::size_t total_allocated_bytes() const {
    return total_allocated_.load(std::memory_order_relaxed);
  }
  std::size_t alloc_count() const { return alloc_count_.load(std::memory_order_relaxed); }

  /// Reset the peak to the current live size (start of a measured region).
  void reset_peak() { peak_.store(live_.load(std::memory_order_relaxed), std::memory_order_relaxed); }

 private:
  AllocTracker() = default;
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> total_allocated_{0};
  std::atomic<std::size_t> alloc_count_{0};
};

/// RAII scope that measures the peak tensor memory between construction and
/// `peak_delta()` queries. Only valid when scopes are not interleaved across
/// threads (benchmark usage).
class PeakScope {
 public:
  PeakScope() : base_(AllocTracker::instance().live_bytes()) {
    AllocTracker::instance().reset_peak();
  }
  /// Peak bytes above the live baseline when this scope began.
  std::size_t peak_delta() const {
    const std::size_t p = AllocTracker::instance().peak_bytes();
    return p > base_ ? p - base_ : 0;
  }

 private:
  std::size_t base_;
};

}  // namespace ebct::tensor
