#pragma once

/// \file tensor.hpp
/// Dense float32 tensor with NCHW layout, owning storage tracked by
/// AllocTracker. Move-only semantics are avoided deliberately: copies are
/// explicit via clone() so accidental deep copies can't hide in layer code.

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "tensor/alloc.hpp"
#include "tensor/shape.hpp"

namespace ebct::tensor {

/// Owning, contiguous, row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape) : shape_(shape) { allocate(); }

  Tensor(Shape shape, float fill) : shape_(shape) {
    allocate();
    for (auto& v : data_) v = fill;
  }

  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  Tensor(Tensor&& o) noexcept { *this = std::move(o); }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      release();
      shape_ = o.shape_;
      data_ = std::move(o.data_);
      tracked_bytes_ = o.tracked_bytes_;
      o.shape_ = Shape();
      o.tracked_bytes_ = 0;
    }
    return *this;
  }

  ~Tensor() { release(); }

  /// Deep copy (explicit; Tensor is otherwise move-only).
  Tensor clone() const {
    Tensor t(shape_);
    t.data_ = data_;
    return t;
  }

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW element access (rank-4 tensors).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    return data_[shape_.offset(n, c, h, w)];
  }
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    return data_[shape_.offset(n, c, h, w)];
  }

  void zero() {
    for (auto& v : data_) v = 0.0f;
  }

  void fill(float v) {
    for (auto& x : data_) x = v;
  }

  /// Reinterpret the same storage under a new shape with equal numel.
  void reshape(Shape s) {
    if (s.numel() != numel()) throw std::invalid_argument("Tensor::reshape numel mismatch");
    shape_ = s;
  }

  /// Free the storage but remember the shape (used by activation stores that
  /// replace raw data with a compressed representation).
  void drop_storage() {
    release();
    data_.clear();
    data_.shrink_to_fit();
  }

  /// Re-allocate storage for the remembered shape after drop_storage().
  void restore_storage() {
    if (!data_.empty()) return;
    allocate();
  }

 private:
  void allocate() {
    data_.assign(shape_.numel(), 0.0f);
    tracked_bytes_ = data_.size() * sizeof(float);
    AllocTracker::instance().on_alloc(tracked_bytes_);
  }
  void release() {
    if (tracked_bytes_ != 0) {
      AllocTracker::instance().on_free(tracked_bytes_);
      tracked_bytes_ = 0;
    }
  }

  Shape shape_;
  std::vector<float> data_;
  std::size_t tracked_bytes_ = 0;
};

}  // namespace ebct::tensor
