#include "tensor/shape.hpp"

namespace ebct::tensor {

std::string Shape::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i) s += ", ";
    s += std::to_string(dims_[i]);
  }
  s += "]";
  return s;
}

}  // namespace ebct::tensor
