#pragma once

/// \file linreg.hpp
/// Ordinary least squares through the origin and with intercept. Used by the
/// Fig. 8 bench to re-derive the paper's empirical coefficient a ≈ 0.32 from
/// measured sigma vs. L̄·√(N·R)·eb.

#include <cstddef>
#include <span>

namespace ebct::stats {

struct LinFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// y ≈ slope * x (no intercept). r2 measured against the mean-zero model.
inline LinFit fit_through_origin(std::span<const double> x, std::span<const double> y) {
  LinFit f;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < n; ++i) {
    sxy += x[i] * y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
  }
  if (sxx == 0.0) return f;
  f.slope = sxy / sxx;
  if (syy > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - f.slope * x[i];
      ss_res += r * r;
    }
    f.r2 = 1.0 - ss_res / syy;
  }
  return f;
}

/// Standard OLS with intercept.
inline LinFit fit_linear(std::span<const double> x, std::span<const double> y) {
  LinFit f;
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  if (n == 0) return f;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  if (syy > 0.0) f.r2 = sxy * sxy / (sxx * syy);
  return f;
}

}  // namespace ebct::stats
