#include "stats/distribution.hpp"

#include <cmath>

#include "stats/running_stats.hpp"

namespace ebct::stats {

ShapeDiagnostics diagnose(std::span<const float> xs) {
  RunningStats rs;
  rs.add(xs);
  ShapeDiagnostics d;
  d.mean = rs.mean();
  d.stddev = rs.stddev();
  d.skewness = rs.skewness();
  d.excess_kurtosis = rs.excess_kurtosis();
  d.min = rs.min();
  d.max = rs.max();
  if (d.stddev > 0.0) {
    std::size_t inside = 0;
    for (float x : xs) {
      if (std::fabs(static_cast<double>(x) - d.mean) <= d.stddev) ++inside;
    }
    d.within_one_sigma = xs.empty() ? 0.0 : static_cast<double>(inside) / xs.size();
  }
  return d;
}

bool looks_uniform(const ShapeDiagnostics& d, double bound, double tol) {
  if (bound <= 0.0) return false;
  if (d.min < -bound * (1.0 + tol) || d.max > bound * (1.0 + tol)) return false;
  if (std::fabs(d.mean) > bound * tol) return false;
  if (std::fabs(d.skewness) > 3.0 * tol) return false;
  // Uniform excess kurtosis is -1.2.
  if (std::fabs(d.excess_kurtosis + 1.2) > 4.0 * tol) return false;
  const double expected_sd = uniform_stddev(bound);
  return std::fabs(d.stddev - expected_sd) <= expected_sd * 2.0 * tol;
}

bool looks_normal(const ShapeDiagnostics& d, double tol) {
  if (d.stddev <= 0.0) return false;
  if (std::fabs(d.mean) > d.stddev * 2.0 * tol) return false;
  if (std::fabs(d.skewness) > 4.0 * tol) return false;
  if (std::fabs(d.excess_kurtosis) > 6.0 * tol) return false;
  return std::fabs(d.within_one_sigma - 0.682) < 0.682 * tol;
}

double uniform_stddev(double eb) { return eb / std::sqrt(3.0); }

}  // namespace ebct::stats
