#include "stats/ks_test.hpp"

#include <algorithm>
#include <functional>
#include <cmath>
#include <vector>

namespace ebct::stats {

namespace {

KsResult ks_against(std::span<const float> xs, const std::function<double(double)>& cdf) {
  KsResult r;
  if (xs.empty()) return r;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  r.statistic = d;
  r.p_value = kolmogorov_tail(std::sqrt(n) * d);
  return r;
}

}  // namespace

double kolmogorov_tail(double x) {
  if (x <= 0.0) return 1.0;
  // Q_KS(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); converges fast.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_test_uniform(std::span<const float> xs, double lo, double hi) {
  const double range = hi - lo;
  return ks_against(xs, [lo, range](double x) {
    return std::clamp((x - lo) / range, 0.0, 1.0);
  });
}

KsResult ks_test_normal(std::span<const float> xs, double mean, double stddev) {
  return ks_against(xs, [mean, stddev](double x) {
    return 0.5 * std::erfc(-(x - mean) / (stddev * std::sqrt(2.0)));
  });
}

}  // namespace ebct::stats
