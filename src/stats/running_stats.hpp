#pragma once

/// \file running_stats.hpp
/// Welford-style streaming moment accumulator, up to fourth moment, used for
/// the uniformity/normality diagnostics in the error-propagation experiments.

#include <cmath>
#include <cstddef>
#include <span>

namespace ebct::stats {

/// Online mean/variance/skewness/kurtosis accumulator (numerically stable).
class RunningStats {
 public:
  void add(double x) {
    const double n1 = static_cast<double>(n_);
    n_ += 1;
    const double n = static_cast<double>(n_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ - 4 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
    m2_ += term1;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void add(std::span<const float> xs) {
    for (float x : xs) add(static_cast<double>(x));
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample skewness (0 for symmetric distributions).
  double skewness() const {
    if (n_ < 2 || m2_ == 0.0) return 0.0;
    const double n = static_cast<double>(n_);
    return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
  }

  /// Excess kurtosis: 0 for normal, -1.2 for uniform.
  double excess_kurtosis() const {
    if (n_ < 2 || m2_ == 0.0) return 0.0;
    const double n = static_cast<double>(n_);
    return n * m4_ / (m2_ * m2_) - 3.0;
  }

  void merge(const RunningStats& o) {
    // Chan et al. parallel-merge formulas.
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double n = na + nb;
    const double delta = o.mean_ - mean_;
    const double mean = mean_ + delta * nb / n;
    const double m2 = m2_ + o.m2_ + delta * delta * na * nb / n;
    const double m3 = m3_ + o.m3_ + delta * delta * delta * na * nb * (na - nb) / (n * n) +
                      3.0 * delta * (na * o.m2_ - nb * m2_) / n;
    const double m4 =
        m4_ + o.m4_ +
        delta * delta * delta * delta * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
        6.0 * delta * delta * (na * na * o.m2_ + nb * nb * m2_) / (n * n) +
        4.0 * delta * (na * o.m3_ - nb * m3_) / n;
    n_ += o.n_;
    mean_ = mean;
    m2_ = m2;
    m3_ = m3;
    m4_ = m4;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace ebct::stats
