#pragma once

/// \file histogram.hpp
/// Fixed-range histogram used to render the error-distribution figures
/// (Figs. 3, 6) as ASCII plots and to compute empirical CDF distances.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ebct::stats {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const float> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_center(std::size_t i) const;
  double bin_width() const { return (hi_ - lo_) / static_cast<double>(counts_.size()); }

  /// Normalised density of bin i (integrates to ~1 over the range).
  double density(std::size_t i) const;

  /// Fraction of in-range samples inside [a, b].
  double fraction_between(double a, double b) const;

  /// Render a vertical-bar ASCII chart `width` rows tall.
  std::string ascii(std::size_t height = 12) const;

  /// Kolmogorov–Smirnov statistic of the in-range samples vs the uniform
  /// distribution on [lo, hi] — cheap bin-level approximation.
  double ks_uniform() const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace ebct::stats
