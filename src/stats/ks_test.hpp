#pragma once

/// \file ks_test.hpp
/// Exact one-sample Kolmogorov–Smirnov test against the uniform and normal
/// reference distributions, with the asymptotic p-value approximation.
/// Complements the moment-based diagnostics in distribution.hpp with a
/// proper goodness-of-fit statistic for the Fig. 3 / Fig. 6 claims.

#include <span>

namespace ebct::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup |F_n(x) - F(x)|
  double p_value = 0.0;    ///< asymptotic Kolmogorov distribution tail
};

/// KS test of `xs` against U(lo, hi).
KsResult ks_test_uniform(std::span<const float> xs, double lo, double hi);

/// KS test of `xs` against N(mean, stddev).
KsResult ks_test_normal(std::span<const float> xs, double mean, double stddev);

/// Tail of the Kolmogorov distribution: P(sqrt(n)*D > x).
double kolmogorov_tail(double x);

}  // namespace ebct::stats
