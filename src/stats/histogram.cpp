#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ebct::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size()));
  counts_[std::min(i, counts_.size() - 1)] += 1;
}

void Histogram::add(std::span<const float> xs) {
  for (float x : xs) add(static_cast<double>(x));
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::density(std::size_t i) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[i]) / (static_cast<double>(in_range) * bin_width());
}

double Histogram::fraction_between(double a, double b) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double c = bin_center(i);
    if (c >= a && c <= b) acc += static_cast<double>(counts_[i]);
  }
  return acc / static_cast<double>(in_range);
}

std::string Histogram::ascii(std::size_t height) const {
  std::size_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t row = height; row > 0; --row) {
    const double level = static_cast<double>(row) / static_cast<double>(height);
    for (auto c : counts_) {
      out += (static_cast<double>(c) / static_cast<double>(max_count) >= level) ? '#' : ' ';
    }
    out += '\n';
  }
  out += std::string(counts_.size(), '-');
  out += '\n';
  return out;
}

double Histogram::ks_uniform() const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 1.0;
  double cdf = 0.0;
  double d = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cdf += static_cast<double>(counts_[i]) / static_cast<double>(in_range);
    const double ucdf = static_cast<double>(i + 1) / static_cast<double>(counts_.size());
    d = std::max(d, std::fabs(cdf - ucdf));
  }
  return d;
}

}  // namespace ebct::stats
