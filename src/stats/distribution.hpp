#pragma once

/// \file distribution.hpp
/// Distribution-shape diagnostics for the paper's two modelling claims:
/// (i) compression error on activations is ~U(-eb, +eb);
/// (ii) induced gradient error is ~N(0, sigma).
/// The checks are moment-based (variance, skewness, excess kurtosis, and the
/// 68.2%-within-one-sigma mass test the paper itself uses in Fig. 6).

#include <span>

namespace ebct::stats {

struct ShapeDiagnostics {
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;
  double excess_kurtosis = 0.0;  ///< 0 for normal, -1.2 for uniform
  double within_one_sigma = 0.0; ///< mass in [mean-σ, mean+σ]; ~0.682 normal, ~0.577 uniform
  double min = 0.0;
  double max = 0.0;
};

ShapeDiagnostics diagnose(std::span<const float> xs);

/// True when the sample looks uniform on [-bound, bound]:
/// bounded support, near-zero skew, kurtosis near -1.2, variance near bound²/3.
bool looks_uniform(const ShapeDiagnostics& d, double bound, double tol = 0.15);

/// True when the sample looks centred-normal: near-zero skew, kurtosis near 0,
/// and ~68.2% of mass within one sigma.
bool looks_normal(const ShapeDiagnostics& d, double tol = 0.15);

/// Theoretical stddev of U(-eb, +eb): eb / sqrt(3).
double uniform_stddev(double eb);

}  // namespace ebct::stats
