#pragma once

/// \file graph.hpp
/// Lightweight op-graph IR over the nn layer tree (modeled on the willow
/// op/tensor design): nodes with explicit producer/consumer tensor edges,
/// a topological schedule, and shape inference carried on every edge.
///
/// The IR is *descriptive*, not executable — forward/backward still run
/// through nn::Network. What the graph adds is the structural knowledge the
/// flat layer vector lacks:
///  - which produced tensor each layer consumes (edges replace the ad-hoc
///    dynamic_cast recursion the containers used to need),
///  - when each stashed activation is truly dead (liveness(), fed to the
///    ActivationPager as its eviction key),
///  - a substrate for pattern rewrites (graph/rewrite.hpp) and, per
///    ROADMAP, the future recompute and partitioning passes.
///
/// Construction: Graph::from_network() asks every layer to append its
/// node(s) via the virtual Layer::build_graph hook; containers contribute
/// their internal structure (a ResidualBlock emits its two paths plus an
/// explicit "add" join, a ConcatBranches emits per-branch chains into a
/// "concat" join). The backward execution order is captured from the
/// equally virtual Layer::backward_schedule, so liveness ranks mirror what
/// backward() actually does, not an idealised reverse topological order.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/liveness.hpp"
#include "nn/layer.hpp"
#include "tensor/shape.hpp"

namespace ebct::nn {
class Network;
}

namespace ebct::graph {

using TensorId = std::uint32_t;
using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// One edge value: a tensor produced once and consumed by zero or more
/// nodes. The graph input has no producer.
struct TensorInfo {
  std::string name;
  tensor::Shape shape;
  NodeId producer = kNoNode;
  std::vector<NodeId> consumers;
};

/// One operation. `layer` points back into the owning network for nodes
/// that mirror a real layer; join nodes synthesised by containers (the
/// residual "add") carry none.
struct Node {
  std::string name;
  std::string op;                     ///< "conv", "relu", "add", "concat", ...
  const nn::Layer* layer = nullptr;   ///< null for synthetic join nodes
  std::vector<TensorId> inputs;
  std::vector<TensorId> outputs;
  bool stashes_input = false;         ///< routes its input through the lossy store
  std::int64_t backward_pos = -1;     ///< position in backward execution order
  bool dead = false;                  ///< removed by a rewrite
};

class Graph {
 public:
  /// Register the graph input tensor. Exactly one per graph, first call.
  TensorId add_input(std::string name, const tensor::Shape& shape);

  /// Append a node producing one tensor of explicit shape.
  TensorId add_node(std::string name, std::string op, const nn::Layer* layer,
                    std::vector<TensorId> inputs, const tensor::Shape& out_shape);

  /// Builder used by Layer::build_graph: one node mirroring `layer`, output
  /// shape inferred from the layer's shape function on the first input.
  TensorId add_layer_node(const nn::Layer& layer, std::string op,
                          std::vector<TensorId> inputs);

  void set_output(TensorId t);
  TensorId output() const { return output_; }

  /// Build the IR of `net` at `input_shape` and capture the backward
  /// execution order into the nodes' backward_pos.
  static Graph from_network(const nn::Network& net, const tensor::Shape& input_shape);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<TensorInfo>& tensors() const { return tensors_; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  const TensorInfo& tensor(TensorId id) const { return tensors_.at(id); }
  std::size_t num_nodes() const;    ///< live (non-dead) nodes
  std::size_t num_tensors() const { return tensors_.size(); }

  /// Live node ids in execution order. Nodes are appended in forward
  /// order, so insertion order *is* a topological order; this validates
  /// the edge invariant (every input produced earlier) and throws
  /// std::logic_error if a rewrite broke it.
  std::vector<NodeId> topological_order() const;

  /// The node mirroring layer name `name`, or null.
  const Node* find_node(const std::string& name) const;

  /// Exact per-activation liveness for the pager: backward ranks from the
  /// captured schedule plus shared-producer groups from the edges.
  Liveness liveness() const;

  // --- mutation surface for rewrites (graph/rewrite.hpp) ---

  /// Mark `id` dead and detach it from its input tensors' consumer lists.
  /// Its produced tensors stay (unconsumed) so ids remain stable.
  void remove_node(NodeId id);

  /// Rewire every consumer of `from` to consume `to` instead (the fold
  /// rewrites' splice primitive). `from` keeps its producer but ends up
  /// consumer-less.
  void replace_tensor(TensorId from, TensorId to);

 private:
  std::vector<Node> nodes_;
  std::vector<TensorInfo> tensors_;
  TensorId output_ = 0;
  bool has_input_ = false;
};

}  // namespace ebct::graph
