#include "graph/graph.hpp"

#include <stdexcept>
#include <unordered_map>

#include "nn/network.hpp"

namespace ebct::graph {

using tensor::Shape;

TensorId Graph::add_input(std::string name, const Shape& shape) {
  if (has_input_) throw std::logic_error("Graph: input already registered");
  has_input_ = true;
  TensorInfo t;
  t.name = std::move(name);
  t.shape = shape;
  tensors_.push_back(std::move(t));
  return static_cast<TensorId>(tensors_.size() - 1);
}

TensorId Graph::add_node(std::string name, std::string op, const nn::Layer* layer,
                         std::vector<TensorId> inputs, const Shape& out_shape) {
  const NodeId nid = static_cast<NodeId>(nodes_.size());
  for (TensorId in : inputs) {
    if (in >= tensors_.size())
      throw std::logic_error("Graph: node '" + name + "' consumes unknown tensor");
    tensors_[in].consumers.push_back(nid);
  }
  Node n;
  n.name = std::move(name);
  n.op = std::move(op);
  n.layer = layer;
  n.inputs = std::move(inputs);
  n.stashes_input = layer != nullptr && layer->uses_activation_store();

  TensorInfo out;
  out.name = n.name + ".out";
  out.shape = out_shape;
  out.producer = nid;
  tensors_.push_back(std::move(out));
  const TensorId tid = static_cast<TensorId>(tensors_.size() - 1);
  n.outputs.push_back(tid);
  nodes_.push_back(std::move(n));
  output_ = tid;  // provisional; the last appended node produces the output
  return tid;
}

TensorId Graph::add_layer_node(const nn::Layer& layer, std::string op,
                               std::vector<TensorId> inputs) {
  if (inputs.empty())
    throw std::logic_error("Graph: layer node '" + layer.name() + "' needs an input");
  const Shape out = layer.output_shape(tensor(inputs.front()).shape);
  return add_node(layer.name(), std::move(op), &layer, std::move(inputs), out);
}

void Graph::set_output(TensorId t) {
  if (t >= tensors_.size()) throw std::logic_error("Graph: unknown output tensor");
  output_ = t;
}

Graph Graph::from_network(const nn::Network& net, const Shape& input_shape) {
  Graph g;
  TensorId t = g.add_input("input", input_shape);
  t = net.build_graph(g, t);
  g.set_output(t);

  // Capture the real backward replay order so liveness ranks mirror what
  // backward() does (main path before shortcut in a ResidualBlock, branches
  // reversed in a ConcatBranches) rather than an idealised reverse
  // topological order.
  std::vector<const nn::Layer*> schedule;
  net.backward_schedule(schedule);
  std::unordered_map<const nn::Layer*, std::int64_t> pos;
  for (std::size_t i = 0; i < schedule.size(); ++i)
    pos.emplace(schedule[i], static_cast<std::int64_t>(i));
  for (Node& n : g.nodes_) {
    if (n.layer == nullptr) continue;
    auto it = pos.find(n.layer);
    if (it != pos.end()) n.backward_pos = it->second;
  }
  return g;
}

std::size_t Graph::num_nodes() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (!node.dead) ++n;
  return n;
}

std::vector<NodeId> Graph::topological_order() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].dead) continue;
    for (TensorId in : nodes_[id].inputs) {
      const NodeId prod = tensors_[in].producer;
      if (prod != kNoNode && (prod >= id || nodes_[prod].dead))
        throw std::logic_error("Graph: node '" + nodes_[id].name +
                               "' consumes a tensor produced later or by a dead node");
    }
    order.push_back(id);
  }
  return order;
}

const Node* Graph::find_node(const std::string& name) const {
  for (const Node& n : nodes_)
    if (!n.dead && n.name == name) return &n;
  return nullptr;
}

Liveness Graph::liveness() const {
  Liveness lv;
  for (const Node& n : nodes_) {
    if (n.dead || n.layer == nullptr || n.backward_pos < 0) continue;
    lv.rank[n.name] = static_cast<std::uint64_t>(n.backward_pos);
  }
  // Shared-producer groups: tensors stashed (lossily) by two or more
  // consumer nodes. Each such consumer stashes a clone of the same bytes,
  // so the pager may back the group with one physical payload.
  std::uint32_t next_group = 0;
  for (const TensorInfo& t : tensors_) {
    std::vector<const Node*> stashers;
    for (NodeId c : t.consumers) {
      const Node& n = nodes_[c];
      if (!n.dead && n.stashes_input && !n.inputs.empty() &&
          &tensors_[n.inputs.front()] == &t) {
        stashers.push_back(&n);
      }
    }
    if (stashers.size() < 2) continue;
    for (const Node* n : stashers) lv.share_group[n->name] = next_group;
    ++next_group;
  }
  return lv;
}

void Graph::remove_node(NodeId id) {
  Node& n = nodes_.at(id);
  if (n.dead) return;
  n.dead = true;
  for (TensorId in : n.inputs) {
    auto& cons = tensors_[in].consumers;
    for (auto it = cons.begin(); it != cons.end();) {
      it = (*it == id) ? cons.erase(it) : it + 1;
    }
  }
}

void Graph::replace_tensor(TensorId from, TensorId to) {
  if (from == to) return;
  TensorInfo& src = tensors_.at(from);
  TensorInfo& dst = tensors_.at(to);
  for (NodeId c : src.consumers) {
    for (TensorId& in : nodes_[c].inputs)
      if (in == from) in = to;
    dst.consumers.push_back(c);
  }
  src.consumers.clear();
  if (output_ == from) output_ = to;
}

}  // namespace ebct::graph
