#include "graph/replay.hpp"

#include <cstring>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace ebct::graph {

using tensor::Shape;
using tensor::Tensor;

namespace {
bool is_join(const Node& n) { return n.op == "add" || n.op == "concat"; }
}  // namespace

ReplayEngine::ReplayEngine(const Graph& g) : graph_(&g) {
  for (const Node& n : g.nodes()) {
    if (n.dead || !n.stashes_input || n.inputs.empty()) continue;
    plans_.emplace(n.name, extract(n));
  }
}

const ReplayPlan* ReplayEngine::plan(const std::string& name) const {
  auto it = plans_.find(name);
  return it == plans_.end() ? nullptr : &it->second;
}

bool ReplayEngine::can_replay(const std::string& layer) const {
  const ReplayPlan* p = plan(layer);
  return p != nullptr && p->supported && input_.load() != nullptr;
}

double ReplayEngine::replay_flops(const std::string& layer) const {
  const ReplayPlan* p = plan(layer);
  return p == nullptr ? 0.0 : p->flops;
}

Tensor ReplayEngine::replay(const std::string& layer) const {
  const ReplayPlan* p = plan(layer);
  if (p == nullptr)
    throw std::logic_error("replay: no plan for stashing layer '" + layer + "'");
  if (!p->supported)
    throw std::logic_error("replay: plan for '" + layer +
                           "' unsupported: " + p->unsupported_reason);
  const Tensor* input = input_.load();
  if (input == nullptr)
    throw std::logic_error("replay: no graph input installed for '" + layer + "'");
  return execute(*p, *input);
}

ReplayPlan ReplayEngine::extract(const Node& node) const {
  ReplayPlan plan;
  // Conv stashes its *input* activation, so the plan re-produces inputs[0].
  plan.target = node.inputs[0];

  // Walk producers back to the graph input, collecting every ancestor node.
  std::vector<bool> in_plan(graph_->nodes().size(), false);
  std::vector<TensorId> work{plan.target};
  std::string reason;
  while (!work.empty() && reason.empty()) {
    const TensorId t = work.back();
    work.pop_back();
    const NodeId p = graph_->tensor(t).producer;
    if (p == kNoNode) continue;  // reached the graph input
    if (in_plan[p]) continue;
    in_plan[p] = true;
    const Node& n = graph_->node(p);
    if (n.dead) {
      reason = n.name + ": dead node in producing subgraph";
    } else if (is_join(n)) {
      // Executed by the engine itself (clone+axpy / channel memcpy).
    } else if (n.layer == nullptr) {
      reason = n.name + ": synthetic op '" + n.op + "' has no replay";
    } else if (!n.layer->replayable()) {
      reason = n.name + ": layer is not replayable";
    }
    for (TensorId in : n.inputs) work.push_back(in);
  }
  if (!reason.empty()) {
    plan.unsupported_reason = std::move(reason);
    return plan;
  }

  // Ascending NodeId is execution order: insertion order is topological.
  for (NodeId id = 0; id < in_plan.size(); ++id)
    if (in_plan[id]) plan.steps.push_back(id);

  for (NodeId id : plan.steps) {
    const Node& n = graph_->node(id);
    if (is_join(n))
      plan.flops += static_cast<double>(graph_->tensor(n.outputs[0]).shape.numel());
    else
      plan.flops += n.layer->replay_flops(graph_->tensor(n.inputs[0]).shape);
  }
  plan.supported = true;
  return plan;
}

Tensor ReplayEngine::execute(const ReplayPlan& plan, const Tensor& input) const {
  // All state is local: concurrent replays of different pages never touch
  // shared mutable data.
  std::unordered_map<TensorId, Tensor> values;
  std::unordered_map<TensorId, int> uses;
  for (NodeId id : plan.steps)
    for (TensorId t : graph_->node(id).inputs) ++uses[t];

  auto value_of = [&](TensorId t) -> const Tensor& {
    if (graph_->tensor(t).producer == kNoNode) return input;
    return values.at(t);
  };

  // Zero-step plan: the stashed tensor *is* the graph input (first conv).
  if (plan.steps.empty()) return input.clone();

  for (NodeId id : plan.steps) {
    const Node& n = graph_->node(id);
    Tensor out;
    if (n.op == "add") {
      // Mirror of ResidualBlock::forward's join: y += shortcut.
      out = value_of(n.inputs[0]).clone();
      tensor::axpy(1.0f, value_of(n.inputs[1]).span(), out.span());
    } else if (n.op == "concat") {
      // Mirror of ConcatBranches::forward: per-sample channel-offset copies
      // in input slot order.
      const Tensor& first = value_of(n.inputs[0]);
      std::size_t total_c = 0;
      for (TensorId t : n.inputs) total_c += value_of(t).shape().c();
      const Shape os = Shape::nchw(first.shape().n(), total_c, first.shape().h(),
                                   first.shape().w());
      out = Tensor(os);
      const std::size_t hw = os.h() * os.w();
      std::size_t c_off = 0;
      for (TensorId t : n.inputs) {
        const Tensor& y = value_of(t);
        const std::size_t c = y.shape().c();
        for (std::size_t s = 0; s < os.n(); ++s) {
          std::memcpy(out.data() + (s * os.c() + c_off) * hw, y.data() + s * c * hw,
                      c * hw * sizeof(float));
        }
        c_off += c;
      }
    } else {
      out = n.layer->replay_forward(value_of(n.inputs[0]));
    }
    // Free dead intermediates as refcounts drain (pool-size-invariant: the
    // schedule is the static step order, never a function of threads).
    for (TensorId t : n.inputs) {
      if (graph_->tensor(t).producer == kNoNode) continue;
      auto u = uses.find(t);
      if (u != uses.end() && --u->second == 0 && t != plan.target) values.erase(t);
    }
    values.emplace(n.outputs[0], std::move(out));
  }
  return std::move(values.at(plan.target));
}

}  // namespace ebct::graph
