#pragma once

/// \file executor.hpp
/// Graph-driven concurrent execution engine: turns the descriptive graph IR
/// (graph/graph.hpp) into a dependency-counted task DAG and dispatches ready
/// nodes onto the shared work-stealing pool, so data-independent branches —
/// Inception towers, a residual shortcut against its main path — run
/// concurrently in both the forward and the backward pass, overlapping with
/// the pager's codec encodes and spill I/O.
///
/// The hard part is the determinism contract (the sequential path and the
/// executor must be bitwise interchangeable at any pool size and budget),
/// and it is carried by three mechanisms:
///
///  1. **Deposit + in-order commit (forward).** Layers running inside node
///     tasks stash through the session's PagedStore as usual, but the
///     executor intercepts the call (memory::StashInterceptor): the tensor
///     is deposited into a per-node slot and a virtual handle returned,
///     without touching the pager. A lock-free committer then feeds the
///     deposits of *completed* nodes to the pager strictly in graph order,
///     so pager sequence numbers — and with them eviction keys, share-group
///     dedup and every counter — are identical to the sequential stash
///     order no matter which branch finished first. No stash ever blocks,
///     which is what makes the scheme deadlock-free under the scheduler's
///     inline execution and help-stealing.
///
///  2. **Ordered drop pump (backward).** Retrieves are replayed against the
///     pager in the exact sequential consumption order (the captured
///     backward schedule): a pump stages single-stash nodes a bounded
///     window ahead of the consumption frontier, and nodes that stash more
///     than once (LRN) drive their own drops in request order while at the
///     head. Threads whose stash is not yet due help the pool instead of
///     blocking, so the frontier always advances.
///
///  3. **Fixed-order joins.** Concurrent branches write disjoint tensors;
///     where gradients meet (residual add, branch concat) the contributions
///     are combined by the *last arriving* task in the same fixed order the
///     sequential containers use — so even the floating-point reduction
///     order is pinned.
///
/// Transient node outputs (values in flight between producer and consumer)
/// and staged retrieves live outside the pager's budget accounting: they
/// are bounded by the ready frontier / the pump window and correspond to
/// the sequential path's own live temporaries.
///
/// The executor is conservative: plan() validates every structural
/// assumption (supported ops, join shapes, single-join fan-out) and the
/// session falls back to the sequential path — same results, no overlap —
/// whenever supported() is false or EBCT_GRAPH_EXEC=0.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "memory/pager.hpp"
#include "tensor/sched.hpp"
#include "tensor/tensor.hpp"

namespace ebct::nn {
class Network;
}

namespace ebct::graph {

class GraphExecutor final : public memory::StashInterceptor {
 public:
  /// Build an execution plan for `g` over the layers of `net`, stashing
  /// through `store`. The graph must outlive the executor; `net` and
  /// `store` are the session's. Check supported() before use.
  GraphExecutor(const Graph& g, nn::Network& net, memory::PagedStore& store);
  ~GraphExecutor() override;

  GraphExecutor(const GraphExecutor&) = delete;
  GraphExecutor& operator=(const GraphExecutor&) = delete;

  /// False when the graph contains a structure the executor does not
  /// handle; the session then keeps the sequential path.
  bool supported() const { return supported_; }
  const std::string& unsupported_reason() const { return reason_; }

  /// The plan is shape-specialized (it was built from the graph's input
  /// shape); batches of any other shape take the sequential path.
  bool handles(const tensor::Shape& s) const { return supported_ && s == input_shape_; }

  /// Graph-scheduled forward: returns the network output (logits).
  tensor::Tensor forward(const tensor::Tensor& input, bool train);

  /// Graph-scheduled backward from dL/dlogits; returns dL/dinput.
  tensor::Tensor backward(const tensor::Tensor& grad_logits);

  // --- memory::StashInterceptor (called by PagedStore) ---
  bool try_stash(const std::string& layer, tensor::Tensor& act, bool exact,
                 nn::StashHandle& out) override;
  tensor::Tensor retrieve(nn::StashHandle handle, bool exact) override;
  void prepare_backward() override;

  /// Structural concurrency witness: the largest number of node tasks made
  /// runnable by a single completion event (an Inception block input
  /// completing readies every tower at once). Computed before dispatch, so
  /// it is independent of pool size and timing — the determinism-matrix
  /// test gates on it instead of flaky wall-clock ratios.
  std::size_t max_parallel_dispatch() const {
    return max_parallel_dispatch_.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind { kLeaf, kAdd, kConcat };

  /// One intercepted stash of one node, awaiting its in-order commit.
  struct Deposit {
    std::string layer;
    tensor::Tensor value;          ///< deposited payload until committed
    bool exact = false;
    nn::StashHandle real = 0;      ///< pager handle once committed
    tensor::Tensor staged_value;   ///< backward: retrieved ahead by the pump
    std::atomic<bool> staged{false};
  };

  struct NodePlan {
    Kind kind = Kind::kLeaf;
    nn::Layer* layer = nullptr;    ///< non-const twin of Node::layer (leaves)
    std::int64_t backward_pos = -1;
    /// When this node is the head of a chain feeding a gradient join: the
    /// join's index in joins_ and the slot it feeds. -1 = none.
    int join = -1;
    int join_slot = -1;
  };

  /// Gradient-accumulation point of a multi-consumer tensor: the backward
  /// twin of a residual "add" / branch "concat" node. Contributions arrive
  /// from concurrent branch tasks into per-slot cells; the last arriver
  /// combines them in the fixed sequential order.
  struct JoinSpec {
    TensorId tensor = 0;           ///< the shared input tensor
    NodeId join_node = kNoNode;    ///< the add/concat node
    bool is_add = false;           ///< add: base+axpy; concat: zero+reverse axpy
    std::vector<tensor::Tensor> contrib;  ///< one cell per join input slot
    std::atomic<std::size_t> arrived{0};
  };

  // --- planning ---
  void build_plan(nn::Network& net);
  void fail(std::string reason);

  // --- forward engine ---
  void reset_forward_state();
  void run_node_forward(std::size_t n);
  tensor::Tensor forward_kernel(std::size_t n);
  const tensor::Tensor& peek_value(TensorId t) const { return values_[t]; }
  void release_value(TensorId t);
  tensor::Tensor take_value(TensorId t);
  /// Decrement consumer fan-in counters; append newly ready nodes.
  void on_tensor_available(TensorId t, std::vector<std::size_t>& ready);
  void dispatch(const std::vector<std::size_t>& ready);
  void record_error();
  /// Join every dispatched task. Waits outside futures_mu_ (tasks push new
  /// futures under it) and loops until no task remains in flight.
  void join_dispatched();

  // --- deposit committer ---
  void maybe_commit();
  void drain_commits();

  // --- backward engine ---
  void reset_backward_state();
  void run_node_backward(std::size_t n);
  void deliver_slot(std::size_t join_node, std::size_t slot, tensor::Tensor&& g);
  void deliver_tensor(TensorId t, tensor::Tensor&& g);
  void contribute(int join, std::size_t slot, tensor::Tensor&& g);
  void dispatch_backward(NodeId producer);

  // --- drop pump ---
  /// Requires pump ownership. Returns true when it staged anything (the
  /// caller then bumps pump_gen_ to wake waiters).
  bool advance_pump();

  const Graph& graph_;
  memory::PagedStore& store_;
  bool supported_ = true;
  std::string reason_;

  std::size_t num_nodes_ = 0;
  std::vector<NodePlan> plan_;
  std::deque<JoinSpec> joins_;  ///< deque: JoinSpec holds an atomic (immovable)
  std::vector<int> join_of_;  ///< tensor id -> joins_ index, -1 = none
  TensorId input_tid_ = 0;
  TensorId output_tid_ = 0;
  tensor::Shape input_shape_;

  // Per-pass tensor values: written once by the producer task, read by
  // consumer tasks (publication ordered through the fan-in counters), freed
  // by the last consumer.
  std::vector<tensor::Tensor> values_;
  std::unique_ptr<std::atomic<int>[]> remaining_;
  std::unique_ptr<std::atomic<int>[]> fanin_;
  std::unique_ptr<std::atomic<bool>[]> completed_;
  std::atomic<std::size_t> forward_done_{0};
  bool train_ = true;

  // Deposits: per-node deque (stable addresses; Deposit is not movable)
  // appended only by the node's own task, read by the committer after the
  // node's completed flag, and by the pump in backward.
  std::vector<std::deque<Deposit>> deposits_;

  // Committer: cc_ is the next node whose deposits go to the pager;
  // advanced only by the thread holding commit_active_. dirty_ re-arms the
  // owner after it releases, closing the lost-wakeup window without a
  // mutex (a same-thread mutex try_lock from a nested, inlined node task
  // would be UB).
  std::atomic<std::size_t> cc_{0};
  std::atomic<bool> commit_active_{false};
  std::atomic<bool> dirty_{false};

  // Backward state.
  std::vector<tensor::Tensor> grads_;
  tensor::Tensor input_grad_;
  std::atomic<std::size_t> backward_done_{0};

  // Drop pump: replays pager retrieves in sequential consumption order.
  // Ownership is an atomic flag, NOT a mutex: the owner may wait on pager
  // I/O (no-help spin), and that I/O runs as a pool task — so every other
  // thread must stay free to help-execute tasks. A blocking lock here
  // deadlocks the pool (owner spins for I/O, everyone else parked on the
  // lock, nobody runs the I/O task). pump_gen_ versions observable pump
  // state so waiters re-check only when something actually changed.
  std::vector<std::size_t> pump_order_;  ///< stashing nodes by backward_pos
  std::atomic<std::size_t> pump_pos_{0};
  std::atomic<bool> pump_busy_{false};
  std::atomic<std::uint64_t> pump_gen_{0};
  std::vector<std::size_t> node_consumed_;  ///< retrieves served per node
  std::atomic<std::size_t> staged_unconsumed_{0};
  static constexpr std::size_t kPumpWindow = 4;

  // Shared error funnel + dispatched-task futures (joined at pass end).
  std::mutex error_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> error_flag_{false};
  std::mutex futures_mu_;
  std::vector<tensor::sched::Future> futures_;

  std::atomic<std::size_t> max_parallel_dispatch_{0};
};

}  // namespace ebct::graph
