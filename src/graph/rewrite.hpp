#pragma once

/// \file rewrite.hpp
/// Pattern-rewrite registry over the graph IR (the willow-style pattern
/// pass, sized to this codebase). A Pattern inspects the graph and applies
/// one class of safe transformation; the registry runs every registered
/// pattern to a fixpoint.
///
/// Rewrites are OFF by default and gated by FrameworkConfig::graph_rewrites
/// (env: EBCT_GRAPH_REWRITES=1). They mutate only the IR — execution still
/// flows through nn::Network — so today their observable effect is on the
/// derived liveness and on graph introspection; they are the seam future
/// recompute/fusion passes plug into. Both built-ins are conservative:
///
///  - dead-branch-elimination: removes nodes (transitively) whose outputs
///    nothing consumes and that do not produce the graph output;
///  - conv-bias-fold: splices a single-consumer "bias" node into its
///    producing "conv" node (a conv's own bias add expressed as a separate
///    node folds into the conv, as every inference optimiser does).

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ebct::graph {

class Pattern {
 public:
  virtual ~Pattern() = default;
  virtual std::string name() const = 0;
  /// Apply once; true when the graph changed (the registry re-runs all
  /// patterns until no pattern reports a change).
  virtual bool apply(Graph& g) const = 0;
};

/// Remove nodes whose every output tensor is unconsumed and not the graph
/// output; iterating to fixpoint erases whole dead chains/branches.
class DeadBranchElimination : public Pattern {
 public:
  std::string name() const override { return "dead-branch-elimination"; }
  bool apply(Graph& g) const override;
};

/// Fold op=="bias" nodes into their op=="conv" producer when the conv's
/// output feeds only the bias node.
class ConvBiasFold : public Pattern {
 public:
  std::string name() const override { return "conv-bias-fold"; }
  bool apply(Graph& g) const override;
};

class PatternRegistry {
 public:
  /// Process-wide registry with the built-in patterns installed.
  static PatternRegistry& instance();

  /// Install a pattern. Throws std::invalid_argument on a duplicate name.
  void register_pattern(std::unique_ptr<Pattern> p);

  std::vector<std::string> names() const;

  /// Run every pattern to a fixpoint; returns the number of applications
  /// that changed the graph.
  std::size_t apply_all(Graph& g) const;

 private:
  PatternRegistry() = default;
  std::vector<std::unique_ptr<Pattern>> patterns_;
};

}  // namespace ebct::graph
