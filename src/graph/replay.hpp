#pragma once

/// \file replay.hpp
/// Replay plans for the recompute tier: for every stashing node, the minimal
/// producing subgraph that re-derives its stashed input from the graph input.
///
/// Why the plans root at the *graph input* and not at the nearest resident
/// tensor: intermediate lossy stashes hold post-codec-roundtrip values, so
/// re-running forward from one of them would compound the codec error and
/// break the byte-identity contract. The graph input (the iteration's image
/// batch) is the only tensor guaranteed to hold original forward bytes.
/// Replaying from it is valid during backward because nothing a replay step
/// reads mutates mid-iteration: weights update only in sgd.step() after
/// backward, adaptive error bounds move between iterations, and BatchNorm's
/// running statistics are written in forward only (replay_forward recomputes
/// batch statistics locally).
///
/// A plan is "supported" when every step is either a replayable layer
/// (Layer::replayable()) or a synthetic join the engine executes itself
/// ("add" = clone + axpy, "concat" = slot-order channel memcpy — both mirror
/// the container forwards byte-for-byte). Plans through Dropout (stateful
/// RNG) are unsupported and the pager falls back to compress/spill.

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "memory/recompute.hpp"
#include "tensor/tensor.hpp"

namespace ebct::graph {

/// The producing subgraph of one stashed tensor.
struct ReplayPlan {
  bool supported = false;
  std::string unsupported_reason;  ///< set when !supported
  /// Plan nodes in ascending NodeId order. Insertion order is topological
  /// (graph.hpp invariant), so executing in this order satisfies every edge.
  std::vector<NodeId> steps;
  TensorId target = 0;     ///< the tensor the plan re-produces
  double flops = 0.0;      ///< static estimate, summed over steps
};

/// Executes replay plans against the current iteration's input tensor.
/// One engine per session/graph; replay() is const and keeps all execution
/// state in locals, so concurrent calls from pager worker tasks are safe.
class ReplayEngine : public memory::RecomputeSource {
 public:
  /// Extract a plan for every stashing node of `g`. The graph must outlive
  /// the engine.
  explicit ReplayEngine(const Graph& g);

  /// Install (or clear, with nullptr) the iteration's graph input. The
  /// tensor must stay alive and unmodified until the next set_input call;
  /// with no input installed can_replay() answers false everywhere, which
  /// disables the recompute tier without disturbing anything else.
  void set_input(const tensor::Tensor* input) { input_.store(input); }

  /// The extracted plan for stashing layer `name`, or null.
  const ReplayPlan* plan(const std::string& name) const;

  bool can_replay(const std::string& layer) const override;
  double replay_flops(const std::string& layer) const override;
  tensor::Tensor replay(const std::string& layer) const override;

 private:
  ReplayPlan extract(const Node& node) const;
  tensor::Tensor execute(const ReplayPlan& plan, const tensor::Tensor& input) const;

  const Graph* graph_;
  std::unordered_map<std::string, ReplayPlan> plans_;
  std::atomic<const tensor::Tensor*> input_{nullptr};
};

}  // namespace ebct::graph
