#include "graph/executor.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "nn/network.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace ebct::graph {

using tensor::Tensor;

namespace {

/// The node task currently executing on this thread (nesting happens when
/// the scheduler inlines one node task inside another's helping join — the
/// scope saves and restores). try_stash consults it to decide whether a
/// stash belongs to the executor or should pass through to the pager (a
/// sequential evaluate() forward has no ticket and passes through).
struct TicketTls {
  const void* owner = nullptr;
  std::size_t ticket = 0;
};
thread_local TicketTls t_ticket;

class ScopedTicket {
 public:
  ScopedTicket(const void* owner, std::size_t ticket) : saved_(t_ticket) {
    t_ticket.owner = owner;
    t_ticket.ticket = ticket;
  }
  ~ScopedTicket() { t_ticket = saved_; }

 private:
  TicketTls saved_;
};

constexpr nn::StashHandle kBit = memory::kInterceptHandleBit;
constexpr unsigned kIdxBits = 16;

nn::StashHandle make_virtual(std::size_t ticket, std::size_t idx) {
  return kBit | (static_cast<nn::StashHandle>(ticket) << kIdxBits) |
         static_cast<nn::StashHandle>(idx);
}

}  // namespace

GraphExecutor::GraphExecutor(const Graph& g, nn::Network& net, memory::PagedStore& store)
    : graph_(g), store_(store) {
  build_plan(net);
}

GraphExecutor::~GraphExecutor() {
  if (store_.interceptor() == this) store_.set_interceptor(nullptr);
}

void GraphExecutor::fail(std::string reason) {
  if (supported_) {
    supported_ = false;
    reason_ = std::move(reason);
  }
}

// ---------------------------------------------------------------------------
// Planning: validate the graph's structure and precompute everything the
// dispatch loops need (non-const layer pointers, join specs, fan-ins).
// ---------------------------------------------------------------------------

void GraphExecutor::build_plan(nn::Network& net) {
  const auto& nodes = graph_.nodes();
  const auto& tensors = graph_.tensors();
  num_nodes_ = nodes.size();
  if (num_nodes_ == 0) return fail("empty graph");

  // const Layer* (graph) -> Layer* (network): visit covers every layer in
  // the tree exactly once, containers and synthetic members included.
  std::map<const nn::Layer*, nn::Layer*> lmap;
  net.visit([&lmap](nn::Layer& l) { lmap[&l] = &l; });

  plan_.resize(num_nodes_);
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    const Node& node = nodes[n];
    NodePlan& p = plan_[n];
    p.backward_pos = node.backward_pos;
    if (node.dead) return fail("graph has rewritten (dead) nodes");
    if (node.outputs.size() != 1) return fail("node '" + node.name + "': multi-output");
    if (node.op == "add") {
      p.kind = Kind::kAdd;
      if (node.inputs.size() != 2) return fail("add node '" + node.name + "': arity");
    } else if (node.op == "concat") {
      p.kind = Kind::kConcat;
      if (node.inputs.empty()) return fail("concat node '" + node.name + "': no inputs");
    } else {
      p.kind = Kind::kLeaf;
      if (node.inputs.size() != 1)
        return fail("node '" + node.name + "': unsupported fan-in");
      auto it = node.layer ? lmap.find(node.layer) : lmap.end();
      if (it == lmap.end()) return fail("node '" + node.name + "': layer not in network");
      p.layer = it->second;
    }
  }

  // Exactly one graph input (no producer); every other tensor must be
  // consumed somewhere or be the output — an unconsumed tensor would never
  // receive a gradient and the backward dispatch would stall.
  output_tid_ = graph_.output();
  bool have_input = false;
  for (TensorId t = 0; t < tensors.size(); ++t) {
    if (tensors[t].producer == kNoNode) {
      if (have_input) return fail("multiple graph inputs");
      have_input = true;
      input_tid_ = t;
    }
    if (tensors[t].consumers.empty() && t != output_tid_)
      return fail("tensor '" + tensors[t].name + "': unconsumed");
  }
  if (!have_input) return fail("no graph input");
  input_shape_ = tensors[input_tid_].shape;

  // Multi-consumer tensors: every occurrence must chain (through
  // single-consumer tensors) into a distinct input slot of one add/concat
  // join, which is where the sequential containers accumulate the gradient.
  // Descending id order matches joins innermost-first: tensor ids follow
  // production order, so a nested split's shared tensor has a higher id
  // than the enclosing block's input — by the time the outer tensor's walk
  // crosses the nested fork, that fork's own join is known and the walk
  // can jump through it (the inner join's combined gradient flows to its
  // producer, whose chain continues toward the outer join).
  join_of_.assign(tensors.size(), -1);
  for (TensorId t = static_cast<TensorId>(tensors.size()); t-- > 0;) {
    const auto& consumers = tensors[t].consumers;
    if (consumers.size() <= 1) continue;

    const int jidx = static_cast<int>(joins_.size());
    JoinSpec& spec = joins_.emplace_back();
    spec.tensor = t;
    std::vector<bool> claimed;
    auto claim_slot = [&](NodeId j, TensorId via) -> int {
      const Node& jn = nodes[j];
      if (spec.join_node == kNoNode) {
        if (jn.op != "add" && jn.op != "concat") return -1;
        spec.join_node = j;
        spec.is_add = jn.op == "add";
        claimed.assign(jn.inputs.size(), false);
      } else if (spec.join_node != j) {
        return -1;  // occurrences split across two joins: unsupported
      }
      for (std::size_t s = 0; s < jn.inputs.size(); ++s) {
        if (!claimed[s] && jn.inputs[s] == via) {
          claimed[s] = true;
          return static_cast<int>(s);
        }
      }
      return -1;
    };

    for (NodeId c : consumers) {
      // Direct consumption by the join itself (empty shortcut / branch).
      const Node& cn = nodes[c];
      const bool c_is_join = cn.op == "add" || cn.op == "concat";
      if (c_is_join) {
        if (claim_slot(c, t) < 0)
          return fail("tensor '" + tensors[t].name + "': unsupported join fan-out");
        continue;
      }
      // Chain head: walk down through single-consumer tensors to the join.
      NodeId cur = c;
      TensorId u = nodes[cur].outputs[0];
      for (;;) {
        if (tensors[u].consumers.size() != 1) {
          // The chain re-forks into a nested split; continue from that
          // split's own join, whose output resumes the single chain.
          const int ju = join_of_[u];
          if (ju < 0)
            return fail("tensor '" + tensors[t].name + "': unmatched branch re-fork");
          u = nodes[joins_[static_cast<std::size_t>(ju)].join_node].outputs[0];
          continue;
        }
        const NodeId next = tensors[u].consumers[0];
        const Node& nn_ = nodes[next];
        if (nn_.op == "add" || nn_.op == "concat") {
          const int slot = claim_slot(next, u);
          if (slot < 0)
            return fail("tensor '" + tensors[t].name + "': unsupported join fan-out");
          plan_[c].join = jidx;
          plan_[c].join_slot = slot;
          break;
        }
        cur = next;
        u = nodes[cur].outputs[0];
      }
    }
    if (spec.join_node == kNoNode ||
        std::find(claimed.begin(), claimed.end(), false) != claimed.end())
      return fail("tensor '" + tensors[t].name + "': join slots unaccounted");
    if (nodes[spec.join_node].inputs.size() != consumers.size())
      return fail("tensor '" + tensors[t].name + "': join arity mismatch");
    spec.contrib.resize(nodes[spec.join_node].inputs.size());
    join_of_[t] = jidx;
  }

  values_.resize(tensors.size());
  grads_.resize(tensors.size());
  remaining_ = std::make_unique<std::atomic<int>[]>(tensors.size());
  fanin_ = std::make_unique<std::atomic<int>[]>(num_nodes_);
  completed_ = std::make_unique<std::atomic<bool>[]>(num_nodes_);
  deposits_.resize(num_nodes_);
  node_consumed_.resize(num_nodes_, 0);
}

// ---------------------------------------------------------------------------
// Forward.
// ---------------------------------------------------------------------------

void GraphExecutor::reset_forward_state() {
  const auto& tensors = graph_.tensors();
  for (TensorId t = 0; t < tensors.size(); ++t) {
    values_[t] = Tensor();
    remaining_[t].store(static_cast<int>(tensors[t].consumers.size()),
                        std::memory_order_relaxed);
  }
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    fanin_[n].store(static_cast<int>(graph_.node(static_cast<NodeId>(n)).inputs.size()),
                    std::memory_order_relaxed);
    completed_[n].store(false, std::memory_order_relaxed);
    deposits_[n].clear();
  }
  forward_done_.store(0, std::memory_order_relaxed);
  cc_.store(0, std::memory_order_relaxed);
  commit_active_.store(false, std::memory_order_relaxed);
  dirty_.store(false, std::memory_order_relaxed);
  error_flag_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  futures_.clear();
}

void GraphExecutor::release_value(TensorId t) {
  if (remaining_[t].fetch_sub(1, std::memory_order_acq_rel) == 1) values_[t] = Tensor();
}

Tensor GraphExecutor::take_value(TensorId t) {
  // Sole remaining consumer: steal the buffer. Otherwise clone — a racing
  // co-consumer may still be reading, and the last release frees it.
  if (remaining_[t].load(std::memory_order_acquire) == 1) {
    Tensor out = std::move(values_[t]);
    remaining_[t].store(0, std::memory_order_release);
    return out;
  }
  Tensor out = values_[t].clone();
  release_value(t);
  return out;
}

void GraphExecutor::on_tensor_available(TensorId t, std::vector<std::size_t>& ready) {
  for (NodeId c : graph_.tensor(t).consumers) {
    if (fanin_[c].fetch_sub(1, std::memory_order_acq_rel) == 1)
      ready.push_back(static_cast<std::size_t>(c));
  }
}

void GraphExecutor::record_error() {
  std::lock_guard<std::mutex> lk(error_mu_);
  if (!first_error_) first_error_ = std::current_exception();
  error_flag_.store(true, std::memory_order_release);
}

void GraphExecutor::dispatch(const std::vector<std::size_t>& ready) {
  if (error_flag_.load(std::memory_order_acquire)) return;
  for (std::size_t n : ready) {
    auto fut = tensor::sched::async([this, n] { run_node_forward(n); });
    std::lock_guard<std::mutex> lk(futures_mu_);
    futures_.push_back(std::move(fut));
  }
}

void GraphExecutor::join_dispatched() {
  // Never wait while holding futures_mu_: a task can still be inside
  // dispatch()/dispatch_backward() parking its children's futures when the
  // driver reaches this join (the done counters and the error flag are both
  // observable before dispatch returns), and wait() help-executes queued
  // tasks, which could re-enter dispatch on this very thread. Swap the
  // vector out, wait outside the lock, and loop — a joined batch may have
  // pushed a new generation of futures while we waited. Task bodies catch
  // their own exceptions, so wait() never throws here.
  for (;;) {
    std::vector<tensor::sched::Future> batch;
    {
      std::lock_guard<std::mutex> lk(futures_mu_);
      if (futures_.empty()) return;
      batch.swap(futures_);
    }
    for (auto& f : batch) f.wait();
  }
}

Tensor GraphExecutor::forward_kernel(std::size_t n) {
  const Node& node = graph_.node(static_cast<NodeId>(n));
  const NodePlan& p = plan_[n];
  switch (p.kind) {
    case Kind::kLeaf: {
      Tensor out = p.layer->forward(peek_value(node.inputs[0]), train_);
      release_value(node.inputs[0]);
      return out;
    }
    case Kind::kAdd: {
      // Mirrors ResidualBlock::forward: main-path output += shortcut.
      Tensor out = take_value(node.inputs[0]);
      tensor::axpy(1.0f, peek_value(node.inputs[1]).span(), out.span());
      release_value(node.inputs[1]);
      return out;
    }
    case Kind::kConcat: {
      // Mirrors ConcatBranches::forward's channel merge (pure memcpy, so
      // doing it here instead of in the layer is byte-identical).
      const tensor::Shape& os = graph_.tensor(node.outputs[0]).shape;
      Tensor out(os);
      const std::size_t bn = os.n(), hw = os.h() * os.w();
      std::size_t c_off = 0;
      for (TensorId in : node.inputs) {
        const Tensor& y = peek_value(in);
        const std::size_t c = y.shape().c();
        for (std::size_t s = 0; s < bn; ++s) {
          std::memcpy(out.data() + (s * os.c() + c_off) * hw, y.data() + s * c * hw,
                      c * hw * sizeof(float));
        }
        c_off += c;
        release_value(in);
      }
      return out;
    }
  }
  throw std::logic_error("GraphExecutor: unreachable kind");
}

void GraphExecutor::run_node_forward(std::size_t n) {
  obs::trace::Span span("exec.node_fwd", obs::trace::Cat::kExec);
  const Node& node = graph_.node(static_cast<NodeId>(n));
  try {
    ScopedTicket ticket(this, n);
    Tensor out = forward_kernel(n);
    values_[node.outputs[0]] = std::move(out);
  } catch (...) {
    record_error();
  }
  completed_[n].store(true, std::memory_order_release);
  maybe_commit();
  if (!error_flag_.load(std::memory_order_acquire)) {
    std::vector<std::size_t> ready;
    on_tensor_available(node.outputs[0], ready);
    // The burst size is decided by graph structure alone (how many consumers
    // this completion unblocked), so the metric is pool-size independent.
    std::size_t prev = max_parallel_dispatch_.load(std::memory_order_relaxed);
    while (ready.size() > prev &&
           !max_parallel_dispatch_.compare_exchange_weak(prev, ready.size(),
                                                         std::memory_order_relaxed)) {
    }
    dispatch(ready);
  }
  // Counted last, after dispatch (mirroring backward_done_): the driver's
  // completion predicate must not fire while this task still has children
  // to park under futures_mu_.
  forward_done_.fetch_add(1, std::memory_order_acq_rel);
}

Tensor GraphExecutor::forward(const Tensor& input, bool train) {
  if (!supported_) throw std::logic_error("GraphExecutor::forward: unsupported plan");
  reset_forward_state();
  train_ = train;

  values_[input_tid_] = input.clone();
  std::vector<std::size_t> ready;
  on_tensor_available(input_tid_, ready);
  std::size_t prev = max_parallel_dispatch_.load(std::memory_order_relaxed);
  while (ready.size() > prev &&
         !max_parallel_dispatch_.compare_exchange_weak(prev, ready.size(),
                                                       std::memory_order_relaxed)) {
  }
  dispatch(ready);

  {
    obs::trace::Span span("exec.join_fwd", obs::trace::Cat::kExec);
    tensor::sched::help_while([this] {
      return forward_done_.load(std::memory_order_acquire) == num_nodes_ ||
             error_flag_.load(std::memory_order_acquire);
    });
    // Join every dispatched task before touching shared state.
    join_dispatched();
  }
  if (error_flag_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(error_mu_);
    std::rethrow_exception(first_error_);
  }

  // Flush: every node has completed, so one commit pass drains all
  // remaining deposits to the pager in graph order. If another thread
  // holds the committer, help until it finishes the job.
  maybe_commit();
  tensor::sched::help_while(
      [this] { return cc_.load(std::memory_order_acquire) == num_nodes_; });

  return std::move(values_[output_tid_]);
}

// ---------------------------------------------------------------------------
// Deposit committer: the only code that talks to the pager during forward,
// strictly in graph (== sequential stash) order.
// ---------------------------------------------------------------------------

bool GraphExecutor::try_stash(const std::string& layer, Tensor& act, bool exact,
                              nn::StashHandle& out) {
  if (t_ticket.owner != this) return false;
  const std::size_t ticket = t_ticket.ticket;
  auto& deps = deposits_[ticket];
  auto& d = deps.emplace_back();
  d.layer = layer;
  d.value = std::move(act);
  d.exact = exact;
  out = make_virtual(ticket, deps.size() - 1);
  return true;
}

void GraphExecutor::drain_commits() {
  std::size_t c = cc_.load(std::memory_order_relaxed);
  while (c < num_nodes_ && completed_[c].load(std::memory_order_acquire)) {
    for (auto& d : deposits_[c]) {
      d.real = store_.commit_stash(d.layer, std::move(d.value), d.exact);
    }
    ++c;
    cc_.store(c, std::memory_order_release);
  }
}

void GraphExecutor::maybe_commit() {
  // Single-owner protocol without a mutex: whoever wins commit_active_
  // drains; everyone else just marks dirty_ and leaves. The owner re-checks
  // dirty_ after releasing ownership so a mark posted mid-drain is never
  // lost — some thread always comes back for it.
  dirty_.store(true, std::memory_order_release);
  while (dirty_.load(std::memory_order_acquire)) {
    if (commit_active_.exchange(true, std::memory_order_acquire)) return;
    {
      obs::trace::Span span("exec.commit", obs::trace::Cat::kExec);
      while (dirty_.exchange(false, std::memory_order_acq_rel)) drain_commits();
    }
    commit_active_.store(false, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Backward.
// ---------------------------------------------------------------------------

void GraphExecutor::reset_backward_state() {
  for (auto& g : grads_) g = Tensor();
  for (auto& j : joins_) {
    for (auto& c : j.contrib) c = Tensor();
    j.arrived.store(0, std::memory_order_relaxed);
  }
  input_grad_ = Tensor();
  backward_done_.store(0, std::memory_order_relaxed);
  error_flag_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  futures_.clear();
}

void GraphExecutor::prepare_backward() {
  // Called (through PagedStore) right before retrieves start replaying.
  // Build the pump order: stash-holding nodes by sequential backward
  // position. Sequential evaluate() passes leave no deposits and the order
  // is empty — every retrieve then carries a real pager handle anyway.
  // Single-threaded here (the driver calls it between passes).
  pump_order_.clear();
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    if (!deposits_[n].empty()) pump_order_.push_back(n);
  }
  std::sort(pump_order_.begin(), pump_order_.end(), [this](std::size_t a, std::size_t b) {
    return plan_[a].backward_pos < plan_[b].backward_pos;
  });
  pump_pos_.store(0, std::memory_order_relaxed);
  pump_busy_.store(false, std::memory_order_relaxed);
  staged_unconsumed_.store(0, std::memory_order_relaxed);
  std::fill(node_consumed_.begin(), node_consumed_.end(), 0);
  pump_gen_.fetch_add(1, std::memory_order_release);
}

bool GraphExecutor::advance_pump() {
  // Stage single-stash nodes up to kPumpWindow ahead of the consumption
  // frontier: the drop sequence stays exactly the sequential one (that is
  // what keeps the pager counters bitwise identical), but the decode/disk
  // read for upcoming layers happens while other threads run gradient
  // kernels. Multi-stash nodes (LRN) stop the pump; their own retrieves
  // drive the drops in request order from the head.
  bool staged_any = false;
  while (true) {
    if (error_flag_.load(std::memory_order_acquire)) return staged_any;
    const std::size_t pos = pump_pos_.load(std::memory_order_relaxed);
    if (pos >= pump_order_.size() ||
        staged_unconsumed_.load(std::memory_order_relaxed) >= kPumpWindow)
      return staged_any;
    const std::size_t n = pump_order_[pos];
    auto& deps = deposits_[n];
    if (deps.size() != 1) return staged_any;
    Deposit& d = deps[0];
    {
      // The pager wait inside must not inline-execute another node task:
      // it could re-enter retrieve and try to take pump ownership this
      // thread already holds. Other threads run the I/O tasks instead.
      obs::trace::Span span("exec.pump_stage", obs::trace::Cat::kExec);
      memory::ScopedPagerNoHelp no_help;
      d.staged_value = store_.direct_retrieve(d.real);
    }
    staged_unconsumed_.fetch_add(1, std::memory_order_relaxed);
    d.staged.store(true, std::memory_order_release);
    pump_pos_.store(pos + 1, std::memory_order_release);
    staged_any = true;
  }
}

Tensor GraphExecutor::retrieve(nn::StashHandle handle, bool exact) {
  (void)exact;
  const std::size_t ticket = static_cast<std::size_t>((handle & ~kBit) >> kIdxBits);
  const std::size_t idx = static_cast<std::size_t>(handle & ((1u << kIdxBits) - 1));
  Deposit& d = deposits_[ticket][idx];

  for (;;) {
    if (error_flag_.load(std::memory_order_acquire)) {
      // Another task already failed: the pump frontier may never reach our
      // ticket (the failed node's slots stay unconsumed), so waiting would
      // hang backward()'s future join. Abort; the caller's task wrapper
      // records this as a secondary error and first_error_ wins.
      throw std::runtime_error("GraphExecutor::retrieve: aborted after prior error");
    }
    if (d.staged.load(std::memory_order_acquire)) {
      // Only this node's own task consumes its deposit, so the take needs
      // no ownership; freeing a window slot wakes the pump owner (or the
      // next waiter, who re-acquires and advances).
      Tensor out = std::move(d.staged_value);
      d.staged.store(false, std::memory_order_relaxed);
      staged_unconsumed_.fetch_sub(1, std::memory_order_acq_rel);
      pump_gen_.fetch_add(1, std::memory_order_release);
      return out;
    }
    if (!pump_busy_.exchange(true, std::memory_order_acquire)) try {
      if (d.staged.load(std::memory_order_acquire)) {  // staged while racing
        pump_busy_.store(false, std::memory_order_release);
        continue;
      }
      const std::size_t pos = pump_pos_.load(std::memory_order_relaxed);
      bool changed = false;
      if (pos < pump_order_.size() && pump_order_[pos] == ticket) {
        // Our node is the consumption head: issue the drop ourselves, in
        // request order (this is how multi-stash layers like LRN keep
        // their scale-then-input LIFO, and how a window-stalled head
        // proceeds).
        Tensor out;
        {
          obs::trace::Span span("exec.retrieve", obs::trace::Cat::kExec);
          memory::ScopedPagerNoHelp no_help;
          out = store_.direct_retrieve(d.real);
        }
        if (++node_consumed_[ticket] == deposits_[ticket].size()) {
          pump_pos_.store(pos + 1, std::memory_order_release);
          advance_pump();
          changed = true;
        }
        pump_busy_.store(false, std::memory_order_release);
        if (changed) pump_gen_.fetch_add(1, std::memory_order_release);
        return out;
      }
      // Not our turn: drive the pump toward our ticket ourselves, staging
      // every intervening single-stash deposit (drop order is still
      // exactly the pump order). This is a correctness requirement, not
      // just overlap: our thread may be the suspended consumer of an
      // earlier pump slot (a help-stolen later task is running above a
      // suspended earlier retrieve on this very stack), so waiting for
      // that slot's owner would wait on ourselves. The kPumpWindow bound
      // does not apply to the drive — a stalled drive is a deadlock, and
      // the staged copies are bounded by the helper-nesting depth.
      // Multi-stash nodes stop the drive: only their own task knows its
      // retrieve request order, and such a task, once at the head, always
      // completes without suspending (each of its retrieves is served
      // directly).
      while (true) {
        if (error_flag_.load(std::memory_order_acquire)) break;
        const std::size_t p = pump_pos_.load(std::memory_order_relaxed);
        if (p >= pump_order_.size() || pump_order_[p] == ticket) break;
        const std::size_t hn = pump_order_[p];
        auto& hd = deposits_[hn];
        if (hd.size() != 1) break;
        Deposit& h = hd[0];
        {
          obs::trace::Span span("exec.pump_stage", obs::trace::Cat::kExec);
          memory::ScopedPagerNoHelp no_help;
          h.staged_value = store_.direct_retrieve(h.real);
        }
        staged_unconsumed_.fetch_add(1, std::memory_order_relaxed);
        h.staged.store(true, std::memory_order_release);
        pump_pos_.store(p + 1, std::memory_order_release);
        changed = true;
      }
      pump_busy_.store(false, std::memory_order_release);
      if (changed) {
        // Bump the generation only when something actually changed — an
        // unconditional bump would wake every waiter into a fruitless
        // re-acquire loop in which nobody executes tasks (livelock).
        pump_gen_.fetch_add(1, std::memory_order_release);
        continue;
      }
    } catch (...) {
      // A pager retrieve threw with ownership held (I/O error, or a
      // rethrown write-behind spill failure). Release ownership and wake
      // waiters so they can observe error_flag_ — set by our caller's
      // record_error — instead of spinning on a frozen frontier.
      pump_busy_.store(false, std::memory_order_release);
      pump_gen_.fetch_add(1, std::memory_order_release);
      throw;
    }
    // Help the pool until the pump state moves: running queued node tasks
    // is exactly what advances the frontier toward our turn. The head check
    // in the predicate closes the window where the frontier reached us
    // after our ownership attempt but before the generation read. The error
    // flag must wake us too: a failed task never consumes its pump slots,
    // so on error the frontier freezes and only the abort path exits.
    const std::uint64_t gen = pump_gen_.load(std::memory_order_acquire);
    obs::trace::Span wait_span("exec.pump_wait", obs::trace::Cat::kExec);
    tensor::sched::help_while([this, &d, ticket, gen] {
      if (error_flag_.load(std::memory_order_acquire)) return true;
      if (d.staged.load(std::memory_order_acquire)) return true;
      if (pump_gen_.load(std::memory_order_acquire) != gen) return true;
      const std::size_t p = pump_pos_.load(std::memory_order_acquire);
      return p < pump_order_.size() && pump_order_[p] == ticket &&
             !pump_busy_.load(std::memory_order_acquire);
    });
  }
}

void GraphExecutor::dispatch_backward(NodeId producer) {
  if (error_flag_.load(std::memory_order_acquire)) return;
  auto fut = tensor::sched::async(
      [this, producer] { run_node_backward(static_cast<std::size_t>(producer)); });
  std::lock_guard<std::mutex> lk(futures_mu_);
  futures_.push_back(std::move(fut));
}

void GraphExecutor::deliver_tensor(TensorId t, Tensor&& g) {
  const TensorInfo& info = graph_.tensor(t);
  if (info.producer == kNoNode) {
    input_grad_ = std::move(g);
    return;
  }
  grads_[t] = std::move(g);
  dispatch_backward(info.producer);
}

void GraphExecutor::contribute(int join, std::size_t slot, Tensor&& g) {
  JoinSpec& j = joins_[static_cast<std::size_t>(join)];
  j.contrib[slot] = std::move(g);
  const std::size_t slots = j.contrib.size();
  if (j.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 != slots) return;
  // Last arriver combines, in the exact sequential order:
  //  - residual add: main-path grad is the base, shortcut grad axpy'd in
  //    (ResidualBlock::backward's g_main += g_sc);
  //  - concat: zero-init, branches accumulated in reverse branch order
  //    (ConcatBranches::backward's reverse loop into grad_input).
  Tensor combined;
  if (j.is_add) {
    combined = std::move(j.contrib[0]);
    for (std::size_t s = 1; s < slots; ++s) {
      tensor::axpy(1.0f, j.contrib[s].span(), combined.span());
      j.contrib[s] = Tensor();
    }
  } else {
    combined = Tensor(graph_.tensor(j.tensor).shape, 0.0f);
    for (std::size_t s = slots; s > 0; --s) {
      tensor::axpy(1.0f, j.contrib[s - 1].span(), combined.span());
      j.contrib[s - 1] = Tensor();
    }
  }
  deliver_tensor(j.tensor, std::move(combined));
}

void GraphExecutor::deliver_slot(std::size_t join_node, std::size_t slot, Tensor&& g) {
  const Node& jn = graph_.node(static_cast<NodeId>(join_node));
  const TensorId u = jn.inputs[slot];
  const int j = join_of_[u];
  if (j >= 0 && joins_[static_cast<std::size_t>(j)].join_node ==
                    static_cast<NodeId>(join_node)) {
    contribute(j, slot, std::move(g));  // the join consumes the shared tensor directly
    return;
  }
  deliver_tensor(u, std::move(g));
}

void GraphExecutor::run_node_backward(std::size_t n) {
  obs::trace::Span span("exec.node_bwd", obs::trace::Cat::kExec);
  const Node& node = graph_.node(static_cast<NodeId>(n));
  const NodePlan& p = plan_[n];
  try {
    Tensor g = std::move(grads_[node.outputs[0]]);
    switch (p.kind) {
      case Kind::kLeaf: {
        Tensor gin = p.layer->backward(g);
        if (p.join >= 0) {
          contribute(p.join, static_cast<std::size_t>(p.join_slot), std::move(gin));
        } else {
          deliver_tensor(node.inputs[0], std::move(gin));
        }
        break;
      }
      case Kind::kAdd: {
        // The add distributes the gradient to both paths unchanged; clone
        // for the main path, move to the shortcut — exactly the sequential
        // g_main = g.clone() / g_sc = move(g).
        Tensor g_main = g.clone();
        deliver_slot(n, 0, std::move(g_main));
        deliver_slot(n, 1, std::move(g));
        break;
      }
      case Kind::kConcat: {
        // Slice first (as the sequential path does), then hand the slices
        // to their branches in reverse branch order so a one-thread pool's
        // inline task execution replays the sequential backward schedule.
        const tensor::Shape& os = g.shape();
        const std::size_t bn = os.n(), hw = os.h() * os.w();
        std::vector<Tensor> slices(node.inputs.size());
        std::size_t c_off = 0;
        for (std::size_t b = 0; b < node.inputs.size(); ++b) {
          const std::size_t c = graph_.tensor(node.inputs[b]).shape.c();
          Tensor slice(tensor::Shape::nchw(bn, c, os.h(), os.w()));
          for (std::size_t s = 0; s < bn; ++s) {
            std::memcpy(slice.data() + s * c * hw,
                        g.data() + (s * os.c() + c_off) * hw, c * hw * sizeof(float));
          }
          slices[b] = std::move(slice);
          c_off += c;
        }
        for (std::size_t b = node.inputs.size(); b > 0; --b) {
          deliver_slot(n, b - 1, std::move(slices[b - 1]));
        }
        break;
      }
    }
  } catch (...) {
    record_error();
  }
  backward_done_.fetch_add(1, std::memory_order_acq_rel);
}

Tensor GraphExecutor::backward(const Tensor& grad_logits) {
  if (!supported_) throw std::logic_error("GraphExecutor::backward: unsupported plan");
  reset_backward_state();

  grads_[output_tid_] = grad_logits.clone();
  dispatch_backward(graph_.tensor(output_tid_).producer);

  {
    obs::trace::Span span("exec.join_bwd", obs::trace::Cat::kExec);
    tensor::sched::help_while([this] {
      return backward_done_.load(std::memory_order_acquire) == num_nodes_ ||
             error_flag_.load(std::memory_order_acquire);
    });
    join_dispatched();
  }
  if (error_flag_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(error_mu_);
    std::rethrow_exception(first_error_);
  }
  return std::move(input_grad_);
}

}  // namespace ebct::graph
