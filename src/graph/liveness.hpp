#pragma once

/// \file liveness.hpp
/// Exact last-use liveness derived from the graph IR, in the form the
/// ActivationPager consumes (memory/pager.hpp). Two maps, both keyed by
/// layer name (the key the pager already receives with every put):
///
///  - rank: the layer's position in the *actual backward execution order*
///    (0 = its stash is consumed first). The pager combines rank with the
///    put sequence into its eviction/prefetch key, so a page's "next use"
///    is the real backward step that retrieves it — true furthest-next-use
///    instead of the put-order heuristic. Containers contribute their real
///    replay order (ResidualBlock runs its main path before its shortcut,
///    which put-order mispredicts).
///
///  - share_group: layers whose lossily-stashed input is the *same produced
///    tensor* (e.g. the branch-head convolutions of an Inception block all
///    stash a clone of the block input). Members of one group carry the
///    same id; the pager may back their pages with one physical payload
///    when the codec certifies the encoding is identical across the group
///    (ActivationCodec::encoding_layer_invariant).
///
/// A default-constructed (empty) Liveness attached to a pager is
/// indistinguishable from no liveness at all: every page ranks 0 and the
/// key degenerates to put order.

#include <cstdint>
#include <map>
#include <string>

namespace ebct::graph {

struct Liveness {
  /// Backward consumption rank per layer name; lower = consumed sooner.
  std::map<std::string, std::uint64_t> rank;

  /// Shared-producer groups over lossy-stashing layers; layers absent from
  /// the map stash a tensor nothing else stashes.
  std::map<std::string, std::uint32_t> share_group;

  bool empty() const { return rank.empty() && share_group.empty(); }
};

}  // namespace ebct::graph
