#include "graph/rewrite.hpp"

#include <stdexcept>

namespace ebct::graph {

bool DeadBranchElimination::apply(Graph& g) const {
  bool changed = false;
  const auto& nodes = g.nodes();
  // Walk back-to-front so a chain dies in one application.
  for (NodeId id = static_cast<NodeId>(nodes.size()); id-- > 0;) {
    const Node& n = nodes[id];
    if (n.dead) continue;
    bool consumed = false;
    for (TensorId out : n.outputs) {
      if (out == g.output() || !g.tensor(out).consumers.empty()) {
        consumed = true;
        break;
      }
    }
    if (consumed) continue;
    g.remove_node(id);
    changed = true;
  }
  return changed;
}

bool ConvBiasFold::apply(Graph& g) const {
  bool changed = false;
  const auto& nodes = g.nodes();
  for (NodeId id = 0; id < nodes.size(); ++id) {
    const Node& bias = nodes[id];
    if (bias.dead || bias.op != "bias" || bias.inputs.size() != 1) continue;
    const TensorId in = bias.inputs.front();
    const TensorInfo& t = g.tensor(in);
    if (t.producer == kNoNode) continue;
    const Node& conv = g.node(t.producer);
    if (conv.dead || conv.op != "conv") continue;
    if (t.consumers.size() != 1) continue;  // conv output also used elsewhere
    // Splice: consumers of the bias output read the conv output directly.
    const TensorId bias_out = bias.outputs.front();
    g.remove_node(id);
    g.replace_tensor(bias_out, in);
    changed = true;
  }
  return changed;
}

PatternRegistry& PatternRegistry::instance() {
  static PatternRegistry reg = [] {
    PatternRegistry r;
    r.register_pattern(std::make_unique<DeadBranchElimination>());
    r.register_pattern(std::make_unique<ConvBiasFold>());
    return r;
  }();
  return reg;
}

void PatternRegistry::register_pattern(std::unique_ptr<Pattern> p) {
  if (!p) throw std::invalid_argument("PatternRegistry: null pattern");
  for (const auto& existing : patterns_) {
    if (existing->name() == p->name())
      throw std::invalid_argument("PatternRegistry: duplicate pattern '" + p->name() + "'");
  }
  patterns_.push_back(std::move(p));
}

std::vector<std::string> PatternRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(patterns_.size());
  for (const auto& p : patterns_) out.push_back(p->name());
  return out;
}

std::size_t PatternRegistry::apply_all(Graph& g) const {
  std::size_t applied = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& p : patterns_) {
      if (p->apply(g)) {
        ++applied;
        changed = true;
      }
    }
  }
  return applied;
}

}  // namespace ebct::graph
