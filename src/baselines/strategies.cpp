#include "baselines/strategies.hpp"

namespace ebct::baselines {

std::vector<StrategyOutcome> compare_strategies(nn::Network& net, std::size_t input_hw,
                                                const memory::DeviceModel& device,
                                                double framework_ratio,
                                                double framework_overhead,
                                                double baseline_step_seconds,
                                                double lossless_ratio,
                                                double jpegact_ratio) {
  const memory::MemoryBreakdown b = memory::analyze(net, input_hw, 32);
  std::vector<StrategyOutcome> out;

  auto add_ratio_strategy = [&](const std::string& name, double ratio, double overhead) {
    StrategyOutcome s;
    s.name = name;
    s.peak_bytes = b.peak_bytes(ratio);
    s.max_batch = memory::max_batch(net, input_hw, device, ratio);
    s.overhead_fraction = overhead;
    s.memory_reduction = ratio;
    out.push_back(std::move(s));
  };

  add_ratio_strategy("baseline (raw)", 1.0, 0.0);
  add_ratio_strategy("lossless", lossless_ratio, 0.05);
  add_ratio_strategy("JPEG-ACT", jpegact_ratio, 0.08);
  add_ratio_strategy("EBCT (this work)", framework_ratio, framework_overhead);

  {
    // Migration: all activations fit (stash -> host) but pay transfer time.
    const MigrationModel mig = MigrationModel::pcie3();
    StrategyOutcome s;
    s.name = "migration (PCIe3)";
    s.peak_bytes = b.weight_bytes + b.optimizer_state_bytes + b.workspace_bytes;
    s.max_batch = memory::max_batch(net, input_hw, device, 1e9);
    s.overhead_fraction =
        baseline_step_seconds > 0.0
            ? mig.transfer_seconds(b.stashed_activation_bytes) / baseline_step_seconds
            : 0.0;
    s.memory_reduction = 1e9;
    out.push_back(std::move(s));
  }
  {
    const RecomputeModel rec;
    StrategyOutcome s;
    s.name = "recompute (cheap layers)";
    const double ratio = 1.0 / (1.0 - rec.cheap_layer_fraction);
    s.peak_bytes = b.peak_bytes(ratio);
    s.max_batch = memory::max_batch(net, input_hw, device, ratio);
    s.overhead_fraction = rec.forward_overhead_fraction;
    s.memory_reduction = ratio;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ebct::baselines
