#include "baselines/jpegact.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/codec_registry.hpp"
#include "sz/bitstream.hpp"
#include "sz/huffman.hpp"
#include "tensor/ops.hpp"

namespace ebct::baselines {

using nn::EncodedActivation;
using tensor::Tensor;

namespace {

// Standard JPEG luminance quantization table (Annex K).
constexpr int kBaseQ[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

// Zigzag order of an 8x8 block.
constexpr int kZigzag[64] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

constexpr double kPi = 3.14159265358979323846;

void dct8x8(const float in[64], float out[64]) {
  // Separable 2-D DCT-II (orthonormal).
  float tmp[64];
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y)
        acc += in[x * 8 + y] * std::cos((2 * y + 1) * u * kPi / 16.0);
      tmp[x * 8 + u] = static_cast<float>(acc * (u == 0 ? std::sqrt(1.0 / 8.0)
                                                        : std::sqrt(2.0 / 8.0)));
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x)
        acc += tmp[x * 8 + v] * std::cos((2 * x + 1) * u * kPi / 16.0);
      out[u * 8 + v] = static_cast<float>(acc * (u == 0 ? std::sqrt(1.0 / 8.0)
                                                        : std::sqrt(2.0 / 8.0)));
    }
  }
}

void idct8x8(const float in[64], float out[64]) {
  float tmp[64];
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u)
        acc += in[u * 8 + v] * (u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0)) *
               std::cos((2 * x + 1) * u * kPi / 16.0);
      tmp[x * 8 + v] = static_cast<float>(acc);
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v)
        acc += tmp[x * 8 + v] * (v == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0)) *
               std::cos((2 * y + 1) * v * kPi / 16.0);
      out[x * 8 + y] = static_cast<float>(acc);
    }
  }
}

constexpr std::uint32_t kRadius = 4096;  // coefficient symbol offset
constexpr std::uint32_t kAlphabet = 2 * kRadius;

}  // namespace

JpegActCodec::JpegActCodec(int quality) : quality_(std::clamp(quality, 1, 100)) {
  // libjpeg quality-to-scale mapping.
  const int scale = quality_ < 50 ? 5000 / quality_ : 200 - 2 * quality_;
  for (int i = 0; i < 64; ++i) {
    qtable_[i] = std::clamp((kBaseQ[i] * scale + 50) / 100, 1, 255);
  }
}

EncodedActivation JpegActCodec::encode(const std::string& layer, const Tensor& act) {
  EncodedActivation enc;
  enc.layer = layer;
  enc.shape = act.shape();
  const auto& s = act.shape();
  if (s.rank() != 4) throw std::invalid_argument("JpegActCodec: expected NCHW");
  const std::size_t planes = s.n() * s.c();
  const std::size_t H = s.h(), W = s.w();
  const std::size_t bh = (H + 7) / 8, bw = (W + 7) / 8;

  const float amax = tensor::max_abs(act.span());
  const float fwd_scale = amax > 0.0f ? 127.0f / amax : 1.0f;

  std::vector<std::uint32_t> symbols;
  symbols.reserve(planes * bh * bw * 64);
  for (std::size_t p = 0; p < planes; ++p) {
    const float* plane = act.data() + p * H * W;
    for (std::size_t by = 0; by < bh; ++by) {
      for (std::size_t bx = 0; bx < bw; ++bx) {
        float block[64];
        for (int y = 0; y < 8; ++y) {
          for (int x = 0; x < 8; ++x) {
            // Clamp-to-edge padding for partial border blocks.
            const std::size_t sy = std::min(H - 1, by * 8 + static_cast<std::size_t>(y));
            const std::size_t sx = std::min(W - 1, bx * 8 + static_cast<std::size_t>(x));
            block[y * 8 + x] = plane[sy * W + sx] * fwd_scale;
          }
        }
        float coef[64];
        dct8x8(block, coef);
        for (int i = 0; i < 64; ++i) {
          const int z = kZigzag[i];
          const int q = static_cast<int>(
              std::lround(coef[z] / static_cast<float>(qtable_[z])));
          const int clamped =
              std::clamp(q, -static_cast<int>(kRadius) + 1, static_cast<int>(kRadius) - 1);
          symbols.push_back(static_cast<std::uint32_t>(clamped + static_cast<int>(kRadius)));
        }
      }
    }
  }

  std::vector<std::uint64_t> freqs(kAlphabet, 0);
  for (auto sym : symbols) ++freqs[sym];
  sz::HuffmanCodec codec;
  codec.build(freqs);
  const auto table = codec.serialize_table();
  const auto body = codec.encode(symbols);

  auto put_u64 = [&enc](std::uint64_t v) {
    const auto* q = reinterpret_cast<const std::uint8_t*>(&v);
    enc.bytes.insert(enc.bytes.end(), q, q + 8);
  };
  put_u64(symbols.size());
  put_u64(table.size());
  put_u64(body.size());
  std::uint64_t scale_bits = 0;
  static_assert(sizeof(float) == 4);
  std::memcpy(&scale_bits, &fwd_scale, 4);
  put_u64(scale_bits);
  enc.bytes.insert(enc.bytes.end(), table.begin(), table.end());
  enc.bytes.insert(enc.bytes.end(), body.begin(), body.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_ratio_[layer] =
        static_cast<double>(act.bytes()) / static_cast<double>(enc.bytes.size());
  }
  return enc;
}

std::map<std::string, double> JpegActCodec::last_ratios() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ratio_;
}

Tensor JpegActCodec::decode(const EncodedActivation& enc) {
  const std::uint8_t* p = enc.bytes.data();
  auto get_u64 = [&p]() {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  };
  const std::uint64_t num_symbols = get_u64();
  const std::uint64_t table_size = get_u64();
  const std::uint64_t body_size = get_u64();
  const std::uint64_t scale_bits = get_u64();
  float fwd_scale;
  std::memcpy(&fwd_scale, &scale_bits, 4);
  const float inv_scale = fwd_scale > 0.0f ? 1.0f / fwd_scale : 1.0f;

  sz::HuffmanCodec codec;
  codec.deserialize_table({p, static_cast<std::size_t>(table_size)});
  p += table_size;
  const auto symbols =
      codec.decode({p, static_cast<std::size_t>(body_size)},
                   static_cast<std::size_t>(num_symbols));

  const auto& s = enc.shape;
  Tensor out(s);
  const std::size_t planes = s.n() * s.c();
  const std::size_t H = s.h(), W = s.w();
  const std::size_t bh = (H + 7) / 8, bw = (W + 7) / 8;
  std::size_t si = 0;
  for (std::size_t pl = 0; pl < planes; ++pl) {
    float* plane = out.data() + pl * H * W;
    for (std::size_t by = 0; by < bh; ++by) {
      for (std::size_t bx = 0; bx < bw; ++bx) {
        float coef[64];
        for (int i = 0; i < 64; ++i) {
          const int z = kZigzag[i];
          const int q = static_cast<int>(symbols[si++]) - static_cast<int>(kRadius);
          coef[z] = static_cast<float>(q * qtable_[z]);
        }
        float block[64];
        idct8x8(coef, block);
        for (int y = 0; y < 8; ++y) {
          const std::size_t sy = by * 8 + static_cast<std::size_t>(y);
          if (sy >= H) continue;
          for (int x = 0; x < 8; ++x) {
            const std::size_t sx = bx * 8 + static_cast<std::size_t>(x);
            if (sx >= W) continue;
            plane[sy * W + sx] = block[y * 8 + x] * inv_scale;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace ebct::baselines

namespace ebct::core::detail {

void register_jpegact_codec(CodecRegistry& reg) {
  reg.register_codec(
      {"jpeg-act",
       "JPEG-ACT DCT codec (Evans et al., ISCA'20) — NOT error-bounded",
       "quality=<1..100>", false},
      [](const std::string& params, const FrameworkConfig&) {
        CodecParams p("jpeg-act", params);
        const std::uint32_t quality = p.get_uint("quality", 50);
        if (quality < 1 || quality > 100) {
          throw std::invalid_argument("jpeg-act: quality must be in [1, 100]");
        }
        p.finish();
        return std::make_shared<baselines::JpegActCodec>(static_cast<int>(quality));
      });
}

}  // namespace ebct::core::detail
