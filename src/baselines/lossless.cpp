#include "baselines/lossless.hpp"

#include <cstring>

#include "core/codec_registry.hpp"
#include "sz/bitstream.hpp"
#include "sz/huffman.hpp"

namespace ebct::baselines {

using nn::EncodedActivation;
using tensor::Tensor;

EncodedActivation LosslessCodec::encode(const std::string& layer, const Tensor& act) {
  EncodedActivation enc;
  enc.layer = layer;
  enc.shape = act.shape();

  // Stream 1: alternating zero-run / nonzero-run lengths.
  sz::BitWriter rle;
  std::vector<float> packed;
  packed.reserve(act.numel());
  std::size_t i = 0;
  const auto data = act.span();
  while (i < data.size()) {
    std::size_t z = i;
    while (z < data.size() && data[z] == 0.0f) ++z;
    rle.put_varint(z - i);
    std::size_t nz = z;
    while (nz < data.size() && data[nz] != 0.0f) ++nz;
    rle.put_varint(nz - z);
    for (std::size_t k = z; k < nz; ++k) packed.push_back(data[k]);
    i = nz;
  }
  auto rle_bytes = rle.finish();

  // Stream 2: per-byte-plane Huffman over the packed nonzero floats.
  std::vector<std::uint8_t> plane_payload;
  std::vector<std::uint64_t> plane_sizes;
  for (int plane = 0; plane < 4; ++plane) {
    std::vector<std::uint32_t> symbols(packed.size());
    for (std::size_t k = 0; k < packed.size(); ++k) {
      std::uint32_t bits;
      std::memcpy(&bits, &packed[k], 4);
      symbols[k] = (bits >> (8 * plane)) & 0xff;
    }
    std::vector<std::uint64_t> freqs(256, 0);
    for (auto s : symbols) ++freqs[s];
    sz::HuffmanCodec codec;
    codec.build(freqs);
    auto table = codec.serialize_table();
    auto body = codec.encode(symbols);
    plane_sizes.push_back(table.size());
    plane_sizes.push_back(body.size());
    plane_payload.insert(plane_payload.end(), table.begin(), table.end());
    plane_payload.insert(plane_payload.end(), body.begin(), body.end());
  }

  // Layout: u64 numel, u64 packed_count, u64 rle_size, 8x u64 plane sizes,
  // rle bytes, plane payload.
  auto put_u64 = [&enc](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    enc.bytes.insert(enc.bytes.end(), p, p + 8);
  };
  put_u64(act.numel());
  put_u64(packed.size());
  put_u64(rle_bytes.size());
  for (auto s : plane_sizes) put_u64(s);
  enc.bytes.insert(enc.bytes.end(), rle_bytes.begin(), rle_bytes.end());
  enc.bytes.insert(enc.bytes.end(), plane_payload.begin(), plane_payload.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_ratio_[layer] =
        static_cast<double>(act.bytes()) / static_cast<double>(enc.bytes.size());
  }
  return enc;
}

std::map<std::string, double> LosslessCodec::last_ratios() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ratio_;
}

Tensor LosslessCodec::decode(const EncodedActivation& enc) {
  const std::uint8_t* p = enc.bytes.data();
  auto get_u64 = [&p]() {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  };
  const std::uint64_t numel = get_u64();
  const std::uint64_t packed_count = get_u64();
  const std::uint64_t rle_size = get_u64();
  std::uint64_t plane_sizes[8];
  for (auto& s : plane_sizes) s = get_u64();

  std::span<const std::uint8_t> rle_bytes{p, static_cast<std::size_t>(rle_size)};
  p += rle_size;

  std::vector<std::uint32_t> planes[4];
  for (int plane = 0; plane < 4; ++plane) {
    const std::uint64_t table_size = plane_sizes[2 * plane];
    const std::uint64_t body_size = plane_sizes[2 * plane + 1];
    sz::HuffmanCodec codec;
    codec.deserialize_table({p, static_cast<std::size_t>(table_size)});
    p += table_size;
    planes[plane] = codec.decode({p, static_cast<std::size_t>(body_size)},
                                 static_cast<std::size_t>(packed_count));
    p += body_size;
  }

  std::vector<float> packed(packed_count);
  for (std::size_t k = 0; k < packed_count; ++k) {
    std::uint32_t bits = 0;
    for (int plane = 0; plane < 4; ++plane) {
      bits |= (planes[plane][k] & 0xffu) << (8 * plane);
    }
    std::memcpy(&packed[k], &bits, 4);
  }

  Tensor out(enc.shape);
  sz::BitReader r(rle_bytes);
  std::size_t oi = 0, pi = 0;
  while (oi < numel) {
    const std::uint64_t zrun = r.get_varint();
    for (std::uint64_t k = 0; k < zrun && oi < numel; ++k) out[oi++] = 0.0f;
    if (oi >= numel) break;
    const std::uint64_t nzrun = r.get_varint();
    for (std::uint64_t k = 0; k < nzrun && oi < numel; ++k) out[oi++] = packed[pi++];
  }
  return out;
}

}  // namespace ebct::baselines

namespace ebct::core::detail {

void register_lossless_codec(CodecRegistry& reg) {
  reg.register_codec(
      {"lossless",
       "exact zero-RLE + byte-plane Huffman (~2x on sparse activations)", "", false},
      [](const std::string& params, const FrameworkConfig&) {
        CodecParams p("lossless", params);
        p.finish();  // takes no parameters
        return std::make_shared<baselines::LosslessCodec>();
      });
}

}  // namespace ebct::core::detail
