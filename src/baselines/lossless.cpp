#include "baselines/lossless.hpp"

#include <cstring>
#include <stdexcept>

#include "core/codec_registry.hpp"
#include "nn/streaming.hpp"
#include "sz/bitstream.hpp"
#include "sz/huffman.hpp"

namespace ebct::baselines {

using nn::EncodedActivation;
using tensor::Tensor;

void LosslessCodec::encode_span(std::span<const float> data, std::vector<std::uint8_t>& out) {
  // Stream 1: alternating zero-run / nonzero-run lengths.
  sz::BitWriter rle;
  std::vector<float> packed;
  packed.reserve(data.size());
  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t z = i;
    while (z < data.size() && data[z] == 0.0f) ++z;
    rle.put_varint(z - i);
    std::size_t nz = z;
    while (nz < data.size() && data[nz] != 0.0f) ++nz;
    rle.put_varint(nz - z);
    for (std::size_t k = z; k < nz; ++k) packed.push_back(data[k]);
    i = nz;
  }
  auto rle_bytes = rle.finish();

  // Stream 2: per-byte-plane Huffman over the packed nonzero floats.
  std::vector<std::uint8_t> plane_payload;
  std::vector<std::uint64_t> plane_sizes;
  for (int plane = 0; plane < 4; ++plane) {
    std::vector<std::uint32_t> symbols(packed.size());
    for (std::size_t k = 0; k < packed.size(); ++k) {
      std::uint32_t bits;
      std::memcpy(&bits, &packed[k], 4);
      symbols[k] = (bits >> (8 * plane)) & 0xff;
    }
    std::vector<std::uint64_t> freqs(256, 0);
    for (auto s : symbols) ++freqs[s];
    sz::HuffmanCodec codec;
    codec.build(freqs);
    auto table = codec.serialize_table();
    auto body = codec.encode(symbols);
    plane_sizes.push_back(table.size());
    plane_sizes.push_back(body.size());
    plane_payload.insert(plane_payload.end(), table.begin(), table.end());
    plane_payload.insert(plane_payload.end(), body.begin(), body.end());
  }

  // Layout: u64 numel, u64 packed_count, u64 rle_size, 8x u64 plane sizes,
  // rle bytes, plane payload.
  auto put_u64 = [&out](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out.insert(out.end(), p, p + 8);
  };
  put_u64(data.size());
  put_u64(packed.size());
  put_u64(rle_bytes.size());
  for (auto s : plane_sizes) put_u64(s);
  out.insert(out.end(), rle_bytes.begin(), rle_bytes.end());
  out.insert(out.end(), plane_payload.begin(), plane_payload.end());
}

void LosslessCodec::decode_span(const std::uint8_t* payload, std::size_t payload_len,
                                std::size_t numel, std::vector<float>& out) {
  constexpr std::size_t kHeaderBytes = 8 * 11;  // numel, packed, rle_size, 8 plane sizes
  if (payload_len < kHeaderBytes)
    throw std::runtime_error("lossless decode: payload shorter than header");
  const std::uint8_t* p = payload;
  auto get_u64 = [&p]() {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  };
  const std::uint64_t declared_numel = get_u64();
  const std::uint64_t packed_count = get_u64();
  const std::uint64_t rle_size = get_u64();
  std::uint64_t plane_sizes[8];
  for (auto& s : plane_sizes) s = get_u64();
  if (declared_numel != numel)
    throw std::runtime_error("lossless decode: header declares " +
                             std::to_string(declared_numel) + " elems, expected " +
                             std::to_string(numel));
  if (packed_count > numel)
    throw std::runtime_error("lossless decode: packed count " +
                             std::to_string(packed_count) + " exceeds numel " +
                             std::to_string(numel));
  // Validate each declared size against the bytes actually left, never by
  // summing: the sizes are untrusted u64s and a sum can wrap past
  // payload_len.
  std::uint64_t remaining = payload_len - kHeaderBytes;
  if (rle_size > remaining)
    throw std::runtime_error("lossless decode: payload truncated");
  remaining -= rle_size;
  for (auto s : plane_sizes) {
    if (s > remaining)
      throw std::runtime_error("lossless decode: payload truncated");
    remaining -= s;
  }

  std::span<const std::uint8_t> rle_bytes{p, static_cast<std::size_t>(rle_size)};
  p += rle_size;

  std::vector<std::uint32_t> planes[4];
  for (int plane = 0; plane < 4; ++plane) {
    const std::uint64_t table_size = plane_sizes[2 * plane];
    const std::uint64_t body_size = plane_sizes[2 * plane + 1];
    sz::HuffmanCodec codec;
    codec.deserialize_table({p, static_cast<std::size_t>(table_size)});
    p += table_size;
    planes[plane] = codec.decode({p, static_cast<std::size_t>(body_size)},
                                 static_cast<std::size_t>(packed_count));
    p += body_size;
  }

  std::vector<float> packed(packed_count);
  for (std::size_t k = 0; k < packed_count; ++k) {
    std::uint32_t bits = 0;
    for (int plane = 0; plane < 4; ++plane) {
      bits |= (planes[plane][k] & 0xffu) << (8 * plane);
    }
    std::memcpy(&packed[k], &bits, 4);
  }

  out.assign(numel, 0.0f);
  sz::BitReader r(rle_bytes);
  std::size_t oi = 0, pi = 0;
  while (oi < numel) {
    const std::uint64_t zrun = r.get_varint();
    for (std::uint64_t k = 0; k < zrun && oi < numel; ++k) out[oi++] = 0.0f;
    if (oi >= numel) break;
    const std::uint64_t nzrun = r.get_varint();
    for (std::uint64_t k = 0; k < nzrun && oi < numel; ++k) {
      if (pi >= packed.size())
        throw std::runtime_error("lossless decode: nonzero runs exceed packed count");
      out[oi++] = packed[pi++];
    }
  }
}

EncodedActivation LosslessCodec::encode(const std::string& layer, const Tensor& act) {
  EncodedActivation enc;
  enc.layer = layer;
  enc.shape = act.shape();
  encode_span(act.span(), enc.bytes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_ratio_[layer] =
        static_cast<double>(act.bytes()) / static_cast<double>(enc.bytes.size());
  }
  return enc;
}

std::map<std::string, double> LosslessCodec::last_ratios() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ratio_;
}

Tensor LosslessCodec::decode(const EncodedActivation& enc) {
  std::vector<float> vals;
  decode_span(enc.bytes.data(), enc.bytes.size(), enc.shape.numel(), vals);
  Tensor out(enc.shape);
  std::memcpy(out.data(), vals.data(), vals.size() * sizeof(float));
  return out;
}

namespace {

class LosslessWindowEncoder final : public nn::WindowEncoder {
 public:
  void encode_window(const float* data, std::size_t n,
                     std::vector<std::uint8_t>& out) override {
    out.clear();
    LosslessCodec::encode_span({data, n}, out);
  }
};

class LosslessWindowDecoder final : public nn::WindowDecoder {
 public:
  void decode_window(const std::uint8_t* payload, std::size_t payload_len,
                     std::size_t numel, std::vector<float>& out) override {
    LosslessCodec::decode_span(payload, payload_len, numel, out);
  }
};

}  // namespace

std::unique_ptr<nn::WindowEncoder> LosslessCodec::make_window_encoder() {
  return std::make_unique<LosslessWindowEncoder>();
}

std::unique_ptr<nn::WindowDecoder> LosslessCodec::make_window_decoder() {
  return std::make_unique<LosslessWindowDecoder>();
}

}  // namespace ebct::baselines

namespace ebct::core::detail {

void register_lossless_codec(CodecRegistry& reg) {
  reg.register_codec(
      {"lossless",
       "exact zero-RLE + byte-plane Huffman (~2x on sparse activations)", "", false},
      [](const std::string& params, const FrameworkConfig&) {
        CodecParams p("lossless", params);
        p.finish();  // takes no parameters
        return std::make_shared<baselines::LosslessCodec>();
      });
}

}  // namespace ebct::core::detail
