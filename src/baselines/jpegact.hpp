#pragma once

/// \file jpegact.hpp
/// JPEG-ACT-style activation codec (Evans et al., ISCA'20) — the
/// state-of-the-art comparator in the paper. Treats each channel plane of
/// the activation tensor as an 8-bit image: global scale to [-128, 127],
/// 8x8 block DCT, quality-scaled quantization with the standard JPEG
/// luminance table, zigzag scan, and Huffman coding of the quantized
/// coefficients. The per-element error is *not* bounded — the property the
/// paper contrasts against — and the ratio lands in the ~5-10x regime.

#include <map>
#include <mutex>
#include <string>

#include "nn/activation_store.hpp"

namespace ebct::baselines {

/// Registry spec: "jpeg-act[:quality=<1..100>]". Not error-bounded — the
/// adaptive scheme disables itself when this codec drives a session.
class JpegActCodec : public nn::ActivationCodec {
 public:
  /// quality in [1, 100]; 50 reproduces the ~7x ratios the paper cites.
  explicit JpegActCodec(int quality = 50);

  nn::EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) override;
  tensor::Tensor decode(const nn::EncodedActivation& enc) override;
  std::string name() const override { return "jpeg-act"; }
  std::map<std::string, double> last_ratios() const override;

  /// Quality (and thus the quantization table) is codec-global, so the
  /// byte stream never depends on the layer name.
  bool encoding_layer_invariant(const std::string&, const std::string&) const override {
    return true;
  }

  int quality() const { return quality_; }

 private:
  int quality_;
  int qtable_[64];
  mutable std::mutex mu_;
  std::map<std::string, double> last_ratio_;
};

}  // namespace ebct::baselines
