#pragma once

/// \file lossless.hpp
/// Lossless activation codec — the ~2x comparison point the paper cites for
/// float data ([35], [39]). Scheme: exact-zero run-length stream (activation
/// sparsity is where lossless wins) plus per-byte-plane Huffman coding of
/// the remaining IEEE-754 bytes (exponent bytes are highly compressible,
/// mantissa bytes are near-random — which is exactly why lossless tops out
/// around 2x).

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "nn/activation_store.hpp"

namespace ebct::baselines {

/// Registry spec: "lossless" (no parameters).
class LosslessCodec : public nn::ActivationCodec {
 public:
  nn::EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) override;
  tensor::Tensor decode(const nn::EncodedActivation& enc) override;
  std::string name() const override { return "lossless-rle-huffman"; }
  std::map<std::string, double> last_ratios() const override;

  /// The transform has no per-layer state at all.
  bool encoding_layer_invariant(const std::string&, const std::string&) const override {
    return true;
  }

  /// Native streaming products (nn/streaming.hpp): the transform below is
  /// stateless over a float span, so the window products share the exact
  /// encode_span/decode_span bodies the one-shot path uses.
  std::unique_ptr<nn::WindowEncoder> make_window_encoder() override;
  std::unique_ptr<nn::WindowDecoder> make_window_decoder() override;

  /// The whole transform, span-to-bytes — appended to `out`. Shared by the
  /// one-shot encode() and the streaming window product so both produce
  /// byte-identical payloads by construction.
  static void encode_span(std::span<const float> data, std::vector<std::uint8_t>& out);

  /// Inverse of encode_span: decodes `numel` floats into `out` (resized).
  /// Throws std::runtime_error when the payload is malformed or disagrees
  /// with `numel`.
  static void decode_span(const std::uint8_t* payload, std::size_t payload_len,
                          std::size_t numel, std::vector<float>& out);

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> last_ratio_;
};

}  // namespace ebct::baselines
