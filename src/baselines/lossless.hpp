#pragma once

/// \file lossless.hpp
/// Lossless activation codec — the ~2x comparison point the paper cites for
/// float data ([35], [39]). Scheme: exact-zero run-length stream (activation
/// sparsity is where lossless wins) plus per-byte-plane Huffman coding of
/// the remaining IEEE-754 bytes (exponent bytes are highly compressible,
/// mantissa bytes are near-random — which is exactly why lossless tops out
/// around 2x).

#include <map>
#include <mutex>
#include <string>

#include "nn/activation_store.hpp"

namespace ebct::baselines {

/// Registry spec: "lossless" (no parameters).
class LosslessCodec : public nn::ActivationCodec {
 public:
  nn::EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) override;
  tensor::Tensor decode(const nn::EncodedActivation& enc) override;
  std::string name() const override { return "lossless-rle-huffman"; }
  std::map<std::string, double> last_ratios() const override;

  /// The transform has no per-layer state at all.
  bool encoding_layer_invariant(const std::string&, const std::string&) const override {
    return true;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> last_ratio_;
};

}  // namespace ebct::baselines
