#pragma once

/// \file strategies.hpp
/// Analytic models of the non-compression memory-saving strategies the paper
/// compares against (§2.1): activation migration (vDNN/GeePS/Layrub-style
/// host offload over PCIe/NVLink) and cheap-layer recomputation (Chen et
/// al.). Both are driven by the same MemoryBreakdown as the compression
/// strategies, so the planner can rank all of them on equal footing.

#include <cstddef>
#include <string>
#include <vector>

#include "memory/accounting.hpp"

namespace ebct::baselines {

/// Host-offload model: every stashed activation crosses the interconnect
/// twice (out during forward, back during backward).
struct MigrationModel {
  double bandwidth_bytes_per_s = 16.0e9;  ///< PCIe 3.0 x16 effective
  double overlap_fraction = 0.5;          ///< fraction hidden behind compute

  /// Added seconds per iteration for `stashed_bytes` of activations.
  double transfer_seconds(std::size_t stashed_bytes) const {
    const double raw = 2.0 * static_cast<double>(stashed_bytes) / bandwidth_bytes_per_s;
    return raw * (1.0 - overlap_fraction);
  }

  static MigrationModel pcie3() { return {16.0e9, 0.5}; }
  static MigrationModel nvlink2() { return {75.0e9, 0.5}; }
};

/// Recomputation model: layers whose stash can be cheaply regenerated
/// (activation functions, pooling) drop their stash and pay a fraction of
/// the forward pass again. Convolutions are excluded — the paper's point is
/// that conv recomputation is too expensive, which is why compression
/// targets exactly those layers.
struct RecomputeModel {
  double cheap_layer_fraction = 0.30;   ///< share of stash from cheap layers
  double forward_overhead_fraction = 0.10;  ///< extra compute per iteration

  std::size_t remaining_stash(std::size_t stashed_bytes) const {
    return static_cast<std::size_t>(static_cast<double>(stashed_bytes) *
                                    (1.0 - cheap_layer_fraction));
  }
};

/// One row of the strategy comparison (Fig. 11 / §5.4 style output).
struct StrategyOutcome {
  std::string name;
  std::size_t peak_bytes = 0;
  std::size_t max_batch = 0;
  double overhead_fraction = 0.0;  ///< added time / baseline step time
  double memory_reduction = 1.0;   ///< baseline activation bytes / strategy bytes
};

/// Rank all memory strategies for a model on a device. `framework_ratio` is
/// the measured SZ compression ratio; `framework_overhead` its per-step cost
/// (the paper reports ~17% at equal batch); `baseline_step_seconds` anchors
/// the relative overheads.
std::vector<StrategyOutcome> compare_strategies(nn::Network& net, std::size_t input_hw,
                                                const memory::DeviceModel& device,
                                                double framework_ratio,
                                                double framework_overhead,
                                                double baseline_step_seconds,
                                                double lossless_ratio = 1.9,
                                                double jpegact_ratio = 7.0);

}  // namespace ebct::baselines
