#pragma once

/// \file gradient_assessor.hpp
/// Phase 2 of the framework (§4.2): determine the acceptable gradient-error
/// sigma for each layer. The paper anchors it to the optimizer momentum —
/// sigma_target = sigma_fraction * mean|momentum| (Eq. 8) — because the
/// momentum both smooths symmetric gradient noise and sets the natural
/// scale of a "negligible" perturbation.

#include "core/error_model.hpp"

namespace ebct::core {

class GradientAssessor {
 public:
  explicit GradientAssessor(double sigma_fraction = 0.01) : fraction_(sigma_fraction) {}

  double sigma_fraction() const { return fraction_; }

  /// Acceptable sigma for a layer given its momentum statistics (Eq. 8).
  double target_sigma(const LayerStatistics& s) const {
    return fraction_ * s.momentum_mean_abs;
  }

 private:
  double fraction_;
};

}  // namespace ebct::core
