#pragma once

/// \file session.hpp
/// End-to-end training session: wires a Network, DataLoader, SGD and one of
/// the activation-store strategies together, running the full loop of
/// Fig. 1 + Fig. 7. This is the public entry point a downstream user of the
/// library calls; the benches and examples are thin wrappers over it.
///
/// What the session does with activations is selected by a codec spec
/// string (FrameworkConfig::codec, overridable with EBCT_CODEC): any codec
/// registered in the CodecRegistry — "sz", "lossless", "jpeg-act:quality=50",
/// a per-layer "policy:..." — trains through the tiered pager with the
/// adaptive scheme enabled whenever the codec is error-bounded; "none"
/// selects the raw-store baseline and "custom" defers to
/// set_custom_store(). The paper's §5.4 comparison is therefore a config
/// sweep, not a code change.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive.hpp"
#include "core/config.hpp"
#include "data/synthetic.hpp"
#include "graph/executor.hpp"
#include "graph/graph.hpp"
#include "graph/replay.hpp"
#include "memory/pager.hpp"
#include "nn/network.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax_xent.hpp"

namespace ebct::core {

struct SessionConfig {
  FrameworkConfig framework;
  nn::SgdOptions sgd;
  double base_lr = 0.01;
  double lr_gamma = 0.1;                ///< step decay factor
  std::size_t lr_step = 0;              ///< 0 = constant LR
  std::uint64_t seed = 99;
};

/// One iteration's record for the Fig. 9/10 curves.
struct IterationRecord {
  std::size_t iteration = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double lr = 0.0;
  double mean_compression_ratio = 0.0;  ///< over conv layers, 0 when raw
  std::size_t store_held_bytes = 0;     ///< RAM-resident stash at fwd/bwd turnaround
  std::size_t store_spilled_bytes = 0;  ///< disk-tier stash at the same point
  /// Whether the adaptive scheme is driving per-layer bounds this run —
  /// false when the selected codec is not error-bounded (jpeg-act,
  /// lossless, none) and the phases 1-4 loop silently disabled itself.
  bool adaptive_active = false;
};

class TrainingSession {
 public:
  TrainingSession(nn::Network& net, data::DataLoader& loader, SessionConfig cfg);
  /// Detaches the replay engine from the pager before it is destroyed (the
  /// pager member outlives the engine by declaration order).
  ~TrainingSession();

  /// Install a caller-owned store (the codec-"custom" path; also usable to
  /// replace the store a previous spec built).
  void set_custom_store(nn::ActivationStore* store);

  /// Run `iterations` steps; per-step records are appended to history().
  /// `on_iteration` (optional) observes each record as it is produced.
  void run(std::size_t iterations,
           const std::function<void(const IterationRecord&)>& on_iteration = {});

  /// Top-1 accuracy over `batches` batches of an evaluation loader.
  double evaluate(data::DataLoader& eval_loader, std::size_t batches);

  const std::vector<IterationRecord>& history() const { return history_; }
  nn::Network& network() { return net_; }
  AdaptiveScheme* scheme() { return scheme_ ? scheme_.get() : nullptr; }
  /// The registry-built codec driving the pager (null for "none"/"custom").
  nn::ActivationCodec* codec() { return codec_.get(); }
  /// The codec spec the session resolved (registry spec, "none" or
  /// "custom") after the EBCT_CODEC override.
  const std::string& codec_spec() const { return codec_spec_; }
  /// The framework mode's tiered store (null in baseline/custom modes).
  memory::PagedStore* paged_store() { return framework_store_.get(); }
  /// The graph IR built at the first run() iteration (null before that,
  /// and always null for "none"/"custom" sessions or when both graph
  /// features are disabled). Rewrites, when enabled, have been applied.
  const graph::Graph* graph() const { return graph_.get(); }
  /// The graph-scheduled executor, when active (null before the first run()
  /// iteration, when EBCT_GRAPH_EXEC=0 / graph_exec=false, for
  /// "none"/"custom" sessions, under graph_rewrites, or when the model's
  /// graph is structurally unsupported and the session fell back).
  graph::GraphExecutor* executor() { return executor_.get(); }
  /// The recompute tier's replay engine, when active (null before the
  /// first run() iteration, when EBCT_RECOMPUTE=0 / recompute=false, for
  /// "none"/"custom" sessions, or under graph_rewrites).
  graph::ReplayEngine* replay_engine() { return replay_.get(); }
  std::size_t iteration() const { return iteration_; }

  /// One consolidated name → value snapshot of every runtime counter
  /// island: per-phase wall-clock (the process-wide obs::MetricsRegistry),
  /// this session's pager counters, tier accounting, scheduler steal
  /// stats, executor dispatch stats, and trace-ring emit/drop totals.
  /// Rows are JsonReporter-shaped so benches emit them directly; names and
  /// units are documented in docs/OBSERVABILITY.md. Also written as JSON
  /// to the EBCT_METRICS path (when set) at the end of every run().
  std::vector<std::pair<std::string, double>> metrics() const;

 private:
  nn::Network& net_;
  data::DataLoader& loader_;
  SessionConfig cfg_;
  std::string codec_spec_;
  nn::Sgd sgd_;
  std::unique_ptr<nn::LrSchedule> schedule_;
  nn::SoftmaxCrossEntropy loss_;

  std::shared_ptr<nn::ActivationCodec> codec_;
  std::unique_ptr<memory::PagedStore> framework_store_;  ///< budget-enforced tiered store
  std::unique_ptr<nn::RawStore> raw_store_;
  std::unique_ptr<AdaptiveScheme> scheme_;
  std::unique_ptr<graph::Graph> graph_;
  /// Borrows graph_; the session detaches it from the pager (in run() and
  /// ~TrainingSession) before either can go away.
  std::unique_ptr<graph::ReplayEngine> replay_;
  /// Declared after framework_store_ and graph_ so it is destroyed first:
  /// ~GraphExecutor detaches itself from the store, and the plan borrows
  /// the graph.
  std::unique_ptr<graph::GraphExecutor> executor_;
  bool graph_liveness_ = true;   ///< resolved framework.graph_liveness + env
  bool graph_rewrites_ = false;  ///< resolved framework.graph_rewrites + env
  bool graph_exec_ = true;       ///< resolved framework.graph_exec + env
  bool recompute_ = false;       ///< resolved framework.recompute + env

  std::vector<IterationRecord> history_;
  std::size_t iteration_ = 0;

  /// EBCT_METRICS sink: metrics() as a flat JSON object at `path`.
  void write_metrics_json(const std::string& path) const;
};

}  // namespace ebct::core
