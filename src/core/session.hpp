#pragma once

/// \file session.hpp
/// End-to-end training session: wires a Network, DataLoader, SGD and one of
/// the activation-store strategies together, running the full loop of
/// Fig. 1 + Fig. 7. This is the public entry point a downstream user of the
/// library calls; the benches and examples are thin wrappers over it.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/adaptive.hpp"
#include "core/config.hpp"
#include "data/synthetic.hpp"
#include "memory/pager.hpp"
#include "nn/network.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax_xent.hpp"

namespace ebct::core {

enum class StoreMode {
  kBaseline,    ///< raw activations (stock framework)
  kFramework,   ///< SZ compression + adaptive error-bound control
  kCustom,      ///< caller-provided store (baselines, injection)
};

struct SessionConfig {
  StoreMode mode = StoreMode::kFramework;
  FrameworkConfig framework;
  nn::SgdOptions sgd;
  double base_lr = 0.01;
  double lr_gamma = 0.1;                ///< step decay factor
  std::size_t lr_step = 0;              ///< 0 = constant LR
  std::uint64_t seed = 99;
};

/// One iteration's record for the Fig. 9/10 curves.
struct IterationRecord {
  std::size_t iteration = 0;
  double loss = 0.0;
  double train_accuracy = 0.0;
  double lr = 0.0;
  double mean_compression_ratio = 0.0;  ///< over conv layers, 0 when raw
  std::size_t store_held_bytes = 0;     ///< RAM-resident stash at fwd/bwd turnaround
  std::size_t store_spilled_bytes = 0;  ///< disk-tier stash at the same point
};

class TrainingSession {
 public:
  TrainingSession(nn::Network& net, data::DataLoader& loader, SessionConfig cfg);

  /// Install a custom store (sets mode kCustom).
  void set_custom_store(nn::ActivationStore* store);

  /// Run `iterations` steps; per-step records are appended to history().
  /// `on_iteration` (optional) observes each record as it is produced.
  void run(std::size_t iterations,
           const std::function<void(const IterationRecord&)>& on_iteration = {});

  /// Top-1 accuracy over `batches` batches of an evaluation loader.
  double evaluate(data::DataLoader& eval_loader, std::size_t batches);

  const std::vector<IterationRecord>& history() const { return history_; }
  nn::Network& network() { return net_; }
  AdaptiveScheme* scheme() { return scheme_ ? scheme_.get() : nullptr; }
  SzActivationCodec* codec() { return codec_.get(); }
  /// The framework mode's tiered store (null in baseline/custom modes).
  memory::PagedStore* paged_store() { return framework_store_.get(); }
  std::size_t iteration() const { return iteration_; }

 private:
  nn::Network& net_;
  data::DataLoader& loader_;
  SessionConfig cfg_;
  nn::Sgd sgd_;
  std::unique_ptr<nn::LrSchedule> schedule_;
  nn::SoftmaxCrossEntropy loss_;

  std::shared_ptr<SzActivationCodec> codec_;
  std::unique_ptr<memory::PagedStore> framework_store_;  ///< budget-enforced tiered store
  std::unique_ptr<nn::RawStore> raw_store_;
  std::unique_ptr<AdaptiveScheme> scheme_;

  std::vector<IterationRecord> history_;
  std::size_t iteration_ = 0;
};

}  // namespace ebct::core
