#pragma once

/// \file config.hpp
/// Framework-wide constants and tunables of the adaptive compression scheme,
/// named after the symbols in the paper.

#include <cstddef>
#include <string>

#include "sz/compressor.hpp"

namespace ebct::core {

struct FrameworkConfig {
  /// Activation codec spec, resolved through the CodecRegistry
  /// (core/codec_registry.hpp): "<name>[:<params>]", e.g. "sz",
  /// "sz:threads=1", "lossless", "jpeg-act:quality=50", or a per-layer
  /// "policy:*conv*=sz;*=lossless". Two sentinels are handled by the
  /// session rather than the registry:
  ///   "none"   — raw activations, no pager (the stock-framework baseline);
  ///   "custom" — build no store; the caller installs one with
  ///              TrainingSession::set_custom_store().
  /// Env override: EBCT_CODEC replaces any registry spec with another
  /// registry spec (or "none" to force the raw baseline). It never
  /// overrides a configured "none"/"custom" — those select a store
  /// topology, not a codec — and EBCT_CODEC=custom is rejected loudly,
  /// since an env var cannot install a store. Unset codec parameters
  /// inherit the fields below (bootstrap_error_bound, zero_mode,
  /// compressor_threads).
  std::string codec = "sz";

  /// Empirical coefficient `a` in sigma ≈ a * L̄ * sqrt(N*R) * eb (Eq. 6).
  /// The paper calibrates 0.32 (≈ 1/3 = stddev of U(-1,1) at N=1).
  double coefficient_a = 0.32;

  /// Acceptable gradient-error scale as a fraction of the mean |momentum|
  /// (Eq. 8). The paper selects 1% after the Fig. 9 sweep.
  double sigma_fraction = 0.01;

  /// Active factor W: semi-online parameters (L̄, R, M̄) are re-collected
  /// every W iterations (§4.1; paper default 1000).
  std::size_t active_factor_w = 1000;

  /// Safety clamps on the derived absolute error bound.
  double min_error_bound = 1e-7;
  double max_error_bound = 1e-1;

  /// Error bound used for a layer before its first statistics collection.
  double bootstrap_error_bound = 1e-4;

  /// Zero handling in the compressor (§4.4; the paper uses the re-zero
  /// decompression filter).
  sz::ZeroMode zero_mode = sz::ZeroMode::kRezero;

  /// Worker threads for the SZ block-parallel compress/decompress hot path:
  /// 0 = all hardware threads, 1 = the serial reference path. Purely a
  /// throughput knob — the compressed bytes are identical at any setting.
  std::uint32_t compressor_threads = 0;

  /// Pipeline compression off the critical path: stash() enqueues the raw
  /// activation and returns, the encode runs as a task on the shared
  /// work-stealing pool while the next layer's forward computes (the
  /// paper's overlap of encode with compute, ported to the CPU substrate).
  bool async_compression = false;

  /// Bounded in-flight window for the async path; 2 = double buffering. The
  /// forward pass blocks once this many raw activations await encode, so
  /// memory stays budgeted even when compute outruns the compressor.
  std::size_t async_queue_depth = 2;

  /// Hard RAM budget (bytes) over the activation pager's resident tiers
  /// (raw + compressed). 0 = unlimited. When set, the pager evicts
  /// least-soon-needed pages to the disk spill tier and also claims the
  /// layers' byte-exact saved-for-backward state, so the whole stash obeys
  /// one budget. Training is byte-identical at any budget (see
  /// memory/pager.hpp). Env override: EBCT_MEMORY_BUDGET_BYTES.
  std::size_t memory_budget_bytes = 0;

  /// Directory for the pager's spill file; empty = the system temp
  /// directory. Env override: EBCT_SPILL_DIR.
  std::string spill_dir;

  /// Backward-pass prefetch window: while layer k+1's gradient computes,
  /// the pager fetches (disk read + decompress, on the pool) up to this
  /// many upcoming activations. Env override: EBCT_PREFETCH_DEPTH.
  std::size_t prefetch_depth = 2;

  /// Build the graph IR (graph/graph.hpp) at the first training iteration
  /// and feed its exact per-activation liveness to the pager, replacing
  /// the put-order eviction heuristic with furthest-next-use and enabling
  /// shared-stash dedup on branchy models. Off = seed put-order paging;
  /// training is byte-identical either way. Env override:
  /// EBCT_GRAPH_LIVENESS (strictly "0" or "1").
  bool graph_liveness = true;

  /// Execute the network through the graph-scheduled concurrent executor
  /// (graph/executor.hpp): independent branches (Inception towers, the
  /// residual shortcut against its main path) run as tasks on the shared
  /// work-stealing pool in both passes, overlapping with the pager's codec
  /// encodes and spill I/O. Losses, gradients and pager counters are
  /// bitwise identical to the sequential path at any pool size or budget;
  /// the session silently falls back to sequential execution when the
  /// model's graph has a structure the executor does not support, or when
  /// graph_rewrites is on (a rewritten analysis graph no longer mirrors
  /// the executed network). Env override: EBCT_GRAPH_EXEC (strictly "0"
  /// or "1").
  bool graph_exec = true;

  /// Write-behind spill queue: when the pager must evict under a RAM
  /// budget, the disk write is issued as a pool task and compute continues;
  /// the budget accounting counts not-yet-written blobs as still resident
  /// and a bounded window (PagerConfig::write_window) caps the in-flight
  /// bytes, so the budget is never exceeded. Eviction choice and counters
  /// are identical to the synchronous path. Default-on since the PR 10
  /// soak (tests/test_pager.cpp WriteBehindSoak: many iterations at tight
  /// budgets plus injected write failures, bitwise equal to synchronous
  /// and leak-free); the env stays as the opt-out. Env override:
  /// EBCT_WRITE_BEHIND (strictly "0" or "1").
  bool write_behind = true;

  /// Run the registered graph rewrite patterns (dead-branch elimination,
  /// conv+bias folding — graph/rewrite.hpp) over the IR before liveness is
  /// derived. The rewrites only change the *analysis* graph, never the
  /// executed network, and default off. Env override: EBCT_GRAPH_REWRITES
  /// (strictly "0" or "1").
  bool graph_rewrites = false;

  /// Recompute tier: let the pager's cost model drop an eligible page's
  /// compressed payload at eviction and re-derive it during backward by
  /// replaying its producing subgraph (graph/replay.hpp) from the
  /// iteration's input batch, when that is priced cheaper than the disk
  /// spill roundtrip. Requires the graph IR (built on demand) and stands
  /// down under graph_rewrites, like the executor. Reconstructed bytes,
  /// losses and stash sequence numbers are identical either way — only
  /// where the bytes come from changes. Default off. Env override:
  /// EBCT_RECOMPUTE (strictly "0" or "1").
  bool recompute = false;

  /// Pinned cost-model rates for the recompute tier, strictly parsed as
  /// "encode=F,decode=F,write=F,read=F,flop=F" (ns per byte / per flop).
  /// Empty = calibrate from timings measured on the first few pages of the
  /// run. Pinning makes the spill-vs-replay decision reproducible for
  /// tests and benches. Env override: EBCT_RECOMPUTE_RATES.
  std::string recompute_rates;
};

}  // namespace ebct::core
