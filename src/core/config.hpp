#pragma once

/// \file config.hpp
/// Framework-wide constants and tunables of the adaptive compression scheme,
/// named after the symbols in the paper.

#include <cstddef>

#include "sz/compressor.hpp"

namespace ebct::core {

struct FrameworkConfig {
  /// Empirical coefficient `a` in sigma ≈ a * L̄ * sqrt(N*R) * eb (Eq. 6).
  /// The paper calibrates 0.32 (≈ 1/3 = stddev of U(-1,1) at N=1).
  double coefficient_a = 0.32;

  /// Acceptable gradient-error scale as a fraction of the mean |momentum|
  /// (Eq. 8). The paper selects 1% after the Fig. 9 sweep.
  double sigma_fraction = 0.01;

  /// Active factor W: semi-online parameters (L̄, R, M̄) are re-collected
  /// every W iterations (§4.1; paper default 1000).
  std::size_t active_factor_w = 1000;

  /// Safety clamps on the derived absolute error bound.
  double min_error_bound = 1e-7;
  double max_error_bound = 1e-1;

  /// Error bound used for a layer before its first statistics collection.
  double bootstrap_error_bound = 1e-4;

  /// Zero handling in the compressor (§4.4; the paper uses the re-zero
  /// decompression filter).
  sz::ZeroMode zero_mode = sz::ZeroMode::kRezero;
};

}  // namespace ebct::core
