#pragma once

/// \file config.hpp
/// Framework-wide constants and tunables of the adaptive compression scheme,
/// named after the symbols in the paper.

#include <cstddef>

#include "sz/compressor.hpp"

namespace ebct::core {

struct FrameworkConfig {
  /// Empirical coefficient `a` in sigma ≈ a * L̄ * sqrt(N*R) * eb (Eq. 6).
  /// The paper calibrates 0.32 (≈ 1/3 = stddev of U(-1,1) at N=1).
  double coefficient_a = 0.32;

  /// Acceptable gradient-error scale as a fraction of the mean |momentum|
  /// (Eq. 8). The paper selects 1% after the Fig. 9 sweep.
  double sigma_fraction = 0.01;

  /// Active factor W: semi-online parameters (L̄, R, M̄) are re-collected
  /// every W iterations (§4.1; paper default 1000).
  std::size_t active_factor_w = 1000;

  /// Safety clamps on the derived absolute error bound.
  double min_error_bound = 1e-7;
  double max_error_bound = 1e-1;

  /// Error bound used for a layer before its first statistics collection.
  double bootstrap_error_bound = 1e-4;

  /// Zero handling in the compressor (§4.4; the paper uses the re-zero
  /// decompression filter).
  sz::ZeroMode zero_mode = sz::ZeroMode::kRezero;

  /// Worker threads for the SZ block-parallel compress/decompress hot path:
  /// 0 = all hardware threads, 1 = the serial reference path. Purely a
  /// throughput knob — the compressed bytes are identical at any setting.
  std::uint32_t compressor_threads = 0;

  /// Pipeline compression off the critical path: stash() enqueues the raw
  /// activation and returns, a background worker compresses layer i-1 while
  /// layer i computes its forward pass (the paper's overlap of encode with
  /// compute, ported to the CPU substrate).
  bool async_compression = false;

  /// Bounded pending queue for the async path; 2 = double buffering. The
  /// forward pass blocks once this many raw activations are waiting, so
  /// memory stays budgeted even when compute outruns the compressor.
  std::size_t async_queue_depth = 2;
};

}  // namespace ebct::core
