#include "core/error_injection.hpp"

namespace ebct::core {

void inject_uniform(std::span<float> data, double eb, tensor::Rng& rng,
                    bool preserve_zeros) {
  for (auto& v : data) {
    if (preserve_zeros && v == 0.0f) continue;
    v += static_cast<float>(rng.uniform(-eb, eb));
  }
}

void inject_normal(std::span<float> data, double sigma, tensor::Rng& rng) {
  for (auto& v : data) v += static_cast<float>(rng.normal(0.0, sigma));
}

}  // namespace ebct::core
