#include "core/session.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/codec_registry.hpp"
#include "graph/rewrite.hpp"
#include "memory/accounting.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/sched.hpp"

namespace ebct::core {

using tensor::Tensor;

namespace {

/// Strict unsigned parse for env overrides: a malformed value must fail
/// loudly, not silently parse to 0 — for the budget, 0 means *unlimited*,
/// the exact opposite of what a typo'd operator asked for. Digits only:
/// strtoull would happily wrap "-1" to 2^64-1 (again: unlimited).
std::size_t env_bytes(const char* name, const char* value) {
  bool digits_only = value[0] != '\0';
  for (const char* c = value; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') digits_only = false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (!digits_only || *end != '\0' || errno != 0) {
    throw std::invalid_argument(std::string(name) + ": expected a plain byte count, got '" +
                                value + "'");
  }
  return static_cast<std::size_t>(v);
}

bool env_flag(const char* name, bool fallback);

/// Environment overrides for the paging knobs, so existing binaries can be
/// driven under a budget without code changes (the budget-sweep CI leg and
/// the README recipes use these).
memory::PagerConfig pager_config_from(const FrameworkConfig& fw) {
  memory::PagerConfig pc;
  pc.budget_bytes = fw.memory_budget_bytes;
  pc.spill_dir = fw.spill_dir;
  pc.prefetch_depth = fw.prefetch_depth;
  pc.async_encode = fw.async_compression;
  pc.encode_window = fw.async_queue_depth;
  pc.write_behind = env_flag("EBCT_WRITE_BEHIND", fw.write_behind);
  if (const char* env = std::getenv("EBCT_MEMORY_BUDGET_BYTES")) {
    pc.budget_bytes = env_bytes("EBCT_MEMORY_BUDGET_BYTES", env);
  }
  if (const char* env = std::getenv("EBCT_SPILL_DIR")) {
    if (env[0] != '\0') pc.spill_dir = env;
  }
  if (const char* env = std::getenv("EBCT_PREFETCH_DEPTH")) {
    pc.prefetch_depth = env_bytes("EBCT_PREFETCH_DEPTH", env);
  }
  pc.recompute = env_flag("EBCT_RECOMPUTE", fw.recompute);
  pc.recompute_rates = fw.recompute_rates;
  if (const char* env = std::getenv("EBCT_RECOMPUTE_RATES")) {
    if (env[0] != '\0') pc.recompute_rates = env;
  }
  return pc;
}

/// Strict boolean env override: only "0" and "1" are accepted — "true",
/// "yes" or a typo silently meaning "off" would be the same failure mode
/// env_bytes guards against.
bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  if (v[0] == '1' && v[1] == '\0') return true;
  if (v[0] == '0' && v[1] == '\0') return false;
  throw std::invalid_argument(std::string(name) + ": expected 0 or 1, got '" + v + "'");
}

/// The session's codec choice: FrameworkConfig::codec, unless the
/// EBCT_CODEC env override replaces it — so any training binary can be
/// re-run under a different codec without a rebuild. The override replaces
/// a *codec* spec only: "none"/"custom" select a store topology and a
/// run that asked for the raw baseline must stay a raw baseline.
std::string resolve_codec_spec(const SessionConfig& cfg) {
  std::string spec = cfg.framework.codec;
  if (spec != "none" && spec != "custom") {
    if (const char* env = std::getenv("EBCT_CODEC"); env != nullptr && env[0] != '\0') {
      if (std::string(env) == "custom") {
        // "custom" means "the caller will install a store in code" — an env
        // var cannot do that, and accepting it would silently train through
        // the network's fallback raw store. Fail loudly instead.
        throw std::invalid_argument(
            "EBCT_CODEC=custom: a custom store cannot be selected from the "
            "environment; call TrainingSession::set_custom_store()");
      }
      spec = env;
    }
  }
  return spec;
}

}  // namespace

TrainingSession::TrainingSession(nn::Network& net, data::DataLoader& loader,
                                 SessionConfig cfg)
    : net_(net),
      loader_(loader),
      cfg_(cfg),
      codec_spec_(resolve_codec_spec(cfg)),
      sgd_(cfg.sgd) {
  graph_liveness_ = env_flag("EBCT_GRAPH_LIVENESS", cfg_.framework.graph_liveness);
  graph_rewrites_ = env_flag("EBCT_GRAPH_REWRITES", cfg_.framework.graph_rewrites);
  graph_exec_ = env_flag("EBCT_GRAPH_EXEC", cfg_.framework.graph_exec);
  recompute_ = env_flag("EBCT_RECOMPUTE", cfg_.framework.recompute);
  if (cfg_.lr_step > 0) {
    schedule_ = std::make_unique<nn::StepLr>(cfg_.base_lr, cfg_.lr_gamma, cfg_.lr_step);
  } else {
    schedule_ = std::make_unique<nn::ConstantLr>(cfg_.base_lr);
  }

  if (codec_spec_ == "custom") {
    return;  // caller installs via set_custom_store()
  }
  if (codec_spec_ == "none") {
    raw_store_ = std::make_unique<nn::RawStore>();
    net_.set_store(raw_store_.get());
    return;
  }
  // Any registered codec: all training routes through the tiered pager —
  // with no budget it behaves exactly like the old CodecStore (or, with
  // async_compression, the retired AsyncCodecStore, now thread-free); with
  // a budget it spills to disk and pages the layers' exact state. The
  // adaptive scheme rides along and self-disables when the codec is not
  // error-bounded (IterationRecord::adaptive_active reports which).
  codec_ = CodecRegistry::instance().create(codec_spec_, cfg_.framework);
  framework_store_ = std::make_unique<memory::PagedStore>(
      pager_config_from(cfg_.framework), codec_);
  net_.set_store(framework_store_.get());
  scheme_ = std::make_unique<AdaptiveScheme>(cfg_.framework, codec_.get());
}

TrainingSession::~TrainingSession() {
  // The pager (inside framework_store_) is declared before replay_ and so
  // outlives it; make sure no page can reach the engine while it dies.
  if (framework_store_) framework_store_->set_recompute_source(nullptr);
}

void TrainingSession::set_custom_store(nn::ActivationStore* store) {
  codec_spec_ = "custom";
  net_.set_store(store);
  // Tear down whatever a previous spec built: a live scheme would keep
  // programming a codec no store consults, and the records would claim
  // an adaptive run that is not happening.
  scheme_.reset();
  executor_.reset();  // before the store it stashes through
  if (framework_store_) framework_store_->set_recompute_source(nullptr);
  replay_.reset();
  framework_store_.reset();
  raw_store_.reset();
  codec_.reset();
  graph_.reset();
}

void TrainingSession::run(std::size_t iterations,
                          const std::function<void(const IterationRecord&)>& on_iteration) {
  Tensor images;
  std::vector<std::int32_t> labels;
  for (std::size_t step = 0; step < iterations; ++step) {
    loader_.next(images, labels);

    // The graph IR needs a concrete input shape, which only the first batch
    // provides — so the build happens here, once, not in the constructor.
    // Liveness flows to the pager before the first forward so eviction is
    // furthest-next-use from the very first stash.
    if (framework_store_ && !graph_ &&
        (graph_liveness_ || graph_rewrites_ || graph_exec_ || recompute_)) {
      graph_ = std::make_unique<graph::Graph>(
          graph::Graph::from_network(net_, images.shape()));
      if (graph_rewrites_) graph::PatternRegistry::instance().apply_all(*graph_);
      if (graph_liveness_) framework_store_->set_liveness(graph_->liveness());
      // Graph-scheduled execution needs the IR to mirror the executed
      // network exactly, which rewrites break by design (they transform
      // the *analysis* graph only). The executor validates the structure
      // itself and an unsupported model simply keeps the sequential path.
      if (graph_exec_ && !graph_rewrites_) {
        executor_ = std::make_unique<graph::GraphExecutor>(*graph_, net_,
                                                           *framework_store_);
        if (executor_->supported()) {
          framework_store_->set_interceptor(executor_.get());
        } else {
          executor_.reset();
        }
      }
      // The recompute tier replays producing subgraphs, so like the
      // executor it needs the IR to mirror the executed network — it
      // stands down under rewrites.
      if (recompute_ && !graph_rewrites_) {
        replay_ = std::make_unique<graph::ReplayEngine>(*graph_);
        framework_store_->set_recompute_source(replay_.get());
      }
    }

    // The engine replays from this iteration's input batch; the pointer is
    // cleared after backward so a stale batch can never leak into a later
    // evaluate() or an external store user.
    if (replay_) replay_->set_input(&images);

    const bool use_exec = executor_ && executor_->handles(images.shape());
    Tensor logits;
    {
      obs::trace::Span span("session.forward", obs::trace::Cat::kSession);
      obs::ScopedPhase phase(obs::Phase::kForward);
      logits = use_exec ? executor_->forward(images, /*train=*/true)
                        : net_.forward(images, /*train=*/true);
    }
    const std::size_t held = net_.store().held_bytes();
    const std::size_t spilled =
        framework_store_ ? framework_store_->pager().spilled_bytes() : 0;
    const nn::LossResult lr = loss_.compute(logits, labels);
    // Announce the LIFO replay so the pager starts fetching the deepest
    // activations while the loss layer's gradient is still being formed.
    {
      obs::trace::Span span("session.backward", obs::trace::Cat::kSession);
      obs::ScopedPhase phase(obs::Phase::kBackward);
      net_.store().prepare_backward();
      if (use_exec) {
        executor_->backward(lr.grad_logits);
      } else {
        net_.backward(lr.grad_logits);
      }
    }
    // All stashes are consumed by now; anything stashed after this point
    // (e.g. an eval batch) must not be replayed against this input.
    if (replay_) replay_->set_input(nullptr);

    const double rate = schedule_->lr(iteration_);
    auto params = net_.params();
    sgd_.step(params, rate);

    // Adaptive refresh every W iterations, after backward so the conv
    // layers carry fresh L̄ / R and the momentum reflects this step.
    if (scheme_ && scheme_->should_update(iteration_)) {
      scheme_->update(net_, loader_.batch_size());
    }

    IterationRecord rec;
    rec.iteration = iteration_;
    rec.loss = lr.loss;
    rec.train_accuracy = lr.accuracy;
    rec.lr = rate;
    rec.store_held_bytes = held;
    rec.store_spilled_bytes = spilled;
    rec.adaptive_active = scheme_ != nullptr && scheme_->active();
    if (codec_) {
      const auto ratios = codec_->last_ratios();
      if (!ratios.empty()) {
        double acc = 0.0;
        for (const auto& [k, v] : ratios) acc += v;
        rec.mean_compression_ratio = acc / static_cast<double>(ratios.size());
      }
    }
    history_.push_back(rec);
    if (on_iteration) on_iteration(rec);
    ++iteration_;
  }

  // EBCT_METRICS=<path>: dump the consolidated snapshot after every run()
  // (last writer wins, so a multi-run process leaves its final state).
  // Path semantics match EBCT_SPILL_DIR: empty string = unset.
  if (const char* env = std::getenv("EBCT_METRICS"); env != nullptr && env[0] != '\0') {
    write_metrics_json(env);
  }
}

std::vector<std::pair<std::string, double>> TrainingSession::metrics() const {
  std::vector<std::pair<std::string, double>> m;
  m.emplace_back("iterations", static_cast<double>(iteration_));

  // Per-phase wall-clock — process-wide accumulators (every session in the
  // process adds to them; benches wanting per-section numbers drain the
  // registry around the section instead).
  const obs::PhaseSnapshot ph = obs::MetricsRegistry::instance().snapshot();
  for (int i = 0; i < obs::kNumPhases; ++i) {
    const std::string base =
        std::string("phase.") + obs::phase_name(static_cast<obs::Phase>(i));
    m.emplace_back(base + ".ns", static_cast<double>(ph[i].ns));
    m.emplace_back(base + ".count", static_cast<double>(ph[i].count));
  }

  // This session's pager counters (absent in baseline/custom modes).
  if (framework_store_) {
    const memory::PagerCounters c = framework_store_->pager().counters();
    const std::pair<const char*, std::size_t> rows[] = {
        {"pager.resident_bytes", c.resident_bytes},
        {"pager.peak_resident_bytes", c.peak_resident_bytes},
        {"pager.raw_bytes", c.raw_bytes},
        {"pager.compressed_bytes", c.compressed_bytes},
        {"pager.spilled_bytes", c.spilled_bytes},
        {"pager.evictions", c.evictions},
        {"pager.spill_write_bytes", c.spill_write_bytes},
        {"pager.spill_read_bytes", c.spill_read_bytes},
        {"pager.prefetch_submitted", c.prefetch_submitted},
        {"pager.prefetch_hits", c.prefetch_hits},
        {"pager.over_budget_events", c.over_budget_events},
        {"pager.dedup_pages", c.dedup_pages},
        {"pager.dedup_saved_bytes", c.dedup_saved_bytes},
        {"pager.recompute_bytes", c.recompute_bytes},
        {"pager.recompute_drops", c.recompute_drops},
        {"pager.recompute_replays", c.recompute_replays},
    };
    for (const auto& [name, v] : rows)
      m.emplace_back(name, static_cast<double>(v));
  }

  // Process-wide tier accounting (live + peak per tier).
  {
    const memory::TierUsage tu = memory::TierAccounting::instance().usage();
    static const char* kTierNames[memory::kNumTiers] = {"raw", "compressed",
                                                        "spilled", "recompute"};
    for (int t = 0; t < memory::kNumTiers; ++t) {
      const std::string base = std::string("tiers.") + kTierNames[t];
      m.emplace_back(base + ".live_bytes", static_cast<double>(tu.live[t]));
      m.emplace_back(base + ".peak_bytes", static_cast<double>(tu.peak[t]));
    }
  }

  // Scheduler pool + steal latency (non-destructive snapshot).
  {
    const tensor::sched::StealStats ss = tensor::sched::steal_stats();
    m.emplace_back("sched.threads",
                   static_cast<double>(tensor::sched::num_threads()));
    m.emplace_back("sched.steals", static_cast<double>(ss.recorded));
    m.emplace_back("sched.steal_p50_ns", ss.percentile_ns(0.5));
    m.emplace_back("sched.steal_p95_ns", ss.percentile_ns(0.95));
  }

  // Executor dispatch stats, when the graph-scheduled path is active.
  if (executor_) {
    m.emplace_back("exec.max_parallel_dispatch",
                   static_cast<double>(executor_->max_parallel_dispatch()));
  }

  // Trace-ring health: a nonzero drop count means EBCT_TRACE_RING_EVENTS
  // is too small for the run.
  m.emplace_back("trace.emitted", static_cast<double>(obs::trace::emitted()));
  m.emplace_back("trace.dropped", static_cast<double>(obs::trace::dropped()));
  return m;
}

void TrainingSession::write_metrics_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out)
    throw std::runtime_error("EBCT_METRICS: cannot open '" + path + "'");
  const auto m = metrics();
  out << "{\n";
  char buf[64];
  for (std::size_t i = 0; i < m.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", m[i].second);
    out << "  \"" << m[i].first << "\": " << buf
        << (i + 1 < m.size() ? ",\n" : "\n");
  }
  out << "}\n";
  if (!out.flush())
    throw std::runtime_error("EBCT_METRICS: write failed: '" + path + "'");
}

double TrainingSession::evaluate(data::DataLoader& eval_loader, std::size_t batches) {
  Tensor images;
  std::vector<std::int32_t> labels;
  double correct = 0.0;
  std::size_t total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    eval_loader.next(images, labels);
    Tensor logits = net_.forward(images, /*train=*/false);
    const std::size_t n = logits.shape().n();
    const std::size_t k = logits.shape()[1];
    for (std::size_t s = 0; s < n; ++s) {
      const float* row = logits.data() + s * k;
      std::size_t argmax = 0;
      for (std::size_t j = 1; j < k; ++j)
        if (row[j] > row[argmax]) argmax = j;
      if (static_cast<std::int32_t>(argmax) == labels[s]) correct += 1.0;
    }
    total += n;
    // The eval forward still stashed activations; drain them with a
    // zero-gradient backward so the store does not leak across batches.
    Tensor dummy_grad(logits.shape(), 0.0f);
    net_.store().prepare_backward();
    net_.backward(dummy_grad);
    net_.zero_grad();
  }
  return total ? correct / static_cast<double>(total) : 0.0;
}

}  // namespace ebct::core
