#include "core/session.hpp"

#include <numeric>

namespace ebct::core {

using tensor::Tensor;

TrainingSession::TrainingSession(nn::Network& net, data::DataLoader& loader,
                                 SessionConfig cfg)
    : net_(net), loader_(loader), cfg_(cfg), sgd_(cfg.sgd) {
  if (cfg_.lr_step > 0) {
    schedule_ = std::make_unique<nn::StepLr>(cfg_.base_lr, cfg_.lr_gamma, cfg_.lr_step);
  } else {
    schedule_ = std::make_unique<nn::ConstantLr>(cfg_.base_lr);
  }

  switch (cfg_.mode) {
    case StoreMode::kBaseline:
      raw_store_ = std::make_unique<nn::RawStore>();
      net_.set_store(raw_store_.get());
      break;
    case StoreMode::kFramework: {
      sz::Config sz_cfg;
      sz_cfg.error_bound = cfg_.framework.bootstrap_error_bound;
      sz_cfg.zero_mode = cfg_.framework.zero_mode;
      sz_cfg.num_threads = cfg_.framework.compressor_threads;
      codec_ = std::make_shared<SzActivationCodec>(sz_cfg);
      if (cfg_.framework.async_compression) {
        framework_store_ = std::make_unique<nn::AsyncCodecStore>(
            codec_, cfg_.framework.async_queue_depth);
      } else {
        framework_store_ = std::make_unique<nn::CodecStore>(codec_);
      }
      net_.set_store(framework_store_.get());
      scheme_ = std::make_unique<AdaptiveScheme>(cfg_.framework, codec_.get());
      break;
    }
    case StoreMode::kCustom:
      break;  // caller installs via set_custom_store()
  }
}

void TrainingSession::set_custom_store(nn::ActivationStore* store) {
  cfg_.mode = StoreMode::kCustom;
  net_.set_store(store);
}

void TrainingSession::run(std::size_t iterations,
                          const std::function<void(const IterationRecord&)>& on_iteration) {
  Tensor images;
  std::vector<std::int32_t> labels;
  for (std::size_t step = 0; step < iterations; ++step) {
    loader_.next(images, labels);

    Tensor logits = net_.forward(images, /*train=*/true);
    const std::size_t held = net_.store().held_bytes();
    const nn::LossResult lr = loss_.compute(logits, labels);
    net_.backward(lr.grad_logits);

    const double rate = schedule_->lr(iteration_);
    auto params = net_.params();
    sgd_.step(params, rate);

    // Adaptive refresh every W iterations, after backward so the conv
    // layers carry fresh L̄ / R and the momentum reflects this step.
    if (scheme_ && scheme_->should_update(iteration_)) {
      scheme_->update(net_, loader_.batch_size());
    }

    IterationRecord rec;
    rec.iteration = iteration_;
    rec.loss = lr.loss;
    rec.train_accuracy = lr.accuracy;
    rec.lr = rate;
    rec.store_held_bytes = held;
    if (codec_) {
      const auto ratios = codec_->last_ratios();
      if (!ratios.empty()) {
        double acc = 0.0;
        for (const auto& [k, v] : ratios) acc += v;
        rec.mean_compression_ratio = acc / static_cast<double>(ratios.size());
      }
    }
    history_.push_back(rec);
    if (on_iteration) on_iteration(rec);
    ++iteration_;
  }
}

double TrainingSession::evaluate(data::DataLoader& eval_loader, std::size_t batches) {
  Tensor images;
  std::vector<std::int32_t> labels;
  double correct = 0.0;
  std::size_t total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    eval_loader.next(images, labels);
    Tensor logits = net_.forward(images, /*train=*/false);
    const std::size_t n = logits.shape().n();
    const std::size_t k = logits.shape()[1];
    for (std::size_t s = 0; s < n; ++s) {
      const float* row = logits.data() + s * k;
      std::size_t argmax = 0;
      for (std::size_t j = 1; j < k; ++j)
        if (row[j] > row[argmax]) argmax = j;
      if (static_cast<std::int32_t>(argmax) == labels[s]) correct += 1.0;
    }
    total += n;
    // The eval forward still stashed activations; drain them with a
    // zero-gradient backward so the store does not leak across batches.
    Tensor dummy_grad(logits.shape(), 0.0f);
    net_.backward(dummy_grad);
    net_.zero_grad();
  }
  return total ? correct / static_cast<double>(total) : 0.0;
}

}  // namespace ebct::core
