#include "core/session.hpp"

#include <cerrno>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>

namespace ebct::core {

using tensor::Tensor;

namespace {

/// Strict unsigned parse for env overrides: a malformed value must fail
/// loudly, not silently parse to 0 — for the budget, 0 means *unlimited*,
/// the exact opposite of what a typo'd operator asked for. Digits only:
/// strtoull would happily wrap "-1" to 2^64-1 (again: unlimited).
std::size_t env_bytes(const char* name, const char* value) {
  bool digits_only = value[0] != '\0';
  for (const char* c = value; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') digits_only = false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (!digits_only || *end != '\0' || errno != 0) {
    throw std::invalid_argument(std::string(name) + ": expected a plain byte count, got '" +
                                value + "'");
  }
  return static_cast<std::size_t>(v);
}

/// Environment overrides for the paging knobs, so existing binaries can be
/// driven under a budget without code changes (the budget-sweep CI leg and
/// the README recipes use these).
memory::PagerConfig pager_config_from(const FrameworkConfig& fw) {
  memory::PagerConfig pc;
  pc.budget_bytes = fw.memory_budget_bytes;
  pc.spill_dir = fw.spill_dir;
  pc.prefetch_depth = fw.prefetch_depth;
  pc.async_encode = fw.async_compression;
  pc.encode_window = fw.async_queue_depth;
  if (const char* env = std::getenv("EBCT_MEMORY_BUDGET_BYTES")) {
    pc.budget_bytes = env_bytes("EBCT_MEMORY_BUDGET_BYTES", env);
  }
  if (const char* env = std::getenv("EBCT_SPILL_DIR")) {
    if (env[0] != '\0') pc.spill_dir = env;
  }
  if (const char* env = std::getenv("EBCT_PREFETCH_DEPTH")) {
    pc.prefetch_depth = env_bytes("EBCT_PREFETCH_DEPTH", env);
  }
  return pc;
}

}  // namespace

TrainingSession::TrainingSession(nn::Network& net, data::DataLoader& loader,
                                 SessionConfig cfg)
    : net_(net), loader_(loader), cfg_(cfg), sgd_(cfg.sgd) {
  if (cfg_.lr_step > 0) {
    schedule_ = std::make_unique<nn::StepLr>(cfg_.base_lr, cfg_.lr_gamma, cfg_.lr_step);
  } else {
    schedule_ = std::make_unique<nn::ConstantLr>(cfg_.base_lr);
  }

  switch (cfg_.mode) {
    case StoreMode::kBaseline:
      raw_store_ = std::make_unique<nn::RawStore>();
      net_.set_store(raw_store_.get());
      break;
    case StoreMode::kFramework: {
      sz::Config sz_cfg;
      sz_cfg.error_bound = cfg_.framework.bootstrap_error_bound;
      sz_cfg.zero_mode = cfg_.framework.zero_mode;
      sz_cfg.num_threads = cfg_.framework.compressor_threads;
      codec_ = std::make_shared<SzActivationCodec>(sz_cfg);
      // All framework training routes through the tiered pager: with no
      // budget it behaves exactly like the old CodecStore (or, with
      // async_compression, the retired AsyncCodecStore, now thread-free);
      // with a budget it spills to disk and pages the layers' exact state.
      framework_store_ = std::make_unique<memory::PagedStore>(
          pager_config_from(cfg_.framework), codec_);
      net_.set_store(framework_store_.get());
      scheme_ = std::make_unique<AdaptiveScheme>(cfg_.framework, codec_.get());
      break;
    }
    case StoreMode::kCustom:
      break;  // caller installs via set_custom_store()
  }
}

void TrainingSession::set_custom_store(nn::ActivationStore* store) {
  cfg_.mode = StoreMode::kCustom;
  net_.set_store(store);
}

void TrainingSession::run(std::size_t iterations,
                          const std::function<void(const IterationRecord&)>& on_iteration) {
  Tensor images;
  std::vector<std::int32_t> labels;
  for (std::size_t step = 0; step < iterations; ++step) {
    loader_.next(images, labels);

    Tensor logits = net_.forward(images, /*train=*/true);
    const std::size_t held = net_.store().held_bytes();
    const std::size_t spilled =
        framework_store_ ? framework_store_->pager().spilled_bytes() : 0;
    const nn::LossResult lr = loss_.compute(logits, labels);
    // Announce the LIFO replay so the pager starts fetching the deepest
    // activations while the loss layer's gradient is still being formed.
    net_.store().prepare_backward();
    net_.backward(lr.grad_logits);

    const double rate = schedule_->lr(iteration_);
    auto params = net_.params();
    sgd_.step(params, rate);

    // Adaptive refresh every W iterations, after backward so the conv
    // layers carry fresh L̄ / R and the momentum reflects this step.
    if (scheme_ && scheme_->should_update(iteration_)) {
      scheme_->update(net_, loader_.batch_size());
    }

    IterationRecord rec;
    rec.iteration = iteration_;
    rec.loss = lr.loss;
    rec.train_accuracy = lr.accuracy;
    rec.lr = rate;
    rec.store_held_bytes = held;
    rec.store_spilled_bytes = spilled;
    if (codec_) {
      const auto ratios = codec_->last_ratios();
      if (!ratios.empty()) {
        double acc = 0.0;
        for (const auto& [k, v] : ratios) acc += v;
        rec.mean_compression_ratio = acc / static_cast<double>(ratios.size());
      }
    }
    history_.push_back(rec);
    if (on_iteration) on_iteration(rec);
    ++iteration_;
  }
}

double TrainingSession::evaluate(data::DataLoader& eval_loader, std::size_t batches) {
  Tensor images;
  std::vector<std::int32_t> labels;
  double correct = 0.0;
  std::size_t total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    eval_loader.next(images, labels);
    Tensor logits = net_.forward(images, /*train=*/false);
    const std::size_t n = logits.shape().n();
    const std::size_t k = logits.shape()[1];
    for (std::size_t s = 0; s < n; ++s) {
      const float* row = logits.data() + s * k;
      std::size_t argmax = 0;
      for (std::size_t j = 1; j < k; ++j)
        if (row[j] > row[argmax]) argmax = j;
      if (static_cast<std::int32_t>(argmax) == labels[s]) correct += 1.0;
    }
    total += n;
    // The eval forward still stashed activations; drain them with a
    // zero-gradient backward so the store does not leak across batches.
    Tensor dummy_grad(logits.shape(), 0.0f);
    net_.store().prepare_backward();
    net_.backward(dummy_grad);
    net_.zero_grad();
  }
  return total ? correct / static_cast<double>(total) : 0.0;
}

}  // namespace ebct::core
