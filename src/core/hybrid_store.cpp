#include "core/hybrid_store.hpp"

#include <stdexcept>

namespace ebct::core {

using tensor::Tensor;

HybridStore::HybridStore(std::shared_ptr<nn::ActivationCodec> codec,
                         std::shared_ptr<RoutePolicy> policy,
                         memory::PagerConfig pager_cfg)
    : codec_(std::move(codec)),
      policy_(std::move(policy)),
      pager_(std::move(pager_cfg), codec_) {
  if (!codec_ || !policy_) throw std::invalid_argument("HybridStore: null codec/policy");
}

nn::StashHandle HybridStore::stash(const std::string& layer, Tensor&& act) {
  const std::size_t original = act.bytes();
  const StashRoute route = policy_->route(layer, original);
  routes_[layer] = route;

  nn::StashHandle h = 0;
  switch (route) {
    case StashRoute::kCompress:
      h = pager_.put(layer, std::move(act));
      break;
    case StashRoute::kRaw:
      h = pager_.put_exact(layer, std::move(act));
      break;
    case StashRoute::kMigrate:
      // Exact page forced straight to the disk tier: the simulated host
      // offload. The ledger tracks the PCIe-equivalent traffic.
      h = pager_.put_exact(layer, std::move(act));
      pager_.spill(h);
      migration_.bytes_out += original;
      break;
  }
  route_of_[h] = route;
  return h;
}

Tensor HybridStore::retrieve(nn::StashHandle handle) {
  auto it = route_of_.find(handle);
  if (it == route_of_.end())
    throw std::logic_error("HybridStore::retrieve: unknown handle");
  const StashRoute route = it->second;
  Tensor out = pager_.drop(handle);
  if (route == StashRoute::kMigrate) migration_.bytes_back += out.bytes();
  route_of_.erase(it);
  return out;
}

}  // namespace ebct::core
