#include "core/hybrid_store.hpp"

#include <cstring>
#include <stdexcept>

namespace ebct::core {

using tensor::Tensor;

HybridStore::HybridStore(std::shared_ptr<SzActivationCodec> codec,
                         std::shared_ptr<RoutePolicy> policy)
    : codec_(std::move(codec)), policy_(std::move(policy)) {
  if (!codec_ || !policy_) throw std::invalid_argument("HybridStore: null codec/policy");
}

nn::StashHandle HybridStore::stash(const std::string& layer, Tensor&& act) {
  const nn::StashHandle h = next_++;
  const std::size_t original = act.bytes();
  Entry e;
  e.shape = act.shape();
  e.route = policy_->route(layer, original);
  routes_[layer] = e.route;

  nn::StoreStats& s = stats_[layer];
  s.stashed_tensors += 1;
  s.original_bytes += original;

  switch (e.route) {
    case StashRoute::kCompress: {
      e.encoded = codec_->encode(layer, act);
      e.encoded.shape = act.shape();
      s.stored_bytes += e.encoded.bytes.size();
      device_bytes_ += e.encoded.bytes.size();
      break;
    }
    case StashRoute::kRaw: {
      s.stored_bytes += original;
      device_bytes_ += original;
      e.raw = std::move(act);
      break;
    }
    case StashRoute::kMigrate: {
      e.host.resize(original);
      std::memcpy(e.host.data(), act.data(), original);
      host_bytes_ += original;
      migration_.bytes_out += original;
      // Migrated stashes consume zero device bytes while parked host-side.
      break;
    }
  }
  entries_.emplace(h, std::move(e));
  return h;
}

Tensor HybridStore::retrieve(nn::StashHandle handle) {
  auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::logic_error("HybridStore::retrieve: unknown handle");
  Entry& e = it->second;
  Tensor out;
  switch (e.route) {
    case StashRoute::kCompress:
      out = codec_->decode(e.encoded);
      device_bytes_ -= e.encoded.bytes.size();
      break;
    case StashRoute::kRaw:
      out = std::move(e.raw);
      device_bytes_ -= out.bytes();
      break;
    case StashRoute::kMigrate: {
      out = Tensor(e.shape);
      std::memcpy(out.data(), e.host.data(), e.host.size());
      host_bytes_ -= e.host.size();
      migration_.bytes_back += e.host.size();
      break;
    }
  }
  entries_.erase(it);
  return out;
}

}  // namespace ebct::core
