#pragma once

/// \file codec_registry.hpp
/// Name-based codec construction: the single place a codec choice turns
/// from a config string into an nn::ActivationCodec instance. Every codec
/// in the tree registers a factory under a short name; sessions, benches,
/// examples and tests select one with a spec string
///
///   <name>[:<params>]       e.g. "sz", "sz:threads=1,eb=1e-3",
///                                "lossless", "jpeg-act:quality=50", "none"
///
/// and the composite
///
///   policy:<pattern>=<spec>;<pattern>=<spec>;...
///
/// which routes each layer to the first rule whose glob pattern ('*'
/// wildcard) matches the layer name — e.g.
/// "policy:*conv*=sz;*=lossless". The EBCT_CODEC environment variable
/// overrides the configured spec of a TrainingSession (see
/// core/session.hpp), so any training binary can be re-run under a
/// different codec without a rebuild.
///
/// Registration: each codec's own translation unit defines a
/// register_*_codec(CodecRegistry&) hook (declared in detail below) that
/// installs its factory; the registry calls every hook once on first use.
/// The explicit hook — rather than a static-initializer self-registration
/// object — is deliberate: ebct links as a static archive, and an archive
/// member with no referenced symbol is never pulled in, so its static
/// initializers never run. Out-of-tree codecs register at runtime through
/// the same public register_codec().

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "nn/activation_store.hpp"

namespace ebct::core {

/// Strict parser for a codec spec's parameter list: "k1=v1,k2=v2". Keys
/// must be unique and every key must be consumed by the factory — a typo'd
/// or unsupported key throws instead of silently configuring nothing
/// (the same fail-loud stance as the env parsing in session.cpp).
class CodecParams {
 public:
  /// Parse `params` (the part after the spec's first ':'; may be empty).
  /// `codec` names the codec for error messages. Throws
  /// std::invalid_argument on malformed input (missing '=', empty key,
  /// duplicate key).
  CodecParams(std::string codec, const std::string& params);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Typed getters: return `fallback` when the key is absent, throw
  /// std::invalid_argument on an unparseable value. Each call marks the
  /// key consumed.
  std::string get_string(const std::string& key, const std::string& fallback);
  double get_double(const std::string& key, double fallback);
  std::uint32_t get_uint(const std::string& key, std::uint32_t fallback);

  /// Throw std::invalid_argument if any parsed key was never consumed —
  /// factories call this last so unknown parameters fail loudly.
  void finish() const;

  const std::string& codec() const { return codec_; }

 private:
  std::string codec_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

/// One registry entry's self-description, for --help output and docs.
struct CodecInfo {
  std::string name;
  std::string summary;      ///< one line: what it is
  std::string params_help;  ///< e.g. "eb=<abs bound>, threads=<n>"
  bool error_bounded = false;  ///< implements nn::ErrorBoundedCodec
};

/// Factory: `params` is the raw text after the first ':' of the spec
/// (empty when absent); `fw` carries the session-level defaults a codec
/// honours for parameters the spec leaves unset (the sz codec seeds its
/// error bound / zero mode / thread cap from it, exactly as the session
/// did before the registry existed).
using CodecFactory = std::function<std::shared_ptr<nn::ActivationCodec>(
    const std::string& params, const FrameworkConfig& fw)>;

class CodecRegistry {
 public:
  /// The process-wide registry, with every in-tree codec registered.
  static CodecRegistry& instance();

  /// Install a factory under `name`. Throws std::invalid_argument on a
  /// duplicate name or a name containing ':' / whitespace.
  void register_codec(CodecInfo info, CodecFactory factory);

  /// Build a codec from "name[:params]". Unknown names throw
  /// std::invalid_argument listing the registered names; parameter errors
  /// propagate from the factory.
  std::shared_ptr<nn::ActivationCodec> create(
      const std::string& spec, const FrameworkConfig& fw = {}) const;

  bool contains(const std::string& name) const;

  /// Registered codecs, sorted by name.
  std::vector<CodecInfo> list() const;

  /// Split "name[:params]" at the first ':' -> {name, params}.
  static std::pair<std::string, std::string> split_spec(const std::string& spec);

 private:
  CodecRegistry() = default;
  void ensure_builtins();

  bool builtins_registered_ = false;
  std::map<std::string, std::pair<CodecInfo, CodecFactory>> factories_;
};

/// Composite codec: routes each layer to the first rule whose glob pattern
/// matches the layer name ('*' matches any run of characters). encode()
/// dispatches on the layer being stashed, decode() on the layer recorded in
/// the EncodedActivation, so a round trip always uses the codec that
/// produced the bytes. Implements ErrorBoundedCodec by forwarding per-layer
/// bounds to the matched member when (and only when) that member is itself
/// error-bounded — a mixed policy gets adaptive bounds on its sz layers
/// while its lossless layers ignore them.
class CodecPolicy : public nn::ActivationCodec, public nn::ErrorBoundedCodec {
 public:
  struct Rule {
    std::string pattern;
    std::shared_ptr<nn::ActivationCodec> codec;
    /// Per-rule size window over the activation's raw byte size: the rule
    /// matches only when bytes >= min_bytes and (max_bytes == 0 or
    /// bytes < max_bytes). A size-excluded rule *falls through* to later
    /// rules — unlike the policy-wide min_bytes threshold, which short-
    /// circuits to the identity codec. Spec syntax appends the window in
    /// brackets to the pattern: "*conv*[min_bytes=4096,max_bytes=1048576]=sz".
    /// Both default to 0 (no bound). Routing stays a pure function of
    /// (layer, recorded shape), so encode/decode always agree.
    std::size_t min_bytes = 0;
    std::size_t max_bytes = 0;
  };

  /// Throws std::invalid_argument on an empty rule list or a null codec.
  /// Rules are tried in order; a layer no rule matches throws
  /// std::invalid_argument at encode time (add a trailing "*" catch-all).
  ///
  /// `min_bytes` composes a size threshold with the glob rules: an
  /// activation smaller than this many raw bytes is stored raw (identity
  /// codec) regardless of which rule its layer matches — compressing a
  /// few-KB tensor buys nothing and costs a codec round trip. 0 disables
  /// the threshold. decode() applies the same size rule to the recorded
  /// shape, so round trips stay pinned to the codec that produced the
  /// bytes.
  explicit CodecPolicy(std::vector<Rule> rules, std::size_t min_bytes = 0);

  nn::EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) override;
  tensor::Tensor decode(const nn::EncodedActivation& enc) override;
  std::string name() const override { return "policy"; }
  std::map<std::string, double> last_ratios() const override;

  void set_layer_bound(const std::string& layer, double eb) override;
  double layer_bound(const std::string& layer) const override;
  bool error_bounded() const override;  ///< true when any member is

  /// Invariant only when the two layers have the *same ordered list* of
  /// glob-matching rules and every one of those rules' members is itself
  /// invariant across the two names. Size windows never break this:
  /// dedup candidates share one produced tensor, so equal candidate lists
  /// resolve to the same rule at any size.
  bool encoding_layer_invariant(const std::string& a,
                                const std::string& b) const override;

  /// The codec `layer` routes to by glob alone (size windows ignored) —
  /// the bound-routing view. Fail-loud on no match.
  nn::ActivationCodec& codec_for(const std::string& layer) const;
  /// The codec an activation of `bytes` raw bytes routes to: first rule
  /// whose glob matches AND whose size window admits `bytes`; size-excluded
  /// rules fall through. Fail-loud when nothing matches.
  nn::ActivationCodec& codec_for(const std::string& layer, std::size_t bytes) const;

  std::size_t min_bytes() const { return min_bytes_; }

  /// Simple glob: '*' matches any (possibly empty) substring; every other
  /// character matches itself. Exposed for tests.
  static bool glob_match(const std::string& pattern, const std::string& text);

 private:
  std::vector<Rule> rules_;
  std::size_t min_bytes_ = 0;
  std::shared_ptr<nn::ActivationCodec> threshold_codec_;  ///< identity, when min_bytes_ > 0
};

namespace detail {
// Built-in registration hooks, one per codec translation unit. Each
// installs that TU's factory; codec_registry.cpp calls them all once.
void register_sz_codec(CodecRegistry& reg);        // sz_codec.cpp
void register_lossless_codec(CodecRegistry& reg);  // baselines/lossless.cpp
void register_jpegact_codec(CodecRegistry& reg);   // baselines/jpegact.cpp
void register_none_codec(CodecRegistry& reg);      // codec_registry.cpp
void register_policy_codec(CodecRegistry& reg);    // codec_registry.cpp
}  // namespace detail

}  // namespace ebct::core
