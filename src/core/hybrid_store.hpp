#pragma once

/// \file hybrid_store.hpp
/// The paper's future-work direction (§6): "implement those orthogonal
/// methods such as data migration and recomputation into the framework for
/// higher performance and more memory reduction." HybridStore routes each
/// stashed activation to one of three backends by a per-layer policy:
///
///   kCompress : SZ error-bounded compression (the framework default)
///   kMigrate  : host-offload — bytes leave the device-byte budget and a
///               PCIe-bandwidth cost is accounted (migration simulator)
///   kRaw      : keep raw — the right call for tensors where compression
///               costs more than it saves (the paper's 1x1-kernel caveat)
///
/// The default policy implements the 1x1-kernel caveat from §5.4: small
/// activations (cheap to recompute / expensive to compress relative to their
/// size) stay raw, the bulk goes through the compressor, and anything above
/// a migration threshold is offloaded.
///
/// Since the tiered pager landed, HybridStore is a routing policy over one
/// ActivationPager rather than an owner of blobs: kRaw maps to an exact
/// page, kCompress to a codec page, and kMigrate to an exact page forced
/// straight to the pager's disk tier — the CPU substrate's stand-in for
/// host offload, which also gives migrated bytes the same checksummed
/// fail-loud reload path as every other spilled page.

#include <map>
#include <memory>
#include <string>

#include "baselines/strategies.hpp"
#include "memory/pager.hpp"
#include "nn/activation_store.hpp"

namespace ebct::core {

enum class StashRoute { kCompress, kMigrate, kRaw };

/// Decide the route for a named activation of `bytes` size.
class RoutePolicy {
 public:
  virtual ~RoutePolicy() = default;
  virtual StashRoute route(const std::string& layer, std::size_t bytes) const = 0;
};

/// Size-threshold policy: raw below `raw_below_bytes`, migrate at or above
/// `migrate_above_bytes`, compress in between.
class SizeThresholdPolicy : public RoutePolicy {
 public:
  SizeThresholdPolicy(std::size_t raw_below_bytes, std::size_t migrate_above_bytes)
      : raw_below_(raw_below_bytes), migrate_above_(migrate_above_bytes) {}

  StashRoute route(const std::string&, std::size_t bytes) const override {
    if (bytes < raw_below_) return StashRoute::kRaw;
    if (bytes >= migrate_above_) return StashRoute::kMigrate;
    return StashRoute::kCompress;
  }

 private:
  std::size_t raw_below_;
  std::size_t migrate_above_;
};

/// Accounting-level migration totals of a HybridStore run.
struct MigrationLedger {
  std::size_t bytes_out = 0;     ///< device -> host transfers
  std::size_t bytes_back = 0;    ///< host -> device transfers
  double seconds(const baselines::MigrationModel& model) const {
    return (static_cast<double>(bytes_out) + static_cast<double>(bytes_back)) /
           model.bandwidth_bytes_per_s * (1.0 - model.overlap_fraction);
  }
};

class HybridStore : public nn::ActivationStore {
 public:
  /// `codec` is any registry-built codec (the kCompress route encodes
  /// through it; per-layer CodecPolicy instances compose here too).
  /// `pager_cfg` defaults to unlimited budget: only kMigrate pages leave
  /// RAM unless the caller sets one (then kRaw/kCompress pages also page
  /// out under pressure, unifying migration with budget eviction).
  HybridStore(std::shared_ptr<nn::ActivationCodec> codec, std::shared_ptr<RoutePolicy> policy,
              memory::PagerConfig pager_cfg = {});

  nn::StashHandle stash(const std::string& layer, tensor::Tensor&& act) override;
  tensor::Tensor retrieve(nn::StashHandle handle) override;

  /// Device-resident bytes only: migrated tensors live host-side (the
  /// pager's disk tier) and do not count — that is the point of migration.
  std::size_t held_bytes() const override { return pager_.resident_bytes(); }

  std::map<std::string, nn::StoreStats> stats() const override { return pager_.stats(); }
  void reset_stats() override { pager_.reset_stats(); }

  std::size_t host_bytes() const { return pager_.spilled_bytes(); }
  const MigrationLedger& migration() const { return migration_; }
  std::map<std::string, StashRoute> last_routes() const { return routes_; }
  memory::ActivationPager& pager() { return pager_; }

 private:
  std::shared_ptr<nn::ActivationCodec> codec_;
  std::shared_ptr<RoutePolicy> policy_;
  memory::ActivationPager pager_;
  std::map<nn::StashHandle, StashRoute> route_of_;  ///< live handles only
  MigrationLedger migration_;
  std::map<std::string, StashRoute> routes_;
};

}  // namespace ebct::core
