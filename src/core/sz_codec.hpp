#pragma once

/// \file sz_codec.hpp
/// ActivationCodec backed by the SZ error-bounded compressor, with a
/// per-layer absolute error bound that the adaptive scheme updates every W
/// iterations (phase 4 of the framework, §4.4).

#include <map>
#include <mutex>
#include <string>

#include "nn/activation_store.hpp"
#include "sz/compressor.hpp"

namespace ebct::core {

/// Registry spec: "sz[:eb=<bound>,mode=abs|rel,zero=none|rezero|rle,threads=<n>]"
/// — unset parameters inherit the FrameworkConfig defaults (bootstrap
/// error bound, zero mode, compressor thread cap).
class SzActivationCodec : public nn::ActivationCodec, public nn::ErrorBoundedCodec {
 public:
  explicit SzActivationCodec(sz::Config base_config);

  nn::EncodedActivation encode(const std::string& layer, const tensor::Tensor& act) override;
  tensor::Tensor decode(const nn::EncodedActivation& enc) override;
  std::string name() const override { return "sz-error-bounded"; }

  /// Install the adaptive per-layer bound (phase 3 output).
  void set_layer_bound(const std::string& layer, double eb) override;
  double layer_bound(const std::string& layer) const override;

  /// Compression ratio of the most recent encode per layer.
  std::map<std::string, double> last_ratios() const override;

  /// The adaptive scheme's per-layer bounds are *absolute* (Eq. 9); in
  /// relative-bound mode an installed value would be silently rescaled by
  /// each layer's range, so the codec reports itself unbounded and the
  /// scheme disables instead of mis-programming it.
  bool error_bounded() const override {
    return base_.bound_mode == sz::BoundMode::kAbsolute;
  }

  /// Two layers encode identically iff the bound in force is the same —
  /// the transform is otherwise layer-blind. Under adaptive per-layer
  /// bounds this answer changes over time, which is exactly why the pager
  /// re-asks at every put instead of caching it.
  bool encoding_layer_invariant(const std::string& a,
                                const std::string& b) const override {
    return layer_bound(a) == layer_bound(b);
  }

  /// Native streaming products: run sz::Compressor directly on the window
  /// span — encode() above only moves the compressor's bytes out, so the
  /// payload is byte-identical while skipping the Tensor staging copy the
  /// generic fallback pays. The product snapshots the config (with the
  /// bound in force for nn::kStreamLayer) at creation.
  std::unique_ptr<nn::WindowEncoder> make_window_encoder() override;
  std::unique_ptr<nn::WindowDecoder> make_window_decoder() override;

  const sz::Config& base_config() const { return base_; }

 private:
  sz::Config base_;
  mutable std::mutex mu_;
  std::map<std::string, double> bounds_;
  std::map<std::string, double> last_ratio_;
};

}  // namespace ebct::core
