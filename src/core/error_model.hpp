#pragma once

/// \file error_model.hpp
/// The paper's error-propagation model (§3.2): uniform compression error on
/// the activations of a convolutional layer induces normally distributed
/// error on its weight gradient, with
///
///   sigma ≈ a * L̄ * sqrt(N) * eb          (Eq. 6)
///   sigma' = sigma * sqrt(R)               (Eq. 7, zero preservation)
///
/// and the inverse used by the activation assessment (Eq. 9):
///
///   eb = sigma_target / (a * L̄ * sqrt(N * R))
///
/// where L̄ is the mean |loss| reaching the layer, N the batch size and R
/// the non-zero fraction of the activation tensor.

#include <cstddef>

namespace ebct::core {

struct LayerStatistics {
  double loss_mean_abs = 0.0;    ///< L̄, mean |dL/dy| at the layer
  double density = 1.0;          ///< R, non-zero fraction of the activation
  double momentum_mean_abs = 0.0;///< M̄, mean |momentum| of the layer weights
  std::size_t batch_size = 0;    ///< N
};

class ErrorModel {
 public:
  explicit ErrorModel(double coefficient_a = 0.32) : a_(coefficient_a) {}

  double coefficient_a() const { return a_; }

  /// Predicted gradient-error sigma for a given activation error bound
  /// (Eqs. 6 + 7). Zero-preserving compression passes R < 1.
  double predict_sigma(const LayerStatistics& s, double error_bound) const;

  /// Invert the model: the largest activation error bound whose induced
  /// gradient error stays at `sigma_target` (Eq. 9).
  double solve_error_bound(const LayerStatistics& s, double sigma_target) const;

 private:
  double a_;
};

}  // namespace ebct::core
