#pragma once

/// \file error_injection.hpp
/// Error-injection harness used throughout §3 of the paper: instead of
/// running the compressor, inject its *modelled* error — uniform on the
/// activations (Fig. 6), normal on the gradients (Fig. 9) — and observe the
/// propagation. InjectionStore drops into the training loop exactly where
/// the compressed store would.

#include <span>

#include "nn/activation_store.hpp"
#include "tensor/rng.hpp"

namespace ebct::core {

/// Add U(-eb, +eb) noise to every element; when `preserve_zeros` is set,
/// exact zeros stay exact (the Fig. 6b configuration).
void inject_uniform(std::span<float> data, double eb, tensor::Rng& rng,
                    bool preserve_zeros);

/// Add N(0, sigma) noise to every element (gradient-level injection, Fig. 9).
void inject_normal(std::span<float> data, double sigma, tensor::Rng& rng);

/// ActivationStore that keeps raw tensors but perturbs them with modelled
/// uniform compression error on retrieve.
class InjectionStore : public nn::ActivationStore {
 public:
  InjectionStore(double eb, bool preserve_zeros, std::uint64_t seed)
      : eb_(eb), preserve_zeros_(preserve_zeros), rng_(seed) {}

  nn::StashHandle stash(const std::string& layer, tensor::Tensor&& act) override {
    return inner_.stash(layer, std::move(act));
  }
  tensor::Tensor retrieve(nn::StashHandle handle) override {
    tensor::Tensor t = inner_.retrieve(handle);
    inject_uniform(t.span(), eb_, rng_, preserve_zeros_);
    return t;
  }
  std::size_t held_bytes() const override { return inner_.held_bytes(); }

  void set_error_bound(double eb) { eb_ = eb; }
  double error_bound() const { return eb_; }

 private:
  nn::RawStore inner_;
  double eb_;
  bool preserve_zeros_;
  tensor::Rng rng_;
};

}  // namespace ebct::core
