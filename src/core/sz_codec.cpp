#include "core/sz_codec.hpp"

#include <cstring>
#include <stdexcept>

#include "core/codec_registry.hpp"
#include "nn/streaming.hpp"

namespace ebct::core {

using nn::EncodedActivation;
using tensor::Tensor;

namespace {

/// Streaming window products: the one-shot encode() derives plane_width
/// from the innermost dimension, which for a streamed window of shape
/// nchw(1,1,1,n) is n — so setting plane_width = n here reproduces the
/// one-shot bytes exactly.
class SzWindowEncoder final : public nn::WindowEncoder {
 public:
  explicit SzWindowEncoder(sz::Config cfg) : cfg_(cfg) {}

  void encode_window(const float* data, std::size_t n,
                     std::vector<std::uint8_t>& out) override {
    sz::Config cfg = cfg_;
    if (cfg.predictor == sz::Predictor::kLorenzo2D)
      cfg.plane_width = static_cast<std::uint32_t>(n);
    sz::Compressor comp(cfg);
    sz::CompressedBuffer buf = comp.compress({data, n});
    out = std::move(buf.bytes);
  }

 private:
  sz::Config cfg_;
};

class SzWindowDecoder final : public nn::WindowDecoder {
 public:
  explicit SzWindowDecoder(sz::Config cfg) : cfg_(cfg) {}

  void decode_window(const std::uint8_t* payload, std::size_t payload_len,
                     std::size_t numel, std::vector<float>& out) override {
    sz::CompressedBuffer buf;
    buf.bytes.assign(payload, payload + payload_len);
    buf.num_elements = numel;
    sz::Config cfg = cfg_;
    if (cfg.predictor == sz::Predictor::kLorenzo2D)
      cfg.plane_width = static_cast<std::uint32_t>(numel);
    sz::Compressor comp(cfg);
    out.resize(numel);
    comp.decompress(buf, {out.data(), numel});
  }

 private:
  sz::Config cfg_;
};

}  // namespace

SzActivationCodec::SzActivationCodec(sz::Config base_config) : base_(base_config) {}

void SzActivationCodec::set_layer_bound(const std::string& layer, double eb) {
  std::lock_guard<std::mutex> lock(mu_);
  bounds_[layer] = eb;
}

double SzActivationCodec::layer_bound(const std::string& layer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bounds_.find(layer);
  return it == bounds_.end() ? base_.error_bound : it->second;
}

std::map<std::string, double> SzActivationCodec::last_ratios() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ratio_;
}

EncodedActivation SzActivationCodec::encode(const std::string& layer, const Tensor& act) {
  sz::Config cfg = base_;
  cfg.error_bound = layer_bound(layer);
  // The 2-D Lorenzo predictor works over rows of the innermost dimension;
  // the plane width is a property of the tensor, not the spec, so it is
  // derived per activation here (and again at decode — the stream header
  // records the predictor but not the width).
  if (cfg.predictor == sz::Predictor::kLorenzo2D)
    cfg.plane_width = static_cast<std::uint32_t>(act.shape().dim(act.shape().rank() - 1));
  sz::Compressor comp(cfg);
  sz::CompressedBuffer buf = comp.compress(act.span());
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_ratio_[layer] = buf.compression_ratio();
  }
  EncodedActivation enc;
  enc.layer = layer;
  enc.shape = act.shape();
  enc.bytes = std::move(buf.bytes);
  return enc;
}

Tensor SzActivationCodec::decode(const EncodedActivation& enc) {
  sz::CompressedBuffer buf;
  buf.bytes = enc.bytes;  // copy: the store still owns its entry
  buf.num_elements = enc.shape.numel();
  sz::Config cfg = base_;
  if (cfg.predictor == sz::Predictor::kLorenzo2D)
    cfg.plane_width = static_cast<std::uint32_t>(enc.shape.dim(enc.shape.rank() - 1));
  sz::Compressor comp(cfg);
  Tensor out(enc.shape);
  comp.decompress(buf, out.span());
  return out;
}

std::unique_ptr<nn::WindowEncoder> SzActivationCodec::make_window_encoder() {
  sz::Config cfg = base_;
  cfg.error_bound = layer_bound(nn::kStreamLayer);
  return std::make_unique<SzWindowEncoder>(cfg);
}

std::unique_ptr<nn::WindowDecoder> SzActivationCodec::make_window_decoder() {
  sz::Config cfg = base_;
  cfg.error_bound = layer_bound(nn::kStreamLayer);
  return std::make_unique<SzWindowDecoder>(cfg);
}

void detail::register_sz_codec(CodecRegistry& reg) {
  reg.register_codec(
      {"sz",
       "SZ error-bounded lossy compressor — the framework codec (adaptive-compatible)",
       "eb=<abs bound>, mode=abs|rel, zero=none|rezero|rle, threads=<n>, "
       "predictor=lorenzo1d|lorenzo2d, block=<n>",
       true},
      [](const std::string& params, const FrameworkConfig& fw) {
        CodecParams p("sz", params);
        // Spec defaults reproduce what TrainingSession hard-wired before the
        // registry: bootstrap bound, framework zero mode, framework thread
        // cap — so "sz" with no parameters trains byte-identically to the
        // pre-registry pipeline.
        sz::Config cfg;
        cfg.error_bound = p.get_double("eb", fw.bootstrap_error_bound);
        cfg.num_threads = p.get_uint("threads", fw.compressor_threads);
        const std::string predictor = p.get_string("predictor", "lorenzo1d");
        if (predictor == "lorenzo1d") {
          cfg.predictor = sz::Predictor::kLorenzo1D;
        } else if (predictor == "lorenzo2d") {
          // plane_width stays 0 here: the codec derives it from each
          // activation's innermost dimension at encode/decode time.
          cfg.predictor = sz::Predictor::kLorenzo2D;
        } else {
          throw std::invalid_argument(
              "sz: predictor must be lorenzo1d or lorenzo2d, got '" + predictor + "'");
        }
        const std::uint32_t block = p.get_uint("block", cfg.block_size);
        if (block == 0)
          throw std::invalid_argument("sz: block must be a positive block size");
        cfg.block_size = block;
        const std::string mode = p.get_string("mode", "abs");
        if (mode == "abs") {
          cfg.bound_mode = sz::BoundMode::kAbsolute;
        } else if (mode == "rel") {
          cfg.bound_mode = sz::BoundMode::kRelative;
        } else {
          throw std::invalid_argument("sz: mode must be abs or rel, got '" + mode + "'");
        }
        const std::string zero_default =
            fw.zero_mode == sz::ZeroMode::kNone       ? "none"
            : fw.zero_mode == sz::ZeroMode::kExactRle ? "rle"
                                                      : "rezero";
        const std::string zero = p.get_string("zero", zero_default);
        if (zero == "none") {
          cfg.zero_mode = sz::ZeroMode::kNone;
        } else if (zero == "rezero") {
          cfg.zero_mode = sz::ZeroMode::kRezero;
        } else if (zero == "rle") {
          cfg.zero_mode = sz::ZeroMode::kExactRle;
        } else {
          throw std::invalid_argument("sz: zero must be none, rezero or rle, got '" +
                                      zero + "'");
        }
        p.finish();
        return std::make_shared<SzActivationCodec>(cfg);
      });
}

}  // namespace ebct::core
