#include "core/sz_codec.hpp"

#include <cstring>

namespace ebct::core {

using nn::EncodedActivation;
using tensor::Tensor;

SzActivationCodec::SzActivationCodec(sz::Config base_config) : base_(base_config) {}

void SzActivationCodec::set_layer_bound(const std::string& layer, double eb) {
  std::lock_guard<std::mutex> lock(mu_);
  bounds_[layer] = eb;
}

double SzActivationCodec::layer_bound(const std::string& layer) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bounds_.find(layer);
  return it == bounds_.end() ? base_.error_bound : it->second;
}

std::map<std::string, double> SzActivationCodec::last_ratios() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ratio_;
}

EncodedActivation SzActivationCodec::encode(const std::string& layer, const Tensor& act) {
  sz::Config cfg = base_;
  cfg.error_bound = layer_bound(layer);
  sz::Compressor comp(cfg);
  sz::CompressedBuffer buf = comp.compress(act.span());
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_ratio_[layer] = buf.compression_ratio();
  }
  EncodedActivation enc;
  enc.layer = layer;
  enc.shape = act.shape();
  enc.bytes = std::move(buf.bytes);
  return enc;
}

Tensor SzActivationCodec::decode(const EncodedActivation& enc) {
  sz::CompressedBuffer buf;
  buf.bytes = enc.bytes;  // copy: the store still owns its entry
  buf.num_elements = enc.shape.numel();
  sz::Compressor comp(base_);
  Tensor out(enc.shape);
  comp.decompress(buf, out.span());
  return out;
}

}  // namespace ebct::core
