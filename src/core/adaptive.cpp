#include "core/adaptive.hpp"

#include <algorithm>

#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"

namespace ebct::core {

namespace {

/// The capability cast, centralised: a codec drives the adaptive loop iff
/// it exposes ErrorBoundedCodec AND reports its bounds as real (a policy
/// with no error-bounded member implements the interface but returns
/// error_bounded() == false).
nn::ErrorBoundedCodec* as_error_bounded(nn::ActivationCodec* codec) {
  auto* eb = dynamic_cast<nn::ErrorBoundedCodec*>(codec);
  return (eb != nullptr && eb->error_bounded()) ? eb : nullptr;
}

}  // namespace

AdaptiveScheme::AdaptiveScheme(FrameworkConfig cfg, nn::ActivationCodec* codec)
    : cfg_(cfg),
      eb_codec_(as_error_bounded(codec)),
      model_(cfg.coefficient_a),
      assessor_(cfg.sigma_fraction) {}

void AdaptiveScheme::update(nn::Network& net, std::size_t batch_size) {
  stats_.clear();
  bounds_.clear();
  if (!active()) return;  // unbounded codec: phases 1-4 are disabled
  net.visit([&](nn::Layer& layer) {
    auto* conv = dynamic_cast<nn::Conv2d*>(&layer);
    if (conv == nullptr) return;

    // Phase 1 — parameter collection (§4.1): semi-online L̄, R, M̄ plus the
    // offline batch size.
    LayerStatistics s;
    s.loss_mean_abs = conv->last_loss_mean_abs();
    s.density = conv->last_input_density();
    s.momentum_mean_abs = tensor::mean_abs(conv->weight().momentum.span());
    s.batch_size = batch_size;
    stats_[conv->name()] = s;

    // Phase 2 — gradient assessment (§4.2, Eq. 8).
    const double sigma_target = assessor_.target_sigma(s);

    // Phase 3 — activation assessment (§4.3, Eq. 9), clamped for safety.
    double eb = model_.solve_error_bound(s, sigma_target);
    if (eb <= 0.0) eb = cfg_.bootstrap_error_bound;
    eb = std::clamp(eb, cfg_.min_error_bound, cfg_.max_error_bound);
    bounds_[conv->name()] = eb;

    // Phase 4 — install on the compressor.
    eb_codec_->set_layer_bound(conv->name(), eb);
  });
}

}  // namespace ebct::core
