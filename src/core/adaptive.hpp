#pragma once

/// \file adaptive.hpp
/// Phases 1-4 of the framework (§4, Fig. 7): collect per-layer training
/// statistics (parameter collection), derive the acceptable gradient error
/// from the momentum (gradient assessment), invert the error model into a
/// per-layer absolute error bound (activation assessment), and install the
/// bounds on the SZ codec (adaptive compression).

#include <map>
#include <string>

#include "core/config.hpp"
#include "core/error_model.hpp"
#include "core/gradient_assessor.hpp"
#include "nn/activation_store.hpp"
#include "nn/network.hpp"

namespace ebct::core {

class AdaptiveScheme {
 public:
  /// The scheme programs against the ErrorBoundedCodec capability: any
  /// codec implementing it (sz, a policy containing sz, ...) receives
  /// per-layer bounds; for unbounded codecs (jpeg-act, lossless, none)
  /// the scheme silently disables — active() is false, update() is a
  /// no-op, and the session records the fact in IterationRecord.
  AdaptiveScheme(FrameworkConfig cfg, nn::ActivationCodec* codec);

  const FrameworkConfig& config() const { return cfg_; }

  /// Whether the driven codec accepts (and honours) error bounds.
  bool active() const { return eb_codec_ != nullptr; }

  /// True on iterations where the semi-online parameters are re-collected
  /// (every W iterations; always on iteration 0's first refresh point).
  /// Never true when the codec is not error-bounded.
  bool should_update(std::size_t iteration) const {
    return active() && iteration % cfg_.active_factor_w == 0;
  }

  /// Run phases 1-4 against the network's current state. Call after a
  /// backward pass so the conv layers carry fresh L̄ / R statistics.
  void update(nn::Network& net, std::size_t batch_size);

  /// Statistics and bounds from the most recent update (for logging and the
  /// Fig. 8 / Fig. 10 benches).
  const std::map<std::string, LayerStatistics>& last_statistics() const { return stats_; }
  const std::map<std::string, double>& last_bounds() const { return bounds_; }

  const ErrorModel& error_model() const { return model_; }
  const GradientAssessor& assessor() const { return assessor_; }

 private:
  FrameworkConfig cfg_;
  nn::ErrorBoundedCodec* eb_codec_;  ///< null when the codec is unbounded
  ErrorModel model_;
  GradientAssessor assessor_;
  std::map<std::string, LayerStatistics> stats_;
  std::map<std::string, double> bounds_;
};

}  // namespace ebct::core
