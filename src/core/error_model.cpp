#include "core/error_model.hpp"

#include <cmath>

namespace ebct::core {

double ErrorModel::predict_sigma(const LayerStatistics& s, double error_bound) const {
  if (s.batch_size == 0) return 0.0;
  const double n_eff = static_cast<double>(s.batch_size) * std::max(0.0, s.density);
  return a_ * s.loss_mean_abs * std::sqrt(n_eff) * error_bound;
}

double ErrorModel::solve_error_bound(const LayerStatistics& s, double sigma_target) const {
  const double n_eff = static_cast<double>(s.batch_size) * std::max(1e-12, s.density);
  const double denom = a_ * s.loss_mean_abs * std::sqrt(n_eff);
  if (denom <= 0.0) return 0.0;  // no signal yet; caller applies bootstrap bound
  return sigma_target / denom;
}

}  // namespace ebct::core
