#include "core/codec_registry.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "nn/streaming.hpp"

namespace ebct::core {

// ---------------------------------------------------------------------------
// CodecParams
// ---------------------------------------------------------------------------

CodecParams::CodecParams(std::string codec, const std::string& params)
    : codec_(std::move(codec)) {
  std::size_t pos = 0;
  while (pos < params.size()) {
    std::size_t end = params.find(',', pos);
    if (end == std::string::npos) end = params.size();
    const std::string item = params.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      throw std::invalid_argument(codec_ + ": empty parameter in '" + params + "'");
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(codec_ + ": expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    if (values_.count(key) != 0) {
      throw std::invalid_argument(codec_ + ": duplicate parameter '" + key + "'");
    }
    values_[key] = item.substr(eq + 1);
    consumed_[key] = false;
  }
}

std::string CodecParams::get_string(const std::string& key, const std::string& fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

double CodecParams::get_double(const std::string& key, double fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const double d = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || errno != 0) {
    throw std::invalid_argument(codec_ + ": parameter " + key + "='" + v +
                                "' is not a number");
  }
  return d;
}

std::uint32_t CodecParams::get_uint(const std::string& key, std::uint32_t fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  const std::string& v = it->second;
  // Digits only: strtoul would wrap negatives into huge values.
  bool digits_only = !v.empty();
  for (const char c : v) {
    if (c < '0' || c > '9') digits_only = false;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
  if (!digits_only || *end != '\0' || errno != 0 ||
      parsed > 0xffffffffull) {
    throw std::invalid_argument(codec_ + ": parameter " + key + "='" + v +
                                "' is not an unsigned integer");
  }
  return static_cast<std::uint32_t>(parsed);
}

void CodecParams::finish() const {
  for (const auto& [key, used] : consumed_) {
    if (!used) {
      throw std::invalid_argument(codec_ + ": unknown parameter '" + key + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// CodecRegistry
// ---------------------------------------------------------------------------

CodecRegistry& CodecRegistry::instance() {
  // The hooks register against the object directly (never back through
  // instance()), so first use — from any thread — builds the full table
  // inside this thread-safe static initialization.
  static CodecRegistry& reg = *[]() {
    static CodecRegistry r;
    r.ensure_builtins();
    return &r;
  }();
  return reg;
}

void CodecRegistry::ensure_builtins() {
  if (builtins_registered_) return;
  builtins_registered_ = true;
  detail::register_sz_codec(*this);
  detail::register_lossless_codec(*this);
  detail::register_jpegact_codec(*this);
  detail::register_none_codec(*this);
  detail::register_policy_codec(*this);
}

void CodecRegistry::register_codec(CodecInfo info, CodecFactory factory) {
  if (info.name.empty() ||
      info.name.find_first_of(":,;= \t") != std::string::npos) {
    throw std::invalid_argument("CodecRegistry: invalid codec name '" + info.name + "'");
  }
  if (!factory) {
    throw std::invalid_argument("CodecRegistry: null factory for '" + info.name + "'");
  }
  if (factories_.count(info.name) != 0) {
    throw std::invalid_argument("CodecRegistry: codec '" + info.name +
                                "' is already registered");
  }
  const std::string name = info.name;
  factories_.emplace(name, std::make_pair(std::move(info), std::move(factory)));
}

std::pair<std::string, std::string> CodecRegistry::split_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

std::shared_ptr<nn::ActivationCodec> CodecRegistry::create(
    const std::string& spec, const FrameworkConfig& fw) const {
  const auto [name, params] = split_spec(spec);
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [n, f] : factories_) {
      (void)f;
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("CodecRegistry: unknown codec '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second.second(params, fw);
}

bool CodecRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<CodecInfo> CodecRegistry::list() const {
  std::vector<CodecInfo> out;
  out.reserve(factories_.size());
  for (const auto& [name, entry] : factories_) {
    (void)name;
    out.push_back(entry.first);
  }
  return out;
}

// ---------------------------------------------------------------------------
// "none": identity codec — raw bytes in, raw bytes out. The registry face
// of the stock-framework baseline, and the building block for policy rules
// that exempt layers from compression (the paper's 1x1-kernel caveat).
// ---------------------------------------------------------------------------

namespace {

/// Streaming products for "none": the payload IS the raw float bytes, so
/// the window transform is a memcpy in each direction.
class NoneWindowEncoder final : public nn::WindowEncoder {
 public:
  void encode_window(const float* data, std::size_t n,
                     std::vector<std::uint8_t>& out) override {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(data);
    out.assign(bytes, bytes + n * sizeof(float));
  }
};

class NoneWindowDecoder final : public nn::WindowDecoder {
 public:
  void decode_window(const std::uint8_t* payload, std::size_t payload_len,
                     std::size_t numel, std::vector<float>& out) override {
    if (payload_len != numel * sizeof(float))
      throw std::runtime_error("none codec: streamed payload size does not match numel");
    out.resize(numel);
    std::memcpy(out.data(), payload, payload_len);
  }
};

class NoneCodec : public nn::ActivationCodec {
 public:
  nn::EncodedActivation encode(const std::string& layer,
                               const tensor::Tensor& act) override {
    nn::EncodedActivation enc;
    enc.layer = layer;
    enc.shape = act.shape();
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(act.data());
    enc.bytes.assign(bytes, bytes + act.bytes());
    return enc;
  }

  tensor::Tensor decode(const nn::EncodedActivation& enc) override {
    tensor::Tensor out(enc.shape);
    if (enc.bytes.size() != out.bytes()) {
      throw std::invalid_argument("none codec: payload size does not match shape");
    }
    std::memcpy(out.data(), enc.bytes.data(), enc.bytes.size());
    return out;
  }

  std::string name() const override { return "none"; }

  /// Identity bytes depend on nothing but the tensor — trivially invariant
  /// across layer names (lets shared-stash dedup engage on none routes).
  bool encoding_layer_invariant(const std::string&, const std::string&) const override {
    return true;
  }

  std::unique_ptr<nn::WindowEncoder> make_window_encoder() override {
    return std::make_unique<NoneWindowEncoder>();
  }
  std::unique_ptr<nn::WindowDecoder> make_window_decoder() override {
    return std::make_unique<NoneWindowDecoder>();
  }
};

}  // namespace

void detail::register_none_codec(CodecRegistry& reg) {
  reg.register_codec(
      {"none", "identity (raw bytes) — the uncompressed baseline", "", false},
      [](const std::string& params, const FrameworkConfig&) {
        CodecParams p("none", params);
        p.finish();  // takes no parameters
        return std::make_shared<NoneCodec>();
      });
}

// ---------------------------------------------------------------------------
// CodecPolicy
// ---------------------------------------------------------------------------

CodecPolicy::CodecPolicy(std::vector<Rule> rules, std::size_t min_bytes)
    : rules_(std::move(rules)), min_bytes_(min_bytes) {
  if (rules_.empty()) {
    throw std::invalid_argument("CodecPolicy: at least one rule is required");
  }
  for (const Rule& r : rules_) {
    if (!r.codec) {
      throw std::invalid_argument("CodecPolicy: null codec for pattern '" +
                                  r.pattern + "'");
    }
    if (r.max_bytes > 0 && r.min_bytes >= r.max_bytes) {
      throw std::invalid_argument("CodecPolicy: rule '" + r.pattern +
                                  "' has an empty size window (min_bytes=" +
                                  std::to_string(r.min_bytes) + " >= max_bytes=" +
                                  std::to_string(r.max_bytes) + ")");
    }
  }
  if (min_bytes_ > 0) threshold_codec_ = std::make_shared<NoneCodec>();
}

namespace {
bool size_admits(const CodecPolicy::Rule& r, std::size_t bytes) {
  return bytes >= r.min_bytes && (r.max_bytes == 0 || bytes < r.max_bytes);
}
}  // namespace

bool CodecPolicy::glob_match(const std::string& pattern, const std::string& text) {
  // Iterative '*' glob with backtracking to the most recent star.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (p < pattern.size() && pattern[p] == text[t]) {
      ++p;
      ++t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

nn::ActivationCodec& CodecPolicy::codec_for(const std::string& layer) const {
  for (const Rule& r : rules_) {
    if (glob_match(r.pattern, layer)) return *r.codec;
  }
  throw std::invalid_argument("CodecPolicy: no rule matches layer '" + layer +
                              "' (add a trailing '*' catch-all)");
}

nn::ActivationCodec& CodecPolicy::codec_for(const std::string& layer,
                                            std::size_t bytes) const {
  for (const Rule& r : rules_) {
    if (glob_match(r.pattern, layer) && size_admits(r, bytes)) return *r.codec;
  }
  throw std::invalid_argument(
      "CodecPolicy: no rule matches layer '" + layer + "' at " +
      std::to_string(bytes) +
      " bytes (every glob match size-excluded the activation — add a "
      "catch-all '*' rule without a size window)");
}

bool CodecPolicy::encoding_layer_invariant(const std::string& a,
                                           const std::string& b) const {
  std::vector<std::size_t> ca, cb;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (glob_match(rules_[i].pattern, a)) ca.push_back(i);
    if (glob_match(rules_[i].pattern, b)) cb.push_back(i);
  }
  if (ca.empty() || ca != cb) return false;
  for (const std::size_t i : ca) {
    if (!rules_[i].codec->encoding_layer_invariant(a, b)) return false;
  }
  return true;
}

nn::EncodedActivation CodecPolicy::encode(const std::string& layer,
                                          const tensor::Tensor& act) {
  if (min_bytes_ > 0 && act.bytes() < min_bytes_) {
    return threshold_codec_->encode(layer, act);
  }
  return codec_for(layer, act.bytes()).encode(layer, act);
}

tensor::Tensor CodecPolicy::decode(const nn::EncodedActivation& enc) {
  // The size rule is a pure function of the recorded shape, so it selects
  // the identity codec exactly when encode() did.
  if (min_bytes_ > 0 && enc.shape.numel() * sizeof(float) < min_bytes_) {
    return threshold_codec_->decode(enc);
  }
  // The layer recorded at encode time pins the round trip to the codec
  // that produced the bytes; the size the rules see is recomputed from the
  // recorded shape, so the same rule is selected as at encode().
  return codec_for(enc.layer, enc.shape.numel() * sizeof(float)).decode(enc);
}

std::map<std::string, double> CodecPolicy::last_ratios() const {
  std::map<std::string, double> merged;
  for (const Rule& r : rules_) {
    // insert() keeps the first (highest-priority) entry on key collisions.
    const auto ratios = r.codec->last_ratios();
    merged.insert(ratios.begin(), ratios.end());
  }
  return merged;
}

void CodecPolicy::set_layer_bound(const std::string& layer, double eb) {
  // Bounds land only on layers routed to an error-bounded member; for the
  // rest the install is a no-op, which is exactly the per-layer "adaptive
  // where it applies" semantics a mixed policy wants. With per-rule size
  // windows the layer may route to any glob-matching rule depending on
  // the activation size, so the bound is installed on every one of them.
  for (const Rule& r : rules_) {
    if (!glob_match(r.pattern, layer)) continue;
    auto* eb_codec = dynamic_cast<nn::ErrorBoundedCodec*>(r.codec.get());
    if (eb_codec != nullptr && eb_codec->error_bounded()) {
      eb_codec->set_layer_bound(layer, eb);
    }
  }
}

double CodecPolicy::layer_bound(const std::string& layer) const {
  for (const Rule& r : rules_) {
    if (!glob_match(r.pattern, layer)) continue;
    auto* eb_codec = dynamic_cast<const nn::ErrorBoundedCodec*>(r.codec.get());
    if (eb_codec != nullptr && eb_codec->error_bounded()) {
      return eb_codec->layer_bound(layer);
    }
    return 0.0;  // routed to an unbounded codec
  }
  return 0.0;
}

bool CodecPolicy::error_bounded() const {
  for (const Rule& r : rules_) {
    auto* eb_codec = dynamic_cast<const nn::ErrorBoundedCodec*>(r.codec.get());
    if (eb_codec != nullptr && eb_codec->error_bounded()) return true;
  }
  return false;
}

void detail::register_policy_codec(CodecRegistry& reg) {
  reg.register_codec(
      {"policy",
       "per-layer routing: first glob pattern matching the layer name wins",
       "[min_bytes=<n>,]<pattern>[\\[min_bytes=<n>,max_bytes=<n>\\]]=<spec>;... "
       "e.g. policy:min_bytes=4096,stem*=none;*conv*[min_bytes=65536]=sz;*=lossless",
       true},
      [&reg](const std::string& raw_params, const FrameworkConfig& fw) {
        std::string params = raw_params;
        // Optional leading size threshold, set off from the first rule by a
        // ',' (rules themselves never start with "min_bytes=" — '=' would
        // make it a pattern, and patterns with '=' are rejected below
        // anyway by the spec lookup failing loudly).
        std::size_t min_bytes = 0;
        const std::string kMin = "min_bytes=";
        if (params.rfind(kMin, 0) == 0) {
          const std::size_t comma = params.find(',');
          if (comma == std::string::npos) {
            throw std::invalid_argument(
                "policy: min_bytes=<n> must be followed by ',' and at least "
                "one pattern=spec rule");
          }
          const std::string digits = params.substr(kMin.size(), comma - kMin.size());
          if (digits.empty() ||
              digits.find_first_not_of("0123456789") != std::string::npos) {
            throw std::invalid_argument("policy: min_bytes expects a plain byte "
                                        "count, got '" + digits + "'");
          }
          min_bytes = static_cast<std::size_t>(std::stoull(digits));
          params = params.substr(comma + 1);
        }
        if (params.empty()) {
          throw std::invalid_argument("policy: expected <pattern>=<spec>;... rules");
        }
        std::vector<CodecPolicy::Rule> rules;
        std::size_t pos = 0;
        while (pos <= params.size()) {
          std::size_t end = params.find(';', pos);
          if (end == std::string::npos) end = params.size();
          const std::string item = params.substr(pos, end - pos);
          pos = end + 1;
          if (item.empty()) continue;  // tolerate a trailing ';'
          std::string pattern, spec;
          std::size_t rule_min = 0, rule_max = 0;
          // Optional per-rule size window in brackets right after the
          // pattern: "*conv*[min_bytes=65536,max_bytes=4194304]=sz". The
          // window's '=' signs come before the rule's own '=', so the
          // bracket is parsed off first.
          const std::size_t lb = item.find('[');
          if (lb != std::string::npos) {
            const std::size_t rb = item.find(']', lb);
            if (lb == 0 || rb == std::string::npos || rb + 1 >= item.size() ||
                item[rb + 1] != '=') {
              throw std::invalid_argument(
                  "policy: expected pattern[min_bytes=<n>,max_bytes=<n>]=spec, "
                  "got '" + item + "'");
            }
            pattern = item.substr(0, lb);
            const std::string window = item.substr(lb + 1, rb - lb - 1);
            if (window.empty()) {
              throw std::invalid_argument("policy: empty size window on rule '" +
                                          pattern + "'");
            }
            // CodecParams enforces key=value form, uniqueness and full
            // consumption; the byte values themselves must be plain digits
            // (same stance as the policy-wide min_bytes).
            CodecParams wp("policy rule '" + pattern + "'", window);
            const auto parse_bytes = [&](const char* key) -> std::size_t {
              const std::string v = wp.get_string(key, "0");
              if (v.empty() ||
                  v.find_first_not_of("0123456789") != std::string::npos) {
                throw std::invalid_argument("policy: rule '" + pattern + "' " +
                                            key + " expects a plain byte count, "
                                            "got '" + v + "'");
              }
              return static_cast<std::size_t>(std::stoull(v));
            };
            rule_min = parse_bytes("min_bytes");
            rule_max = parse_bytes("max_bytes");
            wp.finish();
            spec = item.substr(rb + 2);
            if (spec.empty()) {
              throw std::invalid_argument("policy: rule '" + pattern +
                                          "' is missing a codec spec");
            }
          } else {
            const std::size_t eq = item.find('=');
            if (eq == std::string::npos || eq == 0) {
              throw std::invalid_argument("policy: expected pattern=spec, got '" +
                                          item + "'");
            }
            pattern = item.substr(0, eq);
            spec = item.substr(eq + 1);
          }
          if (CodecRegistry::split_spec(spec).first == "policy") {
            // ';' cannot nest: an inner policy's rules would have been
            // split by this loop. Compose CodecPolicy objects in code
            // for that.
            throw std::invalid_argument("policy: nested policy specs are not "
                                        "supported in string form");
          }
          rules.push_back({pattern, reg.create(spec, fw), rule_min, rule_max});
        }
        return std::make_shared<CodecPolicy>(std::move(rules), min_bytes);
      });
}

}  // namespace ebct::core
