#pragma once

/// \file timeline.hpp
/// Event-level activation-lifetime simulation: replays one training
/// iteration as a sequence of (alloc, free) events — forward allocates each
/// layer's output and stashes, backward frees stashes in LIFO order — and
/// reports the exact peak, not just the sum. This refines the static
/// estimate in accounting.hpp: summation over-counts when early stashes die
/// before late feature maps peak; the timeline resolves the true high-water
/// mark the way a real allocator would see it.

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.hpp"

namespace ebct::memory {

struct TimelineEvent {
  std::string label;
  std::ptrdiff_t delta_bytes = 0;  ///< positive = alloc, negative = free
  std::size_t live_after = 0;      ///< live bytes after this event
};

struct TimelineResult {
  std::vector<TimelineEvent> events;
  std::size_t peak_bytes = 0;
  std::size_t peak_event_index = 0;

  /// Position of the peak in the iteration (0 = start of forward,
  /// 1 = end of backward).
  double peak_position() const {
    return events.empty() ? 0.0
                          : static_cast<double>(peak_event_index) /
                                static_cast<double>(events.size());
  }
};

/// Simulate one iteration of `net` at the given input shape. Stashes are
/// scaled by 1/activation_ratio (compression). Weight/optimizer bytes are a
/// constant floor added to every event.
TimelineResult simulate_iteration(nn::Network& net, const tensor::Shape& input,
                                  double activation_ratio = 1.0);

}  // namespace ebct::memory
