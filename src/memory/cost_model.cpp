#include "memory/cost_model.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ebct::memory {

namespace {

/// Strict double parse: the whole token must be consumed and the value
/// finite and non-negative. Mirrors the env_bytes/env_flag discipline in
/// core/session.cpp — a malformed value throws instead of being ignored.
double parse_rate(const std::string& key, const std::string& token) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("EBCT_RECOMPUTE_RATES: bad value for '" + key +
                                "': '" + token + "'");
  }
  if (pos != token.size() || !std::isfinite(v) || v < 0.0)
    throw std::invalid_argument("EBCT_RECOMPUTE_RATES: bad value for '" + key +
                                "': '" + token + "'");
  return v;
}

CostRates parse_pinned_spec(const std::string& spec) {
  static const char* kKeys[] = {"encode", "decode", "write", "read", "flop"};
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = spec.find(',', start);
    parts.push_back(spec.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (parts.size() != 5)
    throw std::invalid_argument(
        "EBCT_RECOMPUTE_RATES: expected 'encode=F,decode=F,write=F,read=F,flop=F', got '" +
        spec + "'");
  double vals[5];
  for (std::size_t i = 0; i < 5; ++i) {
    const std::string key(kKeys[i]);
    const std::string prefix = key + "=";
    if (parts[i].rfind(prefix, 0) != 0)
      throw std::invalid_argument("EBCT_RECOMPUTE_RATES: expected '" + prefix +
                                  "...' at position " + std::to_string(i) + ", got '" +
                                  parts[i] + "'");
    vals[i] = parse_rate(key, parts[i].substr(prefix.size()));
  }
  CostRates r;
  r.encode_ns_per_byte = vals[0];
  r.decode_ns_per_byte = vals[1];
  r.write_ns_per_byte = vals[2];
  r.read_ns_per_byte = vals[3];
  r.flop_ns = vals[4];
  return r;
}

}  // namespace

void CostModel::RateAcc::observe(std::size_t b, double t, std::size_t freeze_at) {
  if (frozen || b == 0) return;
  bytes += b;
  ns += t;
  ++samples;
  if (samples >= freeze_at) {
    frozen_rate = ns / static_cast<double>(bytes);
    frozen = true;
  }
}

CostModel::CostModel(const std::string& pinned_spec) {
  if (!pinned_spec.empty()) {
    pinned_rates_ = parse_pinned_spec(pinned_spec);
    pinned_ = true;
  }
}

void CostModel::observe_encode(std::size_t bytes, double ns) {
  if (pinned_) return;
  std::lock_guard<std::mutex> lk(mu_);
  encode_.observe(bytes, ns, kCalibrationSamples);
}

void CostModel::observe_decode(std::size_t bytes, double ns) {
  if (pinned_) return;
  std::lock_guard<std::mutex> lk(mu_);
  decode_.observe(bytes, ns, kCalibrationSamples);
}

void CostModel::observe_spill_write(std::size_t bytes, double ns) {
  if (pinned_) return;
  std::lock_guard<std::mutex> lk(mu_);
  write_.observe(bytes, ns, kCalibrationSamples);
}

void CostModel::observe_spill_read(std::size_t bytes, double ns) {
  if (pinned_) return;
  std::lock_guard<std::mutex> lk(mu_);
  read_.observe(bytes, ns, kCalibrationSamples);
}

bool CostModel::calibrated() const {
  if (pinned_) return true;
  std::lock_guard<std::mutex> lk(mu_);
  return encode_.frozen && write_.frozen && read_.frozen;
}

bool CostModel::prefer_recompute(std::size_t raw_bytes, std::size_t blob_bytes,
                                 double flops) const {
  CostRates r;
  if (pinned_) {
    r = pinned_rates_;
  } else {
    std::lock_guard<std::mutex> lk(mu_);
    if (!(encode_.frozen && write_.frozen && read_.frozen)) return false;
    r.encode_ns_per_byte = encode_.frozen_rate;
    r.write_ns_per_byte = write_.frozen_rate;
    r.read_ns_per_byte = read_.frozen_rate;
    r.flop_ns = kDefaultFlopNs;
  }
  const double recompute_ns =
      flops * r.flop_ns + static_cast<double>(raw_bytes) * r.encode_ns_per_byte;
  const double spill_ns = static_cast<double>(blob_bytes) *
                          (r.write_ns_per_byte + r.read_ns_per_byte);
  return recompute_ns < spill_ns;
}

CostModelSnapshot CostModel::snapshot() const {
  CostModelSnapshot s;
  s.pinned = pinned_;
  if (pinned_) {
    s.rates = pinned_rates_;
    s.calibrated = true;
    return s;
  }
  std::lock_guard<std::mutex> lk(mu_);
  s.calibrated = encode_.frozen && write_.frozen && read_.frozen;
  auto rate_of = [](const RateAcc& a) {
    if (a.frozen) return a.frozen_rate;
    return a.bytes == 0 ? 0.0 : a.ns / static_cast<double>(a.bytes);
  };
  s.rates.encode_ns_per_byte = rate_of(encode_);
  s.rates.decode_ns_per_byte = rate_of(decode_);
  s.rates.write_ns_per_byte = rate_of(write_);
  s.rates.read_ns_per_byte = rate_of(read_);
  s.rates.flop_ns = kDefaultFlopNs;
  s.encode_samples = encode_.samples;
  s.decode_samples = decode_.samples;
  s.write_samples = write_.samples;
  s.read_samples = read_.samples;
  return s;
}

}  // namespace ebct::memory
