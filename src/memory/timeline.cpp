#include "memory/timeline.hpp"

#include <algorithm>

namespace ebct::memory {

using tensor::Shape;

TimelineResult simulate_iteration(nn::Network& net, const Shape& input,
                                  double activation_ratio) {
  TimelineResult r;
  std::size_t fixed = 0;
  for (nn::Param* p : net.params())
    fixed += p->value.bytes() + p->grad.bytes() + p->momentum.bytes();

  std::size_t live = fixed;
  auto emit = [&](const std::string& label, std::ptrdiff_t delta) {
    live = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(live) + delta);
    r.events.push_back({label, delta, live});
    if (live > r.peak_bytes) {
      r.peak_bytes = live;
      r.peak_event_index = r.events.size() - 1;
    }
  };
  emit("weights+optimizer", static_cast<std::ptrdiff_t>(fixed));

  // Forward: each layer allocates its output, stashes (compressed) its
  // input when it uses the store, then the previous feature map dies.
  struct StashRec {
    std::string layer;
    std::ptrdiff_t bytes;
  };
  std::vector<StashRec> stashes;
  Shape s = input;
  std::size_t prev_feature = input.numel() * sizeof(float);
  emit("input batch", static_cast<std::ptrdiff_t>(prev_feature));
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    nn::Layer& l = net.layer(i);
    const std::size_t stash_raw = l.activation_bytes(s);
    s = l.output_shape(s);
    const std::size_t out_bytes = s.numel() * sizeof(float);
    emit(l.name() + ".out", static_cast<std::ptrdiff_t>(out_bytes));
    if (stash_raw > 0) {
      const auto stash =
          static_cast<std::ptrdiff_t>(static_cast<double>(stash_raw) /
                                      std::max(1.0, activation_ratio));
      emit(l.name() + ".stash", stash);
      stashes.push_back({l.name(), stash});
    }
    emit(l.name() + ".free_prev", -static_cast<std::ptrdiff_t>(prev_feature));
    prev_feature = out_bytes;
  }

  // Backward: gradient tensor mirrors the feature map; stashes are consumed
  // LIFO; each consumed stash briefly materialises its raw decompressed form.
  std::size_t grad_bytes = prev_feature;
  emit("loss.grad", static_cast<std::ptrdiff_t>(grad_bytes));
  Shape in_s = input;
  std::vector<std::size_t> layer_in_bytes(net.num_layers());
  std::vector<std::size_t> layer_stash_raw(net.num_layers());
  {
    Shape t = input;
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      layer_in_bytes[i] = t.numel() * sizeof(float);
      layer_stash_raw[i] = net.layer(i).activation_bytes(t);
      t = net.layer(i).output_shape(t);
    }
  }
  (void)in_s;
  for (std::size_t i = net.num_layers(); i > 0; --i) {
    nn::Layer& l = net.layer(i - 1);
    if (layer_stash_raw[i - 1] > 0 && !stashes.empty()) {
      // Decompress (raw copy appears), compute, then stash + raw copy die.
      emit(l.name() + ".decompress",
           static_cast<std::ptrdiff_t>(layer_stash_raw[i - 1]));
      const StashRec rec = stashes.back();
      stashes.pop_back();
      emit(l.name() + ".free_stash", -rec.bytes);
      emit(l.name() + ".free_decompressed",
           -static_cast<std::ptrdiff_t>(layer_stash_raw[i - 1]));
    }
    const std::size_t gin = layer_in_bytes[i - 1];
    emit(l.name() + ".grad_in", static_cast<std::ptrdiff_t>(gin));
    emit(l.name() + ".free_grad_out", -static_cast<std::ptrdiff_t>(grad_bytes));
    grad_bytes = gin;
  }
  emit("free_input_grad", -static_cast<std::ptrdiff_t>(grad_bytes));
  return r;
}

}  // namespace ebct::memory
