#pragma once

/// \file spill_file.hpp
/// Disk tier of the activation pager: one append-grown scratch file per
/// pager holding evicted payloads (compressed blobs or raw exact bytes) in
/// reusable extents. Design choices, all serving the training access
/// pattern (write once per eviction, read once per backward fetch, free):
///  - one file per pager, not one file per page — a deep model evicting
///    hundreds of activations per iteration would otherwise churn inodes;
///  - pread/pwrite at explicit offsets, so pool workers can prefetch reads
///    concurrently with the training thread's eviction writes without a
///    shared file-position race;
///  - a first-fit free list with coalescing keeps the file near the working
///    set's high-water mark across iterations instead of growing forever;
///  - the file is unlinked in the destructor (and a process-wide open-file
///    count is exposed) so tests and CI can assert spill teardown.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ebct::memory {

/// One allocated byte range of the spill file.
struct SpillExtent {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

class SpillFile {
 public:
  /// Create the backing file inside `dir` (empty = the system temp
  /// directory). Throws std::runtime_error when the file cannot be created.
  explicit SpillFile(const std::string& dir = "");
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Write `size` bytes and return the extent holding them. Throws on I/O
  /// failure (disk full, ...) without leaking the extent.
  SpillExtent write(const void* data, std::size_t size);

  /// Read an extent fully into `out` (must hold extent.size bytes). Throws
  /// std::runtime_error on short or failed reads (truncated spill file).
  void read(const SpillExtent& extent, void* out) const;

  /// Return an extent to the free list (coalescing with neighbours).
  void free_extent(const SpillExtent& extent);

  /// Bytes currently allocated to live extents.
  std::size_t live_bytes() const;
  /// High-water size of the backing file.
  std::size_t file_bytes() const;
  /// Path of the backing file (tests corrupt it deliberately).
  const std::string& path() const { return path_; }

  /// Number of SpillFile instances whose backing file is still open —
  /// the spill-dir teardown check CI runs after every budget-sweep smoke.
  static std::uint64_t files_open();

  /// Test-only fault injection: make the next `n` write() calls across all
  /// SpillFile instances throw as if the disk were full, without touching
  /// the file. The write-behind soak uses this to exercise the async
  /// error path (charge rollback, spill_error_ rethrow) under load. Passing
  /// 0 clears any pending faults.
  static void fail_next_writes(std::uint64_t n);

 private:
  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::uint64_t end_ = 0;        ///< append point (= high-water file size)
  std::size_t live_bytes_ = 0;
  std::vector<SpillExtent> free_;  ///< sorted by offset, coalesced
};

}  // namespace ebct::memory
