#pragma once

/// \file pager.hpp
/// Tiered activation paging: the subsystem that turns the paper's measured
/// memory reduction into an *enforced* byte budget. Every saved-for-backward
/// payload in the process lives behind an ActivationPager handle in one of
/// three tiers:
///
///   tier 0 (raw)        : the tensor bytes, in RAM — pinned working set,
///                         prefetched decode caches, and not-yet-encoded
///                         async puts;
///   tier 1 (compressed) : the SZ/lossless codec blob, in RAM;
///   tier 2 (spilled)    : the payload bytes in a SpillFile on disk,
///                         guarded by a checksum so corruption fails loudly.
///
/// A configurable budget caps tiers 0+1 (RAM residency). When a put, pin or
/// prefetch would exceed it the pager evicts by lifetime: every page carries
/// an order key (liveness rank, put sequence) approximating when the
/// backward pass will consume it, and the page needed *furthest* in the
/// future is evicted first. Without a graph attached the rank is always 0
/// and the key degenerates to the classic put-order heuristic (put order ==
/// forward layer order, consumed LIFO). With set_liveness() — ranks derived
/// from the graph IR's edges (graph/liveness.hpp) — the key is the *exact*
/// backward step that retrieves the page, which diverges from put order
/// wherever containers replay children out of stash order (a
/// ResidualBlock's shortcut). Eviction prefers freeing duplicate raw caches
/// (no I/O), then spills blobs (or exact raw bytes) to disk in that order.
///
/// Liveness also carries shared-producer groups: layers that lossily stash
/// the *same produced tensor* (Inception branch heads each cloning the
/// block input). When the codec certifies its encoding is identical across
/// two such layers (ActivationCodec::encoding_layer_invariant), later puts
/// of a group alias the first page instead of encoding a duplicate blob —
/// one physical payload, per-member handles — shrinking the resident
/// footprint without changing any reconstructed byte.
///
/// Determinism contract: the lossy codec transform is applied exactly once
/// per put — at encode — regardless of budget, pool size or prefetch
/// timing; every later movement (RAM <-> disk) is byte-preserving, and
/// exact pages never touch the codec. Training trajectories are therefore
/// byte-identical at any budget and any scheduler pool size; the budget
/// only moves bytes between RAM, disk and time.
///
/// Backward-pass prefetch: drop(h) (and prepare_backward()) submits
/// decompression / disk-read tasks for the next `prefetch_depth` pages in
/// reverse-sequence order onto the shared work-stealing pool
/// (tensor::sched::async), so layer k's activation is being fetched while
/// layer k+1's gradient computes. Prefetch respects budget headroom and is
/// purely a cache: skipping it never changes results.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/liveness.hpp"
#include "memory/accounting.hpp"
#include "memory/cost_model.hpp"
#include "memory/recompute.hpp"
#include "memory/spill_file.hpp"
#include "nn/activation_store.hpp"
#include "tensor/sched.hpp"
#include "tensor/tensor.hpp"

namespace ebct::memory {

struct PagerConfig {
  /// RAM budget over tiers 0+1. 0 = unlimited (pages never spill unless
  /// spill() is called explicitly). The budget is a hard target: the pager
  /// only rides above it while every RAM page is pinned or mid-I/O (counted
  /// in over_budget_events) and, in async-encode mode, by the bounded
  /// window of raw tensors awaiting encode.
  std::size_t budget_bytes = 0;

  /// Directory for the spill file; empty = the system temp directory. The
  /// file is created lazily on first spill and unlinked on destruction.
  std::string spill_dir;

  /// Pages materialized ahead of the backward-pass consumption order.
  std::size_t prefetch_depth = 2;

  /// Encode on the shared pool instead of put()'s thread (the retired
  /// AsyncCodecStore's double-buffered pipeline, minus its thread).
  bool async_encode = false;

  /// Max raw tensors awaiting async encode before put() applies
  /// backpressure (2 = classic double buffering).
  std::size_t encode_window = 2;

  /// Issue eviction spill writes as pool tasks instead of synchronously
  /// under the evicting call (write-behind). The budget still counts
  /// not-yet-written blobs: victims are picked against the settled
  /// projection (resident minus bytes already queued to disk) — the exact
  /// victim sequence the synchronous path picks, so eviction/spill counters
  /// are identical either way — but enforcement only returns once the
  /// *actual* resident bytes fit the target, so the RAM peak never exceeds
  /// the budget. The win is up to `write_window` concurrent writes plus the
  /// evicting thread helping the pool run compute while it waits.
  /// Default-on (soaked in tests/test_pager.cpp, including injected write
  /// failures); FrameworkConfig / EBCT_WRITE_BEHIND=0 is the opt-out.
  bool write_behind = true;

  /// Max in-flight write-behind spills before eviction waits for one.
  std::size_t write_window = 4;

  /// Enable the recompute tier (tier 3): at eviction time, when the
  /// installed CostModel prices drop-and-replay below spill, an eligible
  /// lossy page frees its codec blob entirely and re-derives its bytes at
  /// backward by replaying its producing subgraph through the installed
  /// RecomputeSource. Byte-identity holds regardless of which escape wins:
  /// the replayed raw value is re-encoded + decoded through the codec, so
  /// the reconstructed bytes equal the spill path's exactly. Without a
  /// source installed (or before the model calibrates) eviction falls back
  /// to spilling — identical to recompute-off behaviour.
  bool recompute = false;

  /// Pinned cost rates ("encode=F,decode=F,write=F,read=F,flop=F"), parsed
  /// strictly at construction; empty = calibrate from measured timings.
  /// Pinning makes the spill-vs-replay *decision* deterministic for tests
  /// and benches (the reconstructed bytes never depend on the decision).
  std::string recompute_rates;
};

/// Per-pager counters (process-wide totals live in TierAccounting).
struct PagerCounters {
  std::size_t resident_bytes = 0;       ///< tiers 0+1 now
  std::size_t peak_resident_bytes = 0;  ///< high-water of the above
  std::size_t raw_bytes = 0;            ///< tier 0 now
  std::size_t compressed_bytes = 0;     ///< tier 1 now
  std::size_t spilled_bytes = 0;        ///< tier 2 now
  std::size_t evictions = 0;
  std::size_t spill_write_bytes = 0;
  std::size_t spill_read_bytes = 0;
  std::size_t prefetch_submitted = 0;
  std::size_t prefetch_hits = 0;
  std::size_t over_budget_events = 0;
  std::size_t dedup_pages = 0;        ///< puts served by aliasing a group page
  std::size_t dedup_saved_bytes = 0;  ///< blob bytes those aliases did not add
  std::size_t recompute_bytes = 0;    ///< tier 3 now (raw bytes avoided)
  std::size_t recompute_drops = 0;    ///< payloads dropped in favour of replay
  std::size_t recompute_replays = 0;  ///< on-demand subgraph replays executed
};

using PageId = std::uint64_t;

/// While an instance is alive on this thread, pager waits (wait_io, encode
/// backpressure, write-behind settling) spin/yield instead of helping the
/// pool. help_while can inline an arbitrary queued task; a caller holding a
/// lock that such a task might also take (the graph executor's backward pump)
/// wraps its pager calls in this guard so no task body ever nests under its
/// lock. Other threads keep helping, so the queued work still drains.
class ScopedPagerNoHelp {
 public:
  ScopedPagerNoHelp();
  ~ScopedPagerNoHelp();
  ScopedPagerNoHelp(const ScopedPagerNoHelp&) = delete;
  ScopedPagerNoHelp& operator=(const ScopedPagerNoHelp&) = delete;
};

class ActivationPager {
 public:
  ActivationPager(PagerConfig cfg, std::shared_ptr<nn::ActivationCodec> codec);
  ~ActivationPager();

  ActivationPager(const ActivationPager&) = delete;
  ActivationPager& operator=(const ActivationPager&) = delete;

  /// Store through the lossy codec (requires one). The codec transform is
  /// applied exactly once, here (or on the pool in async mode) — budget and
  /// tier movement never re-encode.
  PageId put(const std::string& layer, tensor::Tensor&& t);

  /// Store byte-exact (never routed through the codec; spills raw bytes).
  /// Safe for bitcast payloads such as argmax indices.
  PageId put_exact(const std::string& layer, tensor::Tensor&& t);

  /// Materialize the page in RAM and pin it against eviction. The reference
  /// stays valid until the matching unpin(). Pins nest.
  const tensor::Tensor& pin(PageId id);
  void unpin(PageId id);

  /// Destructive take: return the reconstructed tensor and release every
  /// resource of the page (RAM, disk extent). Triggers prefetch of the next
  /// pages in reverse-sequence (backward) order. Throws std::logic_error on
  /// unknown or pinned handles; rethrows codec/spill failures.
  tensor::Tensor drop(PageId id);

  /// Hint that drops will now replay in consumption order: prefetch the
  /// first-consumed `prefetch_depth` pages (the backward pass's first
  /// needs — the last puts when no liveness is attached).
  void prepare_backward();

  /// Attach exact liveness derived from the graph IR. Future puts are
  /// keyed by (backward rank, sequence) instead of put order, and
  /// shared-producer groups become eligible for payload aliasing. Call
  /// before training; pages already stored keep their put-order keys.
  void set_liveness(graph::Liveness lv);
  bool has_liveness() const;

  /// Install (or clear, with nullptr) the replay provider for the
  /// recompute tier. The source must outlive every page dropped against it
  /// (or the pager itself); clearing it only disables *future* recompute
  /// drops — already-dropped pages still replay through the old pointer if
  /// it is alive, or fail loudly at materialization if replay is refused.
  void set_recompute_source(RecomputeSource* src) {
    recompute_src_.store(src, std::memory_order_release);
  }
  RecomputeSource* recompute_source() const {
    return recompute_src_.load(std::memory_order_acquire);
  }

  /// Escape-cost model snapshot (rates + calibration state) for bench
  /// reporting; default-constructed when recompute is off.
  CostModelSnapshot cost_snapshot() const;

  /// Force a page down to the disk tier (explicit offload, used by the
  /// hybrid store's migration route). No-op if already spilled.
  void spill(PageId id);

  /// Block until every in-flight encode/prefetch task has completed,
  /// helping the pool while waiting.
  void drain();

  Tier tier(PageId id) const;
  std::size_t num_pages() const;
  std::size_t resident_bytes() const;
  std::size_t spilled_bytes() const;
  PagerCounters counters() const;
  std::map<std::string, nn::StoreStats> stats() const;
  void reset_stats();
  const PagerConfig& config() const { return cfg_; }
  /// Path of the spill file; empty until the first spill (tests corrupt it).
  std::string spill_path() const;

 private:
  /// Eviction/prefetch key: consumption order is ascending rank then
  /// *descending* sequence (LIFO among equally-ranked pages), so ascending
  /// OrderKey == the order the backward pass will drop pages. With no
  /// liveness every rank is 0 and the key reduces to reverse put order —
  /// bit-identical to the pre-liveness pager.
  struct OrderKey {
    std::uint64_t rank = 0;
    PageId seq = 0;
    bool operator<(const OrderKey& o) const {
      if (rank != o.rank) return rank < o.rank;
      return seq > o.seq;
    }
  };

  struct Page {
    std::string layer;
    PageId seq = 0;             ///< put order == forward layer order
    bool exact = false;         ///< bypasses the lossy codec everywhere
    int pin_count = 0;
    tensor::Shape shape;
    std::size_t original_bytes = 0;

    tensor::Tensor raw;             ///< tier-0 payload / decode cache
    nn::EncodedActivation enc;      ///< tier-1 payload (lossy pages)
    bool encoded = false;           ///< enc holds valid bytes
    SpillExtent extent;             ///< tier-2 location
    std::uint64_t checksum = 0;     ///< FNV-1a of the spilled payload
    bool spilled = false;
    bool prefetched = false;        ///< raw was installed ahead of need
    /// Tier 3: the payload was dropped in favour of replay. Materialization
    /// re-runs the producing subgraph (+ codec roundtrip); the flag stays
    /// set so a re-evicted decode cache is simply freed again (pass 1).
    bool recompute_dropped = false;

    /// A pool task (encode or fetch) owns the payload right now: eviction
    /// skips the page, drop/pin wait (sched::help_while on this flag). The
    /// task's last touch of the page is the release store clearing it, so
    /// once a waiter observes false the page may be freed; the task's
    /// Future lives in the pager-level task list, not here.
    std::atomic<bool> io_busy{false};
    std::exception_ptr error;       ///< deferred async failure, thrown at use

    /// Current position in order_ — the earliest consumption among members.
    OrderKey key;
    /// Every live handle sharing this page's payload (the page's own id
    /// included), each with its own consumption key. Size 1 except for
    /// shared-producer groups.
    std::map<PageId, OrderKey> members;
  };

  /// Alias handle -> owning page id (identity for non-aliases).
  PageId resolve_locked(PageId id) const;
  Page* find_locked(PageId id) const;
  /// Backward rank for `layer` under the attached liveness; layers absent
  /// from the rank map (auxiliary stashes such as LRN's ".scale") inherit
  /// the rank of the most recent ranked put, which preserves within-layer
  /// LIFO. Always 0 without liveness. Updates last_rank_; mu_ held.
  std::uint64_t rank_for_locked(const std::string& layer);
  /// Recompute the page's order_ position as the min member key; mu_ held.
  void reposition_locked(Page* p);
  /// Record the page as its share group's live primary (no-op when the
  /// layer is in no group); mu_ held.
  void register_group_locked(const std::string& layer, PageId id);
  /// Release every resource of the page and erase it (order_ included);
  /// mu_ held. Does not touch alias_of_ entries of other members.
  void erase_page_locked(PageId id);
  /// Wait (helping the pool) until the page's in-flight task finishes.
  /// Expects `lock` held; returns with it re-held.
  void wait_io(Page* p, std::unique_lock<std::mutex>& lock);
  /// Push the page's RAM payload (blob or exact raw) to the disk tier.
  /// Expects `lock` held and the page idle/unpinned; releases it around
  /// the checksum+write. False when nothing was spillable.
  bool spill_payload(Page* p, std::unique_lock<std::mutex>& lock);
  /// Tier-3 escape: when the page is eligible and the cost model prices
  /// drop-and-replay below spill, free the codec blob and mark the page
  /// recompute_dropped. Pure bookkeeping (no I/O, mu_ stays held); false
  /// when ineligible or the model prefers spilling.
  bool try_recompute_drop_locked(Page* p);
  /// Write-behind variant: queue the checksum+write as a pool task and
  /// return immediately. The payload stays in RAM accounting (and in
  /// pending_spill_bytes_) until the write lands; the page is io_busy for
  /// the duration. Expects `lock` held; releases it around task submission.
  void spill_payload_async(Page* p, std::unique_lock<std::mutex>& lock);
  /// Reconstruct the page's tensor from its current payload (disk read +
  /// checksum verify + decode, or decode from the resident blob). Called
  /// WITHOUT mu_ held; the caller must own the page via io_busy.
  tensor::Tensor load_payload(Page* p);
  /// Ensure page->raw is materialized (decode / disk read outside the
  /// lock). Expects `lock` held; returns with it re-held.
  void materialize(Page* p, std::unique_lock<std::mutex>& lock);
  /// Evict until tiers 0+1 fit in `target_bytes` (no-op when unbudgeted).
  /// Callers about to add B bytes pass budget-B so the *peak* — not just
  /// the settled value — respects the budget. Expects `lock` held; may
  /// release it around disk writes; returns with it re-held.
  void enforce_to(std::size_t target_bytes, std::unique_lock<std::mutex>& lock);
  /// Headroom helper: budget minus `incoming`, clamped at zero.
  std::size_t target_for(std::size_t incoming) const {
    return incoming >= cfg_.budget_bytes ? 0 : cfg_.budget_bytes - incoming;
  }
  /// Prefetch the next pages in consumption order: strictly after `after`,
  /// or from the first-consumed page when null (prepare_backward).
  void prefetch_ahead(const OrderKey* after, std::unique_lock<std::mutex>& lock);
  void submit_fetch(Page* p);
  SpillFile& spill_file_locked();

  // Tier bookkeeping helpers (mu_ held): mirror into TierAccounting.
  void account_add(Tier t, std::size_t bytes);
  void account_sub(Tier t, std::size_t bytes);

  PagerConfig cfg_;
  std::shared_ptr<nn::ActivationCodec> codec_;
  /// Created in the constructor when cfg_.recompute (throws there on a
  /// malformed pinned spec, before any page exists).
  std::unique_ptr<CostModel> cost_model_;
  std::atomic<RecomputeSource*> recompute_src_{nullptr};

  mutable std::mutex mu_;
  std::map<PageId, std::unique_ptr<Page>> pages_;  ///< ordered by seq
  /// Pages by consumption order (one entry per page, keyed by the min
  /// member key): ascending = drop order, descending = eviction order.
  std::map<OrderKey, PageId> order_;
  /// Alias handle -> owning page (shared-producer group members).
  std::map<PageId, PageId> alias_of_;
  /// Share group id -> the group's live primary page this forward pass;
  /// cleared on every drop (content changes between passes).
  std::map<std::uint32_t, PageId> group_live_;
  graph::Liveness liveness_;
  bool has_liveness_ = false;
  std::uint64_t last_rank_ = 0;
  PageId next_ = 1;
  std::unique_ptr<SpillFile> spill_;  ///< created on first spill

  std::size_t raw_bytes_ = 0;
  std::size_t compressed_bytes_ = 0;
  std::size_t spilled_bytes_ = 0;
  std::size_t recompute_bytes_ = 0;  ///< tier 3: raw bytes avoided by drops
  std::size_t pending_fetch_bytes_ = 0;  ///< raw bytes of in-flight prefetches
  /// Payload bytes queued to disk by write-behind but not yet written; still
  /// part of raw_/compressed_ (the budget counts not-yet-written blobs).
  std::size_t pending_spill_bytes_ = 0;
  std::size_t pending_spill_count_ = 0;  ///< in-flight write-behind tasks
  /// Bumped once per write-behind completion (success or failure), under
  /// mu_; waiters poll it lock-free to learn "something landed, re-check".
  std::atomic<std::uint64_t> spill_gen_{0};
  /// First write-behind failure, rethrown from the next enforcement; the
  /// victim's payload stayed resident, so no bytes were lost.
  std::exception_ptr spill_error_;
  std::size_t peak_resident_ = 0;
  PagerCounters totals_;  ///< cumulative fields only (evictions, I/O, ...)
  std::map<std::string, nn::StoreStats> stats_;
  std::atomic<std::size_t> encode_inflight_{0};

  /// Futures of submitted tasks, joined opportunistically (ready ones are
  /// pruned on put/drop) and fully in drain()/the destructor. Guarded by
  /// its own mutex so submission never nests inside mu_ (a one-thread pool
  /// runs async bodies inline, and those bodies take mu_).
  std::mutex tasks_mu_;
  std::vector<tensor::sched::Future> tasks_;
  void prune_tasks();
};

/// Virtual-handle marker: bit 63 of a StashHandle says the handle is owned
/// by the store's StashInterceptor (the graph executor), not the pager.
/// PageIds are sequential from 1, so a real handle can never carry it.
inline constexpr nn::StashHandle kInterceptHandleBit = nn::StashHandle{1} << 63;

/// Hook the graph executor installs on a PagedStore so that layer stashes
/// issued from concurrently running node tasks can be *deposited* without
/// touching the pager, then committed by the executor in deterministic
/// graph order — keeping pager sequence numbers (and therefore eviction
/// keys, dedup grouping and every counter) bitwise identical to the
/// sequential path at any pool size.
class StashInterceptor {
 public:
  virtual ~StashInterceptor() = default;

  /// Claim the stash: move from `act`, set `out` to a virtual handle (with
  /// kInterceptHandleBit set) and return true. Return false (leaving `act`
  /// untouched) to pass the stash through to the pager — the interceptor
  /// declines when the calling thread is not running one of its node tasks
  /// (e.g. a sequential evaluate() forward).
  virtual bool try_stash(const std::string& layer, tensor::Tensor& act,
                         bool exact, nn::StashHandle& out) = 0;

  /// Resolve a virtual handle back to its tensor (the executor's backward
  /// pump replays the committed pager drops in consumption order).
  virtual tensor::Tensor retrieve(nn::StashHandle handle, bool exact) = 0;

  /// The backward pass is about to start consuming stashes.
  virtual void prepare_backward() = 0;
};

/// ActivationStore adapter: the training-loop face of the pager. Replaces
/// CodecStore/AsyncCodecStore in the session — stash() puts through the
/// codec, retrieve() drops (with prefetch), and when a budget is active the
/// store also claims the layers' byte-exact saved state (pages_layer_state)
/// so every saved-for-backward byte is governed by one budget.
class PagedStore : public nn::ActivationStore {
 public:
  PagedStore(PagerConfig cfg, std::shared_ptr<nn::ActivationCodec> codec)
      : pager_(cfg, std::move(codec)) {}

  nn::StashHandle stash(const std::string& layer, tensor::Tensor&& act) override {
    if (auto* ic = interceptor_.load(std::memory_order_acquire)) {
      nn::StashHandle h = 0;
      if (ic->try_stash(layer, act, /*exact=*/false, h)) return h;
    }
    return pager_.put(layer, std::move(act));
  }
  tensor::Tensor retrieve(nn::StashHandle handle) override {
    if (handle & kInterceptHandleBit)
      return interceptor_.load(std::memory_order_acquire)->retrieve(handle, false);
    return pager_.drop(handle);
  }
  std::size_t held_bytes() const override { return pager_.resident_bytes(); }
  std::map<std::string, nn::StoreStats> stats() const override { return pager_.stats(); }
  void reset_stats() override { pager_.reset_stats(); }

  bool pages_layer_state() const override { return pager_.config().budget_bytes > 0; }
  nn::StashHandle stash_exact(const std::string& layer, tensor::Tensor&& t) override {
    if (auto* ic = interceptor_.load(std::memory_order_acquire)) {
      nn::StashHandle h = 0;
      if (ic->try_stash(layer, t, /*exact=*/true, h)) return h;
    }
    return pager_.put_exact(layer, std::move(t));
  }
  tensor::Tensor retrieve_exact(nn::StashHandle handle) override {
    if (handle & kInterceptHandleBit)
      return interceptor_.load(std::memory_order_acquire)->retrieve(handle, true);
    return pager_.drop(handle);
  }
  void prepare_backward() override {
    if (auto* ic = interceptor_.load(std::memory_order_acquire)) ic->prepare_backward();
    pager_.prepare_backward();
  }

  /// Install (or clear, with nullptr) the executor's stash hook. Swap only
  /// between iterations — never while a forward/backward is in flight.
  void set_interceptor(StashInterceptor* ic) {
    interceptor_.store(ic, std::memory_order_release);
  }
  StashInterceptor* interceptor() const {
    return interceptor_.load(std::memory_order_acquire);
  }

  /// Executor-side pager access: commit a deposited stash in graph order
  /// (assigns the next pager sequence number) ...
  nn::StashHandle commit_stash(const std::string& layer, tensor::Tensor&& t, bool exact) {
    return exact ? pager_.put_exact(layer, std::move(t)) : pager_.put(layer, std::move(t));
  }
  /// ... and replay the committed drop for a real (pager) handle.
  tensor::Tensor direct_retrieve(nn::StashHandle handle) { return pager_.drop(handle); }

  /// Forward exact graph-derived liveness to the pager.
  void set_liveness(graph::Liveness lv) { pager_.set_liveness(std::move(lv)); }

  /// Forward the replay provider for the recompute tier to the pager.
  void set_recompute_source(RecomputeSource* src) { pager_.set_recompute_source(src); }

  /// Block until pending async encodes/prefetches land (tests, shutdown).
  void drain() { pager_.drain(); }

  ActivationPager& pager() { return pager_; }
  const ActivationPager& pager() const { return pager_; }

 private:
  ActivationPager pager_;
  std::atomic<StashInterceptor*> interceptor_{nullptr};
};

}  // namespace ebct::memory
