#pragma once

/// \file recompute.hpp
/// The pager-side contract for the recompute tier. The ActivationPager knows
/// nothing about the op graph; when the cost model elects to drop a page's
/// payload instead of spilling it, the pager asks an installed
/// RecomputeSource to re-produce the raw bytes on demand. The concrete
/// implementation (graph::ReplayEngine) lives above the memory layer and is
/// injected by the session, keeping the dependency arrow pointing
/// graph -> memory and never back.

#include <string>

#include "tensor/tensor.hpp"

namespace ebct::memory {

/// Re-produces a stashed activation by replaying its producing subgraph.
/// All methods are keyed by the stashing layer's name (the same key used
/// for ActivationStore::stash). Implementations must be safe to call
/// concurrently from pager worker tasks: replay() may run on the executor's
/// drop pump while the main thread is inside a different layer's backward.
class RecomputeSource {
 public:
  virtual ~RecomputeSource() = default;

  /// True when `layer`'s stashed input can currently be replayed: its
  /// producing subgraph is fully replayable and this iteration's graph
  /// input tensor is installed. The pager checks this at eviction time;
  /// a false answer simply falls back to compress/spill.
  virtual bool can_replay(const std::string& layer) const = 0;

  /// Static FLOP estimate of replaying `layer`'s stashed input, for the
  /// cost model. Only meaningful when can_replay(layer) is true.
  virtual double replay_flops(const std::string& layer) const = 0;

  /// Re-run the producing subgraph and return the raw forward value of
  /// `layer`'s stashed input — byte-identical to what forward produced.
  /// Throws if the plan is unsupported or no input is installed.
  virtual tensor::Tensor replay(const std::string& layer) const = 0;
};

}  // namespace ebct::memory
