#include "memory/accounting.hpp"

#include <algorithm>
#include <cstdio>

namespace ebct::memory {

using tensor::Shape;

std::size_t MemoryBreakdown::peak_bytes(double activation_ratio) const {
  const double stash =
      static_cast<double>(stashed_activation_bytes) / std::max(1.0, activation_ratio);
  return weight_bytes + optimizer_state_bytes + workspace_bytes +
         static_cast<std::size_t>(stash);
}

MemoryBreakdown analyze(nn::Network& net, std::size_t input_hw, std::size_t batch,
                        std::size_t channels) {
  MemoryBreakdown b;
  for (nn::Param* p : net.params()) {
    b.weight_bytes += p->value.bytes();
    b.optimizer_state_bytes += p->grad.bytes() + p->momentum.bytes();
  }
  const Shape input = Shape::nchw(batch, channels, input_hw, input_hw);
  Shape s = input;
  std::size_t largest = input.numel() * sizeof(float);
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    nn::Layer& l = net.layer(i);
    LayerFootprint fp;
    fp.layer = l.name();
    fp.stashed_bytes = l.activation_bytes(s);
    s = l.output_shape(s);
    fp.output_bytes = s.numel() * sizeof(float);
    largest = std::max(largest, fp.output_bytes);
    b.stashed_activation_bytes += fp.stashed_bytes;
    b.layers.push_back(std::move(fp));
  }
  // Producer + consumer feature maps co-resident during a layer's forward.
  b.workspace_bytes = 2 * largest;
  return b;
}

std::size_t max_batch(nn::Network& net, std::size_t input_hw, const DeviceModel& device,
                      double activation_ratio, std::size_t limit) {
  // Peak(batch) is monotone in batch: evaluate at batch=1 to get the fixed
  // and per-sample parts, then bisect.
  const MemoryBreakdown b1 = analyze(net, input_hw, 1);
  const std::size_t fixed = b1.weight_bytes + b1.optimizer_state_bytes;
  if (fixed >= device.capacity_bytes) return 0;
  std::size_t lo = 0, hi = limit;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    // Activations and workspace scale linearly with batch.
    const double stash = static_cast<double>(b1.stashed_activation_bytes) *
                         static_cast<double>(mid) / std::max(1.0, activation_ratio);
    const std::size_t ws = b1.workspace_bytes * mid;
    const std::size_t peak = fixed + ws + static_cast<std::size_t>(stash);
    if (peak <= device.capacity_bytes)
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

std::string human_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

}  // namespace ebct::memory
