#pragma once

/// \file accounting.hpp
/// Analytic memory accounting for one training iteration. Reproduces the
/// peak-memory arithmetic behind the paper's Fig. 2 and Fig. 11: weights
/// (value + gradient + momentum), live activations at the forward/backward
/// turnaround, and the device capacity that caps the batch size.

#include <cstddef>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/shape.hpp"

namespace ebct::memory {

/// Training accelerator capacity model.
struct DeviceModel {
  std::string name;
  std::size_t capacity_bytes = 0;

  static DeviceModel v100_16gb() { return {"V100-16GB", 16ull << 30}; }
  static DeviceModel v100_32gb() { return {"V100-32GB", 32ull << 30}; }
};

/// Per-layer entry of the activation footprint at a given input shape.
struct LayerFootprint {
  std::string layer;
  std::size_t output_bytes = 0;      ///< feature-map bytes at this layer
  std::size_t stashed_bytes = 0;     ///< raw bytes held until backward
};

/// Static memory breakdown of a model at one input shape.
struct MemoryBreakdown {
  std::size_t weight_bytes = 0;          ///< parameter values
  std::size_t optimizer_state_bytes = 0; ///< grads + momentum
  std::size_t stashed_activation_bytes = 0;  ///< sum of stashes (raw)
  std::size_t workspace_bytes = 0;       ///< 2x the largest feature map
  std::vector<LayerFootprint> layers;

  /// Peak bytes with the stash reduced by `activation_ratio` (1.0 = raw
  /// baseline, 11.0 = the paper's compressed framework, etc.).
  std::size_t peak_bytes(double activation_ratio = 1.0) const;
};

/// Walk the network's shape trace and collect the breakdown for batch `n`.
MemoryBreakdown analyze(nn::Network& net, std::size_t input_hw, std::size_t batch,
                        std::size_t channels = 3);

/// Largest batch size whose peak fits the device under the given activation
/// compression ratio. Linear in activations, so solved by bisection.
std::size_t max_batch(nn::Network& net, std::size_t input_hw, const DeviceModel& device,
                      double activation_ratio, std::size_t limit = 8192);

/// Human-readable byte count ("12.4 GB").
std::string human_bytes(std::size_t bytes);

}  // namespace ebct::memory
