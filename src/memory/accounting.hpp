#pragma once

/// \file accounting.hpp
/// Analytic memory accounting for one training iteration. Reproduces the
/// peak-memory arithmetic behind the paper's Fig. 2 and Fig. 11: weights
/// (value + gradient + momentum), live activations at the forward/backward
/// turnaround, and the device capacity that caps the batch size.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/shape.hpp"

namespace ebct::memory {

/// Storage tier of a paged activation (see pager.hpp). kRecompute pages
/// hold no payload at all — their bytes count the *raw size the tier
/// avoided keeping*, so the tier columns still sum to the footprint the
/// pager is managing.
enum class Tier : int { kRaw = 0, kCompressed = 1, kSpilled = 2, kRecompute = 3 };
constexpr int kNumTiers = 4;

/// Snapshot of the process-wide per-tier byte counters.
struct TierUsage {
  std::size_t live[kNumTiers] = {0, 0, 0, 0};
  std::size_t peak[kNumTiers] = {0, 0, 0, 0};
  std::size_t spill_write_bytes = 0;   ///< cumulative bytes written to disk
  std::size_t spill_read_bytes = 0;    ///< cumulative bytes read back
  std::size_t evictions = 0;           ///< pages pushed down a tier by budget
  std::size_t prefetch_submitted = 0;  ///< backward-pass fetches issued ahead
  std::size_t prefetch_hits = 0;       ///< drops served from a prefetched page
  std::size_t over_budget_events = 0;  ///< budget unmeetable (all pages pinned)

  std::size_t resident() const { return live[0] + live[1]; }
};

/// Process-wide per-tier accounting, fed by every ActivationPager. This is
/// the measured counterpart of the analytic MemoryBreakdown below: where
/// analyze() predicts a model's footprint, TierAccounting reports what the
/// paging subsystem actually holds in RAM (raw + compressed) and on disk,
/// and is the RSS-proxy the budget-sweep bench checks against the budget.
/// Lock-free (relaxed atomics + CAS peaks, same discipline as AllocTracker).
class TierAccounting {
 public:
  static TierAccounting& instance() {
    static TierAccounting t;
    return t;
  }

  /// Instantiable for per-scope ledgers: the serving subsystem keeps one
  /// TierAccounting per tenant so each tenant's resident bytes are charged
  /// (and budget-checked) independently of the process-wide instance().
  TierAccounting() = default;

  void add(Tier tier, std::size_t bytes) {
    const int i = static_cast<int>(tier);
    const std::size_t now = live_[i].fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t prev = peak_[i].load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_[i].compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void sub(Tier tier, std::size_t bytes) {
    live_[static_cast<int>(tier)].fetch_sub(bytes, std::memory_order_relaxed);
  }
  void on_spill_write(std::size_t bytes) {
    spill_write_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_spill_read(std::size_t bytes) {
    spill_read_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void on_eviction() { evictions_.fetch_add(1, std::memory_order_relaxed); }
  /// Write-behind spill failure: undo an issue-time on_eviction() /
  /// on_spill_write() charge (the victim's payload stayed resident), so
  /// counter totals match the synchronous spill path on error too.
  void rollback_eviction() { evictions_.fetch_sub(1, std::memory_order_relaxed); }
  void rollback_spill_write(std::size_t bytes) {
    spill_write_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  void on_prefetch_submitted() { prefetch_sub_.fetch_add(1, std::memory_order_relaxed); }
  void on_prefetch_hit() { prefetch_hit_.fetch_add(1, std::memory_order_relaxed); }
  void on_over_budget() { over_budget_.fetch_add(1, std::memory_order_relaxed); }

  TierUsage usage() const {
    TierUsage u;
    for (int i = 0; i < kNumTiers; ++i) {
      u.live[i] = live_[i].load(std::memory_order_relaxed);
      u.peak[i] = peak_[i].load(std::memory_order_relaxed);
    }
    u.spill_write_bytes = spill_write_.load(std::memory_order_relaxed);
    u.spill_read_bytes = spill_read_.load(std::memory_order_relaxed);
    u.evictions = evictions_.load(std::memory_order_relaxed);
    u.prefetch_submitted = prefetch_sub_.load(std::memory_order_relaxed);
    u.prefetch_hits = prefetch_hit_.load(std::memory_order_relaxed);
    u.over_budget_events = over_budget_.load(std::memory_order_relaxed);
    return u;
  }

  /// Start of a measured region: peaks drop to the current live values.
  void reset_peaks() {
    for (int i = 0; i < kNumTiers; ++i)
      peak_[i].store(live_[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> live_[kNumTiers] = {};
  std::atomic<std::size_t> peak_[kNumTiers] = {};
  std::atomic<std::size_t> spill_write_{0};
  std::atomic<std::size_t> spill_read_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> prefetch_sub_{0};
  std::atomic<std::size_t> prefetch_hit_{0};
  std::atomic<std::size_t> over_budget_{0};
};

/// Training accelerator capacity model.
struct DeviceModel {
  std::string name;
  std::size_t capacity_bytes = 0;

  static DeviceModel v100_16gb() { return {"V100-16GB", 16ull << 30}; }
  static DeviceModel v100_32gb() { return {"V100-32GB", 32ull << 30}; }
};

/// Per-layer entry of the activation footprint at a given input shape.
struct LayerFootprint {
  std::string layer;
  std::size_t output_bytes = 0;      ///< feature-map bytes at this layer
  std::size_t stashed_bytes = 0;     ///< raw bytes held until backward
};

/// Static memory breakdown of a model at one input shape.
struct MemoryBreakdown {
  std::size_t weight_bytes = 0;          ///< parameter values
  std::size_t optimizer_state_bytes = 0; ///< grads + momentum
  std::size_t stashed_activation_bytes = 0;  ///< sum of stashes (raw)
  std::size_t workspace_bytes = 0;       ///< 2x the largest feature map
  std::vector<LayerFootprint> layers;

  /// Peak bytes with the stash reduced by `activation_ratio` (1.0 = raw
  /// baseline, 11.0 = the paper's compressed framework, etc.).
  std::size_t peak_bytes(double activation_ratio = 1.0) const;
};

/// Walk the network's shape trace and collect the breakdown for batch `n`.
MemoryBreakdown analyze(nn::Network& net, std::size_t input_hw, std::size_t batch,
                        std::size_t channels = 3);

/// Largest batch size whose peak fits the device under the given activation
/// compression ratio. Linear in activations, so solved by bisection.
std::size_t max_batch(nn::Network& net, std::size_t input_hw, const DeviceModel& device,
                      double activation_ratio, std::size_t limit = 8192);

/// Human-readable byte count ("12.4 GB").
std::string human_bytes(std::size_t bytes);

}  // namespace ebct::memory
