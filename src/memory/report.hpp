#pragma once

/// \file report.hpp
/// Minimal fixed-width table printer shared by the bench binaries so every
/// figure/table reproduction prints in a uniform, diffable format.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace ebct::memory {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());
    auto line = [&](const std::vector<std::string>& cells) {
      std::fputs("| ", out);
      for (std::size_t i = 0; i < headers_.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string();
        std::fprintf(out, "%-*s | ", static_cast<int>(width[i]), c.c_str());
      }
      std::fputc('\n', out);
    };
    line(headers_);
    std::fputs("|", out);
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      for (std::size_t k = 0; k < width[i] + 2; ++k) std::fputc('-', out);
      std::fputs("|", out);
    }
    std::fputc('\n', out);
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
inline std::string fmt(const char* f, ...) {
  char buf[256];
  va_list args;
  va_start(args, f);
  std::vsnprintf(buf, sizeof(buf), f, args);
  va_end(args);
  return buf;
}

}  // namespace ebct::memory
