#include "memory/spill_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace ebct::memory {

namespace {

std::atomic<std::uint64_t> g_open_files{0};
std::atomic<std::uint64_t> g_next_serial{1};
std::atomic<std::uint64_t> g_fail_writes{0};

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("SpillFile: " + what + ": " + std::strerror(errno));
}

}  // namespace

SpillFile::SpillFile(const std::string& dir) {
  std::filesystem::path base =
      dir.empty() ? std::filesystem::temp_directory_path() : std::filesystem::path(dir);
  std::error_code ec;
  std::filesystem::create_directories(base, ec);  // best effort; open() reports
  char name[64];
  std::snprintf(name, sizeof(name), "ebct-spill-%ld-%llu.bin",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(
                    g_next_serial.fetch_add(1, std::memory_order_relaxed)));
  path_ = (base / name).string();
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0600);
  if (fd_ < 0) throw_errno("open " + path_);
  g_open_files.fetch_add(1, std::memory_order_relaxed);
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
    g_open_files.fetch_sub(1, std::memory_order_relaxed);
  }
}

SpillExtent SpillFile::write(const void* data, std::size_t size) {
  // Injected faults fire before any state changes, so a failed write leaves
  // the extent map untouched — the same contract as a real ENOSPC pwrite.
  for (auto n = g_fail_writes.load(std::memory_order_relaxed); n > 0;) {
    if (g_fail_writes.compare_exchange_weak(n, n - 1, std::memory_order_relaxed))
      throw std::runtime_error("SpillFile: pwrite: injected write fault");
  }
  SpillExtent ext;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // First fit; split when the hole is larger. Holes are extent-sized
    // blob payloads, so fragmentation stays bounded by the page mix.
    std::size_t i = 0;
    for (; i < free_.size(); ++i) {
      if (free_[i].size >= size) break;
    }
    if (i < free_.size()) {
      ext = {free_[i].offset, size};
      if (free_[i].size == size) {
        free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        free_[i].offset += size;
        free_[i].size -= size;
      }
    } else {
      ext = {end_, size};
      end_ += size;
    }
    live_bytes_ += size;
  }

  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd_, p + done, size - done,
                               static_cast<off_t>(ext.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      free_extent({ext.offset, size});
      throw_errno("pwrite");
    }
    done += static_cast<std::size_t>(n);
  }
  return ext;
}

void SpillFile::read(const SpillExtent& extent, void* out) const {
  char* p = static_cast<char*>(out);
  std::size_t done = 0;
  while (done < extent.size) {
    const ssize_t n = ::pread(fd_, p + done, extent.size - done,
                              static_cast<off_t>(extent.offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (n == 0) throw std::runtime_error("SpillFile: short read (truncated spill file)");
    done += static_cast<std::size_t>(n);
  }
}

void SpillFile::free_extent(const SpillExtent& extent) {
  if (extent.size == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  live_bytes_ -= std::min<std::size_t>(live_bytes_, extent.size);
  auto it = std::lower_bound(
      free_.begin(), free_.end(), extent,
      [](const SpillExtent& a, const SpillExtent& b) { return a.offset < b.offset; });
  it = free_.insert(it, extent);
  // Coalesce with the next hole, then the previous one.
  const auto next = it + 1;
  if (next != free_.end() && it->offset + it->size == next->offset) {
    it->size += next->size;
    it = free_.erase(next) - 1;
  }
  if (it != free_.begin()) {
    const auto prev = it - 1;
    if (prev->offset + prev->size == it->offset) {
      prev->size += it->size;
      free_.erase(it);
    }
  }
}

std::size_t SpillFile::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_bytes_;
}

std::size_t SpillFile::file_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_;
}

std::uint64_t SpillFile::files_open() {
  return g_open_files.load(std::memory_order_relaxed);
}

void SpillFile::fail_next_writes(std::uint64_t n) {
  g_fail_writes.store(n, std::memory_order_relaxed);
}

}  // namespace ebct::memory
