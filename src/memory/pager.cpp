#include "memory/pager.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace ebct::memory {

using tensor::Tensor;

namespace {

/// See ScopedPagerNoHelp: depth of no-help guards on this thread.
thread_local int t_pager_no_help = 0;

/// All pager-side waits go through here instead of sched::help_while
/// directly: under a no-help guard the wait spins/yields so no queued task
/// body can be inlined beneath whatever lock the caller holds. Progress
/// still comes from the rest of the pool — other threads help, and on a
/// one-thread pool async bodies already ran inline at submission, so there
/// is never queued work only this thread could run.
void pager_wait(const std::function<bool()>& done) {
  if (t_pager_no_help > 0) {
    while (!done()) std::this_thread::yield();
    return;
  }
  tensor::sched::help_while(done);
}

/// FNV-1a 64 over a byte span: the spill-payload integrity check. Disk
/// corruption of a lossy blob would often be caught by the SZ header
/// guards, but a flipped bit deep in the Huffman payload — or anywhere in
/// an exact page's raw bytes — reconstructs silently wrong values; the
/// checksum turns every such case into a loud failure at fetch time.
std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Wall time in ns for cost-model calibration samples.
double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Feed one already-measured operation interval into the per-phase metrics
/// registry (the same bracket the cost model calibrates from).
void note_phase(obs::Phase phase, double t0_ns, double t1_ns) {
  const double el = t1_ns - t0_ns;
  obs::MetricsRegistry::instance().add(
      phase, el > 0 ? static_cast<std::uint64_t>(el) : 0);
}

}  // namespace

ScopedPagerNoHelp::ScopedPagerNoHelp() { ++t_pager_no_help; }
ScopedPagerNoHelp::~ScopedPagerNoHelp() { --t_pager_no_help; }

ActivationPager::ActivationPager(PagerConfig cfg, std::shared_ptr<nn::ActivationCodec> codec)
    : cfg_(std::move(cfg)), codec_(std::move(codec)) {
  if (cfg_.encode_window == 0) cfg_.encode_window = 1;
  if (cfg_.write_window == 0) cfg_.write_window = 1;
  // A malformed pinned-rates spec throws here, before any page exists.
  if (cfg_.recompute) cost_model_ = std::make_unique<CostModel>(cfg_.recompute_rates);
}

ActivationPager::~ActivationPager() {
  try {
    drain();
  } catch (const std::exception& e) {
    // Destructor drain: can't throw. A late write-behind spill failure
    // (or a fetch error parked in a page slot) dies with the pager, so at
    // least leave a trace instead of swallowing it silently.
    std::fprintf(stderr, "ebct: pager teardown swallowed spill error: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "ebct: pager teardown swallowed spill error\n");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, p] : pages_) {
    if (p->spilled && spill_) spill_->free_extent(p->extent);
    if (p->raw.numel() > 0) account_sub(Tier::kRaw, p->raw.bytes());
    if (p->encoded) account_sub(Tier::kCompressed, p->enc.bytes.size());
    if (p->spilled) account_sub(Tier::kSpilled, p->extent.size);
    if (p->recompute_dropped) account_sub(Tier::kRecompute, p->original_bytes);
  }
  pages_.clear();
}

// ---------------------------------------------------------------------------
// Bookkeeping helpers (mu_ held).
// ---------------------------------------------------------------------------

void ActivationPager::account_add(Tier t, std::size_t bytes) {
  switch (t) {
    case Tier::kRaw:
      raw_bytes_ += bytes;
      break;
    case Tier::kCompressed:
      compressed_bytes_ += bytes;
      break;
    case Tier::kSpilled:
      spilled_bytes_ += bytes;
      break;
    case Tier::kRecompute:
      recompute_bytes_ += bytes;
      break;
  }
  peak_resident_ = std::max(peak_resident_, raw_bytes_ + compressed_bytes_);
  TierAccounting::instance().add(t, bytes);
}

void ActivationPager::account_sub(Tier t, std::size_t bytes) {
  switch (t) {
    case Tier::kRaw:
      raw_bytes_ -= bytes;
      break;
    case Tier::kCompressed:
      compressed_bytes_ -= bytes;
      break;
    case Tier::kSpilled:
      spilled_bytes_ -= bytes;
      break;
    case Tier::kRecompute:
      recompute_bytes_ -= bytes;
      break;
  }
  TierAccounting::instance().sub(t, bytes);
}

ActivationPager::Page* ActivationPager::find_locked(PageId id) const {
  auto it = pages_.find(id);
  return it == pages_.end() ? nullptr : it->second.get();
}

PageId ActivationPager::resolve_locked(PageId id) const {
  auto it = alias_of_.find(id);
  return it == alias_of_.end() ? id : it->second;
}

std::uint64_t ActivationPager::rank_for_locked(const std::string& layer) {
  if (!has_liveness_) return 0;
  auto it = liveness_.rank.find(layer);
  if (it != liveness_.rank.end()) {
    last_rank_ = it->second;
    return it->second;
  }
  return last_rank_;
}

void ActivationPager::reposition_locked(Page* p) {
  order_.erase(p->key);
  OrderKey min = p->members.begin()->second;
  for (const auto& [id, k] : p->members)
    if (k < min) min = k;
  p->key = min;
  order_[p->key] = p->seq;
}

void ActivationPager::register_group_locked(const std::string& layer, PageId id) {
  if (!has_liveness_) return;
  auto it = liveness_.share_group.find(layer);
  if (it != liveness_.share_group.end()) group_live_[it->second] = id;
}

void ActivationPager::erase_page_locked(PageId id) {
  Page* p = find_locked(id);
  if (p == nullptr) return;
  if (p->spilled && spill_) {
    spill_->free_extent(p->extent);
    account_sub(Tier::kSpilled, p->extent.size);
  }
  if (p->raw.numel() > 0) account_sub(Tier::kRaw, p->raw.bytes());
  if (p->encoded) account_sub(Tier::kCompressed, p->enc.bytes.size());
  if (p->recompute_dropped) account_sub(Tier::kRecompute, p->original_bytes);
  order_.erase(p->key);
  pages_.erase(id);
}

void ActivationPager::set_liveness(graph::Liveness lv) {
  std::lock_guard<std::mutex> lock(mu_);
  liveness_ = std::move(lv);
  has_liveness_ = true;
  last_rank_ = 0;
  group_live_.clear();
}

bool ActivationPager::has_liveness() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_liveness_;
}

SpillFile& ActivationPager::spill_file_locked() {
  if (!spill_) spill_ = std::make_unique<SpillFile>(cfg_.spill_dir);
  return *spill_;
}

void ActivationPager::prune_tasks() {
  std::lock_guard<std::mutex> g(tasks_mu_);
  std::vector<tensor::sched::Future> keep;
  keep.reserve(tasks_.size());
  for (auto& f : tasks_) {
    if (f.ready()) {
      f.wait();  // instant; pager bodies never leak exceptions to the Future
    } else {
      keep.push_back(std::move(f));
    }
  }
  tasks_ = std::move(keep);
}

// ---------------------------------------------------------------------------
// put: the only place the lossy transform happens.
// ---------------------------------------------------------------------------

PageId ActivationPager::put(const std::string& layer, Tensor&& t) {
  if (!codec_) throw std::logic_error("ActivationPager::put: no codec attached");
  prune_tasks();
  const std::size_t original = t.bytes();

  // Shared-producer dedup: when the graph's edges say this layer stashes
  // the same produced tensor as a live page of this forward pass (the
  // stashed clones are byte-equal), and the codec certifies its encoding
  // does not depend on which of the two layer names it runs under, alias
  // the existing page instead of encoding a duplicate blob. The alias
  // reconstructs from the same bytes the skipped encode would have
  // produced, so training output is unchanged; only the resident footprint
  // shrinks. Groups never survive a drop (group_live_ is cleared there),
  // so aliasing can only pair puts from one uninterrupted forward pass.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (has_liveness_) {
      auto git = liveness_.share_group.find(layer);
      if (git != liveness_.share_group.end()) {
        auto live = group_live_.find(git->second);
        Page* prim = live == group_live_.end() ? nullptr : find_locked(live->second);
        if (prim != nullptr && !prim->exact && prim->shape == t.shape() &&
            codec_->encoding_layer_invariant(prim->layer, layer)) {
          const PageId id = next_++;
          const OrderKey key{rank_for_locked(layer), id};
          alias_of_[id] = prim->seq;
          prim->members.emplace(id, key);
          reposition_locked(prim);
          nn::StoreStats& s = stats_[layer];
          s.stashed_tensors += 1;
          s.original_bytes += original;
          totals_.dedup_pages += 1;
          if (prim->encoded) totals_.dedup_saved_bytes += prim->enc.bytes.size();
          return id;
        }
      }
    }
  }

  if (!cfg_.async_encode) {
    // Encode on the caller (outside mu_: the codec forks pool tasks, and
    // helping-join loops must never run under the pager lock).
    const double t0 = now_ns();
    nn::EncodedActivation enc;
    {
      obs::trace::Span span("codec.encode", obs::trace::Cat::kCodec);
      enc = codec_->encode(layer, t);
    }
    const double t1 = now_ns();
    if (cost_model_) cost_model_->observe_encode(original, t1 - t0);
    note_phase(obs::Phase::kEncode, t0, t1);
    enc.shape = t.shape();
    enc.layer = layer;
    std::unique_lock<std::mutex> lock(mu_);
    // Make room *before* the blob lands so the resident peak, not just the
    // settled value, respects the budget.
    enforce_to(target_for(enc.bytes.size()), lock);
    const PageId id = next_++;
    auto page = std::make_unique<Page>();
    page->layer = layer;
    page->seq = id;
    page->shape = t.shape();
    page->original_bytes = original;
    page->enc = std::move(enc);
    page->encoded = true;
    page->key = OrderKey{rank_for_locked(layer), id};
    page->members.emplace(id, page->key);
    account_add(Tier::kCompressed, page->enc.bytes.size());
    nn::StoreStats& s = stats_[layer];
    s.stashed_tensors += 1;
    s.original_bytes += original;
    s.stored_bytes += page->enc.bytes.size();
    order_[page->key] = id;
    pages_.emplace(id, std::move(page));
    register_group_locked(layer, id);
    // See put_exact: a failed victim spill must not strand a page whose
    // handle the caller never receives.
    try {
      enforce_to(cfg_.budget_bytes, lock);
    } catch (...) {
      erase_page_locked(id);
      throw;
    }
    return id;
  }

  // Async: bounded backpressure first, so raw tensors awaiting encode never
  // accumulate past the window (that would defeat the budget).
  if (encode_inflight_.load(std::memory_order_acquire) >= cfg_.encode_window) {
    obs::trace::Span span("pager.encode_wait", obs::trace::Cat::kPager);
    obs::ScopedPhase ph(obs::Phase::kSpillWait);
    pager_wait([this] {
      return encode_inflight_.load(std::memory_order_acquire) < cfg_.encode_window;
    });
  }

  Page* p = nullptr;
  PageId id = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    enforce_to(target_for(original), lock);
    id = next_++;
    auto page = std::make_unique<Page>();
    p = page.get();
    p->layer = layer;
    p->seq = id;
    p->shape = t.shape();
    p->original_bytes = original;
    p->raw = std::move(t);
    p->io_busy.store(true, std::memory_order_relaxed);
    p->key = OrderKey{rank_for_locked(layer), id};
    p->members.emplace(id, p->key);
    account_add(Tier::kRaw, original);
    order_[p->key] = id;
    pages_.emplace(id, std::move(page));
    register_group_locked(layer, id);
    // Settle again: when older pages were pinned the pre-insert pass could
    // not make room, and a hard budget beats lifetime order — the new page
    // itself is the last-resort victim (it is io_busy here, so this only
    // spills once the pins are the sole cause). If a victim's spill write
    // fails, unwind the just-inserted page: its stuck busy flag (the
    // encode task is not submitted yet) would hang every later waiter.
    try {
      enforce_to(cfg_.budget_bytes, lock);
    } catch (...) {
      erase_page_locked(id);
      throw;
    }
  }
  encode_inflight_.fetch_add(1, std::memory_order_relaxed);
  // Submit outside mu_: on a one-thread pool the body runs inline here.
  auto fut = tensor::sched::async([this, p] {
    try {
      const double t0 = now_ns();
      nn::EncodedActivation enc;
      {
        obs::trace::Span span("codec.encode", obs::trace::Cat::kCodec);
        enc = codec_->encode(p->layer, p->raw);
      }
      const double t1 = now_ns();
      if (cost_model_) cost_model_->observe_encode(p->original_bytes, t1 - t0);
      note_phase(obs::Phase::kEncode, t0, t1);
      enc.shape = p->shape;
      enc.layer = p->layer;
      std::lock_guard<std::mutex> lock(mu_);
      account_sub(Tier::kRaw, p->raw.bytes());
      p->raw = Tensor();
      p->enc = std::move(enc);
      p->encoded = true;
      account_add(Tier::kCompressed, p->enc.bytes.size());
      nn::StoreStats& s = stats_[p->layer];
      s.stashed_tensors += 1;
      s.original_bytes += p->original_bytes;
      s.stored_bytes += p->enc.bytes.size();
      encode_inflight_.fetch_sub(1, std::memory_order_release);
      p->io_busy.store(false, std::memory_order_release);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      p->error = std::current_exception();
      encode_inflight_.fetch_sub(1, std::memory_order_release);
      p->io_busy.store(false, std::memory_order_release);
    }
  });
  {
    std::lock_guard<std::mutex> g(tasks_mu_);
    tasks_.push_back(std::move(fut));
  }
  return id;
}

PageId ActivationPager::put_exact(const std::string& layer, Tensor&& t) {
  const std::size_t bytes = t.bytes();
  std::unique_lock<std::mutex> lock(mu_);
  enforce_to(target_for(bytes), lock);
  const PageId id = next_++;
  auto page = std::make_unique<Page>();
  page->layer = layer;
  page->seq = id;
  page->exact = true;
  page->shape = t.shape();
  page->original_bytes = bytes;
  page->raw = std::move(t);
  page->key = OrderKey{rank_for_locked(layer), id};
  page->members.emplace(id, page->key);
  account_add(Tier::kRaw, bytes);
  nn::StoreStats& s = stats_[layer];
  s.stashed_tensors += 1;
  s.original_bytes += bytes;
  s.stored_bytes += bytes;
  order_[page->key] = id;
  pages_.emplace(id, std::move(page));
  // Exact pages are deliberately never registered as dedup candidates: an
  // alias reconstructs through the shared payload, and the exact contract
  // promises this page's very own bytes back.
  // Hard budget: if pinned pages blocked the pre-insert pass, the newest
  // page is the last-resort victim. On a failed spill write the caller
  // gets the exception, not a handle — so the page must not stay behind.
  try {
    enforce_to(cfg_.budget_bytes, lock);
  } catch (...) {
    erase_page_locked(id);
    throw;
  }
  return id;
}

// ---------------------------------------------------------------------------
// Materialization (tiers 2/1 -> 0) and the in-flight wait protocol.
// ---------------------------------------------------------------------------

void ActivationPager::wait_io(Page* p, std::unique_lock<std::mutex>& lock) {
  if (!p->io_busy.load(std::memory_order_acquire)) return;
  lock.unlock();
  {
    obs::trace::Span span("pager.io_wait", obs::trace::Cat::kPager);
    obs::ScopedPhase ph(obs::Phase::kSpillWait);
    pager_wait([p] { return !p->io_busy.load(std::memory_order_acquire); });
  }
  lock.lock();
}

Tensor ActivationPager::load_payload(Page* p) {
  if (p->recompute_dropped) {
    // Tier 3: re-derive the bytes by replaying the producing subgraph. The
    // value stashed at put() was the codec roundtrip of the raw forward
    // value; replay reproduces that raw value byte-identically, so pushing
    // it through encode+decode applies the exact same transform once more
    // and yields the same bytes the spill path would have returned.
    RecomputeSource* src = recompute_src_.load(std::memory_order_acquire);
    if (src == nullptr)
      throw std::logic_error(
          "ActivationPager: recompute page of layer '" + p->layer +
          "' has no RecomputeSource installed");
    obs::trace::Span span("pager.replay", obs::trace::Cat::kPager);
    Tensor raw = src->replay(p->layer);
    nn::EncodedActivation enc = codec_->encode(p->layer, raw);
    enc.shape = p->shape;
    enc.layer = p->layer;
    return codec_->decode(enc);
  }
  if (p->spilled && !p->encoded) {
    std::vector<std::uint8_t> buf(p->extent.size);
    const double t0 = now_ns();
    {
      obs::trace::Span span("pager.spill_read", obs::trace::Cat::kPager);
      spill_->read(p->extent, buf.data());
    }
    const double t1 = now_ns();
    if (cost_model_) cost_model_->observe_spill_read(buf.size(), t1 - t0);
    note_phase(obs::Phase::kSpillRead, t0, t1);
    if (fnv1a(buf.data(), buf.size()) != p->checksum)
      throw std::runtime_error(
          "ActivationPager: spill payload corrupt (checksum mismatch) for page of layer '" +
          p->layer + "'");
    TierAccounting::instance().on_spill_read(buf.size());
    if (p->exact) {
      Tensor out(p->shape);
      std::memcpy(out.data(), buf.data(), buf.size());
      return out;
    }
    nn::EncodedActivation enc;
    enc.bytes = std::move(buf);
    enc.shape = p->shape;
    enc.layer = p->layer;
    const double d0 = now_ns();
    Tensor out;
    {
      obs::trace::Span span("codec.decode", obs::trace::Cat::kCodec);
      out = codec_->decode(enc);
    }
    const double d1 = now_ns();
    if (cost_model_) cost_model_->observe_decode(out.bytes(), d1 - d0);
    note_phase(obs::Phase::kDecode, d0, d1);
    return out;
  }
  if (p->encoded) {
    const double d0 = now_ns();
    Tensor out;
    {
      obs::trace::Span span("codec.decode", obs::trace::Cat::kCodec);
      out = codec_->decode(p->enc);
    }
    const double d1 = now_ns();
    if (cost_model_) cost_model_->observe_decode(out.bytes(), d1 - d0);
    note_phase(obs::Phase::kDecode, d0, d1);
    return out;
  }
  throw std::logic_error("ActivationPager: page has no payload");
}

void ActivationPager::materialize(Page* p, std::unique_lock<std::mutex>& lock) {
  wait_io(p, lock);
  if (p->raw.numel() > 0) return;

  // Take I/O ownership so eviction keeps its hands off while we are
  // decoding outside the lock, then make headroom for the incoming raw
  // bytes so the peak respects the budget (the page's own blob is busy and
  // stays put; others spill). A victim's spill-write failure must not
  // leave our own busy flag stuck — waiters would hang forever.
  p->io_busy.store(true, std::memory_order_relaxed);
  try {
    enforce_to(target_for(p->shape.numel() * sizeof(float)), lock);
  } catch (...) {
    p->io_busy.store(false, std::memory_order_release);
    throw;
  }
  const bool from_disk = p->spilled && !p->encoded;
  lock.unlock();

  Tensor out;
  std::exception_ptr err;
  try {
    out = load_payload(p);
  } catch (...) {
    err = std::current_exception();
  }

  lock.lock();
  if (from_disk) totals_.spill_read_bytes += p->extent.size;
  if (!err && p->recompute_dropped) totals_.recompute_replays += 1;
  p->io_busy.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
  account_add(Tier::kRaw, out.bytes());
  p->raw = std::move(out);
}

// ---------------------------------------------------------------------------
// pin / unpin / drop.
// ---------------------------------------------------------------------------

const Tensor& ActivationPager::pin(PageId id) {
  std::unique_lock<std::mutex> lock(mu_);
  Page* p = find_locked(resolve_locked(id));
  if (p == nullptr) throw std::logic_error("ActivationPager::pin: unknown handle");
  wait_io(p, lock);
  if (p->error) std::rethrow_exception(p->error);
  materialize(p, lock);
  p->pin_count += 1;
  return p->raw;
}

void ActivationPager::unpin(PageId id) {
  std::unique_lock<std::mutex> lock(mu_);
  Page* p = find_locked(resolve_locked(id));
  if (p == nullptr) throw std::logic_error("ActivationPager::unpin: unknown handle");
  if (p->pin_count <= 0) throw std::logic_error("ActivationPager::unpin: not pinned");
  p->pin_count -= 1;
  if (p->pin_count == 0) enforce_to(cfg_.budget_bytes, lock);
}

Tensor ActivationPager::drop(PageId id) {
  prune_tasks();
  std::unique_lock<std::mutex> lock(mu_);
  // Any drop means some stash has started to be consumed, so the current
  // forward pass is over: tensors put after this point belong to a new
  // pass and can never be byte-equal to a page of the old one.
  group_live_.clear();
  const PageId prim_id = resolve_locked(id);
  Page* p = find_locked(prim_id);
  if (p == nullptr) throw std::logic_error("ActivationPager::drop: unknown handle");
  if (p->pin_count > 0) throw std::logic_error("ActivationPager::drop: page is pinned");
  wait_io(p, lock);

  auto member = p->members.find(id);
  if (member == p->members.end())
    throw std::logic_error("ActivationPager::drop: unknown handle");
  const OrderKey dropped_key = member->second;
  const bool last = p->members.size() <= 1;

  // Detach this member; when it is not the last, the page survives so the
  // remaining handles stay valid, and its eviction key advances to the
  // nearest use among the survivors.
  auto detach_member = [&] {
    alias_of_.erase(id);
    if (last) {
      erase_page_locked(prim_id);
    } else {
      p->members.erase(member);
      reposition_locked(p);
    }
  };

  if (p->error) {
    std::exception_ptr err = p->error;
    detach_member();
    std::rethrow_exception(err);
  }

  const bool hit = p->prefetched && p->raw.numel() > 0;
  try {
    materialize(p, lock);
  } catch (...) {
    detach_member();
    throw;
  }

  Tensor out;
  if (last) {
    out = std::move(p->raw);
    account_sub(Tier::kRaw, out.bytes());
    if (p->encoded) account_sub(Tier::kCompressed, p->enc.bytes.size());
    if (p->spilled && spill_) {
      spill_->free_extent(p->extent);
      account_sub(Tier::kSpilled, p->extent.size);
    }
    if (p->recompute_dropped) account_sub(Tier::kRecompute, p->original_bytes);
    order_.erase(p->key);
    pages_.erase(prim_id);
    alias_of_.erase(id);
  } else {
    // Sibling handles still need these bytes: hand out a copy and keep the
    // raw as an evictable (pass-1) cache for their drops.
    out = p->raw.clone();
    p->members.erase(member);
    alias_of_.erase(id);
    reposition_locked(p);
  }
  if (hit) {
    totals_.prefetch_hits += 1;
    TierAccounting::instance().on_prefetch_hit();
  }
  prefetch_ahead(&dropped_key, lock);
  return out;
}

void ActivationPager::prepare_backward() {
  std::unique_lock<std::mutex> lock(mu_);
  prefetch_ahead(nullptr, lock);
}

// ---------------------------------------------------------------------------
// Budget enforcement: free duplicate raw caches first (no I/O), then spill
// furthest-next-use first. order_ ascends toward the next consumption, so
// both passes walk it in reverse. Without liveness every rank is 0 and the
// reverse walk is exactly ascending put sequence — the seed policy.
// ---------------------------------------------------------------------------

void ActivationPager::enforce_to(std::size_t target_bytes,
                                 std::unique_lock<std::mutex>& lock) {
  if (cfg_.budget_bytes == 0) return;

  // In-flight prefetches have reserved their raw bytes but not landed yet;
  // counting them here keeps the resident *peak* under budget when they
  // do (they cannot be cancelled, so eviction makes room for them now).
  const auto resident = [this] {
    return raw_bytes_ + compressed_bytes_ + pending_fetch_bytes_;
  };

  // Pass 1: drop tier-0 caches whose bytes also exist as a blob or extent.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (resident() <= target_bytes) return;
    Page* p = find_locked(it->second);
    if (p == nullptr) continue;
    if (p->pin_count > 0 || p->io_busy.load(std::memory_order_relaxed)) continue;
    if (p->raw.numel() > 0 && (p->encoded || p->spilled || p->recompute_dropped)) {
      account_sub(Tier::kRaw, p->raw.bytes());
      p->raw = Tensor();
      p->prefetched = false;
      totals_.evictions += 1;
      TierAccounting::instance().on_eviction();
    }
  }

  // Pass 2: spill to disk. The maps can change while the lock is dropped
  // around a write or task submission, so rescan from the far end each
  // round. Pages mid-write (io_busy) are skipped, which is what keeps the
  // write-behind victim sequence identical to the synchronous one: a queued
  // victim cannot be re-picked, and the settled projection below advances
  // exactly as the synchronous post-write accounting would.
  const auto pick_victim = [&]() -> Page* {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      Page* p = find_locked(it->second);
      if (p == nullptr) continue;
      if (p->pin_count > 0 || p->io_busy.load(std::memory_order_relaxed)) continue;
      if (p->spilled) continue;  // RAM copy (if any) was freed in pass 1
      if (p->encoded || (p->exact && p->raw.numel() > 0)) return p;
    }
    return nullptr;
  };

  if (!cfg_.write_behind) {
    while (resident() > target_bytes) {
      Page* victim = pick_victim();
      if (victim == nullptr) {
        totals_.over_budget_events += 1;
        TierAccounting::instance().on_over_budget();
        return;
      }
      // Cheapest escape first: drop-and-replay when the cost model prices
      // it below the spill roundtrip, else push the payload to disk.
      if (!try_recompute_drop_locked(victim)) spill_payload(victim, lock);
      totals_.evictions += 1;
      TierAccounting::instance().on_eviction();
    }
    return;
  }

  // Write-behind: queue victims (up to write_window in flight) and only
  // return once the *actual* resident bytes fit — the budget is a hard cap
  // and not-yet-written blobs still occupy RAM. Victim *selection* runs
  // against the settled projection (resident minus bytes already queued) so
  // no extra pages are evicted just because writes have not landed yet.
  for (;;) {
    if (spill_error_) {
      std::exception_ptr err = spill_error_;
      spill_error_ = nullptr;
      std::rethrow_exception(err);  // the failed victim's payload stayed put
    }
    if (resident() <= target_bytes) return;
    if (resident() > target_bytes + pending_spill_bytes_ &&
        pending_spill_count_ < cfg_.write_window) {
      if (Page* victim = pick_victim()) {
        // Cheapest escape first (see the synchronous loop). A recompute
        // drop is pure bookkeeping, so it needs none of the write-behind
        // machinery — the blob is simply gone.
        if (try_recompute_drop_locked(victim)) {
          totals_.evictions += 1;
          TierAccounting::instance().on_eviction();
          continue;
        }
        // The eviction/write counters are charged inside spill_payload_async
        // (and rolled back there if the write fails): the charge must land
        // before the task body, which can run inline during submission.
        spill_payload_async(victim, lock);
        continue;
      }
      if (pending_spill_count_ == 0) {
        totals_.over_budget_events += 1;
        TierAccounting::instance().on_over_budget();
        return;
      }
      // Everything eligible is already mid-write: fall through and wait.
    }
    // Over target with writes in flight (or at the window): wait for one to
    // land, then re-evaluate. spill_gen_ is bumped under mu_, which we hold
    // here, so a completion can never slip between this read and the wait.
    const std::uint64_t gen = spill_gen_.load(std::memory_order_acquire);
    lock.unlock();
    {
      obs::trace::Span span("pager.writeback_wait", obs::trace::Cat::kPager);
      obs::ScopedPhase ph(obs::Phase::kSpillWait);
      pager_wait([this, gen] {
        return spill_gen_.load(std::memory_order_acquire) != gen;
      });
    }
    lock.lock();
  }
}

bool ActivationPager::try_recompute_drop_locked(Page* p) {
  if (!cfg_.recompute || !cost_model_) return false;
  // Eligibility: a lossy blob still in RAM, unshared (dedup aliases would
  // all replay the primary layer's plan — excluded for simplicity), and
  // not already escaped another way. Exact pages never qualify: replay
  // reconstructs codec-roundtripped values, and the exact contract promises
  // the page's very own bytes back.
  if (p->exact || !p->encoded || p->spilled || p->recompute_dropped) return false;
  if (p->members.size() != 1) return false;
  RecomputeSource* src = recompute_src_.load(std::memory_order_acquire);
  if (src == nullptr || !src->can_replay(p->layer)) return false;
  if (!cost_model_->calibrated()) return false;  // early run: spill fallback
  if (!cost_model_->prefer_recompute(p->original_bytes, p->enc.bytes.size(),
                                     src->replay_flops(p->layer)))
    return false;

  account_sub(Tier::kCompressed, p->enc.bytes.size());
  p->enc = nn::EncodedActivation{};
  p->encoded = false;
  p->recompute_dropped = true;
  account_add(Tier::kRecompute, p->original_bytes);
  totals_.recompute_drops += 1;
  return true;
}

bool ActivationPager::spill_payload(Page* p, std::unique_lock<std::mutex>& lock) {
  if (p->spilled || (!p->encoded && p->raw.numel() == 0)) return false;

  p->io_busy.store(true, std::memory_order_relaxed);
  const bool from_enc = p->encoded;
  const void* data = from_enc ? static_cast<const void*>(p->enc.bytes.data())
                              : static_cast<const void*>(p->raw.data());
  const std::size_t size = from_enc ? p->enc.bytes.size() : p->raw.bytes();
  SpillFile& file = spill_file_locked();
  lock.unlock();

  SpillExtent ext;
  std::exception_ptr err;
  std::uint64_t sum = 0;
  try {
    sum = fnv1a(data, size);
    const double t0 = now_ns();
    {
      obs::trace::Span span("pager.spill_write", obs::trace::Cat::kPager);
      ext = file.write(data, size);
    }
    const double t1 = now_ns();
    if (cost_model_) cost_model_->observe_spill_write(size, t1 - t0);
    note_phase(obs::Phase::kSpillWrite, t0, t1);
  } catch (...) {
    err = std::current_exception();
  }

  lock.lock();
  p->io_busy.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);  // payload still resident: no loss
  p->extent = ext;
  p->checksum = sum;
  p->spilled = true;
  account_add(Tier::kSpilled, size);
  if (from_enc) {
    account_sub(Tier::kCompressed, p->enc.bytes.size());
    p->enc = nn::EncodedActivation{};
    p->encoded = false;
  } else {
    account_sub(Tier::kRaw, p->raw.bytes());
    p->raw = Tensor();
  }
  totals_.spill_write_bytes += size;
  TierAccounting::instance().on_spill_write(size);
  return true;
}

void ActivationPager::spill_payload_async(Page* p, std::unique_lock<std::mutex>& lock) {
  // Counters are charged at issue time so the on/off write-behind counter
  // streams match, and rolled back if the write fails — the synchronous
  // path only counts a spill once the write has landed, so parity holds on
  // the error path too. The tier accounting itself only moves when the
  // write lands (until then the payload genuinely occupies RAM).
  p->io_busy.store(true, std::memory_order_relaxed);
  const bool from_enc = p->encoded;
  const void* data = from_enc ? static_cast<const void*>(p->enc.bytes.data())
                              : static_cast<const void*>(p->raw.data());
  const std::size_t size = from_enc ? p->enc.bytes.size() : p->raw.bytes();
  SpillFile& file = spill_file_locked();
  pending_spill_bytes_ += size;
  pending_spill_count_ += 1;
  totals_.evictions += 1;
  totals_.spill_write_bytes += size;
  TierAccounting::instance().on_eviction();
  TierAccounting::instance().on_spill_write(size);

  // Submit outside mu_: on a one-thread pool the body runs inline here. The
  // payload pointer stays valid because io_busy keeps every other path
  // (eviction, drop, materialize) off the page until the task clears it.
  lock.unlock();
  auto fut = tensor::sched::async([this, p, &file, data, size, from_enc] {
    SpillExtent ext;
    std::uint64_t sum = 0;
    std::exception_ptr err;
    try {
      sum = fnv1a(data, size);
      const double t0 = now_ns();
      {
        obs::trace::Span span("pager.spill_write_wb", obs::trace::Cat::kPager);
        ext = file.write(data, size);
      }
      const double t1 = now_ns();
      if (cost_model_) cost_model_->observe_spill_write(size, t1 - t0);
      note_phase(obs::Phase::kSpillWrite, t0, t1);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> g(mu_);
    pending_spill_bytes_ -= size;
    pending_spill_count_ -= 1;
    if (err) {
      if (!spill_error_) spill_error_ = err;  // payload still resident: no loss
      // The eviction never happened: undo the issue-time charges so the
      // counter totals match the synchronous path, which counts nothing
      // when the write throws.
      totals_.evictions -= 1;
      totals_.spill_write_bytes -= size;
      TierAccounting::instance().rollback_eviction();
      TierAccounting::instance().rollback_spill_write(size);
    } else {
      p->extent = ext;
      p->checksum = sum;
      p->spilled = true;
      account_add(Tier::kSpilled, size);
      if (from_enc) {
        account_sub(Tier::kCompressed, p->enc.bytes.size());
        p->enc = nn::EncodedActivation{};
        p->encoded = false;
      } else {
        account_sub(Tier::kRaw, p->raw.bytes());
        p->raw = Tensor();
      }
    }
    p->io_busy.store(false, std::memory_order_release);
    spill_gen_.fetch_add(1, std::memory_order_release);
  });
  {
    std::lock_guard<std::mutex> g(tasks_mu_);
    tasks_.push_back(std::move(fut));
  }
  lock.lock();
}

void ActivationPager::spill(PageId id) {
  std::unique_lock<std::mutex> lock(mu_);
  Page* p = find_locked(resolve_locked(id));
  if (p == nullptr) throw std::logic_error("ActivationPager::spill: unknown handle");
  if (p->pin_count > 0) throw std::logic_error("ActivationPager::spill: page is pinned");
  wait_io(p, lock);
  if (p->error) std::rethrow_exception(p->error);

  // Free a duplicate raw cache first, then push the remaining RAM payload
  // (blob or exact raw) to disk.
  if (p->raw.numel() > 0 && (p->encoded || p->spilled)) {
    account_sub(Tier::kRaw, p->raw.bytes());
    p->raw = Tensor();
    p->prefetched = false;
  }
  spill_payload(p, lock);
}

// ---------------------------------------------------------------------------
// Backward-pass prefetch.
// ---------------------------------------------------------------------------

void ActivationPager::prefetch_ahead(const OrderKey* after,
                                     std::unique_lock<std::mutex>& lock) {
  if (cfg_.prefetch_depth == 0 || pages_.empty()) return;
  // Admission reserve: the consumer is about to materialize a page of its
  // own (typically the largest outstanding one), and in-flight fetches
  // cannot be cancelled once admitted — so a prefetch only launches when
  // budget still holds it *plus* one largest-page materialization. Without
  // this, a fetch admitted while resident was low lands mid-materialize
  // and pushes the peak over budget.
  std::size_t reserve = 0;
  if (cfg_.budget_bytes != 0) {
    for (const auto& [id, page] : pages_)
      reserve = std::max(reserve, page->shape.numel() * sizeof(float));
  }
  std::vector<Page*> submit;
  std::size_t window = 0;
  // order_ ascends toward the next consumption, so the pages needed soonest
  // after the just-dropped key sit right past its upper bound. nullptr means
  // the backward pass has not consumed anything yet: start from the front.
  for (auto it = after ? order_.upper_bound(*after) : order_.begin();
       it != order_.end() && window < cfg_.prefetch_depth; ++it) {
    Page* p = find_locked(it->second);
    if (p == nullptr) continue;
    if (p->raw.numel() > 0 || p->io_busy.load(std::memory_order_relaxed)) {
      ++window;  // already materialized or being fetched: occupies the window
      continue;
    }
    if (!p->encoded && !p->spilled && !p->recompute_dropped)
      continue;  // nothing to fetch (or replay) from
    const std::size_t need = p->shape.numel() * sizeof(float);
    if (cfg_.budget_bytes != 0 &&
        raw_bytes_ + compressed_bytes_ + pending_fetch_bytes_ + need + reserve >
            cfg_.budget_bytes) {
      break;  // no headroom; later pages are needed even later
    }
    p->io_busy.store(true, std::memory_order_relaxed);
    pending_fetch_bytes_ += need;
    submit.push_back(p);
    ++window;
    totals_.prefetch_submitted += 1;
    TierAccounting::instance().on_prefetch_submitted();
  }
  if (submit.empty()) return;

  lock.unlock();
  for (Page* p : submit) submit_fetch(p);
  lock.lock();
}

void ActivationPager::submit_fetch(Page* p) {
  auto fut = tensor::sched::async([this, p] {
    obs::trace::Span span("pager.prefetch", obs::trace::Cat::kPager);
    const std::size_t need = p->shape.numel() * sizeof(float);
    const bool from_disk = p->spilled && !p->encoded;
    try {
      Tensor out = load_payload(p);
      std::lock_guard<std::mutex> lock(mu_);
      if (from_disk) totals_.spill_read_bytes += p->extent.size;
      if (p->recompute_dropped) totals_.recompute_replays += 1;
      pending_fetch_bytes_ -= need;
      account_add(Tier::kRaw, out.bytes());
      p->raw = std::move(out);
      p->prefetched = true;
      p->io_busy.store(false, std::memory_order_release);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_fetch_bytes_ -= need;
      p->error = std::current_exception();
      p->io_busy.store(false, std::memory_order_release);
    }
  });
  std::lock_guard<std::mutex> g(tasks_mu_);
  tasks_.push_back(std::move(fut));
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

void ActivationPager::drain() {
  for (;;) {
    Page* busy = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, p] : pages_) {
        if (p->io_busy.load(std::memory_order_acquire)) {
          busy = p.get();
          break;
        }
      }
    }
    if (busy == nullptr) break;
    obs::trace::Span span("pager.drain_wait", obs::trace::Cat::kPager);
    obs::ScopedPhase ph(obs::Phase::kSpillWait);
    pager_wait([busy] { return !busy->io_busy.load(std::memory_order_acquire); });
  }
  // Wait outside tasks_mu_: wait() help-executes queued tasks, and an
  // inlined task landing back in the pager would re-take the mutex on this
  // thread. Loop in case a helped task submitted more I/O.
  for (;;) {
    std::vector<tensor::sched::Future> pending;
    {
      std::lock_guard<std::mutex> g(tasks_mu_);
      if (tasks_.empty()) break;
      pending.swap(tasks_);
    }
    for (auto& f : pending) f.wait();
  }
  // A write-behind failure that lands after the last enforce_to() would
  // otherwise surface only on the next budget enforcement — or never, when
  // this drain is the session's final settle. Rethrow it here, once all
  // I/O has quiesced (the failed page's payload is still resident).
  std::unique_lock<std::mutex> lock(mu_);
  if (spill_error_) {
    std::exception_ptr err = spill_error_;
    spill_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

Tier ActivationPager::tier(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Page* p = find_locked(resolve_locked(id));
  if (p == nullptr) throw std::logic_error("ActivationPager::tier: unknown handle");
  if (p->raw.numel() > 0) return Tier::kRaw;
  if (p->encoded) return Tier::kCompressed;
  if (p->recompute_dropped) return Tier::kRecompute;
  return Tier::kSpilled;
}

std::size_t ActivationPager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

std::size_t ActivationPager::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return raw_bytes_ + compressed_bytes_;
}

std::size_t ActivationPager::spilled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spilled_bytes_;
}

PagerCounters ActivationPager::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  PagerCounters c = totals_;
  c.resident_bytes = raw_bytes_ + compressed_bytes_;
  c.peak_resident_bytes = peak_resident_;
  c.raw_bytes = raw_bytes_;
  c.compressed_bytes = compressed_bytes_;
  c.spilled_bytes = spilled_bytes_;
  c.recompute_bytes = recompute_bytes_;
  return c;
}

CostModelSnapshot ActivationPager::cost_snapshot() const {
  return cost_model_ ? cost_model_->snapshot() : CostModelSnapshot{};
}

std::map<std::string, nn::StoreStats> ActivationPager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ActivationPager::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

std::string ActivationPager::spill_path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_ ? spill_->path() : std::string();
}

}  // namespace ebct::memory
