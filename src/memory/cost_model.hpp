#pragma once

/// \file cost_model.hpp
/// Measured escape-cost model for the pager's eviction decision. When a page
/// must leave RAM the pager has two escapes: spill the codec blob to disk
/// (pay write now + read at backward) or drop the payload entirely and
/// replay the producing subgraph at backward (pay FLOPs + a re-encode).
/// The model prices both from rates calibrated on the first few pages of
/// the run — real encode and spill timings observed in situ — and freezes
/// once each rate has enough samples, so one run's decisions stop drifting.
///
/// Decisions may legitimately differ between runs (they are timing-
/// dependent); the pager's byte-identity contract does NOT depend on which
/// escape wins — both reproduce the page's post-codec bytes exactly. Tests
/// and benches that need reproducible *decisions* pin the rates via
/// EBCT_RECOMPUTE_RATES ("encode=F,decode=F,write=F,read=F,flop=F",
/// strictly parsed), which marks the model calibrated from construction.

#include <cstddef>
#include <mutex>
#include <string>

namespace ebct::memory {

/// Calibrated (or pinned) cost rates, all in nanoseconds.
struct CostRates {
  double encode_ns_per_byte = 0.0;
  double decode_ns_per_byte = 0.0;
  double write_ns_per_byte = 0.0;
  double read_ns_per_byte = 0.0;
  double flop_ns = 0.0;  ///< ns per floating-point op of replay
};

/// Snapshot for bench reporting: rates plus how they were obtained.
struct CostModelSnapshot {
  CostRates rates;
  bool pinned = false;
  bool calibrated = false;
  std::size_t encode_samples = 0;
  std::size_t decode_samples = 0;
  std::size_t write_samples = 0;
  std::size_t read_samples = 0;
};

class CostModel {
 public:
  /// Empty spec -> measured mode (calibrates from observations). Non-empty
  /// spec -> pinned mode; throws std::invalid_argument unless the spec is
  /// exactly "encode=F,decode=F,write=F,read=F,flop=F" with finite
  /// non-negative values (strict: no extra keys, no reordering, no blanks).
  explicit CostModel(const std::string& pinned_spec = "");

  /// Observation hooks, called by the pager with wall-time measurements.
  /// Each accumulates until kCalibrationSamples, then its rate freezes.
  void observe_encode(std::size_t bytes, double ns);
  void observe_decode(std::size_t bytes, double ns);
  void observe_spill_write(std::size_t bytes, double ns);
  void observe_spill_read(std::size_t bytes, double ns);

  /// True once every decision-relevant rate (encode, write, read) is
  /// frozen — or immediately in pinned mode. Until then the pager must
  /// fall back to spilling, which keeps early-run behaviour identical to
  /// a recompute-off run.
  bool calibrated() const;

  /// True when dropping-and-replaying is estimated cheaper than spilling:
  ///   flops * flop_ns + raw_bytes * encode_ns
  ///     < blob_bytes * (write_ns + read_ns).
  /// The decode cost is common to both escapes and omitted. Returns false
  /// until calibrated().
  bool prefer_recompute(std::size_t raw_bytes, std::size_t blob_bytes,
                        double flops) const;

  CostModelSnapshot snapshot() const;

  /// Samples per rate before it freezes (measured mode).
  static constexpr std::size_t kCalibrationSamples = 4;
  /// Conservative replay throughput assumed in measured mode (~4 GFLOP/s);
  /// deliberately pessimistic so recompute only wins when clearly cheaper.
  static constexpr double kDefaultFlopNs = 0.25;

 private:
  struct RateAcc {
    std::size_t bytes = 0;
    double ns = 0.0;
    std::size_t samples = 0;
    double frozen_rate = 0.0;
    bool frozen = false;

    void observe(std::size_t b, double t, std::size_t freeze_at);
  };

  mutable std::mutex mu_;
  bool pinned_ = false;
  CostRates pinned_rates_;
  RateAcc encode_, decode_, write_, read_;
};

}  // namespace ebct::memory
