#include "serve/session.hpp"

namespace ebct::serve {

void EncodeSession::begin(std::shared_ptr<nn::ActivationCodec> codec, const std::string& spec,
                          std::size_t window_elems, nn::ByteSink sink) {
  if (enc_) {
    enc_->rebind(std::move(codec), spec, window_elems, std::move(sink));
  } else {
    enc_ = std::make_unique<nn::StreamingEncoder>(std::move(codec), spec, window_elems,
                                                  std::move(sink));
  }
}

void DecodeSession::begin(nn::ByteSink sink) {
  // The decoder produces floats; requests ship raw bytes. Adapt here so the
  // connection handler deals in one sink type.
  nn::FloatSink fsink = [s = std::move(sink)](const float* data, std::size_t n) {
    s(reinterpret_cast<const std::uint8_t*>(data), n * sizeof(float));
  };
  if (dec_) {
    dec_->rebind(std::move(fsink));
  } else {
    dec_ = std::make_unique<nn::StreamingDecoder>(factory_, std::move(fsink));
  }
}

std::size_t DecodeSession::resident_cap_bytes() const {
  const std::size_t w =
      (dec_ && dec_->window_elems() > 0) ? dec_->window_elems() : nn::kDefaultWindowElems;
  return 4 * w * sizeof(float) + (std::size_t{1} << 20) + w * sizeof(float);
}

std::unique_ptr<EncodeSession> SessionPool::acquire_encode() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_encode_.empty()) {
    auto s = std::move(free_encode_.back());
    free_encode_.pop_back();
    return s;
  }
  return std::make_unique<EncodeSession>();
}

void SessionPool::release_encode(std::unique_ptr<EncodeSession> s) {
  if (!s) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_encode_.push_back(std::move(s));
}

std::unique_ptr<DecodeSession> SessionPool::acquire_decode() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_decode_.empty()) {
    auto s = std::move(free_decode_.back());
    free_decode_.pop_back();
    return s;
  }
  return std::make_unique<DecodeSession>(factory_);
}

void SessionPool::release_decode(std::unique_ptr<DecodeSession> s) {
  if (!s) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_decode_.push_back(std::move(s));
}

std::size_t SessionPool::pooled_encode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_encode_.size();
}

std::size_t SessionPool::pooled_decode() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_decode_.size();
}

}  // namespace ebct::serve
