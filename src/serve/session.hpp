#pragma once

/// \file session.hpp
/// Per-request encode/decode session objects with pooled scratch buffers.
///
/// A session wraps a streaming codec (nn/streaming.hpp) plus the frame
/// staging buffers one request needs. The SessionPool keeps finished
/// session objects — including their window/scratch vector capacity — and
/// hands them back to the next request via rebind(), so a long-lived
/// server reaches a steady state with zero per-request allocation in the
/// staging path (the LJSON pooled-buffer idiom). Sessions are used by one
/// connection thread at a time; the pool itself is thread-safe.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/streaming.hpp"

namespace ebct::serve {

/// One in-flight encode request: raw float bytes in, EBCS container out.
class EncodeSession {
 public:
  /// Arm for a request. `sink` receives container bytes as windows close.
  void begin(std::shared_ptr<nn::ActivationCodec> codec, const std::string& spec,
             std::size_t window_elems, nn::ByteSink sink);

  void feed_bytes(const std::uint8_t* data, std::size_t n) { enc_->feed_bytes(data, n); }
  void finish() { enc_->finish(); }

  std::size_t window_elems() const { return enc_ ? enc_->window_elems() : 0; }
  std::uint64_t bytes_out() const { return enc_ ? enc_->bytes_out() : 0; }

  /// Bound on bytes this session keeps resident between frames — what the
  /// server charges against the tenant's budget at admission.
  std::size_t resident_cap_bytes() const { return enc_ ? enc_->resident_cap_bytes() : 0; }

 private:
  std::unique_ptr<nn::StreamingEncoder> enc_;  ///< reused across begin()s
};

/// One in-flight decode request: EBCS container bytes in, raw floats out.
class DecodeSession {
 public:
  explicit DecodeSession(nn::CodecFactory factory) : factory_(std::move(factory)) {}

  /// Arm for a request. `sink` receives raw float bytes per decoded window.
  void begin(nn::ByteSink sink);

  void feed_bytes(const std::uint8_t* data, std::size_t n) { dec_->feed(data, n); }
  void finish() { dec_->finish(); }

  const std::string& spec() const { return dec_->spec(); }
  std::size_t window_elems() const { return dec_ ? dec_->window_elems() : 0; }

  /// Resident bound: one framed block plus its decoded floats. Known only
  /// after the container header parses (it fixes window_elems); before
  /// that, reports the floor for one default-window stream. The server
  /// charges the floor at admission and re-charges the actual cap against
  /// the tenant budget once the header arrives (429 mid-stream on overrun).
  std::size_t resident_cap_bytes() const;

 private:
  nn::CodecFactory factory_;
  std::unique_ptr<nn::StreamingDecoder> dec_;
};

/// Thread-safe free-lists of session objects. acquire_* pops a pooled
/// object (or builds a fresh one); release_* returns it once the request
/// completes. Objects keep their buffer capacity between requests.
class SessionPool {
 public:
  explicit SessionPool(nn::CodecFactory factory) : factory_(std::move(factory)) {}

  std::unique_ptr<EncodeSession> acquire_encode();
  void release_encode(std::unique_ptr<EncodeSession> s);

  std::unique_ptr<DecodeSession> acquire_decode();
  void release_decode(std::unique_ptr<DecodeSession> s);

  std::size_t pooled_encode() const;
  std::size_t pooled_decode() const;

 private:
  nn::CodecFactory factory_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<EncodeSession>> free_encode_;
  std::vector<std::unique_ptr<DecodeSession>> free_decode_;
};

}  // namespace ebct::serve
