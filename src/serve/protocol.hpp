#pragma once

/// \file protocol.hpp
/// Wire protocol of the ebct_serve daemon: a length-prefixed framed stream
/// over a local (AF_UNIX) socket. Documented for external clients in
/// docs/SERVING.md — keep the two in sync.
///
/// Frame layout (all integers little-endian):
///
///   u32 payload_len | u8 type | payload[payload_len]
///
/// One request per connection. Client-to-server frames:
///
///   kOpen    payload: u8 op (0 = encode, 1 = decode)
///            | u16 tenant_len | tenant bytes
///            | u16 spec_len   | spec bytes   (encode only; "" on decode —
///                                             the EBCS header names it)
///            | u32 window_elems (encode only; 0 = server default)
///   kData    payload: raw bytes — float32 input for encode, EBCS container
///            bytes for decode. Any granularity; output bytes are
///            independent of how the input is framed.
///   kFinish  payload: empty — end of input.
///
/// Server-to-client frames:
///
///   kOpenOk  payload: u32 window_elems in force (the budget-admission ack)
///   kData    payload: output bytes (EBCS container for encode, raw floats
///            for decode)
///   kDone    payload: u64 bytes_in | u64 bytes_out — request complete.
///   kError   payload: u16 code | message bytes. Codes are HTTP-flavoured:
///            400 malformed frame/stream, 404 unknown codec spec,
///            413 frame exceeds the size cap, 429 tenant over byte budget
///            (backpressure — retry later), 500 internal error.
///            After kError the server closes the connection.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace ebct::serve {

enum class FrameType : std::uint8_t {
  kOpen = 1,
  kData = 2,
  kFinish = 3,
  kOpenOk = 4,
  kDone = 5,
  kError = 6,
};

enum class Op : std::uint8_t { kEncode = 0, kDecode = 1 };

/// HTTP-flavoured error codes carried by kError frames.
inline constexpr std::uint16_t kErrMalformed = 400;
inline constexpr std::uint16_t kErrUnknownSpec = 404;
inline constexpr std::uint16_t kErrFrameTooBig = 413;
inline constexpr std::uint16_t kErrOverBudget = 429;
inline constexpr std::uint16_t kErrInternal = 500;

/// Hard cap on a frame payload unless overridden (EBCT_SERVE_MAX_FRAME).
inline constexpr std::size_t kDefaultMaxFrame = 4u << 20;

/// A parsed frame (payload copied out of the stream buffer).
struct Frame {
  FrameType type = FrameType::kData;
  std::vector<std::uint8_t> payload;
};

/// Server-reported request failure, surfaced to client-library callers.
class ServerError : public std::runtime_error {
 public:
  ServerError(std::uint16_t code, const std::string& message)
      : std::runtime_error("ebct_serve error " + std::to_string(code) + ": " + message),
        code_(code) {}
  std::uint16_t code() const { return code_; }

 private:
  std::uint16_t code_;
};

// --- frame (de)serialisation helpers -------------------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint16_t get_u16(const std::uint8_t* p);
std::uint32_t get_u32(const std::uint8_t* p);
std::uint64_t get_u64(const std::uint8_t* p);

/// Serialise a frame header+payload into `out` (appended).
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::uint8_t* payload, std::size_t len);

/// Blocking exact write of the whole buffer; throws std::runtime_error on
/// EPIPE/EINTR-exhausted/other socket errors. Like read_frame, polls in
/// 100 ms slices and consults `poll_stop` between them, so a draining
/// server also abandons writes to a peer that stopped reading (full socket
/// buffer) instead of hanging stop() past drain_grace_ms.
void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::function<bool()>* poll_stop = nullptr);

/// Blocking frame write; same `poll_stop` contract as write_all.
void write_frame(int fd, FrameType type, const std::uint8_t* payload, std::size_t len,
                 const std::function<bool()>* poll_stop = nullptr);

/// Convenience error-frame write (never throws — used on teardown paths).
void write_error_frame(int fd, std::uint16_t code, const std::string& message,
                       const std::function<bool()>* poll_stop = nullptr) noexcept;

/// Blocking frame read with a payload size cap. Returns false on clean EOF
/// at a frame boundary; throws on mid-frame EOF, oversize payloads
/// (ServerError 413) or socket errors. `poll_stop`, when non-null, is
/// consulted between poll slices so a draining server can abandon a read
/// that will never complete (throws std::runtime_error when it fires).
bool read_frame(int fd, Frame& out, std::size_t max_payload,
                const std::function<bool()>* poll_stop = nullptr);

/// kOpen payload contents.
struct OpenRequest {
  Op op = Op::kEncode;
  std::string tenant;
  std::string spec;
  std::uint32_t window_elems = 0;
};

std::vector<std::uint8_t> serialize_open(const OpenRequest& req);
OpenRequest parse_open(const std::vector<std::uint8_t>& payload);  // throws ServerError(400)

}  // namespace ebct::serve
