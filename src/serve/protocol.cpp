#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ebct::serve {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  const std::uint8_t* payload, std::size_t len) {
  put_u32(out, static_cast<std::uint32_t>(len));
  out.push_back(static_cast<std::uint8_t>(type));
  if (len > 0) out.insert(out.end(), payload, payload + len);
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::function<bool()>* poll_stop) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-request must surface as EPIPE
    // (an exception the handler reports), not a process-killing SIGPIPE.
    // MSG_DONTWAIT: a peer that stopped *reading* (full socket buffer) must
    // surface as EAGAIN so we fall through to the poll slice below and give
    // poll_stop a chance to abandon the drain — mirroring read_exact.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      data += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
      throw std::runtime_error(std::string("ebct_serve: socket write failed: ") +
                               std::strerror(errno));
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("ebct_serve: poll failed: ") +
                               std::strerror(errno));
    }
    if (pr == 0 && poll_stop && (*poll_stop)())
      throw std::runtime_error("ebct_serve: write abandoned (server draining)");
  }
}

void write_frame(int fd, FrameType type, const std::uint8_t* payload, std::size_t len,
                 const std::function<bool()>* poll_stop) {
  std::vector<std::uint8_t> buf;
  buf.reserve(5 + len);
  append_frame(buf, type, payload, len);
  write_all(fd, buf.data(), buf.size(), poll_stop);
}

void write_error_frame(int fd, std::uint16_t code, const std::string& message,
                       const std::function<bool()>* poll_stop) noexcept {
  try {
    std::vector<std::uint8_t> payload;
    put_u16(payload, code);
    payload.insert(payload.end(), message.begin(), message.end());
    write_frame(fd, FrameType::kError, payload.data(), payload.size(), poll_stop);
  } catch (...) {
    // Teardown path: the peer may already be gone; nothing more to report.
  }
}

namespace {

/// Blocking exact read. Returns false on EOF before the first byte (clean
/// close); throws on EOF mid-buffer or error. Polls in 100 ms slices so a
/// draining server can abandon the wait via `poll_stop`.
bool read_exact(int fd, std::uint8_t* data, std::size_t len, bool eof_ok,
                const std::function<bool()>* poll_stop) {
  std::size_t got = 0;
  while (got < len) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("ebct_serve: poll failed: ") +
                               std::strerror(errno));
    }
    if (pr == 0) {
      if (poll_stop && (*poll_stop)())
        throw std::runtime_error("ebct_serve: read abandoned (server draining)");
      continue;
    }
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("ebct_serve: socket read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("ebct_serve: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool read_frame(int fd, Frame& out, std::size_t max_payload,
                const std::function<bool()>* poll_stop) {
  std::uint8_t header[5];
  if (!read_exact(fd, header, 5, /*eof_ok=*/true, poll_stop)) return false;
  const std::uint32_t len = get_u32(header);
  const std::uint8_t type = header[4];
  if (type < static_cast<std::uint8_t>(FrameType::kOpen) ||
      type > static_cast<std::uint8_t>(FrameType::kError))
    throw ServerError(kErrMalformed, "unknown frame type " + std::to_string(type));
  if (len > max_payload)
    throw ServerError(kErrFrameTooBig, "frame payload " + std::to_string(len) +
                                           " bytes exceeds cap " +
                                           std::to_string(max_payload));
  out.type = static_cast<FrameType>(type);
  out.payload.resize(len);
  if (len > 0) read_exact(fd, out.payload.data(), len, /*eof_ok=*/false, poll_stop);
  return true;
}

std::vector<std::uint8_t> serialize_open(const OpenRequest& req) {
  std::vector<std::uint8_t> p;
  p.push_back(static_cast<std::uint8_t>(req.op));
  put_u16(p, static_cast<std::uint16_t>(req.tenant.size()));
  p.insert(p.end(), req.tenant.begin(), req.tenant.end());
  put_u16(p, static_cast<std::uint16_t>(req.spec.size()));
  p.insert(p.end(), req.spec.begin(), req.spec.end());
  put_u32(p, req.window_elems);
  return p;
}

OpenRequest parse_open(const std::vector<std::uint8_t>& payload) {
  const auto need = [&payload](std::size_t at, std::size_t n) {
    if (at + n > payload.size())
      throw ServerError(kErrMalformed, "truncated OPEN payload");
  };
  OpenRequest req;
  need(0, 1);
  const std::uint8_t op = payload[0];
  if (op > 1) throw ServerError(kErrMalformed, "OPEN op must be 0 (encode) or 1 (decode)");
  req.op = static_cast<Op>(op);
  std::size_t at = 1;
  need(at, 2);
  const std::uint16_t tenant_len = get_u16(payload.data() + at);
  at += 2;
  need(at, tenant_len);
  req.tenant.assign(reinterpret_cast<const char*>(payload.data() + at), tenant_len);
  at += tenant_len;
  need(at, 2);
  const std::uint16_t spec_len = get_u16(payload.data() + at);
  at += 2;
  need(at, spec_len);
  req.spec.assign(reinterpret_cast<const char*>(payload.data() + at), spec_len);
  at += spec_len;
  need(at, 4);
  req.window_elems = get_u32(payload.data() + at);
  at += 4;
  if (at != payload.size())
    throw ServerError(kErrMalformed, "trailing bytes in OPEN payload");
  if (req.tenant.empty()) throw ServerError(kErrMalformed, "OPEN tenant must be non-empty");
  if (req.op == Op::kEncode && req.spec.empty())
    throw ServerError(kErrMalformed, "OPEN encode requires a codec spec");
  return req;
}

}  // namespace ebct::serve
