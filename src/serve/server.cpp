#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/sched.hpp"

namespace ebct::serve {

namespace {

/// Strict env parses, same contract as the framework envs (core/session.cpp):
/// a set-but-malformed value throws instead of silently defaulting.
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0')
    throw std::invalid_argument(std::string(name) + " must be a non-negative integer, got '" +
                                v + "'");
  return static_cast<std::size_t>(parsed);
}

int env_int(const char* name, int fallback) {
  const std::size_t v = env_size(name, static_cast<std::size_t>(fallback));
  return static_cast<int>(v);
}

}  // namespace

ServerConfig ServerConfig::from_env() { return from_env(ServerConfig{}); }

ServerConfig ServerConfig::from_env(ServerConfig base) {
  if (const char* v = std::getenv("EBCT_SERVE_SOCKET"); v != nullptr && *v != '\0')
    base.socket_path = v;
  base.window_elems = env_size("EBCT_SERVE_WINDOW", base.window_elems);
  base.max_frame = env_size("EBCT_SERVE_MAX_FRAME", base.max_frame);
  base.tenant_budget_bytes = env_size("EBCT_SERVE_TENANT_BUDGET", base.tenant_budget_bytes);
  base.drain_grace_ms = env_int("EBCT_SERVE_DRAIN_MS", base.drain_grace_ms);
  if (base.max_frame == 0)
    throw std::invalid_argument("EBCT_SERVE_MAX_FRAME must be positive");
  return base;
}

Server::Server(ServerConfig cfg, core::FrameworkConfig fw)
    : cfg_(std::move(cfg)),
      fw_(std::move(fw)),
      pool_([this](const std::string& spec) {
        return core::CodecRegistry::instance().create(spec, fw_);
      }) {
  if (cfg_.socket_path.empty())
    throw std::invalid_argument("ebct_serve: socket path must be set (EBCT_SERVE_SOCKET)");
  // AF_UNIX sun_path is ~108 bytes; fail loudly instead of binding truncated.
  if (cfg_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::invalid_argument("ebct_serve: socket path too long for AF_UNIX: " +
                                cfg_.socket_path);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("ebct_serve: socket() failed: ") +
                             std::strerror(errno));
  ::unlink(cfg_.socket_path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ebct_serve: bind(" + cfg_.socket_path +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("ebct_serve: listen() failed: ") +
                             std::strerror(err));
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // In-flight requests finish (their reads and writes poll stopping_ and
  // give up after drain_grace_ms of silence); idle connections see the
  // abandoned read and close. Join everything.
  std::vector<Conn> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns)
    if (c.thread.joinable()) c.thread.join();
  ::unlink(cfg_.socket_path.c_str());
}

memory::TierAccounting& Server::tenant_acct(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& slot = tenants_[tenant];
  if (!slot) slot = std::make_unique<memory::TierAccounting>();
  return *slot;
}

memory::TierUsage Server::tenant_usage(const std::string& tenant) {
  return tenant_acct(tenant).usage();
}

void Server::reap_finished_locked() {
  // A conn whose done flag is set has left handle_connection; its join
  // completes in microseconds (the thread is between the store and pthread
  // exit at worst), so reaping under the lock is fine.
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    struct pollfd pfd {};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;  // listener gone — stop() handles cleanup
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      reap_finished_locked();
    }
    if (pr == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back({std::thread([this, fd, done] {
                        handle_connection(fd);
                        done->store(true, std::memory_order_release);
                      }),
                      done});
  }
}

void Server::handle_connection(int fd) {
  active_conns_.fetch_add(1, std::memory_order_relaxed);
  obs::ServeMetrics::instance().on_session_open();
  try {
    handle_request(fd);
  } catch (...) {
    // handle_request reports its own errors; nothing useful left to do.
  }
  ::close(fd);
  obs::ServeMetrics::instance().on_session_close();
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::handle_request(int fd) {
  auto& metrics = obs::ServeMetrics::instance();
  const std::uint64_t t0 = obs::trace::detail::now_ns();

  // Reads AND writes poll this so a draining server abandons sockets that
  // go silent (or stop reading). In-flight requests get drain_grace_ms of
  // patience from the stop signal; connections idle at a frame boundary
  // drop out at the first poll slice. Atomic because the sink's writes run
  // on a pool thread concurrently with the handler's reads.
  auto grace_left_ms = std::make_shared<std::atomic<std::int64_t>>(cfg_.drain_grace_ms);
  std::function<bool()> poll_stop = [this, grace_left_ms]() {
    if (!stopping_.load(std::memory_order_acquire)) return false;
    // one poll slice burned waiting
    return grace_left_ms->fetch_sub(100, std::memory_order_acq_rel) - 100 <= 0;
  };

  Frame frame;
  OpenRequest req;
  try {
    if (!read_frame(fd, frame, cfg_.max_frame, &poll_stop)) return;  // connected, said nothing
    if (frame.type != FrameType::kOpen)
      throw ServerError(kErrMalformed, "expected OPEN as the first frame");
    req = parse_open(frame.payload);
  } catch (const ServerError& e) {
    metrics.on_error();
    write_error_frame(fd, e.code(), e.what(), &poll_stop);
    return;
  } catch (const std::exception& e) {
    metrics.on_error();
    write_error_frame(fd, kErrInternal, e.what(), &poll_stop);
    return;
  }

  const bool encode = req.op == Op::kEncode;
  obs::trace::Span span(encode ? "serve.encode" : "serve.decode", obs::trace::Cat::kServe);

  std::unique_ptr<EncodeSession> enc;
  std::unique_ptr<DecodeSession> dec;
  memory::TierAccounting& acct = tenant_acct(req.tenant);
  std::size_t charged = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  // Output sink: frames bytes back to the client. Runs on the pool thread
  // executing the current window task; the handler never writes the socket
  // while a task is in flight, so writes stay ordered.
  auto sink = [this, fd, &bytes_out, &poll_stop](const std::uint8_t* data, std::size_t n) {
    while (n > 0) {
      const std::size_t take = std::min(n, cfg_.max_frame);
      write_frame(fd, FrameType::kData, data, take, &poll_stop);
      data += take;
      n -= take;
      bytes_out += take;
    }
  };

  auto release = [&]() {
    if (charged > 0) {
      acct.sub(memory::Tier::kRaw, charged);
      charged = 0;
    }
    if (enc) pool_.release_encode(std::move(enc));
    if (dec) pool_.release_decode(std::move(dec));
  };

  try {
    const std::size_t window = req.window_elems != 0 ? req.window_elems : cfg_.window_elems;
    if (encode) {
      std::shared_ptr<nn::ActivationCodec> codec;
      try {
        codec = core::CodecRegistry::instance().create(req.spec, fw_);
      } catch (const std::invalid_argument& e) {
        throw ServerError(kErrUnknownSpec, e.what());
      }
      enc = pool_.acquire_encode();
      enc->begin(std::move(codec), req.spec, window, sink);
    } else {
      dec = pool_.acquire_decode();
      dec->begin(sink);
    }

    // Budget admission: charge the session's resident cap, then check.
    // add-then-check keeps the race window closed against concurrent
    // admissions of the same tenant (both see the sum including the other).
    const std::size_t cap = encode ? enc->resident_cap_bytes() : dec->resident_cap_bytes();
    acct.add(memory::Tier::kRaw, cap);
    charged = cap;
    if (cfg_.tenant_budget_bytes != 0 &&
        acct.usage().resident() > cfg_.tenant_budget_bytes) {
      acct.on_over_budget();
      throw ServerError(kErrOverBudget,
                        "tenant '" + req.tenant + "' over byte budget (" +
                            std::to_string(cfg_.tenant_budget_bytes) +
                            "); retry when sessions drain");
    }

    {
      std::vector<std::uint8_t> ok;
      put_u32(ok, static_cast<std::uint32_t>(encode ? enc->window_elems() : 0));
      write_frame(fd, FrameType::kOpenOk, ok.data(), ok.size(), &poll_stop);
    }

    // Double-buffered ingest: while the pool runs the feed task for chunk
    // k, the handler blocks in read_frame for chunk k+1. wait() rethrows
    // codec/protocol errors from the task. `busy` is declared before the
    // Future so unwinding waits for the task before freeing its input.
    std::vector<std::uint8_t> busy;  // chunk owned by the in-flight task
    tensor::sched::Future in_flight;
    bool finished = false;
    while (!finished) {
      if (!read_frame(fd, frame, cfg_.max_frame, &poll_stop))
        throw ServerError(kErrMalformed, "client disconnected mid-request");
      if (in_flight.valid()) in_flight.wait();
      // Decode admission was charged before any container bytes arrived, so
      // it used the default-window floor — the EBCS header (which fixes
      // window_elems, hence the real resident cap) ships inside the first
      // data frame. Re-charge the delta once the header has parsed and
      // re-run the budget check, so a client-chosen large window bounces
      // with a 429 mid-stream instead of bypassing the tenant budget.
      if (dec) {
        const std::size_t cap = dec->resident_cap_bytes();
        if (cap > charged) {
          acct.add(memory::Tier::kRaw, cap - charged);
          charged = cap;
          if (cfg_.tenant_budget_bytes != 0 &&
              acct.usage().resident() > cfg_.tenant_budget_bytes) {
            acct.on_over_budget();
            throw ServerError(kErrOverBudget,
                              "tenant '" + req.tenant + "' over byte budget (" +
                                  std::to_string(cfg_.tenant_budget_bytes) +
                                  ") for declared window; retry when sessions drain");
          }
        }
      }
      switch (frame.type) {
        case FrameType::kData: {
          bytes_in += frame.payload.size();
          busy.swap(frame.payload);
          EncodeSession* e = enc.get();
          DecodeSession* d = dec.get();
          const std::uint8_t* data = busy.data();
          const std::size_t n = busy.size();
          in_flight = tensor::sched::async([e, d, data, n] {
            obs::trace::Span wspan("serve.window", obs::trace::Cat::kServe);
            if (e)
              e->feed_bytes(data, n);
            else
              d->feed_bytes(data, n);
          });
          break;
        }
        case FrameType::kFinish:
          finished = true;
          break;
        default:
          throw ServerError(kErrMalformed, "unexpected frame type mid-request");
      }
    }
    if (encode)
      enc->finish();
    else
      dec->finish();

    // Commit metrics and release the budget charge BEFORE the DONE frame:
    // once the client sees DONE the request is complete, so a snapshot taken
    // then must already include it (and a follow-up request by the same
    // tenant must not bounce off a charge we are about to drop anyway).
    metrics.on_bytes_in(bytes_in);
    metrics.on_bytes_out(bytes_out);
    metrics.on_request_done(obs::trace::detail::now_ns() - t0);
    release();
    std::vector<std::uint8_t> done;
    put_u64(done, bytes_in);
    put_u64(done, bytes_out);
    write_frame(fd, FrameType::kDone, done.data(), done.size(), &poll_stop);
  } catch (const ServerError& e) {
    if (e.code() == kErrOverBudget)
      metrics.on_reject();
    else
      metrics.on_error();
    write_error_frame(fd, e.code(), e.what(), &poll_stop);
    release();
  } catch (const std::exception& e) {
    metrics.on_error();
    // A malformed EBCS container surfaces as a streaming-decode failure out
    // of the feed task — that is the client's fault, not the server's.
    const bool client_fault =
        std::string_view(e.what()).find("streaming decode:") != std::string_view::npos;
    write_error_frame(fd, client_fault ? kErrMalformed : kErrInternal, e.what(), &poll_stop);
    release();
  }
}

}  // namespace ebct::serve
