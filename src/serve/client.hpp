#pragma once

/// \file client.hpp
/// Client library for the ebct_serve daemon. One connection per request;
/// input is pulled from a reader callback and output pushed to a writer
/// callback, so arbitrarily large payloads stream through in constant
/// memory (the CLI wires these straight to stdin/stdout).
///
/// The transfer runs as a poll-based duplex pump: the socket is
/// non-blocking and the client services reads and writes in one loop, so a
/// server blocked writing output can never deadlock against a client
/// blocked writing input — the failure mode a naive write-all-then-read
/// client hits as soon as a payload exceeds the socket buffers.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace ebct::serve {

/// Pull up to `cap` input bytes into `buf`; return the count, 0 at EOF.
using PullReader = std::function<std::size_t(std::uint8_t* buf, std::size_t cap)>;

/// Receive output bytes (valid only for the call).
using PushWriter = std::function<void(const std::uint8_t* data, std::size_t n)>;

struct TransferStats {
  std::uint64_t bytes_in = 0;   ///< payload bytes the server received
  std::uint64_t bytes_out = 0;  ///< payload bytes the server sent
  std::uint32_t window_elems = 0;  ///< window in force (encode requests)
};

class Client {
 public:
  explicit Client(std::string socket_path);

  /// Stream an encode request: float32 bytes from `reader`, EBCS container
  /// bytes to `writer`. Throws ServerError on server-reported failures
  /// (429 budget, 404 spec, ...), std::runtime_error on transport errors.
  TransferStats encode(const std::string& tenant, const std::string& spec,
                       std::size_t window_elems, const PullReader& reader,
                       const PushWriter& writer);

  /// Stream a decode request: EBCS container bytes in, float32 bytes out.
  TransferStats decode(const std::string& tenant, const PullReader& reader,
                       const PushWriter& writer);

  /// Whole-buffer conveniences (tests, small payloads).
  std::vector<std::uint8_t> encode_bytes(const std::string& tenant, const std::string& spec,
                                         std::size_t window_elems,
                                         const std::vector<std::uint8_t>& raw);
  std::vector<std::uint8_t> decode_bytes(const std::string& tenant,
                                         const std::vector<std::uint8_t>& container);

  const std::string& socket_path() const { return socket_path_; }

  /// I/O granularity of the pump (bytes pulled per reader call).
  static constexpr std::size_t kIoChunk = 256 * 1024;

 private:
  TransferStats run(const OpenRequest& open, const PullReader& reader,
                    const PushWriter& writer);

  std::string socket_path_;
};

}  // namespace ebct::serve
