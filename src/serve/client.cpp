#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ebct::serve {

namespace {

/// RAII fd.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

int connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::invalid_argument("ebct_client: socket path too long for AF_UNIX: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("ebct_client: socket() failed: ") +
                             std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("ebct_client: connect(" + path +
                             ") failed: " + std::strerror(err));
  }
  return fd;
}

/// Incremental frame parser over the pump's receive buffer. Consumes
/// complete frames from the front of `buf`; returns true when one was
/// extracted into `out`.
bool take_frame(std::vector<std::uint8_t>& buf, Frame& out) {
  if (buf.size() < 5) return false;
  const std::uint32_t len = get_u32(buf.data());
  if (buf.size() < 5 + static_cast<std::size_t>(len)) return false;
  const std::uint8_t type = buf[4];
  if (type < static_cast<std::uint8_t>(FrameType::kOpen) ||
      type > static_cast<std::uint8_t>(FrameType::kError))
    throw std::runtime_error("ebct_client: server sent unknown frame type " +
                             std::to_string(type));
  out.type = static_cast<FrameType>(type);
  out.payload.assign(buf.begin() + 5, buf.begin() + 5 + len);
  buf.erase(buf.begin(), buf.begin() + 5 + len);
  return true;
}

[[noreturn]] void throw_error_frame(const Frame& f) {
  if (f.payload.size() < 2)
    throw std::runtime_error("ebct_client: malformed ERROR frame from server");
  const std::uint16_t code = get_u16(f.payload.data());
  throw ServerError(code, std::string(f.payload.begin() + 2, f.payload.end()));
}

}  // namespace

Client::Client(std::string socket_path) : socket_path_(std::move(socket_path)) {
  if (socket_path_.empty())
    throw std::invalid_argument("ebct_client: socket path must be non-empty");
}

TransferStats Client::run(const OpenRequest& open, const PullReader& reader,
                          const PushWriter& writer) {
  Fd sock{connect_unix(socket_path_)};
  const int fd = sock.fd;

  // OPEN/OPEN_OK handshake runs blocking: both frames are tiny and the
  // server replies before any bulk data moves.
  {
    const auto payload = serialize_open(open);
    write_frame(fd, FrameType::kOpen, payload.data(), payload.size());
  }
  TransferStats stats;
  {
    Frame f;
    if (!read_frame(fd, f, kDefaultMaxFrame))
      throw std::runtime_error("ebct_client: server closed during handshake");
    if (f.type == FrameType::kError) throw_error_frame(f);
    if (f.type != FrameType::kOpenOk)
      throw std::runtime_error("ebct_client: expected OPEN_OK, got frame type " +
                               std::to_string(static_cast<int>(f.type)));
    if (f.payload.size() >= 4) stats.window_elems = get_u32(f.payload.data());
  }

  // Bulk transfer: non-blocking duplex pump.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::runtime_error(std::string("ebct_client: fcntl failed: ") +
                             std::strerror(errno));

  std::vector<std::uint8_t> outbuf;   // wire bytes queued to send
  std::size_t out_at = 0;             // send offset into outbuf
  std::vector<std::uint8_t> inbuf;    // wire bytes received, unparsed
  std::vector<std::uint8_t> chunk(kIoChunk);
  bool input_done = false;  // reader hit EOF and FINISH is queued
  bool done = false;        // server sent DONE

  while (!done) {
    // Refill the send queue from the reader once drained.
    if (!input_done && out_at == outbuf.size()) {
      outbuf.clear();
      out_at = 0;
      const std::size_t n = reader(chunk.data(), chunk.size());
      if (n > 0) {
        append_frame(outbuf, FrameType::kData, chunk.data(), n);
      } else {
        append_frame(outbuf, FrameType::kFinish, nullptr, 0);
        input_done = true;
      }
    }

    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (out_at < outbuf.size()) pfd.events |= POLLOUT;
    const int pr = ::poll(&pfd, 1, 1000);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("ebct_client: poll failed: ") +
                               std::strerror(errno));
    }

    if (pfd.revents & POLLOUT) {
      // MSG_NOSIGNAL: EPIPE (server closed after an error frame we have not
      // drained yet), not SIGPIPE. The pending error frame in inbuf still
      // gets parsed, so the caller sees the ServerError, not the EPIPE.
      const ssize_t n =
          ::send(fd, outbuf.data() + out_at, outbuf.size() - out_at, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EPIPE) {
          outbuf.clear();  // stop writing; drain the server's verdict
          out_at = 0;
          input_done = true;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          throw std::runtime_error(std::string("ebct_client: write failed: ") +
                                   std::strerror(errno));
        }
      } else {
        out_at += static_cast<std::size_t>(n);
      }
    }

    if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t n = ::read(fd, chunk.data(), chunk.size());
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          throw std::runtime_error(std::string("ebct_client: read failed: ") +
                                   std::strerror(errno));
      } else if (n == 0) {
        throw std::runtime_error("ebct_client: server closed connection mid-request");
      } else {
        inbuf.insert(inbuf.end(), chunk.data(), chunk.data() + n);
        Frame f;
        while (take_frame(inbuf, f)) {
          switch (f.type) {
            case FrameType::kData:
              writer(f.payload.data(), f.payload.size());
              break;
            case FrameType::kDone:
              if (f.payload.size() >= 16) {
                stats.bytes_in = get_u64(f.payload.data());
                stats.bytes_out = get_u64(f.payload.data() + 8);
              }
              done = true;
              break;
            case FrameType::kError:
              throw_error_frame(f);
            default:
              throw std::runtime_error("ebct_client: unexpected frame type " +
                                       std::to_string(static_cast<int>(f.type)) +
                                       " mid-request");
          }
          if (done) break;
        }
      }
    }
  }
  return stats;
}

TransferStats Client::encode(const std::string& tenant, const std::string& spec,
                             std::size_t window_elems, const PullReader& reader,
                             const PushWriter& writer) {
  OpenRequest req;
  req.op = Op::kEncode;
  req.tenant = tenant;
  req.spec = spec;
  req.window_elems = static_cast<std::uint32_t>(window_elems);
  return run(req, reader, writer);
}

TransferStats Client::decode(const std::string& tenant, const PullReader& reader,
                             const PushWriter& writer) {
  OpenRequest req;
  req.op = Op::kDecode;
  req.tenant = tenant;
  return run(req, reader, writer);
}

std::vector<std::uint8_t> Client::encode_bytes(const std::string& tenant,
                                               const std::string& spec,
                                               std::size_t window_elems,
                                               const std::vector<std::uint8_t>& raw) {
  std::size_t at = 0;
  std::vector<std::uint8_t> out;
  encode(
      tenant, spec, window_elems,
      [&raw, &at](std::uint8_t* buf, std::size_t cap) {
        const std::size_t n = std::min(cap, raw.size() - at);
        std::memcpy(buf, raw.data() + at, n);
        at += n;
        return n;
      },
      [&out](const std::uint8_t* data, std::size_t n) { out.insert(out.end(), data, data + n); });
  return out;
}

std::vector<std::uint8_t> Client::decode_bytes(const std::string& tenant,
                                               const std::vector<std::uint8_t>& container) {
  std::size_t at = 0;
  std::vector<std::uint8_t> out;
  decode(
      tenant,
      [&container, &at](std::uint8_t* buf, std::size_t cap) {
        const std::size_t n = std::min(cap, container.size() - at);
        std::memcpy(buf, container.data() + at, n);
        at += n;
        return n;
      },
      [&out](const std::uint8_t* data, std::size_t n) { out.insert(out.end(), data, data + n); });
  return out;
}

}  // namespace ebct::serve
