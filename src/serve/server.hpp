#pragma once

/// \file server.hpp
/// The ebct_serve daemon core: a long-lived server multiplexing concurrent
/// streaming encode/decode requests over an AF_UNIX socket.
///
/// Architecture (docs/SERVING.md has the operator-facing description):
///
///  - One accept thread; one handler thread per connection (requests are
///    long-lived streams, so thread-per-connection is the right shape —
///    the CPU-heavy work is NOT on these threads).
///  - Per-window codec work is dispatched onto the process-wide
///    work-stealing pool (tensor/sched.hpp) with one task in flight per
///    request: the handler reads frame k+1 from the socket while the pool
///    encodes window k (double buffering), so concurrent requests share
///    the pool fairly and a single request still overlaps I/O with codec
///    compute.
///  - Per-tenant byte budgets ride the existing memory::TierAccounting:
///    each tenant gets an instance; a session's resident-byte cap is
///    charged at admission (add -> check -> rollback on overflow), and a
///    tenant over budget gets a 429-style reject — backpressure, not
///    queueing — until running sessions release their charge.
///  - SIGTERM drain: stop() closes the listener, lets in-flight requests
///    complete (bounded by drain_grace_ms), wakes idle reads AND writes
///    (a peer that stopped reading cannot wedge shutdown), joins every
///    handler, then releases pooled sessions. The daemon wrapper
///    (examples/ebct_serve.cpp) translates the signal into stop().
///  - Observability: every request runs under an obs::trace span
///    (cat "serve") and feeds the obs::ServeMetrics serve_* counters.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/codec_registry.hpp"
#include "memory/accounting.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace ebct::serve {

struct ServerConfig {
  std::string socket_path;                             ///< EBCT_SERVE_SOCKET
  std::size_t window_elems = nn::kDefaultWindowElems;  ///< EBCT_SERVE_WINDOW
  std::size_t max_frame = kDefaultMaxFrame;            ///< EBCT_SERVE_MAX_FRAME
  std::size_t tenant_budget_bytes = 0;                 ///< EBCT_SERVE_TENANT_BUDGET, 0 = off
  int drain_grace_ms = 5000;                           ///< EBCT_SERVE_DRAIN_MS

  /// Overlay EBCT_SERVE_* env vars (strict parses, same contract as the
  /// framework envs: bad values throw rather than silently default).
  static ServerConfig from_env(ServerConfig base);
  static ServerConfig from_env();
};

class Server {
 public:
  /// `fw` seeds codec construction (same defaults the registry applies in
  /// TrainingSession), so a served "sz" stream matches an in-process one.
  explicit Server(ServerConfig cfg, core::FrameworkConfig fw = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start accepting. Throws on socket errors (stale
  /// socket files are unlinked first).
  void start();

  /// Drain and shut down: stop accepting, complete in-flight requests
  /// (up to drain_grace_ms each), join all threads. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const ServerConfig& config() const { return cfg_; }

  /// Tenant ledger snapshot (creates the tenant on first use) — test hook.
  memory::TierUsage tenant_usage(const std::string& tenant);

  /// Number of connections currently being handled.
  std::size_t active_connections() const {
    return active_conns_.load(std::memory_order_relaxed);
  }

  /// Handler threads currently tracked (live or awaiting reap) — test hook
  /// for the accept loop's reaping of finished connections.
  std::size_t tracked_connections() const {
    std::lock_guard<std::mutex> lock(conns_mu_);
    return conns_.size();
  }

 private:
  /// A handler thread plus the flag it sets just before exiting, so the
  /// accept loop can reap finished threads without blocking on live ones —
  /// a long-lived daemon must not accumulate one joinable thread (pthread
  /// stack + vector entry) per completed request until shutdown.
  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_finished_locked();  ///< join+erase done conns; conns_mu_ held
  void handle_connection(int fd);
  void handle_request(int fd);
  memory::TierAccounting& tenant_acct(const std::string& tenant);

  ServerConfig cfg_;
  core::FrameworkConfig fw_;
  SessionPool pool_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_conns_{0};
  std::thread accept_thread_;
  mutable std::mutex conns_mu_;
  std::vector<Conn> conns_;
  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<memory::TierAccounting>> tenants_;
};

}  // namespace ebct::serve
