// Command-line compressor for raw float32 files — the standalone face of
// the compression engines, usable on any binary dump of floats (activation
// snapshots, simulation output, ...).
//
// Usage:
//   ebct_compress_cli c <in.f32> <out.ebct> [abs_error_bound] [zero_mode]
//   ebct_compress_cli c <in.f32> <out.ebct> --codec=<name[:params]>
//   ebct_compress_cli d <in.ebct> <out.f32>
//   ebct_compress_cli --help          (lists the registered codecs)
// zero_mode in {none, rezero, rle}; default rezero (the paper's filter).
//
// Without --codec the output is the raw self-describing SZ stream
// (byte-compatible with earlier releases). With --codec the bytes of any
// registry codec are wrapped in a small container that records the spec,
// so `d` can rebuild the identical codec — JPEG-ACT, for instance, needs
// its quality to dequantize.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/codec_registry.hpp"
#include "sz/compressor.hpp"
#include "tensor/tensor.hpp"

using namespace ebct;

namespace {

// Container layout: "EBCC" | u32 spec length | spec bytes | u64 numel |
// codec payload. Legacy SZ streams never start with "EBCC".
constexpr char kMagic[4] = {'E', 'B', 'C', 'C'};

std::vector<std::uint8_t> read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fprintf(stderr, "short read on %s\n", path);
    std::exit(1);
  }
  std::fclose(f);
  return bytes;
}

void write_file(const char* path, const void* data, std::size_t size) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr || std::fwrite(data, 1, size, f) != size) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fclose(f);
}

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n  %s c <in.f32> <out.ebct> [eb=1e-3] [none|rezero|rle]\n"
               "  %s c <in.f32> <out.ebct> --codec=<name[:params]>\n"
               "  %s d <in.ebct> <out.f32>\n\nregistered codecs:\n",
               argv0, argv0, argv0);
  for (const auto& info : core::CodecRegistry::instance().list()) {
    std::fprintf(stderr, "  %-10s %s%s%s\n", info.name.c_str(), info.summary.c_str(),
                 info.params_help.empty() ? "" : "  params: ",
                 info.params_help.c_str());
  }
}

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  // Registry/codec errors (typo'd --codec spec, bad parameters, corrupt
  // container) are invalid_argument/runtime_error throws — turn them into
  // a message + nonzero exit instead of a terminate() abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

namespace {

int run(int argc, char** argv) {
  std::string codec_spec;
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strncmp(argv[i], "--codec=", 8) == 0) {
      codec_spec = argv[i] + 8;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 3) {
    print_usage(argv[0]);
    return 2;
  }
  const std::string mode = args[0];
  if (mode == "c") {
    const auto raw = read_file(args[1]);
    if (raw.size() % sizeof(float) != 0) {
      std::fprintf(stderr, "%s is not a whole number of float32s\n", args[1]);
      return 1;
    }
    const std::size_t n = raw.size() / sizeof(float);
    if (!codec_spec.empty()) {
      // Registry path: any codec, wrapped in the spec-carrying container.
      // Unset sz parameters default to this CLI's historical eb=1e-3 (the
      // library's FrameworkConfig would seed 1e-4), so `--codec=sz` and the
      // positional form compress identically.
      core::FrameworkConfig fw;
      fw.bootstrap_error_bound = 1e-3;
      auto codec = core::CodecRegistry::instance().create(codec_spec, fw);
      tensor::Tensor t(tensor::Shape::nchw(1, 1, 1, n));
      std::memcpy(t.data(), raw.data(), raw.size());
      const auto enc = codec->encode("cli", t);
      std::vector<std::uint8_t> out;
      out.insert(out.end(), kMagic, kMagic + 4);
      const std::uint32_t spec_len = static_cast<std::uint32_t>(codec_spec.size());
      const std::uint64_t numel = n;
      out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&spec_len),
                 reinterpret_cast<const std::uint8_t*>(&spec_len) + 4);
      out.insert(out.end(), codec_spec.begin(), codec_spec.end());
      out.insert(out.end(), reinterpret_cast<const std::uint8_t*>(&numel),
                 reinterpret_cast<const std::uint8_t*>(&numel) + 8);
      out.insert(out.end(), enc.bytes.begin(), enc.bytes.end());
      write_file(args[2], out.data(), out.size());
      std::printf("%zu floats -> %zu bytes (%.2fx) via %s\n", n, out.size(),
                  static_cast<double>(raw.size()) / out.size(), codec->name().c_str());
      return 0;
    }
    sz::Config cfg;
    cfg.error_bound = args.size() > 3 ? std::atof(args[3]) : 1e-3;
    if (args.size() > 4) {
      const std::string zm = args[4];
      cfg.zero_mode = zm == "none"     ? sz::ZeroMode::kNone
                      : zm == "rle"    ? sz::ZeroMode::kExactRle
                                       : sz::ZeroMode::kRezero;
    }
    sz::Compressor comp(cfg);
    std::span<const float> data{reinterpret_cast<const float*>(raw.data()), n};
    const auto buf = comp.compress(data);
    write_file(args[2], buf.bytes.data(), buf.bytes.size());
    std::printf("%zu floats -> %zu bytes (%.2fx), abs eb %.3e\n", data.size(),
                buf.bytes.size(), buf.compression_ratio(), buf.abs_error_bound);
  } else if (mode == "d") {
    const auto bytes = read_file(args[1]);
    if (bytes.size() >= 16 && std::memcmp(bytes.data(), kMagic, 4) == 0) {
      // Container: rebuild the codec the file names and decode through it.
      std::uint32_t spec_len = 0;
      std::memcpy(&spec_len, bytes.data() + 4, 4);
      if (bytes.size() < 16 + static_cast<std::size_t>(spec_len)) {
        std::fprintf(stderr, "truncated container %s\n", args[1]);
        return 1;
      }
      const std::string spec(reinterpret_cast<const char*>(bytes.data()) + 8, spec_len);
      std::uint64_t numel = 0;
      std::memcpy(&numel, bytes.data() + 8 + spec_len, 8);
      nn::EncodedActivation enc;
      enc.layer = "cli";
      enc.shape = tensor::Shape::nchw(1, 1, 1, static_cast<std::size_t>(numel));
      enc.bytes.assign(bytes.begin() + 16 + spec_len, bytes.end());
      auto codec = core::CodecRegistry::instance().create(spec);
      const tensor::Tensor out = codec->decode(enc);
      write_file(args[2], out.data(), out.numel() * sizeof(float));
      std::printf("restored %zu floats via %s\n", out.numel(), codec->name().c_str());
      return 0;
    }
    sz::CompressedBuffer buf;
    buf.bytes = bytes;
    // num_elements lives in the self-describing header.
    std::memcpy(&buf.num_elements, buf.bytes.data() + 4, sizeof(std::uint64_t));
    sz::Compressor comp;
    const auto out = comp.decompress(buf);
    write_file(args[2], out.data(), out.size() * sizeof(float));
    std::printf("restored %zu floats\n", out.size());
  } else {
    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
  }
  return 0;
}

}  // namespace
