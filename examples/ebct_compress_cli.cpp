// Command-line compressor for raw float32 files — the standalone face of
// the SZ engine, usable on any binary dump of floats (activation snapshots,
// simulation output, ...).
//
// Usage:
//   ebct_compress_cli c <in.f32> <out.ebct> [abs_error_bound] [zero_mode]
//   ebct_compress_cli d <in.ebct> <out.f32>
// zero_mode in {none, rezero, rle}; default rezero (the paper's filter).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sz/compressor.hpp"

using namespace ebct;

namespace {

std::vector<std::uint8_t> read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fprintf(stderr, "short read on %s\n", path);
    std::exit(1);
  }
  std::fclose(f);
  return bytes;
}

void write_file(const char* path, const void* data, std::size_t size) {
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr || std::fwrite(data, 1, size, f) != size) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage:\n  %s c <in.f32> <out.ebct> [eb=1e-3] [none|rezero|rle]\n"
                 "  %s d <in.ebct> <out.f32>\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "c") {
    const auto raw = read_file(argv[2]);
    if (raw.size() % sizeof(float) != 0) {
      std::fprintf(stderr, "%s is not a whole number of float32s\n", argv[2]);
      return 1;
    }
    sz::Config cfg;
    cfg.error_bound = argc > 4 ? std::atof(argv[4]) : 1e-3;
    if (argc > 5) {
      const std::string zm = argv[5];
      cfg.zero_mode = zm == "none"     ? sz::ZeroMode::kNone
                      : zm == "rle"    ? sz::ZeroMode::kExactRle
                                       : sz::ZeroMode::kRezero;
    }
    sz::Compressor comp(cfg);
    std::span<const float> data{reinterpret_cast<const float*>(raw.data()),
                                raw.size() / sizeof(float)};
    const auto buf = comp.compress(data);
    write_file(argv[3], buf.bytes.data(), buf.bytes.size());
    std::printf("%zu floats -> %zu bytes (%.2fx), abs eb %.3e\n", data.size(),
                buf.bytes.size(), buf.compression_ratio(), buf.abs_error_bound);
  } else if (mode == "d") {
    sz::CompressedBuffer buf;
    buf.bytes = read_file(argv[2]);
    // num_elements lives in the self-describing header.
    std::memcpy(&buf.num_elements, buf.bytes.data() + 4, sizeof(std::uint64_t));
    sz::Compressor comp;
    const auto out = comp.decompress(buf);
    write_file(argv[3], out.data(), out.size() * sizeof(float));
    std::printf("restored %zu floats\n", out.size());
  } else {
    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
  }
  return 0;
}
