// Command-line compressor for raw float32 data — the standalone face of
// the compression engines, usable on any binary dump of floats (activation
// snapshots, simulation output, ...).
//
// Usage:
//   ebct_compress_cli c <in.f32|-> <out.ebcs|-> --codec=<name[:params]>
//   ebct_compress_cli d <in.ebcs|-> <out.f32|->
//   ebct_compress_cli c <in.f32> <out.ebct> [abs_error_bound] [zero_mode]
//   ebct_compress_cli c|d ... --server=<socket> [--tenant=<name>]
//   ebct_compress_cli --help
//
// "-" means stdin/stdout. With --codec (or any stdio endpoint) the CLI
// streams through the chunked EBCS container (src/nn/streaming.hpp) in
// constant memory: input is read, encoded window by window, and written
// without ever buffering the whole payload. --server routes the same
// stream through a running ebct_serve daemon instead of encoding locally.
//
// The positional [eb] [zero_mode] form keeps the historical behaviour: a
// raw self-describing SZ stream, byte-compatible with earlier releases
// (whole-buffer; file paths only). `d` sniffs all three input formats
// (EBCS stream, legacy EBCC container, raw SZ stream).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/codec_registry.hpp"
#include "nn/streaming.hpp"
#include "serve/client.hpp"
#include "sz/compressor.hpp"
#include "tensor/tensor.hpp"

using namespace ebct;

namespace {

// Legacy container layout: "EBCC" | u32 spec length | spec bytes |
// u64 numel | codec payload. Still decoded; no longer produced.
constexpr char kLegacyMagic[4] = {'E', 'B', 'C', 'C'};

// Bytes pulled per read in the streaming paths — with the codec window this
// bounds resident memory (see --help text).
constexpr std::size_t kIoChunk = 256 * 1024;

std::FILE* open_input(const char* path) {
  if (std::strcmp(path, "-") == 0) return stdin;
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  return f;
}

std::FILE* open_output(const char* path) {
  if (std::strcmp(path, "-") == 0) return stdout;
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  return f;
}

void close_file(std::FILE* f) {
  if (f != stdin && f != stdout) {
    std::fclose(f);
  } else {
    std::fflush(f);
  }
}

std::vector<std::uint8_t> slurp(std::FILE* f) {
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[kIoChunk];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.insert(bytes.end(), buf, buf + n);
  return bytes;
}

void write_out(std::FILE* f, const void* data, std::size_t size) {
  if (std::fwrite(data, 1, size, f) != size) {
    std::fprintf(stderr, "write failed\n");
    std::exit(1);
  }
}

void print_usage(const char* argv0) {
  const std::size_t window = nn::kDefaultWindowElems;
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s c <in.f32|-> <out.ebcs|-> --codec=<name[:params]> [--window=<elems>]\n"
      "  %s d <in.ebcs|-> <out.f32|->\n"
      "  %s c <in.f32> <out.ebct> [eb=1e-3] [none|rezero|rle]   (legacy raw SZ stream)\n"
      "  %s c|d ... --server=<socket> [--tenant=<name>]          (route via ebct_serve)\n"
      "\n'-' streams stdin/stdout. Streaming paths run in constant memory:\n"
      "resident bytes are bounded by ~3x the codec window (%zu floats = %zu KiB\n"
      "raw by default, tune with --window) plus one %zu KiB I/O chunk,\n"
      "independent of payload size.\n\nregistered codecs:\n",
      argv0, argv0, argv0, argv0, window, window * sizeof(float) / 1024, kIoChunk / 1024);
  for (const auto& info : core::CodecRegistry::instance().list()) {
    std::fprintf(stderr, "  %-10s %s%s%s\n", info.name.c_str(), info.summary.c_str(),
                 info.params_help.empty() ? "" : "  params: ",
                 info.params_help.c_str());
  }
}

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  // Registry/codec errors (typo'd --codec spec, bad parameters, corrupt
  // container) are invalid_argument/runtime_error throws — turn them into
  // a message + nonzero exit instead of a terminate() abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

namespace {

serve::PullReader file_reader(std::FILE* in) {
  return [in](std::uint8_t* buf, std::size_t cap) { return std::fread(buf, 1, cap, in); };
}

serve::PushWriter file_writer(std::FILE* out) {
  return [out](const std::uint8_t* data, std::size_t n) { write_out(out, data, n); };
}

int run(int argc, char** argv) {
  std::string codec_spec;
  std::string server_sock;
  std::string tenant = "cli";
  std::size_t window = 0;  // 0 = codec default
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    }
    if (std::strncmp(argv[i], "--codec=", 8) == 0) {
      codec_spec = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      server_sock = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--tenant=", 9) == 0) {
      tenant = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--window=", 9) == 0) {
      window = static_cast<std::size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 3) {
    print_usage(argv[0]);
    return 2;
  }
  const std::string mode = args[0];
  const bool stdio = std::strcmp(args[1], "-") == 0 || std::strcmp(args[2], "-") == 0;

  // Registry codecs seed this CLI's historical eb=1e-3 default (the
  // library's FrameworkConfig would seed 1e-4), so `--codec=sz` and the
  // positional form compress identically.
  core::FrameworkConfig fw;
  fw.bootstrap_error_bound = 1e-3;

  if (mode == "c") {
    std::FILE* in = open_input(args[1]);
    std::FILE* out = open_output(args[2]);
    if (!server_sock.empty()) {
      // Remote: the daemon encodes; spec defaults as locally.
      if (codec_spec.empty()) codec_spec = "sz:eb=1e-3";
      serve::Client client(server_sock);
      const auto stats =
          client.encode(tenant, codec_spec, window, file_reader(in), file_writer(out));
      close_file(out);
      close_file(in);
      std::fprintf(stderr, "%llu bytes -> %llu bytes via %s @ %s\n",
                   static_cast<unsigned long long>(stats.bytes_in),
                   static_cast<unsigned long long>(stats.bytes_out), codec_spec.c_str(),
                   server_sock.c_str());
      return 0;
    }
    if (!codec_spec.empty() || stdio) {
      // Local streaming: constant-memory chunked encode to EBCS.
      if (codec_spec.empty()) codec_spec = "sz:eb=1e-3";
      auto codec = core::CodecRegistry::instance().create(codec_spec, fw);
      nn::StreamingEncoder enc(codec, codec_spec, window, file_writer(out));
      std::vector<std::uint8_t> buf(kIoChunk);
      std::size_t n;
      while ((n = std::fread(buf.data(), 1, buf.size(), in)) > 0) enc.feed_bytes(buf.data(), n);
      enc.finish();
      close_file(out);
      close_file(in);
      std::fprintf(stderr, "%llu floats -> %llu bytes (%.2fx) via %s (streamed)\n",
                   static_cast<unsigned long long>(enc.floats_in()),
                   static_cast<unsigned long long>(enc.bytes_out()),
                   enc.floats_in() == 0
                       ? 0.0
                       : static_cast<double>(enc.floats_in() * sizeof(float)) /
                             static_cast<double>(enc.bytes_out()),
                   codec->name().c_str());
      return 0;
    }
    // Legacy raw SZ stream (whole-buffer, byte-compatible with earlier
    // releases).
    const auto raw = slurp(in);
    close_file(in);
    if (raw.size() % sizeof(float) != 0) {
      std::fprintf(stderr, "%s is not a whole number of float32s\n", args[1]);
      return 1;
    }
    const std::size_t n = raw.size() / sizeof(float);
    sz::Config cfg;
    cfg.error_bound = args.size() > 3 ? std::atof(args[3]) : 1e-3;
    if (args.size() > 4) {
      const std::string zm = args[4];
      cfg.zero_mode = zm == "none"     ? sz::ZeroMode::kNone
                      : zm == "rle"    ? sz::ZeroMode::kExactRle
                                       : sz::ZeroMode::kRezero;
    }
    sz::Compressor comp(cfg);
    std::span<const float> data{reinterpret_cast<const float*>(raw.data()), n};
    const auto buf = comp.compress(data);
    write_out(out, buf.bytes.data(), buf.bytes.size());
    close_file(out);
    std::printf("%zu floats -> %zu bytes (%.2fx), abs eb %.3e\n", data.size(),
                buf.bytes.size(), buf.compression_ratio(), buf.abs_error_bound);
    return 0;
  }

  if (mode != "d") {
    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
  }

  std::FILE* in = open_input(args[1]);
  std::FILE* out = open_output(args[2]);
  if (!server_sock.empty()) {
    serve::Client client(server_sock);
    const auto stats = client.decode(tenant, file_reader(in), file_writer(out));
    close_file(out);
    close_file(in);
    std::fprintf(stderr, "%llu bytes -> %llu bytes via %s\n",
                 static_cast<unsigned long long>(stats.bytes_in),
                 static_cast<unsigned long long>(stats.bytes_out), server_sock.c_str());
    return 0;
  }

  // Sniff the format from the first 4 bytes.
  std::uint8_t head[4];
  const std::size_t head_n = std::fread(head, 1, 4, in);
  if (head_n == 4 && std::memcmp(head, "EBCS", 4) == 0) {
    // Chunked stream: constant-memory decode.
    nn::StreamingDecoder dec(
        [&fw](const std::string& spec) {
          return core::CodecRegistry::instance().create(spec, fw);
        },
        [out](const float* data, std::size_t n) { write_out(out, data, n * sizeof(float)); });
    dec.feed(head, 4);
    std::vector<std::uint8_t> buf(kIoChunk);
    std::size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), in)) > 0) dec.feed(buf.data(), n);
    dec.finish();
    close_file(out);
    close_file(in);
    std::fprintf(stderr, "restored %llu floats via %s (streamed)\n",
                 static_cast<unsigned long long>(dec.floats_out()), dec.spec().c_str());
    return 0;
  }

  // Whole-buffer formats: legacy EBCC container or raw SZ stream.
  std::vector<std::uint8_t> bytes(head, head + head_n);
  {
    const auto rest = slurp(in);
    bytes.insert(bytes.end(), rest.begin(), rest.end());
  }
  close_file(in);
  if (bytes.size() >= 16 && std::memcmp(bytes.data(), kLegacyMagic, 4) == 0) {
    std::uint32_t spec_len = 0;
    std::memcpy(&spec_len, bytes.data() + 4, 4);
    if (bytes.size() < 16 + static_cast<std::size_t>(spec_len)) {
      std::fprintf(stderr, "truncated container %s\n", args[1]);
      return 1;
    }
    const std::string spec(reinterpret_cast<const char*>(bytes.data()) + 8, spec_len);
    std::uint64_t numel = 0;
    std::memcpy(&numel, bytes.data() + 8 + spec_len, 8);
    nn::EncodedActivation enc;
    enc.layer = "cli";
    enc.shape = tensor::Shape::nchw(1, 1, 1, static_cast<std::size_t>(numel));
    enc.bytes.assign(bytes.begin() + 16 + spec_len, bytes.end());
    auto codec = core::CodecRegistry::instance().create(spec);
    const tensor::Tensor dec = codec->decode(enc);
    write_out(out, dec.data(), dec.numel() * sizeof(float));
    close_file(out);
    std::fprintf(stderr, "restored %zu floats via %s\n", dec.numel(), codec->name().c_str());
    return 0;
  }
  sz::CompressedBuffer buf;
  buf.bytes = std::move(bytes);
  if (buf.bytes.size() < 12) {
    std::fprintf(stderr, "input too short to be an SZ stream\n");
    return 1;
  }
  // num_elements lives in the self-describing header.
  std::memcpy(&buf.num_elements, buf.bytes.data() + 4, sizeof(std::uint64_t));
  sz::Compressor comp;
  const auto dec = comp.decompress(buf);
  write_out(out, dec.data(), dec.size() * sizeof(float));
  close_file(out);
  std::fprintf(stderr, "restored %zu floats\n", dec.size());
  return 0;
}

}  // namespace
