// Example: full training comparison on the synthetic ImageNet substitute.
// Trains the same network three ways — raw baseline, EBCT framework, and
// the lossless-compression baseline — and reports curves, eval accuracy,
// per-layer compression ratios and the peak activation footprint of each.
//
// Usage: train_synthetic [model] [iterations]
//        model in {AlexNet, VGG-16, ResNet-18, ResNet-50}; default ResNet-18.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/lossless.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

struct Outcome {
  std::string name;
  double eval_acc = 0.0;
  double final_loss = 0.0;
  double ratio = 0.0;
  std::size_t peak_store_bytes = 0;
};

Outcome run(const std::string& label, const std::string& model, core::StoreMode mode,
            nn::ActivationStore* custom, std::size_t iters) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 11;
  auto net = models::find_model(model)(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 128;
  dspec.test_per_class = 32;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 16, true, true, 27);

  core::SessionConfig cfg;
  cfg.mode = mode;
  cfg.framework.active_factor_w = 20;
  cfg.base_lr = (model == "AlexNet" || model == "VGG-16") ? 0.01 : 0.05;
  core::TrainingSession session(*net, loader, cfg);
  if (custom != nullptr) session.set_custom_store(custom);

  Outcome out;
  out.name = label;
  session.run(iters, [&](const core::IterationRecord& rec) {
    out.final_loss = rec.loss;
    out.ratio = rec.mean_compression_ratio;
    out.peak_store_bytes = std::max(out.peak_store_bytes, rec.store_held_bytes);
  });
  data::DataLoader ev(ds, 16, false, false);
  out.eval_acc = session.evaluate(ev, 8);

  if (mode == core::StoreMode::kFramework) {
    std::printf("\n[%s] adaptive per-layer error bounds:\n", label.c_str());
    for (const auto& [layer, eb] : session.scheme()->last_bounds())
      std::printf("  %-28s eb = %.2e  (ratio %.1fx)\n", layer.c_str(), eb,
                  session.codec()->last_ratios().count(layer)
                      ? session.codec()->last_ratios().at(layer)
                      : 0.0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "ResNet-18";
  const std::size_t iters = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
  std::printf("=== training %s for %zu iterations, three activation stores ===\n",
              model.c_str(), iters);

  baselines::LosslessCodec lossless_codec;
  auto shared = std::make_shared<baselines::LosslessCodec>();
  nn::CodecStore lossless_store(shared);

  const Outcome base = run("baseline", model, core::StoreMode::kBaseline, nullptr, iters);
  const Outcome fw = run("EBCT", model, core::StoreMode::kFramework, nullptr, iters);
  const Outcome ll = run("lossless", model, core::StoreMode::kCustom, &lossless_store, iters);

  memory::Table table({"store", "eval top-1", "final loss", "conv ratio",
                       "peak stash bytes"});
  for (const Outcome& o : {base, fw, ll}) {
    table.add_row({o.name, memory::fmt("%.3f", o.eval_acc),
                   memory::fmt("%.3f", o.final_loss),
                   o.ratio > 0 ? memory::fmt("%.1fx", o.ratio) : "1.0x",
                   memory::human_bytes(o.peak_store_bytes)});
  }
  std::puts("");
  table.print();
  return 0;
}
