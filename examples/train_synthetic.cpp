// Example: full training comparison on the synthetic ImageNet substitute.
// Trains the same network under several activation codecs — selected purely
// by registry spec strings, no per-codec wiring — and reports curves, eval
// accuracy, per-layer compression ratios and the peak activation footprint.
//
// Usage: train_synthetic [model] [iterations] [--codec=<name[:params]>]
//        model in {AlexNet, VGG-16, ResNet-18, ResNet-50}; default ResNet-18.
//        Default codec set: none (raw baseline), sz, lossless. With --codec,
//        the baseline and the requested codec are compared instead.
//        --help lists every registered codec.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/codec_registry.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

namespace {

struct Outcome {
  std::string name;
  double eval_acc = 0.0;
  double final_loss = 0.0;
  double ratio = 0.0;
  std::size_t peak_store_bytes = 0;
};

Outcome run(const std::string& model, const std::string& codec_spec, std::size_t iters) {
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  mcfg.seed = 11;
  auto net = models::find_model(model)(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 128;
  dspec.test_per_class = 32;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 16, true, true, 27);

  core::SessionConfig cfg;
  cfg.framework.codec = codec_spec;
  cfg.framework.active_factor_w = 20;
  cfg.base_lr = (model == "AlexNet" || model == "VGG-16") ? 0.01 : 0.05;
  core::TrainingSession session(*net, loader, cfg);

  Outcome out;
  out.name = codec_spec;
  session.run(iters, [&](const core::IterationRecord& rec) {
    out.final_loss = rec.loss;
    out.ratio = rec.mean_compression_ratio;
    out.peak_store_bytes = std::max(out.peak_store_bytes, rec.store_held_bytes);
  });
  data::DataLoader ev(ds, 16, false, false);
  out.eval_acc = session.evaluate(ev, 8);

  if (session.scheme() != nullptr && session.scheme()->active()) {
    std::printf("\n[%s] adaptive per-layer error bounds:\n", codec_spec.c_str());
    const auto ratios = session.codec()->last_ratios();
    for (const auto& [layer, eb] : session.scheme()->last_bounds())
      std::printf("  %-28s eb = %.2e  (ratio %.1fx)\n", layer.c_str(), eb,
                  ratios.count(layer) ? ratios.at(layer) : 0.0);
  }
  return out;
}

void print_help(const char* argv0) {
  std::printf("usage: %s [model] [iterations] [--codec=<name[:params]>]\n\n", argv0);
  std::puts("registered codecs:");
  for (const auto& info : core::CodecRegistry::instance().list()) {
    std::printf("  %-10s %s%s%s\n", info.name.c_str(), info.summary.c_str(),
                info.params_help.empty() ? "" : "  params: ",
                info.params_help.c_str());
  }
  std::puts("\nplus the session sentinels \"none\" (raw baseline) and \"custom\".");
  std::puts("EBCT_CODEC=<spec> overrides the codec of any non-baseline run.");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model = "ResNet-18";
  std::size_t iters = 150;
  std::vector<std::string> codecs = {"none", "sz", "lossless"};
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(argv[0]);
      return 0;
    }
    if (arg.rfind("--codec=", 0) == 0) {
      codecs = {"none", arg.substr(std::strlen("--codec="))};
    } else if (positional == 0) {
      model = arg;
      ++positional;
    } else {
      iters = std::strtoul(arg.c_str(), nullptr, 10);
      ++positional;
    }
  }

  std::printf("=== training %s for %zu iterations, %zu activation codecs ===\n",
              model.c_str(), iters, codecs.size());

  std::vector<Outcome> outcomes;
  for (const auto& spec : codecs) outcomes.push_back(run(model, spec, iters));

  memory::Table table({"codec", "eval top-1", "final loss", "conv ratio",
                       "peak stash bytes"});
  for (const Outcome& o : outcomes) {
    table.add_row({o.name, memory::fmt("%.3f", o.eval_acc),
                   memory::fmt("%.3f", o.final_loss),
                   o.ratio > 0 ? memory::fmt("%.1fx", o.ratio) : "1.0x",
                   memory::human_bytes(o.peak_store_bytes)});
  }
  std::puts("");
  table.print();
  return 0;
}
