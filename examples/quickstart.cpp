// Quickstart: the two things EBCT does, in ~60 lines.
//
//  1. Compress a float tensor with a strict error bound and get ~10x the
//     ratio of lossless compression.
//  2. Train a CNN whose conv activations live compressed between the
//     forward and backward pass, with the adaptive error-bound controller
//     picking per-layer bounds — at no accuracy cost.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>

#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "models/model_zoo.hpp"
#include "sz/compressor.hpp"
#include "sz/metrics.hpp"
#include "tensor/rng.hpp"

using namespace ebct;

int main() {
  // --- 1. Error-bounded compression of activation-like data. ---------------
  std::vector<float> activations(1 << 20);
  tensor::Rng rng(42);
  rng.fill_relu_like({activations.data(), activations.size()},
                     /*sparsity=*/0.55, /*scale=*/1.0f);

  sz::Config cfg;
  cfg.error_bound = 1e-3;                    // every element within +-1e-3
  cfg.zero_mode = sz::ZeroMode::kExactRle;   // zeros restored exactly
  sz::Compressor compressor(cfg);

  const sz::CompressedBuffer buf = compressor.compress(activations);
  const std::vector<float> restored = compressor.decompress(buf);

  std::printf("compressed %zu floats: ratio %.1fx, max error %.2e (bound %.0e)\n",
              activations.size(), buf.compression_ratio(),
              sz::max_abs_error(activations, restored), cfg.error_bound);

  // --- 2. Memory-efficient training with the adaptive framework. -----------
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.25;
  auto net = models::make_resnet18(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 64;
  data::SyntheticImageDataset dataset(dspec);
  data::DataLoader loader(dataset, /*batch=*/16, /*train=*/true, /*shuffle=*/true);

  core::SessionConfig scfg;
  scfg.framework.codec = "sz";               // SZ-compressed activations
                                             // (any registry spec works:
                                             //  "lossless", "jpeg-act:quality=50", ...)
  scfg.framework.active_factor_w = 10;       // refresh bounds every 10 iters
  scfg.base_lr = 0.05;

  core::TrainingSession session(*net, loader, scfg);
  session.run(40, [](const core::IterationRecord& rec) {
    if (rec.iteration % 10 == 0) {
      std::printf("iter %3zu  loss %.3f  acc %.2f  conv ratio %.1fx\n",
                  rec.iteration, rec.loss, rec.train_accuracy,
                  rec.mean_compression_ratio);
    }
  });

  std::puts("\nPer-layer adaptive error bounds chosen by the controller (Eq. 9):");
  int shown = 0;
  for (const auto& [layer, eb] : session.scheme()->last_bounds()) {
    std::printf("  %-24s eb = %.2e\n", layer.c_str(), eb);
    if (++shown == 5) break;
  }
  return 0;
}
