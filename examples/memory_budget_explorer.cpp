// Example: memory-budget exploration at ImageNet geometry. For each of the
// paper's four networks and two device models, ranks every memory-saving
// strategy (raw, lossless, JPEG-ACT, EBCT, migration, recomputation) by
// peak footprint, maximum feasible batch size and step-time overhead —
// the decision a practitioner actually faces.
//
// Usage: memory_budget_explorer [framework_ratio] (default 11.0)

#include <cstdio>
#include <cstdlib>

#include "baselines/strategies.hpp"
#include "memory/accounting.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"

using namespace ebct;

int main(int argc, char** argv) {
  const double framework_ratio = argc > 1 ? std::atof(argv[1]) : 11.0;
  std::printf("=== memory-budget explorer (EBCT ratio = %.1fx, overhead 17%%) ===\n\n",
              framework_ratio);

  for (const auto& device :
       {memory::DeviceModel::v100_16gb(), memory::DeviceModel::v100_32gb()}) {
    std::printf("--- device: %s (%s) ---\n", device.name.c_str(),
                memory::human_bytes(device.capacity_bytes).c_str());
    for (const auto& name : models::model_names()) {
      models::ModelConfig cfg;
      cfg.input_hw = 224;
      cfg.num_classes = 1000;
      auto net = models::find_model(name)(cfg);

      const auto rows = baselines::compare_strategies(
          *net, 224, device, framework_ratio, /*framework_overhead=*/0.17,
          /*baseline_step_seconds=*/0.35);
      std::printf("\n%s @224, batch-32 accounting:\n", name.c_str());
      memory::Table table({"strategy", "peak @b32", "max batch", "overhead"});
      for (const auto& r : rows) {
        table.add_row({r.name, memory::human_bytes(r.peak_bytes),
                       memory::fmt("%zu", r.max_batch),
                       memory::fmt("%.0f%%", 100.0 * r.overhead_fraction)});
      }
      table.print();
    }
    std::puts("");
  }

  std::puts("Reading guide: EBCT dominates lossless/JPEG-ACT on max batch at a");
  std::puts("fraction of migration's bandwidth-bound overhead; recomputation");
  std::puts("helps only the cheap non-conv layers (and composes with EBCT).");
  return 0;
}
