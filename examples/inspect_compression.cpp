// Example: inspect what the compressor actually does to one network's
// activations. Runs a forward/backward pass of the chosen model, then for
// every conv layer reports: activation shape, sparsity R, mean |loss| L̄,
// the adaptive error bound Eq. 9 would assign, the achieved compression
// ratio at that bound, and an error histogram for one layer.
//
// Usage: inspect_compression [model] [sigma_fraction]
//        defaults: AlexNet, 0.01 (the paper's 1%).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/adaptive.hpp"
#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/report.hpp"
#include "models/model_zoo.hpp"
#include "nn/conv2d.hpp"
#include "sz/metrics.hpp"
#include "stats/distribution.hpp"
#include "stats/histogram.hpp"

using namespace ebct;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "AlexNet";
  const double sigma_fraction = argc > 2 ? std::atof(argv[2]) : 0.01;
  std::printf("=== compression inspector: %s, sigma target = %.0f%% of momentum ===\n\n",
              model.c_str(), 100.0 * sigma_fraction);

  models::ModelConfig mcfg;
  mcfg.input_hw = 32;
  mcfg.num_classes = 8;
  mcfg.width_multiplier = 0.5;
  auto net = models::find_model(model)(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 8;
  dspec.image_hw = 32;
  dspec.train_per_class = 32;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 8, true, true);

  // A few real training steps so momentum / loss statistics exist.
  core::SessionConfig scfg;
  scfg.framework.codec = "sz";
  scfg.framework.sigma_fraction = sigma_fraction;
  scfg.framework.active_factor_w = 5;
  scfg.base_lr = 0.01;
  core::TrainingSession session(*net, loader, scfg);
  session.run(15);

  const auto& stats = session.scheme()->last_statistics();
  const auto& bounds = session.scheme()->last_bounds();
  const auto ratios = session.codec()->last_ratios();

  memory::Table table({"conv layer", "R (density)", "L-bar", "M-bar",
                       "eb raw (Eq. 9)", "eb applied", "ratio"});
  const auto& model_eq = session.scheme()->error_model();
  const auto& assessor = session.scheme()->assessor();
  net->visit([&](nn::Layer& l) {
    auto* conv = dynamic_cast<nn::Conv2d*>(&l);
    if (conv == nullptr || !stats.count(conv->name())) return;
    const auto& s = stats.at(conv->name());
    const double raw_eb = model_eq.solve_error_bound(s, assessor.target_sigma(s));
    table.add_row({conv->name(), memory::fmt("%.2f", s.density),
                   memory::fmt("%.2e", s.loss_mean_abs),
                   memory::fmt("%.2e", s.momentum_mean_abs),
                   memory::fmt("%.2e", raw_eb),
                   memory::fmt("%.2e", bounds.at(conv->name())),
                   ratios.count(conv->name())
                       ? memory::fmt("%.1fx", ratios.at(conv->name()))
                       : "-"});
  });
  table.print();
  std::puts("\nNote: when the raw Eq. 9 bound exceeds the safety clamp");
  std::puts("(max_error_bound, default 1e-1) the clamp binds — typical at toy");
  std::puts("scale, where per-element losses are tiny. At ImageNet scale the raw");
  std::puts("bound lands in the 1e-4..1e-2 range and varies per layer.");

  // Error histogram of the first conv layer at its adaptive bound.
  net->visit([&](nn::Layer& l) {
    static bool done = false;
    auto* conv = dynamic_cast<nn::Conv2d*>(&l);
    if (done || conv == nullptr || !bounds.count(conv->name())) return;
    done = true;
    const double eb = bounds.at(conv->name());
    tensor::Tensor act(tensor::Shape::nchw(4, conv->spec().in_channels, 32, 32));
    tensor::Rng rng(8);
    rng.fill_relu_like(act.span(), 0.5, 1.0f);
    sz::Config c;
    c.error_bound = eb;
    sz::Compressor comp(c);
    const auto recon = comp.decompress(comp.compress(act.span()));
    const auto errors = sz::pointwise_errors(act.span(), {recon.data(), recon.size()});
    stats::Histogram h(-eb, eb, 50);
    h.add({errors.data(), errors.size()});
    std::printf("\n%s reconstruction-error histogram at eb = %.2e:\n%s",
                conv->name().c_str(), eb, h.ascii(8).c_str());
  });
  return 0;
}
