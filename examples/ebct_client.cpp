// ebct_client — minimal client for the ebct_serve daemon (the library face
// is src/serve/client.hpp; ebct_compress_cli --server=<sock> wraps the same
// library with file handling).
//
// Usage:
//   ebct_client encode <socket> <spec> [tenant]   (float32 stdin -> EBCS stdout)
//   ebct_client decode <socket> [tenant]          (EBCS stdin -> float32 stdout)
//
// Exit status: 0 on success; 4 on a server-reported 4xx (bad spec,
// malformed stream, over-budget reject), 1 on transport errors.

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/client.hpp"

int main(int argc, char** argv) {
  using namespace ebct::serve;
  const auto usage = [argv]() {
    std::fprintf(stderr,
                 "usage:\n  %s encode <socket> <spec> [tenant]\n"
                 "  %s decode <socket> [tenant]\n",
                 argv[0], argv[0]);
    return 2;
  };
  if (argc < 3) return usage();
  const std::string mode = argv[1];

  PullReader reader = [](std::uint8_t* buf, std::size_t cap) {
    return std::fread(buf, 1, cap, stdin);
  };
  PushWriter writer = [](const std::uint8_t* data, std::size_t n) {
    if (std::fwrite(data, 1, n, stdout) != n) {
      std::fprintf(stderr, "ebct_client: stdout write failed\n");
      std::exit(1);
    }
  };

  try {
    Client client(argv[2]);
    TransferStats stats;
    if (mode == "encode") {
      if (argc < 4) return usage();
      const std::string tenant = argc > 4 ? argv[4] : "cli";
      stats = client.encode(tenant, argv[3], 0, reader, writer);
    } else if (mode == "decode") {
      const std::string tenant = argc > 3 ? argv[3] : "cli";
      stats = client.decode(tenant, reader, writer);
    } else {
      return usage();
    }
    std::fflush(stdout);
    std::fprintf(stderr, "%llu bytes in, %llu bytes out\n",
                 static_cast<unsigned long long>(stats.bytes_in),
                 static_cast<unsigned long long>(stats.bytes_out));
    return 0;
  } catch (const ServerError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ebct_client: %s\n", e.what());
    return 1;
  }
}
