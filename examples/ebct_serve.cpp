// ebct_serve — the long-lived streaming compression daemon.
//
// Usage:
//   ebct_serve --socket=<path> [--window=<elems>] [--budget=<bytes>]
//              [--max-frame=<bytes>] [--metrics=<path.json>] [--threads=<n>]
//
// Flags override the EBCT_SERVE_* environment (docs/CONFIG.md), which
// overrides built-in defaults. The daemon multiplexes concurrent streaming
// encode/decode requests over an AF_UNIX socket (protocol in
// docs/SERVING.md), dispatching window codec work onto the process-wide
// work-stealing pool and enforcing per-tenant byte budgets with 429-style
// backpressure.
//
// Lifecycle: prints "ebct_serve ready on <socket>" once accepting (CI waits
// for this line), then blocks until SIGTERM/SIGINT. On signal it drains —
// in-flight requests complete, new connections are refused — then writes a
// serve_* metrics snapshot (--metrics / EBCT_SERVE_METRICS), verifies no
// spill files leaked, and prints "ebct_serve: clean shutdown".

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "memory/spill_file.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "tensor/sched.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

void write_metrics_json(const std::string& path) {
  const obs::ServeSnapshot s = obs::ServeMetrics::instance().snapshot();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "ebct_serve: cannot write metrics to %s\n", path.c_str());
    return;
  }
  out << "{\n"
      << "  \"serve_requests\": " << s.requests << ",\n"
      << "  \"serve_rejects\": " << s.rejects << ",\n"
      << "  \"serve_errors\": " << s.errors << ",\n"
      << "  \"serve_bytes_in\": " << s.bytes_in << ",\n"
      << "  \"serve_bytes_out\": " << s.bytes_out << ",\n"
      << "  \"serve_active_sessions\": " << s.active_sessions << ",\n"
      << "  \"serve_peak_sessions\": " << s.peak_sessions << ",\n"
      << "  \"serve_latency_p50_ns\": " << s.latency_percentile_ns(0.50) << ",\n"
      << "  \"serve_latency_p99_ns\": " << s.latency_percentile_ns(0.99) << "\n"
      << "}\n";
  std::fprintf(stderr, "ebct_serve: metrics snapshot -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using ebct::serve::Server;
  using ebct::serve::ServerConfig;

  std::string metrics_path;
  if (const char* v = std::getenv("EBCT_SERVE_METRICS"); v != nullptr && *v != '\0')
    metrics_path = v;

  ServerConfig cfg;
  int threads = 0;
  try {
    cfg = ServerConfig::from_env(cfg);
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--socket=", 9) == 0) {
        cfg.socket_path = a + 9;
      } else if (std::strncmp(a, "--window=", 9) == 0) {
        cfg.window_elems = std::strtoull(a + 9, nullptr, 10);
      } else if (std::strncmp(a, "--budget=", 9) == 0) {
        cfg.tenant_budget_bytes = std::strtoull(a + 9, nullptr, 10);
      } else if (std::strncmp(a, "--max-frame=", 12) == 0) {
        cfg.max_frame = std::strtoull(a + 12, nullptr, 10);
      } else if (std::strncmp(a, "--metrics=", 10) == 0) {
        metrics_path = a + 10;
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        threads = std::atoi(a + 10);
      } else {
        std::fprintf(stderr,
                     "usage: %s --socket=<path> [--window=<elems>] [--budget=<bytes>]\n"
                     "          [--max-frame=<bytes>] [--metrics=<path.json>] "
                     "[--threads=<n>]\n",
                     argv[0]);
        return 2;
      }
    }
    if (threads > 0) ebct::tensor::sched::set_num_threads(threads);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    Server server(cfg);
    server.start();
    std::printf("ebct_serve ready on %s\n", cfg.socket_path.c_str());
    std::fflush(stdout);

    while (!g_stop.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr, "ebct_serve: draining (%zu active connections)\n",
                 server.active_connections());
    server.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ebct_serve: fatal: %s\n", e.what());
    return 1;
  }

  if (!metrics_path.empty()) write_metrics_json(metrics_path);

  const auto open_files = ebct::memory::SpillFile::files_open();
  if (open_files != 0) {
    std::fprintf(stderr, "ebct_serve: %llu spill files still open at shutdown\n",
                 static_cast<unsigned long long>(open_files));
    return 1;
  }
  std::printf("ebct_serve: clean shutdown\n");
  return 0;
}
