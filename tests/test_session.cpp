// End-to-end TrainingSession tests: the baseline and framework modes train,
// the framework compresses conv activations with adaptive bounds, accuracy
// tracks the baseline, and evaluation works — the paper's Fig. 10 in
// miniature, as a test.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error_injection.hpp"
#include "core/session.hpp"
#include "models/model_zoo.hpp"

namespace ebct::core {
namespace {

data::SyntheticSpec tiny_data() {
  data::SyntheticSpec s;
  s.num_classes = 4;
  s.image_hw = 16;
  s.train_per_class = 64;
  s.test_per_class = 16;
  s.seed = 777;
  return s;
}

models::ModelConfig tiny_model() {
  models::ModelConfig cfg;
  cfg.input_hw = 16;
  cfg.num_classes = 4;
  cfg.width_multiplier = 0.25;
  cfg.seed = 7;
  return cfg;
}

SessionConfig fast_framework() {
  SessionConfig cfg;
  cfg.framework.codec = "sz";  // may be re-routed by EBCT_CODEC in CI legs
  cfg.framework.active_factor_w = 10;  // refresh often at test scale
  cfg.base_lr = 0.05;
  return cfg;
}

TEST(TrainingSessionTest, BaselineLossDecreases) {
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 16, true, true);
  SessionConfig cfg;
  cfg.framework.codec = "none";
  cfg.base_lr = 0.05;
  TrainingSession session(*net, loader, cfg);
  EXPECT_EQ(session.codec_spec(), "none");
  session.run(30);
  ASSERT_EQ(session.history().size(), 30u);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) early += session.history()[i].loss;
  for (int i = 25; i < 30; ++i) late += session.history()[i].loss;
  EXPECT_LT(late, early);
}

TEST(TrainingSessionTest, FrameworkCompressesAndTrains) {
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 16, true, true);
  TrainingSession session(*net, loader, fast_framework());
  session.run(30);

  // Compression kicks in and delivers >1x on conv activations. The exact
  // regime depends on the codec an EBCT_CODEC override may have selected:
  // sz lands ~5-10x, lossless ~2x.
  ASSERT_NE(session.scheme(), nullptr);
  const bool error_bounded = session.scheme()->active();
  const auto& last = session.history().back();
  EXPECT_GT(last.mean_compression_ratio, error_bounded ? 1.5 : 1.05);
  EXPECT_EQ(last.adaptive_active, error_bounded);

  // Adaptive bounds are installed for every conv layer after the first W
  // (whenever the codec accepts bounds at all).
  if (error_bounded) {
    EXPECT_FALSE(session.scheme()->last_bounds().empty());
  }
  for (const auto& [layer, eb] : session.scheme()->last_bounds()) {
    EXPECT_GE(eb, session.scheme()->config().min_error_bound) << layer;
    EXPECT_LE(eb, session.scheme()->config().max_error_bound) << layer;
  }

  // Loss still decreases under lossy activations.
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) early += session.history()[i].loss;
  for (int i = 25; i < 30; ++i) late += session.history()[i].loss;
  EXPECT_LT(late, early);
}

TEST(TrainingSessionTest, AsyncFrameworkTrainsLikeSync) {
  // The double-buffered async store must behave like the synchronous one at
  // the training level: same lossy roundtrip semantics, so loss decreases,
  // compression ratios show up, and nothing deadlocks across forward /
  // backward / adaptive refresh.
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 16, true, true);
  SessionConfig cfg = fast_framework();
  cfg.framework.async_compression = true;
  cfg.framework.async_queue_depth = 2;
  TrainingSession session(*net, loader, cfg);
  session.run(30);
  ASSERT_EQ(session.history().size(), 30u);
  const bool error_bounded = session.scheme() != nullptr && session.scheme()->active();
  EXPECT_GT(session.history().back().mean_compression_ratio,
            error_bounded ? 1.5 : 1.05);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 5; ++i) early += session.history()[i].loss;
  for (int i = 25; i < 30; ++i) late += session.history()[i].loss;
  EXPECT_LT(late, early);
  for (const auto& rec : session.history()) ASSERT_TRUE(std::isfinite(rec.loss));
}

TEST(TrainingSessionTest, FrameworkAccuracyTracksBaseline) {
  // The paper's Table 1 claim in miniature: final accuracy with the
  // framework is close to the baseline's at identical seeds/batches.
  auto net_base = models::make_resnet18(tiny_model());
  auto net_fw = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader_a(ds, 16, true, true, 31);
  data::DataLoader loader_b(ds, 16, true, true, 31);

  SessionConfig base_cfg;
  base_cfg.framework.codec = "none";
  base_cfg.base_lr = 0.05;
  TrainingSession base(*net_base, loader_a, base_cfg);
  TrainingSession fw(*net_fw, loader_b, fast_framework());
  base.run(80);
  fw.run(80);

  data::DataLoader eval_a(ds, 16, false, false);
  data::DataLoader eval_b(ds, 16, false, false);
  const double acc_base = base.evaluate(eval_a, 4);
  const double acc_fw = fw.evaluate(eval_b, 4);
  EXPECT_GT(acc_base, 0.5);  // learned something on 4 classes
  EXPECT_NEAR(acc_fw, acc_base, 0.25);
}

TEST(TrainingSessionTest, CustomInjectionStoreRuns) {
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 8, true, true);
  SessionConfig cfg;
  cfg.framework.codec = "custom";
  cfg.base_lr = 0.05;
  TrainingSession session(*net, loader, cfg);
  EXPECT_EQ(session.codec_spec(), "custom");
  InjectionStore store(1e-3, /*preserve_zeros=*/true, 321);
  session.set_custom_store(&store);
  session.run(5);
  EXPECT_EQ(session.history().size(), 5u);
  for (const auto& rec : session.history()) EXPECT_TRUE(std::isfinite(rec.loss));
}

TEST(TrainingSessionTest, HistoryRecordsLrSchedule) {
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 8, true, true);
  SessionConfig cfg;
  cfg.framework.codec = "none";
  cfg.base_lr = 0.1;
  cfg.lr_step = 4;
  cfg.lr_gamma = 0.5;
  TrainingSession session(*net, loader, cfg);
  session.run(8);
  EXPECT_DOUBLE_EQ(session.history()[0].lr, 0.1);
  EXPECT_DOUBLE_EQ(session.history()[4].lr, 0.05);
}

TEST(TrainingSessionTest, StoreHeldBytesSmallerUnderCompression) {
  auto net_a = models::make_resnet18(tiny_model());
  auto net_b = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader_a(ds, 16, true, true, 5);
  data::DataLoader loader_b(ds, 16, true, true, 5);
  SessionConfig base_cfg;
  base_cfg.framework.codec = "none";
  TrainingSession base(*net_a, loader_a, base_cfg);
  TrainingSession fw(*net_b, loader_b, fast_framework());
  base.run(3);
  fw.run(3);
  // Held bytes at the forward/backward turnaround: compressed is smaller.
  // sz halves the stash many times over; a lossless override still beats
  // the raw baseline outright.
  const bool error_bounded = fw.scheme() != nullptr && fw.scheme()->active();
  EXPECT_LT(fw.history().back().store_held_bytes,
            base.history().back().store_held_bytes / (error_bounded ? 2 : 1));
}

TEST(TrainingSessionTest, CallbackObservesEveryIteration) {
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 8, true, true);
  SessionConfig cfg;
  cfg.framework.codec = "none";
  TrainingSession session(*net, loader, cfg);
  std::size_t calls = 0;
  session.run(7, [&](const IterationRecord& rec) {
    EXPECT_EQ(rec.iteration, calls);
    ++calls;
  });
  EXPECT_EQ(calls, 7u);
}

TEST(TrainingSessionTest, NonErrorBoundedCodecTrainsWithAdaptiveDisabled) {
  // The paper's comparator path, now first-class: JPEG-ACT drives the full
  // session + pager pipeline from a config string, and the adaptive scheme
  // records itself disabled instead of silently mis-programming the codec.
  auto net = models::make_resnet18(tiny_model());
  data::SyntheticImageDataset ds(tiny_data());
  data::DataLoader loader(ds, 8, true, true);
  SessionConfig cfg;
  cfg.framework.codec = "jpeg-act:quality=90";
  cfg.framework.active_factor_w = 3;
  cfg.base_lr = 0.01;
  TrainingSession session(*net, loader, cfg);
  if (session.codec_spec() != "jpeg-act:quality=90") {
    GTEST_SKIP() << "EBCT_CODEC override active: " << session.codec_spec();
  }
  ASSERT_NE(session.codec(), nullptr);
  EXPECT_EQ(session.codec()->name(), "jpeg-act");
  ASSERT_NE(session.scheme(), nullptr);
  EXPECT_FALSE(session.scheme()->active());
  session.run(5);
  for (const auto& rec : session.history()) {
    EXPECT_TRUE(std::isfinite(rec.loss));
    EXPECT_FALSE(rec.adaptive_active);
  }
  EXPECT_GT(session.history().back().mean_compression_ratio, 1.0);
  EXPECT_TRUE(session.scheme()->last_bounds().empty());
}

}  // namespace
}  // namespace ebct::core
