// Integration tests of the paper's central theory (§3.2): uniform error on
// conv-layer activations induces *normally distributed* gradient error whose
// sigma follows Eq. 6/7 — verified here by running real backward passes with
// error injection and comparing measured vs predicted sigma.

#include <gtest/gtest.h>

#include <vector>

#include "core/error_injection.hpp"
#include "core/error_model.hpp"
#include "nn/conv2d.hpp"
#include "stats/distribution.hpp"
#include "util/test_util.hpp"

namespace ebct::core {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Run one conv backward with clean activations and one with perturbed
/// activations (same loss), returning the per-element weight-gradient error.
std::vector<float> gradient_error_sample(double eb, double sparsity, std::size_t batch,
                                         bool preserve_zeros, std::uint64_t seed,
                                         double loss_scale, double* lbar_out = nullptr,
                                         double* density_out = nullptr) {
  Rng rng(seed);
  nn::Conv2dSpec spec{3, 4, 3, 1, 1, /*bias=*/false};
  nn::Conv2d conv("c", spec, rng);
  nn::RawStore store;
  conv.set_store(&store);

  Tensor x = testutil::relu_like_tensor(Shape::nchw(batch, 3, 12, 12), seed + 1, sparsity);
  Tensor loss_grad(conv.output_shape(x.shape()));
  Rng lrng(seed + 2);
  // Loss concentrated like real backprop losses: mostly small, few large.
  for (std::size_t i = 0; i < loss_grad.numel(); ++i)
    loss_grad[i] = static_cast<float>(lrng.normal(0.0, loss_scale));

  // Clean gradient.
  conv.forward(x, true);
  conv.weight().grad.zero();
  conv.backward(loss_grad);
  std::vector<float> clean(conv.weight().grad.data(),
                           conv.weight().grad.data() + conv.weight().grad.numel());
  if (lbar_out) *lbar_out = conv.last_loss_mean_abs();
  if (density_out) *density_out = conv.last_input_density();

  // Perturbed gradient.
  Tensor xp = x.clone();
  Rng inj(seed + 3);
  inject_uniform(xp.span(), eb, inj, preserve_zeros);
  conv.forward(xp, true);
  conv.weight().grad.zero();
  conv.backward(loss_grad);

  std::vector<float> err(clean.size());
  for (std::size_t i = 0; i < err.size(); ++i)
    err[i] = conv.weight().grad[i] - clean[i];
  return err;
}

// Accumulate gradient errors over many independent trials so the shape
// diagnostics have enough samples.
std::vector<float> gradient_errors(double eb, double sparsity, std::size_t batch,
                                   bool preserve_zeros, int trials,
                                   double loss_scale = 0.05) {
  std::vector<float> all;
  for (int t = 0; t < trials; ++t) {
    auto e = gradient_error_sample(eb, sparsity, batch, preserve_zeros,
                                   1000 + 17 * static_cast<std::uint64_t>(t), loss_scale);
    all.insert(all.end(), e.begin(), e.end());
  }
  return all;
}

TEST(ErrorPropagation, GradientErrorIsNormallyDistributed) {
  // Fig. 6a in miniature: uniform activation error -> Gaussian gradient error.
  const auto errors = gradient_errors(1e-2, 0.0, 8, false, 60);
  const auto d = stats::diagnose({errors.data(), errors.size()});
  EXPECT_NEAR(d.mean, 0.0, d.stddev * 0.1);
  EXPECT_NEAR(d.within_one_sigma, 0.682, 0.05);
  EXPECT_LT(std::fabs(d.excess_kurtosis), 0.8);
}

TEST(ErrorPropagation, PreservingZerosShrinksSigma) {
  // Fig. 6b: with exact zeros preserved, sigma drops by ~sqrt(R).
  const double sparsity = 0.75;  // R = 0.25
  const auto with_zero_noise = gradient_errors(1e-2, sparsity, 8, false, 40);
  const auto zeros_preserved = gradient_errors(1e-2, sparsity, 8, true, 40);
  const double sd_all = stats::diagnose({with_zero_noise.data(), with_zero_noise.size()}).stddev;
  const double sd_kept = stats::diagnose({zeros_preserved.data(), zeros_preserved.size()}).stddev;
  EXPECT_LT(sd_kept, sd_all);
  EXPECT_NEAR(sd_kept / sd_all, std::sqrt(0.25), 0.12);
}

TEST(ErrorPropagation, SigmaLinearInErrorBound) {
  const auto e1 = gradient_errors(5e-3, 0.0, 8, false, 30);
  const auto e2 = gradient_errors(1e-2, 0.0, 8, false, 30);
  const double s1 = stats::diagnose({e1.data(), e1.size()}).stddev;
  const double s2 = stats::diagnose({e2.data(), e2.size()}).stddev;
  EXPECT_NEAR(s2 / s1, 2.0, 0.3);
}

TEST(ErrorPropagation, PredictedSigmaWithinFactorTwoOfMeasured) {
  // Fig. 8 in miniature: Eq. 6/7 with a ~ 0.32 predicts the measured sigma
  // to within a small factor across parameter settings.
  ErrorModel model(0.32);
  for (const double eb : {5e-3, 2e-2}) {
    for (const double sparsity : {0.0, 0.6}) {
      double lbar = 0.0, density = 1.0;
      std::vector<float> all;
      for (int t = 0; t < 30; ++t) {
        auto e = gradient_error_sample(eb, sparsity, 8, true,
                                       2000 + 13 * static_cast<std::uint64_t>(t), 0.05,
                                       &lbar, &density);
        all.insert(all.end(), e.begin(), e.end());
      }
      const double measured = stats::diagnose({all.data(), all.size()}).stddev;
      LayerStatistics s;
      s.loss_mean_abs = lbar;
      s.density = density;
      // The gradient sums over output positions as well as batch; fold the
      // spatial count into the effective N as the paper's derivation does.
      s.batch_size = 8 * 12 * 12;
      const double predicted = model.predict_sigma(s, eb);
      EXPECT_GT(predicted / measured, 0.4)
          << "eb=" << eb << " sparsity=" << sparsity << " measured=" << measured;
      EXPECT_LT(predicted / measured, 2.5)
          << "eb=" << eb << " sparsity=" << sparsity << " measured=" << measured;
    }
  }
}

}  // namespace
}  // namespace ebct::core
