// Tests for the SZ error-bounded compressor stack: bit I/O, Huffman,
// and the compressor's core contract — every reconstructed element within
// the user error bound — across data shapes, bounds and zero modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "sz/bitstream.hpp"
#include "sz/compressor.hpp"
#include "sz/huffman.hpp"
#include "sz/lz77.hpp"
#include "sz/metrics.hpp"
#include "stats/distribution.hpp"
#include "tensor/rng.hpp"

namespace ebct::sz {
namespace {

TEST(BitStream, RoundtripMixedWidths) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xdeadbeef, 32);
  w.put(1, 1);
  w.put(0x123456789abcdef0ULL, 64);
  const auto bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(32), 0xdeadbeefu);
  EXPECT_EQ(r.get(1), 1u);
  EXPECT_EQ(r.get(64), 0x123456789abcdef0ULL);
}

TEST(BitStream, VarintRoundtrip) {
  BitWriter w;
  const std::vector<std::uint64_t> vals{0, 1, 127, 128, 300, 1ULL << 20, 1ULL << 40,
                                        ~0ULL};
  for (auto v : vals) w.put_varint(v);
  const auto bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  for (auto v : vals) EXPECT_EQ(r.get_varint(), v);
}

TEST(BitStream, ManyRandomBitsRoundtrip) {
  tensor::Rng rng(31);
  std::vector<std::pair<std::uint64_t, unsigned>> items;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const unsigned n = 1 + static_cast<unsigned>(rng.uniform_index(63));
    const std::uint64_t v = rng.next_u64() & ((n >= 64) ? ~0ULL : ((1ULL << n) - 1));
    items.emplace_back(v, n);
    w.put(v, n);
  }
  const auto bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  for (auto [v, n] : items) EXPECT_EQ(r.get(n), v);
}

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter w;
  w.put(0b1011001110001111ULL, 16);
  const auto bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.peek(5), 0b10110u);
  EXPECT_EQ(r.peek(5), 0b10110u);  // unchanged: peek is non-destructive
  r.skip(3);
  EXPECT_EQ(r.peek(5), 0b10011u);
  EXPECT_EQ(r.get(13), 0b1001110001111u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, PeekPastEndPadsWithZeros) {
  BitWriter w;
  w.put(0xff, 8);
  const auto bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.peek(32), 0xff000000u);
  r.skip(8);
  EXPECT_TRUE(r.exhausted());  // padding bits are not remaining input
  EXPECT_EQ(r.get(16), 0u);
}

TEST(BitStream, EmptyWriterFinishesEmpty) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  const auto bytes = w.finish();
  EXPECT_TRUE(bytes.empty());
}

TEST(BitStream, SingleBitRoundtrip) {
  BitWriter w;
  w.put_bit(true);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);  // padded to one byte
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_TRUE(r.get_bit());
}

TEST(BitStream, FullWordBoundary) {
  // Exactly 64 then 64 more bits exercises the accumulator flush path.
  BitWriter w;
  w.put(~0ULL, 64);
  w.put(0x5555555555555555ULL, 64);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 16u);
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.get(64), ~0ULL);
  EXPECT_EQ(r.get(64), 0x5555555555555555ULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Huffman, RoundtripCodesLongerThanLut) {
  // Exponentially skewed frequencies force code lengths well past the
  // decoder's kLutBits table width, exercising the canonical-scan slow path
  // and the LUT/slow-path boundary in one stream.
  const std::size_t alphabet = 24;
  std::vector<std::uint64_t> freqs(alphabet);
  for (std::size_t s = 0; s < alphabet; ++s) freqs[s] = 1ULL << s;
  HuffmanCodec codec;
  codec.build({freqs.data(), freqs.size()});
  unsigned max_len = 0;
  for (std::uint32_t s = 0; s < alphabet; ++s)
    max_len = std::max(max_len, codec.code_length(s));
  ASSERT_GT(max_len, HuffmanCodec::kLutBits);  // the premise of this test

  tensor::Rng rng(77);
  std::vector<std::uint32_t> symbols(4096);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.uniform_index(alphabet));
  const auto bytes = codec.encode({symbols.data(), symbols.size()});
  const auto decoded = codec.decode({bytes.data(), bytes.size()}, symbols.size());
  ASSERT_EQ(decoded.size(), symbols.size());
  EXPECT_EQ(decoded, symbols);
}

TEST(Huffman, DeserializeRejectsOversizedCodeLengths) {
  // A hostile table claiming a code longer than kMaxCodeLen would misalign
  // the decoder's 32-bit peek window; it must be rejected up front.
  BitWriter w;
  w.put_varint(2);   // alphabet
  w.put_varint(40);  // bogus length > 32
  w.put_varint(2);   // run
  const auto bytes = w.finish();
  HuffmanCodec codec;
  EXPECT_THROW(codec.deserialize_table({bytes.data(), bytes.size()}), std::runtime_error);
}

TEST(Huffman, DeserializeRejectsKraftViolatingTable) {
  // Four symbols all claiming 1-bit codes is not a prefix code; without the
  // Kraft check the canonical assignment would write past the decode LUT.
  BitWriter w;
  w.put_varint(4);  // alphabet
  w.put_varint(1);  // length 1 ...
  w.put_varint(4);  // ... for all four symbols
  const auto bytes = w.finish();
  HuffmanCodec codec;
  EXPECT_THROW(codec.deserialize_table({bytes.data(), bytes.size()}), std::runtime_error);
}

TEST(Huffman, RoundtripRandomSymbols) {
  tensor::Rng rng(32);
  std::vector<std::uint32_t> symbols(20000);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.uniform_index(64));
  std::vector<std::uint64_t> freqs(64, 0);
  for (auto s : symbols) ++freqs[s];
  HuffmanCodec codec;
  codec.build(freqs);
  const auto enc = codec.encode(symbols);
  const auto dec = codec.decode({enc.data(), enc.size()}, symbols.size());
  EXPECT_EQ(dec, symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 95% of mass on one symbol: Huffman must beat 6 bits/symbol hugely.
  tensor::Rng rng(33);
  std::vector<std::uint32_t> symbols(50000);
  for (auto& s : symbols)
    s = rng.uniform() < 0.95 ? 7u : static_cast<std::uint32_t>(rng.uniform_index(64));
  std::vector<std::uint64_t> freqs(64, 0);
  for (auto s : symbols) ++freqs[s];
  HuffmanCodec codec;
  codec.build(freqs);
  const auto enc = codec.encode(symbols);
  EXPECT_LT(enc.size() * 8, symbols.size() * 2);  // < 2 bits/symbol
  const auto dec = codec.decode({enc.data(), enc.size()}, symbols.size());
  EXPECT_EQ(dec, symbols);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(16, 0);
  freqs[3] = 1000;
  HuffmanCodec codec;
  codec.build(freqs);
  std::vector<std::uint32_t> symbols(1000, 3);
  const auto enc = codec.encode(symbols);
  const auto dec = codec.decode({enc.data(), enc.size()}, 1000);
  EXPECT_EQ(dec, symbols);
}

TEST(Huffman, TableSerializationRoundtrip) {
  tensor::Rng rng(34);
  std::vector<std::uint64_t> freqs(300, 0);
  for (auto& f : freqs) f = rng.uniform_index(1000);
  HuffmanCodec a;
  a.build(freqs);
  const auto table = a.serialize_table();
  HuffmanCodec b;
  b.deserialize_table({table.data(), table.size()});
  for (std::uint32_t s = 0; s < 300; ++s) EXPECT_EQ(a.code_length(s), b.code_length(s));

  std::vector<std::uint32_t> symbols;
  for (std::uint32_t s = 0; s < 300; ++s)
    if (freqs[s]) symbols.push_back(s);
  const auto enc = a.encode(symbols);
  const auto dec = b.decode({enc.data(), enc.size()}, symbols.size());
  EXPECT_EQ(dec, symbols);
}

TEST(Huffman, EncodingUnknownSymbolThrows) {
  std::vector<std::uint64_t> freqs(8, 0);
  freqs[0] = 5;
  freqs[1] = 5;
  HuffmanCodec codec;
  codec.build(freqs);
  std::vector<std::uint32_t> bad{4};
  EXPECT_THROW(codec.encode(bad), std::logic_error);
}

TEST(Huffman, EmptySymbolStream) {
  std::vector<std::uint64_t> freqs(8, 0);
  freqs[2] = 10;
  HuffmanCodec codec;
  codec.build(freqs);
  const auto enc = codec.encode({});
  EXPECT_TRUE(enc.empty());
  EXPECT_TRUE(codec.decode({enc.data(), enc.size()}, 0).empty());
}

TEST(Huffman, TwoSymbolTableSerializationRoundtrip) {
  // Smallest non-degenerate alphabet: one bit per symbol.
  std::vector<std::uint64_t> freqs{3, 5};
  HuffmanCodec a;
  a.build(freqs);
  const auto table = a.serialize_table();
  HuffmanCodec b;
  b.deserialize_table({table.data(), table.size()});
  const std::vector<std::uint32_t> symbols{0, 1, 1, 0, 1};
  const auto enc = a.encode(symbols);
  EXPECT_EQ(enc.size(), 1u);  // 5 one-bit codes pad to a single byte
  EXPECT_EQ(b.decode({enc.data(), enc.size()}, symbols.size()), symbols);
}

TEST(Lz77, EmptyInputRoundtrip) {
  const auto enc = lz77_compress({});
  EXPECT_TRUE(lz77_decompress(enc).empty());
}

TEST(Lz77, SingleByteRoundtrip) {
  const std::vector<std::uint8_t> data{0x42};
  EXPECT_EQ(lz77_decompress(lz77_compress(data)), data);
}

TEST(Lz77, LongConstantRunCompressesHard) {
  // Match lengths are deflate-capped, so a constant run compresses to one
  // short token per ~258 bytes: expect at least ~50:1 on 100 KB of zeros.
  const std::vector<std::uint8_t> data(100000, 0x00);
  const auto enc = lz77_compress(data);
  EXPECT_LT(enc.size(), data.size() / 50);
  EXPECT_EQ(lz77_decompress(enc), data);
}

TEST(Lz77, IncompressibleNoiseRoundtrip) {
  tensor::Rng rng(46);
  std::vector<std::uint8_t> data(65536);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  EXPECT_EQ(lz77_decompress(lz77_compress(data)), data);
}

TEST(Huffman, EntropyBitsSane) {
  std::vector<std::uint64_t> freqs{500, 500};
  EXPECT_NEAR(HuffmanCodec::entropy_bits(freqs), 1000.0, 1e-9);  // 1 bit/symbol
}

// ---------------------------------------------------------------------------
// Compressor: the error-bound contract, parameterised over bounds and data.

struct BoundCase {
  double eb;
  double sparsity;
  std::size_t n;
};

class ErrorBoundTest : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ErrorBoundTest, EveryElementWithinBound) {
  const auto [eb, sparsity, n] = GetParam();
  tensor::Rng rng(35);
  std::vector<float> data(n);
  rng.fill_relu_like({data.data(), n}, sparsity, 1.0f);
  Config cfg;
  cfg.error_bound = eb;
  cfg.zero_mode = ZeroMode::kNone;
  Compressor comp(cfg);
  const auto buf = comp.compress({data.data(), n});
  const auto recon = comp.decompress(buf);
  EXPECT_TRUE(within_bound({data.data(), n}, {recon.data(), recon.size()}, eb))
      << "max err " << max_abs_error({data.data(), n}, {recon.data(), recon.size()});
}

TEST_P(ErrorBoundTest, RezeroModeWithinTwiceBound) {
  const auto [eb, sparsity, n] = GetParam();
  tensor::Rng rng(36);
  std::vector<float> data(n);
  rng.fill_relu_like({data.data(), n}, sparsity, 1.0f);
  Config cfg;
  cfg.error_bound = eb;
  cfg.zero_mode = ZeroMode::kRezero;
  Compressor comp(cfg);
  const auto recon = comp.decompress(comp.compress({data.data(), n}));
  // Re-zeroing a value with eb < |x| < 2eb whose reconstruction fell below
  // eb produces up to 2eb of error; everything else stays within eb.
  EXPECT_TRUE(within_bound({data.data(), n}, {recon.data(), recon.size()}, 2.0 * eb));
  std::size_t beyond_eb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(recon[i] - data[i]) > eb * (1 + 1e-6)) {
      ++beyond_eb;
      EXPECT_EQ(recon[i], 0.0f);  // only re-zeroed elements may exceed eb
    }
  }
  EXPECT_LT(beyond_eb, n / 100 + 1);  // rare: |x| must land in (eb, 2eb)
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErrorBoundTest,
    ::testing::Values(BoundCase{1e-2, 0.0, 10000}, BoundCase{1e-3, 0.5, 10000},
                      BoundCase{1e-4, 0.7, 50000}, BoundCase{1e-5, 0.9, 20000},
                      BoundCase{1e-1, 0.3, 1000}, BoundCase{1e-3, 0.0, 3}));

TEST(Compressor, RezeroPreservesExactZeros) {
  tensor::Rng rng(37);
  std::vector<float> data(20000);
  rng.fill_relu_like({data.data(), data.size()}, 0.6, 1.0f);
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.zero_mode = ZeroMode::kRezero;
  Compressor comp(cfg);
  const auto recon = comp.decompress(comp.compress({data.data(), data.size()}));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == 0.0f) {
      EXPECT_EQ(recon[i], 0.0f) << i;
    }
  }
}

TEST(Compressor, PlainModePerturbsZerosAfterNonzeros) {
  // Stock SZ behaviour the paper describes: zeros following non-zero data
  // reconstruct as small non-zero values within the bound.
  std::vector<float> data(1000, 0.0f);
  data[0] = 0.7213f;  // prediction chain now starts off-grid
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.zero_mode = ZeroMode::kNone;
  Compressor comp(cfg);
  const auto recon = comp.decompress(comp.compress({data.data(), data.size()}));
  std::size_t perturbed = 0;
  for (std::size_t i = 1; i < recon.size(); ++i) {
    EXPECT_LE(std::fabs(recon[i]), 1e-3 * (1 + 1e-6));
    if (recon[i] != 0.0f) ++perturbed;
  }
  EXPECT_GT(perturbed, 0u);
}

TEST(Compressor, ExactRleRestoresZerosVerbatim) {
  tensor::Rng rng(38);
  std::vector<float> data(30000);
  rng.fill_relu_like({data.data(), data.size()}, 0.8, 1.0f);
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.zero_mode = ZeroMode::kExactRle;
  Compressor comp(cfg);
  const auto buf = comp.compress({data.data(), data.size()});
  const auto recon = comp.decompress(buf);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == 0.0f)
      EXPECT_EQ(recon[i], 0.0f);
    else
      EXPECT_NEAR(recon[i], data[i], 1e-3 * (1 + 1e-6));
  }
}

TEST(Compressor, SparserDataCompressesBetterWithRle) {
  tensor::Rng rng(39);
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.zero_mode = ZeroMode::kExactRle;
  Compressor comp(cfg);
  double prev_ratio = 0.0;
  for (double sparsity : {0.0, 0.5, 0.9}) {
    std::vector<float> data(50000);
    rng.fill_relu_like({data.data(), data.size()}, sparsity, 1.0f);
    const double ratio = comp.compress({data.data(), data.size()}).compression_ratio();
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

TEST(Compressor, LargerBoundHigherRatio) {
  tensor::Rng rng(40);
  std::vector<float> data(100000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  double prev = 0.0;
  for (double eb : {1e-5, 1e-4, 1e-3, 1e-2}) {
    Config cfg;
    cfg.error_bound = eb;
    Compressor comp(cfg);
    const double ratio = comp.compress({data.data(), data.size()}).compression_ratio();
    EXPECT_GT(ratio, prev) << "eb=" << eb;
    prev = ratio;
  }
  EXPECT_GT(prev, 4.0);  // 1e-2 on unit-scale data compresses well
}

TEST(Compressor, SmoothDataCompressesBetterThanNoise) {
  std::vector<float> smooth(65536), noise(65536);
  tensor::Rng rng(41);
  for (std::size_t i = 0; i < smooth.size(); ++i)
    smooth[i] = std::sin(static_cast<double>(i) * 0.01);
  rng.fill_uniform({noise.data(), noise.size()}, -1, 1);
  Config cfg;
  cfg.error_bound = 1e-3;
  Compressor comp(cfg);
  const double rs = comp.compress({smooth.data(), smooth.size()}).compression_ratio();
  const double rn = comp.compress({noise.data(), noise.size()}).compression_ratio();
  EXPECT_GT(rs, rn);
}

TEST(Compressor, RelativeBoundResolvesAgainstRange) {
  tensor::Rng rng(42);
  std::vector<float> data(10000);
  rng.fill_uniform({data.data(), data.size()}, -50.0f, 50.0f);
  Config cfg;
  cfg.error_bound = 1e-4;
  cfg.bound_mode = BoundMode::kRelative;
  Compressor comp(cfg);
  const auto buf = comp.compress({data.data(), data.size()});
  EXPECT_NEAR(buf.abs_error_bound, 1e-4 * 100.0, 2e-3);
  const auto recon = comp.decompress(buf);
  EXPECT_TRUE(within_bound({data.data(), data.size()}, {recon.data(), recon.size()},
                           buf.abs_error_bound));
}

TEST(Compressor, Lorenzo2DWithinBound) {
  tensor::Rng rng(43);
  const std::size_t w = 64, h = 64;
  std::vector<float> data(w * h);
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x)
      data[y * w + x] = std::sin(0.1 * x) * std::cos(0.07 * y) +
                        static_cast<float>(rng.normal(0, 0.01));
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.predictor = Predictor::kLorenzo2D;
  cfg.plane_width = w;
  Compressor comp(cfg);
  const auto recon = comp.decompress(comp.compress({data.data(), data.size()}));
  EXPECT_TRUE(within_bound({data.data(), data.size()}, {recon.data(), recon.size()}, 1e-3));
}

TEST(Compressor, OutliersBeyondRadiusHandled) {
  // Huge jumps force the escape path; contract must still hold.
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = (i % 2) ? 1.0e6f : -1.0e6f;
  Config cfg;
  cfg.error_bound = 1e-6;
  Compressor comp(cfg);
  const auto recon = comp.decompress(comp.compress({data.data(), data.size()}));
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_FLOAT_EQ(recon[i], data[i]);
}

TEST(Compressor, EmptyInput) {
  Compressor comp;
  const auto buf = comp.compress({});
  EXPECT_EQ(buf.num_elements, 0u);
  const auto recon = comp.decompress(buf);
  EXPECT_TRUE(recon.empty());
}

TEST(Compressor, MultiBlockMatchesSingleBlock) {
  tensor::Rng rng(44);
  std::vector<float> data(200000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  Config small;
  small.error_bound = 1e-3;
  small.block_size = 1024;
  small.zero_mode = ZeroMode::kNone;
  Config big;
  big.error_bound = 1e-3;
  big.block_size = 1 << 20;
  big.zero_mode = ZeroMode::kNone;
  const auto ra = Compressor(small).decompress(Compressor(small).compress({data.data(), data.size()}));
  const auto rb = Compressor(big).decompress(Compressor(big).compress({data.data(), data.size()}));
  // Both satisfy the bound (block boundaries change predictions, not the contract).
  EXPECT_TRUE(within_bound({data.data(), data.size()}, {ra.data(), ra.size()}, 1e-3));
  EXPECT_TRUE(within_bound({data.data(), data.size()}, {rb.data(), rb.size()}, 1e-3));
}

TEST(Compressor, AllZerosUnderEachZeroMode) {
  const std::vector<float> zeros(10000, 0.0f);
  for (const ZeroMode mode : {ZeroMode::kNone, ZeroMode::kRezero, ZeroMode::kExactRle}) {
    Config cfg;
    cfg.error_bound = 1e-3;
    cfg.zero_mode = mode;
    Compressor comp(cfg);
    const auto buf = comp.compress({zeros.data(), zeros.size()});
    const auto recon = comp.decompress(buf);
    ASSERT_EQ(recon.size(), zeros.size());
    for (std::size_t i = 0; i < recon.size(); ++i) {
      ASSERT_EQ(recon[i], 0.0f) << "mode " << static_cast<int>(mode) << " idx " << i;
    }
    // An all-zeros tensor must compress to nearly nothing in every mode
    // (worst case kNone: one bit per symbol plus header ≈ 29x at n=10000).
    EXPECT_GT(buf.compression_ratio(), 20.0);
  }
}

TEST(Compressor, BlockSizeSmallerThanInput) {
  tensor::Rng rng(47);
  std::vector<float> data(1000);
  rng.fill_relu_like({data.data(), data.size()}, 0.4, 1.0f);
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.block_size = 7;  // 143 tiny blocks, last one partial
  cfg.zero_mode = ZeroMode::kNone;
  Compressor comp(cfg);
  const auto buf = comp.compress({data.data(), data.size()});
  const auto recon = comp.decompress(buf);
  EXPECT_TRUE(within_bound({data.data(), data.size()}, {recon.data(), recon.size()}, 1e-3));
}

TEST(Compressor, BlockSizeLargerThanInput) {
  tensor::Rng rng(48);
  std::vector<float> data(5);
  rng.fill_uniform({data.data(), data.size()}, -1.0f, 1.0f);
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.block_size = 1u << 20;  // single partial block
  Compressor comp(cfg);
  const auto buf = comp.compress({data.data(), data.size()});
  const auto recon = comp.decompress(buf);
  EXPECT_TRUE(within_bound({data.data(), data.size()}, {recon.data(), recon.size()}, 1e-3));
}

TEST(Compressor, SingleElementEveryZeroMode) {
  for (const ZeroMode mode : {ZeroMode::kNone, ZeroMode::kRezero, ZeroMode::kExactRle}) {
    Config cfg;
    cfg.error_bound = 1e-4;
    cfg.zero_mode = mode;
    Compressor comp(cfg);
    const std::vector<float> data{0.31337f};
    const auto recon = comp.decompress(comp.compress({data.data(), 1}));
    ASSERT_EQ(recon.size(), 1u);
    EXPECT_NEAR(recon[0], data[0], 1e-4 * 1.001);
  }
}

// --- Block-parallel path: the thread count is a pure throughput knob -------

TEST(CompressorParallel, OutputByteIdenticalAcrossThreadCounts) {
  tensor::Rng rng(49);
  std::vector<float> data(300000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  auto compress_with = [&](std::uint32_t threads) {
    Config cfg;
    cfg.error_bound = 1e-3;
    cfg.block_size = 8192;  // 37 blocks: enough to expose ordering bugs
    cfg.num_threads = threads;
    return Compressor(cfg).compress({data.data(), data.size()});
  };
  const auto serial = compress_with(1);
  for (const std::uint32_t threads : {2u, 8u}) {
    const auto parallel = compress_with(threads);
    EXPECT_EQ(parallel.bytes, serial.bytes) << threads << " threads";
    EXPECT_EQ(parallel.num_elements, serial.num_elements);
  }
}

TEST(CompressorParallel, DecompressionIdenticalAcrossThreadCounts) {
  tensor::Rng rng(50);
  std::vector<float> data(300000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  Config cfg;
  cfg.error_bound = 1e-3;
  cfg.block_size = 8192;
  cfg.num_threads = 0;  // compress with every core
  const auto buf = Compressor(cfg).compress({data.data(), data.size()});
  Config serial_cfg = cfg;
  serial_cfg.num_threads = 1;
  const auto serial = Compressor(serial_cfg).decompress(buf);
  for (const std::uint32_t threads : {2u, 8u}) {
    Config par_cfg = cfg;
    par_cfg.num_threads = threads;
    const auto parallel = Compressor(par_cfg).decompress(buf);
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(CompressorParallel, ExactRleByteIdenticalAcrossThreadCounts) {
  // The zero-RLE side stream plus packed payload must also be deterministic.
  tensor::Rng rng(51);
  std::vector<float> data(200000);
  rng.fill_relu_like({data.data(), data.size()}, 0.8, 1.0f);
  auto compress_with = [&](std::uint32_t threads) {
    Config cfg;
    cfg.error_bound = 1e-3;
    cfg.zero_mode = ZeroMode::kExactRle;
    cfg.block_size = 4096;
    cfg.num_threads = threads;
    return Compressor(cfg).compress({data.data(), data.size()});
  };
  const auto serial = compress_with(1);
  EXPECT_EQ(compress_with(2).bytes, serial.bytes);
  EXPECT_EQ(compress_with(8).bytes, serial.bytes);
}

TEST(Compressor, InvalidConfigThrows) {
  Config cfg;
  cfg.error_bound = 0.0;
  EXPECT_THROW(Compressor{cfg}, std::invalid_argument);
  Config cfg2;
  cfg2.predictor = Predictor::kLorenzo2D;  // missing plane_width
  EXPECT_THROW(Compressor{cfg2}, std::invalid_argument);
  Config cfg3;
  cfg3.block_size = 0;
  EXPECT_THROW(Compressor{cfg3}, std::invalid_argument);
}

TEST(Compressor, CorruptBufferThrowsInsteadOfCrashing) {
  tensor::Rng rng(52);
  std::vector<float> data(5000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  Compressor comp;
  const auto buf = comp.compress({data.data(), data.size()});
  std::vector<float> out(data.size());

  // Truncated mid-header.
  CompressedBuffer trunc;
  trunc.num_elements = buf.num_elements;
  trunc.bytes.assign(buf.bytes.begin(), buf.bytes.begin() + 50);
  EXPECT_THROW(comp.decompress(trunc, {out.data(), out.size()}), std::runtime_error);

  // table_bytes forged to ~2^64: an unchecked sum would wrap past the guard.
  CompressedBuffer forged;
  forged.num_elements = buf.num_elements;
  forged.bytes = buf.bytes;
  std::memset(forged.bytes.data() + 38, 0xFF, 8);  // Header::table_bytes offset
  EXPECT_THROW(comp.decompress(forged, {out.data(), out.size()}), std::runtime_error);

  // Payload shorter than the block index promises.
  CompressedBuffer short_payload;
  short_payload.num_elements = buf.num_elements;
  short_payload.bytes.assign(buf.bytes.begin(), buf.bytes.end() - 100);
  EXPECT_THROW(comp.decompress(short_payload, {out.data(), out.size()}),
               std::runtime_error);

  // num_quantized forged past num_elements: would move the output bounds.
  CompressedBuffer count_forged;
  count_forged.num_elements = buf.num_elements;
  count_forged.bytes = buf.bytes;
  std::memset(count_forged.bytes.data() + 30, 0x7F, 8);  // Header::num_quantized
  EXPECT_THROW(comp.decompress(count_forged, {out.data(), out.size()}),
               std::runtime_error);

  // Predictor byte forged to kLorenzo2D against a 1-D compressor
  // (plane_width 0): must throw, not divide by zero.
  CompressedBuffer pred_forged;
  pred_forged.num_elements = buf.num_elements;
  pred_forged.bytes = buf.bytes;
  pred_forged.bytes[20] = 1;  // Header::predictor
  EXPECT_THROW(comp.decompress(pred_forged, {out.data(), out.size()}),
               std::runtime_error);
}

// The pager's disk tier hands sz::decompress payloads that survived a trip
// through a spill file — the two sweeps below feed it every truncation
// point and a seeded spread of single-byte corruptions. The contract under
// ASan/UBSan is: throw or reconstruct, never crash or read out of bounds.
// (Silent wrong values from deep-payload bit flips are caught one layer up
// by the pager's spill checksum; these tests pin down the codec itself.)

TEST(Compressor, TruncatedSpillPayloadSweepNeverCrashes) {
  tensor::Rng rng(53);
  std::vector<float> data(4000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  Compressor comp;
  const auto buf = comp.compress({data.data(), data.size()});
  std::vector<float> out(data.size());

  std::size_t threw = 0;
  for (std::size_t cut = 0; cut < buf.bytes.size();
       cut += std::max<std::size_t>(1, buf.bytes.size() / 97)) {
    CompressedBuffer trunc;
    trunc.num_elements = buf.num_elements;
    trunc.bytes.assign(buf.bytes.begin(),
                       buf.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      comp.decompress(trunc, {out.data(), out.size()});
    } catch (const std::runtime_error&) {
      ++threw;
    }
  }
  // Every cut inside the header/index region must throw; payload-region
  // cuts may zero-pad-decode. Either way, a healthy majority throws.
  EXPECT_GT(threw, 0u);
}

TEST(Compressor, ByteFlipSweepThrowsOrReconstructs) {
  tensor::Rng rng(54);
  std::vector<float> data(4000);
  rng.fill_relu_like({data.data(), data.size()}, 0.5, 1.0f);
  Compressor comp;
  const auto buf = comp.compress({data.data(), data.size()});
  std::vector<float> out(data.size());

  for (int trial = 0; trial < 64; ++trial) {
    CompressedBuffer bad;
    bad.num_elements = buf.num_elements;
    bad.bytes = buf.bytes;
    const std::size_t pos = rng.uniform_index(bad.bytes.size());
    bad.bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    try {
      comp.decompress(bad, {out.data(), out.size()});
      // Reconstructed without throwing: the flip landed somewhere benign
      // (payload bits). The values may be wrong — the pager checksum's
      // job — but the call must have stayed in bounds (ASan-verified).
    } catch (const std::runtime_error&) {
      // Loud failure: the guards caught it.
    }
  }
}

TEST(Compressor, DecompressSizeMismatchThrows) {
  std::vector<float> data(100, 1.0f);
  Compressor comp;
  const auto buf = comp.compress({data.data(), data.size()});
  std::vector<float> out(99);
  EXPECT_THROW(comp.decompress(buf, {out.data(), out.size()}), std::invalid_argument);
}

// The paper's Fig. 3 claim in miniature: the reconstruction error of
// SZ-compressed activation-like data is uniformly distributed in [-eb, eb].
TEST(Compressor, ErrorDistributionIsUniform) {
  tensor::Rng rng(45);
  std::vector<float> data(200000);
  rng.fill_relu_like({data.data(), data.size()}, 0.0, 1.0f);  // dense
  const double eb = 1e-4;
  Config cfg;
  cfg.error_bound = eb;
  cfg.zero_mode = ZeroMode::kNone;
  Compressor comp(cfg);
  const auto recon = comp.decompress(comp.compress({data.data(), data.size()}));
  const auto errors = pointwise_errors({data.data(), data.size()},
                                       {recon.data(), recon.size()});
  const auto d = stats::diagnose({errors.data(), errors.size()});
  EXPECT_TRUE(stats::looks_uniform(d, eb, 0.2))
      << "kurtosis=" << d.excess_kurtosis << " sd=" << d.stddev;
}

TEST(Metrics, PsnrPerfectReconstruction) {
  std::vector<float> a{1, 2, 3}, b{1, 2, 3};
  EXPECT_DOUBLE_EQ(psnr({a.data(), 3}, {b.data(), 3}), 999.0);
}

TEST(Metrics, WithinBoundDetectsViolation) {
  std::vector<float> a{0.0f}, b{0.2f};
  EXPECT_FALSE(within_bound({a.data(), 1}, {b.data(), 1}, 0.1));
  EXPECT_TRUE(within_bound({a.data(), 1}, {b.data(), 1}, 0.3));
}

}  // namespace
}  // namespace ebct::sz
