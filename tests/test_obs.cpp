/// \file test_obs.cpp
/// The tracing + metrics subsystem (ISSUE 9): ring wraparound and drop
/// accounting, concurrent emit from pool threads against a racing flush
/// (run under the TSan CI leg), zero allocation when tracing is disabled,
/// trace-file JSON well-formedness, and — the load-bearing contract —
/// trace on/off bitwise determinism: tracing is observation-only, so
/// losses, parameters and every pager counter must be identical with the
/// rings hot or cold at any pool size x budget point.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/session.hpp"
#include "data/synthetic.hpp"
#include "memory/pager.hpp"
#include "models/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/sched.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: replaces global operator new for this test binary so
// the disabled-mode zero-allocation contract is checked directly, not
// inferred. Counting is a relaxed atomic add — safe under every sanitizer
// leg (the sanitizer wraps malloc below us).
// ---------------------------------------------------------------------------
static std::atomic<std::uint64_t> g_allocs{0};

void* operator new(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace ebct {
namespace {

namespace trace = obs::trace;

constexpr std::size_t kDefaultRingEvents = 1u << 16;

/// Every test leaves the global trace state the way it found it (the
/// traced CI leg runs this suite with EBCT_TRACE exported, so "found it"
/// can be enabled). Ring capacity is restored to the default for threads
/// created after the test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = trace::enabled();
    initial_pool_ = tensor::sched::num_threads();
    for (const char* name : kVars) {
      const char* v = std::getenv(name);
      saved_.emplace_back(name, v ? std::optional<std::string>(v) : std::nullopt);
      unsetenv(name);
    }
  }
  void TearDown() override {
    trace::disable();
    trace::reset();
    trace::enable(kDefaultRingEvents);  // restore default ring sizing ...
    if (!was_enabled_) trace::disable();  // ... and the prior on/off state
    for (const auto& [name, value] : saved_) {
      if (value) {
        setenv(name.c_str(), value->c_str(), 1);
      } else {
        unsetenv(name.c_str());
      }
    }
    tensor::sched::set_num_threads(initial_pool_);
  }

 private:
  static constexpr const char* kVars[] = {"EBCT_GRAPH_EXEC", "EBCT_WRITE_BEHIND",
                                          "EBCT_MEMORY_BUDGET_BYTES",
                                          "EBCT_PREFETCH_DEPTH"};
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
  bool was_enabled_ = false;
  int initial_pool_ = 1;
};

std::string temp_trace_path(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = tmp && *tmp ? tmp : "/tmp";
  return dir + "/ebct-test-trace-" + tag + "-" +
         std::to_string(static_cast<unsigned long>(::getpid())) + ".json";
}

// ---------------------------------------------------------------------------
// Ring wraparound + drop accounting.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RingWraparoundCountsDrops) {
  trace::disable();
  trace::reset();
  // 256 is the minimum capacity; a request below it clamps up to it.
  trace::enable(1);

  constexpr std::uint64_t kEmit = 1000;
  constexpr std::uint64_t kCap = 256;
  // A fresh thread gets a fresh ring with the just-configured capacity
  // (existing rings keep theirs).
  std::thread t([] {
    for (std::uint64_t i = 0; i < kEmit; ++i) {
      trace::emit_span("test.wrap", trace::Cat::kSched, i * 10, i * 10 + 5);
    }
  });
  t.join();

  EXPECT_EQ(trace::emitted(), kEmit);
  EXPECT_EQ(trace::dropped(), kEmit - kCap);

  const std::string path = temp_trace_path("wrap");
  const std::size_t written = trace::flush(path);
  // Only the newest kCap events survive the wrap; flush may additionally
  // discard the single boundary event it cannot prove was not mid-overwrite
  // (the torn-event guard is conservative even on a quiescent ring).
  EXPECT_GE(written, kCap - 1);
  EXPECT_LE(written, kCap);

  // The drop count is recorded in the file too.
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"dropped\":" + std::to_string(kEmit - kCap)),
            std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrent emit from pool threads, racing flush (TSan leg target).
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ConcurrentEmitAndFlushAreRaceFree) {
  trace::disable();
  trace::reset();
  trace::enable(kDefaultRingEvents);
  tensor::sched::set_num_threads(4);

  // Pool tasks emit both RAII spans and explicit spans while the main
  // thread flushes concurrently — the documented mid-run flush case.
  std::vector<tensor::sched::Future> futs;
  for (int task = 0; task < 8; ++task) {
    futs.push_back(tensor::sched::async([] {
      for (int i = 0; i < 2000; ++i) {
        trace::Span span("test.concurrent", trace::Cat::kExec);
        trace::emit_span("test.concurrent_leaf", trace::Cat::kPager,
                         static_cast<std::uint64_t>(i),
                         static_cast<std::uint64_t>(i) + 1);
      }
    }));
  }
  const std::string path = temp_trace_path("race");
  for (int f = 0; f < 4; ++f) (void)trace::flush(path);
  for (auto& f : futs) f.wait();

  const std::size_t written = trace::flush(path);
  EXPECT_GT(written, 0u);
  // 8 tasks x 2000 iterations x 2 events, plus whatever the scheduler's
  // own instrumentation emitted around the task bodies.
  EXPECT_GE(trace::emitted(), 8u * 2000u * 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Disabled mode: one relaxed load, zero allocation.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledEmitAllocatesNothing) {
  trace::disable();
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    trace::Span span("test.disabled", trace::Cat::kSched);
    trace::emit_span("test.disabled_leaf", trace::Cat::kSched, 0, 1);
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled-mode emit allocated";
}

// ---------------------------------------------------------------------------
// Flushed file is well-formed JSON.
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: balanced {} / [] outside strings, valid
/// string escapes, non-empty. (CI's tools/check_trace.py does the full
/// parse + span-nesting validation; this guards the writer itself.)
bool json_structure_ok(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST_F(ObsTest, FlushedTraceIsWellFormedJson) {
  trace::disable();
  trace::reset();
  trace::enable(kDefaultRingEvents);
  {
    trace::Span outer("test.outer", trace::Cat::kSession);
    trace::Span inner("test.inner", trace::Cat::kCodec);
  }
  trace::emit_span("test.leaf", trace::Cat::kSched, 100, 200);

  const std::string path = temp_trace_path("json");
  const std::size_t written = trace::flush(path);
  EXPECT_GE(written, 3u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_TRUE(json_structure_ok(text)) << "unbalanced JSON in " << path;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"test.outer\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Metrics registry basics + consolidated session snapshot.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MetricsDrainReadsAndZeroes) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  reg.add(obs::Phase::kEncode, 100);
  reg.add(obs::Phase::kEncode, 50);
  reg.add(obs::Phase::kSpillWait, 7);

  const obs::PhaseSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap[static_cast<int>(obs::Phase::kEncode)].ns, 150u);
  EXPECT_EQ(snap[static_cast<int>(obs::Phase::kEncode)].count, 2u);
  EXPECT_EQ(snap[static_cast<int>(obs::Phase::kSpillWait)].ns, 7u);

  const obs::PhaseSnapshot drained = reg.drain();
  EXPECT_EQ(drained[static_cast<int>(obs::Phase::kEncode)].ns, 150u);
  const obs::PhaseSnapshot after = reg.snapshot();
  EXPECT_EQ(after[static_cast<int>(obs::Phase::kEncode)].ns, 0u);
  EXPECT_EQ(after[static_cast<int>(obs::Phase::kEncode)].count, 0u);
}

// ---------------------------------------------------------------------------
// Trace on/off bitwise determinism on Inception.
// ---------------------------------------------------------------------------

struct RunResult {
  std::vector<double> losses;
  std::vector<float> params;
  memory::PagerCounters counters;
};

RunResult train_once(int pool, std::size_t budget, bool traced,
                     std::size_t iterations = 2) {
  if (traced) {
    trace::enable(kDefaultRingEvents);
  } else {
    trace::disable();
  }
  tensor::sched::set_num_threads(pool);
  models::ModelConfig mcfg;
  mcfg.input_hw = 16;
  mcfg.num_classes = 4;
  mcfg.width_multiplier = 0.125;
  mcfg.seed = 7;
  auto net = models::make_inception_v4(mcfg);

  data::SyntheticSpec dspec;
  dspec.num_classes = 4;
  dspec.image_hw = 16;
  dspec.train_per_class = 32;
  dspec.seed = 777;
  data::SyntheticImageDataset ds(dspec);
  data::DataLoader loader(ds, 8, true, true, 31);

  core::SessionConfig cfg;
  cfg.framework.active_factor_w = 4;
  cfg.framework.memory_budget_bytes = budget;
  cfg.framework.prefetch_depth = 0;  // pin: counters independent of timing
  cfg.base_lr = 0.05;
  core::TrainingSession session(*net, loader, cfg);
  session.run(iterations);

  RunResult r;
  for (const auto& rec : session.history()) r.losses.push_back(rec.loss);
  for (auto* p : net->params()) {
    const auto s = p->value.span();
    r.params.insert(r.params.end(), s.begin(), s.end());
  }
  r.counters = session.paged_store()->pager().counters();
  trace::disable();
  return r;
}

void expect_same_training(const RunResult& got, const RunResult& ref,
                          const std::string& label) {
  ASSERT_EQ(got.losses.size(), ref.losses.size()) << label;
  for (std::size_t i = 0; i < ref.losses.size(); ++i) {
    ASSERT_EQ(got.losses[i], ref.losses[i]) << label << " iter " << i;
  }
  ASSERT_EQ(got.params.size(), ref.params.size()) << label;
  ASSERT_EQ(std::memcmp(got.params.data(), ref.params.data(),
                        ref.params.size() * sizeof(float)),
            0)
      << label << ": parameters diverged";
}

/// Same training outcome AND every pager counter byte-for-byte: tracing
/// must not change a single pager decision. Only comparable at the same
/// pool x budget point (budget legitimately changes eviction counts).
void expect_identical(const RunResult& got, const RunResult& ref,
                      const std::string& label) {
  expect_same_training(got, ref, label);
  EXPECT_EQ(std::memcmp(&got.counters, &ref.counters,
                        sizeof(memory::PagerCounters)),
            0)
      << label << ": pager counters diverged";
}

TEST_F(ObsTest, TraceOnOffBitwiseDeterminismMatrix) {
  const int max_pool = std::min(4, tensor::sched::num_threads());
  const RunResult ref = train_once(1, 0, /*traced=*/false);
  ASSERT_FALSE(ref.losses.empty());
  const std::size_t peak = ref.counters.peak_resident_bytes;
  ASSERT_GT(peak, 0u);

  for (const std::size_t budget : {std::size_t{0}, peak / 4}) {
    for (const int pool : {1, max_pool}) {
      const std::string point =
          "pool=" + std::to_string(pool) + " budget=" + std::to_string(budget);
      const RunResult off = train_once(pool, budget, /*traced=*/false);
      const RunResult on = train_once(pool, budget, /*traced=*/true);
      // Tracing on vs off at the same point: everything identical,
      // counters included.
      expect_identical(on, off, point + " trace on-vs-off");
      // And paging stays transparent: the training outcome matches the
      // unconstrained reference at every point.
      expect_same_training(off, ref, point + " trace=off vs ref");
    }
  }
}

}  // namespace
}  // namespace ebct
