// Unit tests for the statistics module: streaming moments, histograms,
// distribution-shape diagnostics, regression.

#include <gtest/gtest.h>

#include <vector>

#include "stats/distribution.hpp"
#include "stats/histogram.hpp"
#include "stats/linreg.hpp"
#include "stats/running_stats.hpp"
#include "tensor/rng.hpp"

namespace ebct::stats {
namespace {

TEST(RunningStats, MeanVarianceSimple) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, UniformSampleKurtosisNearMinus1p2) {
  tensor::Rng rng(21);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.uniform(-1.0, 1.0));
  EXPECT_NEAR(rs.excess_kurtosis(), -1.2, 0.05);
  EXPECT_NEAR(rs.skewness(), 0.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.0 / std::sqrt(3.0), 0.01);
}

TEST(RunningStats, NormalSampleKurtosisNearZero) {
  tensor::Rng rng(22);
  RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(rng.normal(0.0, 2.0));
  EXPECT_NEAR(rs.excess_kurtosis(), 0.0, 0.1);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(RunningStats, MergeEqualsSequential) {
  tensor::Rng rng(23);
  RunningStats all, a, b;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(1.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_NEAR(a.excess_kurtosis(), all.excess_kurtosis(), 1e-6);
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.count(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bin_count(i), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
}

TEST(Histogram, OverUnderflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, DensityIntegratesToOne) {
  tensor::Rng rng(24);
  Histogram h(-1.0, 1.0, 50);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(-1.0, 1.0));
  double integral = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) integral += h.density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, KsUniformSmallForUniformData) {
  tensor::Rng rng(25);
  Histogram h(-1.0, 1.0, 64);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(-1.0, 1.0));
  EXPECT_LT(h.ks_uniform(), 0.02);
}

TEST(Histogram, KsUniformLargeForNormalData) {
  tensor::Rng rng(26);
  Histogram h(-1.0, 1.0, 64);
  for (int i = 0; i < 100000; ++i) h.add(rng.normal(0.0, 0.25));
  EXPECT_GT(h.ks_uniform(), 0.15);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiHasExpectedRows) {
  Histogram h(0.0, 1.0, 8);
  h.add(0.5);
  const std::string art = h.ascii(4);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);  // 4 rows + axis
}

TEST(Distribution, DiagnoseUniform) {
  tensor::Rng rng(27);
  std::vector<float> v(100000);
  rng.fill_uniform({v.data(), v.size()}, -0.01f, 0.01f);
  const auto d = diagnose({v.data(), v.size()});
  EXPECT_TRUE(looks_uniform(d, 0.01));
  EXPECT_FALSE(looks_normal(d));
}

TEST(Distribution, DiagnoseNormal) {
  tensor::Rng rng(28);
  std::vector<float> v(100000);
  rng.fill_normal({v.data(), v.size()}, 0.0f, 0.5f);
  const auto d = diagnose({v.data(), v.size()});
  EXPECT_TRUE(looks_normal(d));
  EXPECT_FALSE(looks_uniform(d, 0.5));
  EXPECT_NEAR(d.within_one_sigma, 0.682, 0.01);
}

TEST(Distribution, UniformStddevFormula) {
  EXPECT_NEAR(uniform_stddev(3.0), 3.0 / std::sqrt(3.0), 1e-12);
}

TEST(LinReg, ThroughOriginRecoversSlope) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(0.32 * i);
  }
  const auto f = fit_through_origin(x, y);
  EXPECT_NEAR(f.slope, 0.32, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinReg, WithInterceptRecoversBoth) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 5.0);
  }
  const auto f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, 5.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinReg, NoisyFitStillClose) {
  tensor::Rng rng(29);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(0.32 * xi + rng.normal(0.0, 0.05));
  }
  const auto f = fit_through_origin(x, y);
  EXPECT_NEAR(f.slope, 0.32, 0.01);
  EXPECT_GT(f.r2, 0.95);
}

TEST(LinReg, DegenerateInputsSafe) {
  const auto f1 = fit_through_origin({}, {});
  EXPECT_DOUBLE_EQ(f1.slope, 0.0);
  std::vector<double> x(5, 1.0), y{1, 2, 3, 4, 5};
  const auto f2 = fit_linear(x, y);  // zero x-variance
  EXPECT_DOUBLE_EQ(f2.slope, 0.0);
}

}  // namespace
}  // namespace ebct::stats
