// Network container, activation stores, SGD and end-to-end training on a
// tiny synthetic problem — the framework substrate has to actually learn.

#include <gtest/gtest.h>

#include "baselines/lossless.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/network.hpp"
#include "nn/pooling.hpp"
#include "nn/sgd.hpp"
#include "nn/simple_layers.hpp"
#include "nn/softmax_xent.hpp"
#include "util/test_util.hpp"

namespace ebct::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<Network> tiny_cnn(std::uint64_t seed = 100) {
  Rng rng(seed);
  auto net = std::make_unique<Network>("tiny");
  net->add(std::make_unique<Conv2d>("conv1", Conv2dSpec{1, 4, 3, 1, 1}, rng));
  net->add(std::make_unique<ReLU>("relu1"));
  net->add(std::make_unique<MaxPool>("pool1", PoolSpec{2, 2, 0}));
  net->add(std::make_unique<Conv2d>("conv2", Conv2dSpec{4, 8, 3, 1, 1}, rng));
  net->add(std::make_unique<ReLU>("relu2"));
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  net->add(std::make_unique<Flatten>("flatten"));
  net->add(std::make_unique<Linear>("fc", 8, 2, rng));
  return net;
}

// Trivially separable 2-class problem: class 0 = negative mean, class 1 =
// positive mean plus noise.
void make_batch(Rng& rng, std::size_t n, Tensor& x, std::vector<std::int32_t>& y) {
  x = Tensor(Shape::nchw(n, 1, 8, 8));
  y.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::int32_t label = static_cast<std::int32_t>(rng.uniform_index(2));
    y[s] = label;
    const float mean = label == 0 ? -0.5f : 0.5f;
    for (std::size_t i = 0; i < 64; ++i)
      x.data()[s * 64 + i] = mean + static_cast<float>(rng.normal(0.0, 0.3));
  }
}

TEST(Network, ShapeTraceMatchesForward) {
  auto net = tiny_cnn();
  const auto trace = net->shape_trace(Shape::nchw(2, 1, 8, 8));
  Tensor x = testutil::random_tensor(Shape::nchw(2, 1, 8, 8), 101);
  Tensor out = net->forward(x, true);
  EXPECT_EQ(trace.back().second, out.shape());
  EXPECT_EQ(out.shape(), Shape({2, 2}));
  // Drain stashes.
  net->backward(Tensor(out.shape(), 0.0f));
}

TEST(Network, ConvActivationBytesCountsConvInputsOnly) {
  auto net = tiny_cnn();
  // conv1 input: 2*1*8*8 floats; conv2 input: 2*4*4*4 floats.
  const std::size_t expect = (2 * 1 * 8 * 8 + 2 * 4 * 4 * 4) * sizeof(float);
  EXPECT_EQ(net->conv_activation_bytes(Shape::nchw(2, 1, 8, 8)), expect);
}

TEST(Network, ParamsCollectsAll) {
  auto net = tiny_cnn();
  // conv1 (w+b), conv2 (w+b), fc (w+b)
  EXPECT_EQ(net->params().size(), 6u);
  EXPECT_GT(net->num_parameters(), 0u);
}

TEST(Network, ZeroGradClearsGradients) {
  auto net = tiny_cnn();
  Tensor x = testutil::random_tensor(Shape::nchw(2, 1, 8, 8), 102);
  Tensor out = net->forward(x, true);
  net->backward(Tensor(out.shape(), 1.0f));
  net->zero_grad();
  for (Param* p : net->params())
    for (std::size_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
}

TEST(Network, VisitFindsConvLayers) {
  auto net = tiny_cnn();
  int convs = 0;
  net->visit([&](Layer& l) {
    if (dynamic_cast<Conv2d*>(&l)) ++convs;
  });
  EXPECT_EQ(convs, 2);
}

TEST(RawStoreTest, StashRetrieveLifo) {
  RawStore store;
  Tensor a(Shape{4}, 1.0f), b(Shape{4}, 2.0f);
  const auto ha = store.stash("l1", std::move(a));
  const auto hb = store.stash("l2", std::move(b));
  EXPECT_EQ(store.held_bytes(), 32u);
  Tensor rb = store.retrieve(hb);
  EXPECT_FLOAT_EQ(rb[0], 2.0f);
  Tensor ra = store.retrieve(ha);
  EXPECT_FLOAT_EQ(ra[0], 1.0f);
  EXPECT_EQ(store.held_bytes(), 0u);
}

TEST(RawStoreTest, UnknownHandleThrows) {
  RawStore store;
  EXPECT_THROW(store.retrieve(99), std::logic_error);
}

TEST(RawStoreTest, StatsAccumulatePerLayer) {
  RawStore store;
  store.retrieve(store.stash("conv1", Tensor(Shape{100})));
  store.retrieve(store.stash("conv1", Tensor(Shape{100})));
  const auto stats = store.stats();
  EXPECT_EQ(stats.at("conv1").stashed_tensors, 2u);
  EXPECT_EQ(stats.at("conv1").original_bytes, 800u);
  EXPECT_DOUBLE_EQ(stats.at("conv1").compression_ratio(), 1.0);
}

TEST(CodecStoreTest, LosslessRoundtripThroughStore) {
  auto codec = std::make_shared<baselines::LosslessCodec>();
  CodecStore store(codec);
  Tensor t = testutil::relu_like_tensor(Shape::nchw(2, 8, 16, 16), 103, 0.6);
  Tensor orig = t.clone();
  const auto h = store.stash("conv1", std::move(t));
  EXPECT_GT(store.held_bytes(), 0u);
  EXPECT_LT(store.held_bytes(), orig.bytes());  // actually compressed
  Tensor back = store.retrieve(h);
  ASSERT_EQ(back.shape(), orig.shape());
  for (std::size_t i = 0; i < back.numel(); ++i) EXPECT_FLOAT_EQ(back[i], orig[i]);
  EXPECT_EQ(store.held_bytes(), 0u);
}

TEST(StepLrSchedule, DecaysAtSteps) {
  StepLr s(0.1, 0.5, 100);
  EXPECT_DOUBLE_EQ(s.lr(0), 0.1);
  EXPECT_DOUBLE_EQ(s.lr(99), 0.1);
  EXPECT_DOUBLE_EQ(s.lr(100), 0.05);
  EXPECT_DOUBLE_EQ(s.lr(250), 0.025);
}

TEST(SgdOptimizer, SingleStepMatchesFormula) {
  Param p("w", Shape{1});
  p.value[0] = 1.0f;
  p.grad[0] = 0.5f;
  Sgd sgd(SgdOptions{0.9, 0.0});
  Param* arr[] = {&p};
  sgd.step(arr, 0.1);
  // v = 0.9*0 + 0.5 = 0.5; w = 1 - 0.1*0.5 = 0.95
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6);
  EXPECT_NEAR(p.momentum[0], 0.5f, 1e-6);
  EXPECT_EQ(p.grad[0], 0.0f);  // cleared
  // Second step with zero grad: momentum decays.
  sgd.step(arr, 0.1);
  EXPECT_NEAR(p.momentum[0], 0.45f, 1e-6);
}

TEST(SgdOptimizer, WeightDecayPullsTowardZero) {
  Param p("w", Shape{1});
  p.value[0] = 2.0f;
  Sgd sgd(SgdOptions{0.0, 0.1});
  Param* arr[] = {&p};
  sgd.step(arr, 1.0);
  EXPECT_NEAR(p.value[0], 2.0f - 0.1 * 2.0f, 1e-6);
}

TEST(SgdOptimizer, DecayMultiplierZeroExempts) {
  Param p("gamma", Shape{1});
  p.value[0] = 2.0f;
  p.weight_decay_multiplier = 0.0;
  Sgd sgd(SgdOptions{0.0, 0.1});
  Param* arr[] = {&p};
  sgd.step(arr, 1.0);
  EXPECT_FLOAT_EQ(p.value[0], 2.0f);
}

TEST(SgdOptimizer, MomentumMeanAbs) {
  Param p("w", Shape{2});
  p.momentum[0] = -1.0f;
  p.momentum[1] = 3.0f;
  Param* arr[] = {&p};
  EXPECT_DOUBLE_EQ(Sgd::momentum_mean_abs(arr), 2.0);
}

TEST(TrainingLoop, LossDecreasesOnSeparableProblem) {
  auto net = tiny_cnn(104);
  Sgd sgd(SgdOptions{0.9, 0.0});
  SoftmaxCrossEntropy head;
  Rng rng(105);
  Tensor x;
  std::vector<std::int32_t> y;

  double first_loss = 0.0, last_loss = 0.0;
  for (int it = 0; it < 60; ++it) {
    make_batch(rng, 16, x, y);
    Tensor logits = net->forward(x, true);
    const auto r = head.compute(logits, y);
    if (it == 0) first_loss = r.loss;
    last_loss = r.loss;
    net->backward(r.grad_logits);
    auto params = net->params();
    sgd.step(params, 0.05);
  }
  EXPECT_LT(last_loss, first_loss * 0.7);
}

TEST(TrainingLoop, CompressedStoreTrainsAsWellAsRaw) {
  // Same seed/batches, one net with raw store and one with a lossless codec
  // store — losses must be bit-for-bit comparable (lossless!).
  auto net_a = tiny_cnn(106);
  auto net_b = tiny_cnn(106);
  auto codec = std::make_shared<baselines::LosslessCodec>();
  CodecStore codec_store(codec);
  net_b->set_store(&codec_store);

  Sgd sgd_a(SgdOptions{0.9, 0.0}), sgd_b(SgdOptions{0.9, 0.0});
  SoftmaxCrossEntropy head;
  Rng rng_a(107), rng_b(107);
  Tensor xa, xb;
  std::vector<std::int32_t> ya, yb;
  for (int it = 0; it < 10; ++it) {
    make_batch(rng_a, 8, xa, ya);
    make_batch(rng_b, 8, xb, yb);
    const auto ra = head.compute(net_a->forward(xa, true), ya);
    const auto rb = head.compute(net_b->forward(xb, true), yb);
    EXPECT_NEAR(ra.loss, rb.loss, 1e-7 * (1.0 + std::fabs(ra.loss)))
        << "iteration " << it;
    net_a->backward(ra.grad_logits);
    net_b->backward(rb.grad_logits);
    auto pa = net_a->params();
    auto pb = net_b->params();
    sgd_a.step(pa, 0.05);
    sgd_b.step(pb, 0.05);
  }
}

}  // namespace
}  // namespace ebct::nn
